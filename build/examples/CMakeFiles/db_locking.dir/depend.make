# Empty dependencies file for db_locking.
# This may be replaced when dependencies are built.
