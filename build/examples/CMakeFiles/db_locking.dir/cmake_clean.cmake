file(REMOVE_RECURSE
  "CMakeFiles/db_locking.dir/db_locking.cpp.o"
  "CMakeFiles/db_locking.dir/db_locking.cpp.o.d"
  "db_locking"
  "db_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
