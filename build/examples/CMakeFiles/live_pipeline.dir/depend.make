# Empty dependencies file for live_pipeline.
# This may be replaced when dependencies are built.
