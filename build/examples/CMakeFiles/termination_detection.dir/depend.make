# Empty dependencies file for termination_detection.
# This may be replaced when dependencies are built.
