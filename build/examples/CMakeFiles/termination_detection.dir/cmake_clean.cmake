file(REMOVE_RECURSE
  "CMakeFiles/termination_detection.dir/termination_detection.cpp.o"
  "CMakeFiles/termination_detection.dir/termination_detection.cpp.o.d"
  "termination_detection"
  "termination_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/termination_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
