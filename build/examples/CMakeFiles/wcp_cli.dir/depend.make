# Empty dependencies file for wcp_cli.
# This may be replaced when dependencies are built.
