file(REMOVE_RECURSE
  "CMakeFiles/wcp_cli.dir/wcp_cli.cpp.o"
  "CMakeFiles/wcp_cli.dir/wcp_cli.cpp.o.d"
  "wcp_cli"
  "wcp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
