file(REMOVE_RECURSE
  "CMakeFiles/crossover_study.dir/crossover_study.cpp.o"
  "CMakeFiles/crossover_study.dir/crossover_study.cpp.o.d"
  "crossover_study"
  "crossover_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
