# Empty dependencies file for crossover_study.
# This may be replaced when dependencies are built.
