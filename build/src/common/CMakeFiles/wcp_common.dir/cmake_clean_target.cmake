file(REMOVE_RECURSE
  "libwcp_common.a"
)
