file(REMOVE_RECURSE
  "CMakeFiles/wcp_common.dir/error.cc.o"
  "CMakeFiles/wcp_common.dir/error.cc.o.d"
  "CMakeFiles/wcp_common.dir/logging.cc.o"
  "CMakeFiles/wcp_common.dir/logging.cc.o.d"
  "CMakeFiles/wcp_common.dir/metrics.cc.o"
  "CMakeFiles/wcp_common.dir/metrics.cc.o.d"
  "CMakeFiles/wcp_common.dir/rng.cc.o"
  "CMakeFiles/wcp_common.dir/rng.cc.o.d"
  "CMakeFiles/wcp_common.dir/types.cc.o"
  "CMakeFiles/wcp_common.dir/types.cc.o.d"
  "libwcp_common.a"
  "libwcp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
