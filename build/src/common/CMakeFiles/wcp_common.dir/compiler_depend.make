# Empty compiler generated dependencies file for wcp_common.
# This may be replaced when dependencies are built.
