file(REMOVE_RECURSE
  "libwcp_clock.a"
)
