file(REMOVE_RECURSE
  "CMakeFiles/wcp_clock.dir/dependence.cc.o"
  "CMakeFiles/wcp_clock.dir/dependence.cc.o.d"
  "CMakeFiles/wcp_clock.dir/vector_clock.cc.o"
  "CMakeFiles/wcp_clock.dir/vector_clock.cc.o.d"
  "libwcp_clock.a"
  "libwcp_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
