# Empty compiler generated dependencies file for wcp_clock.
# This may be replaced when dependencies are built.
