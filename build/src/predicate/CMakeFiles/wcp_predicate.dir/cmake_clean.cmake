file(REMOVE_RECURSE
  "CMakeFiles/wcp_predicate.dir/expr.cc.o"
  "CMakeFiles/wcp_predicate.dir/expr.cc.o.d"
  "CMakeFiles/wcp_predicate.dir/program.cc.o"
  "CMakeFiles/wcp_predicate.dir/program.cc.o.d"
  "libwcp_predicate.a"
  "libwcp_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
