file(REMOVE_RECURSE
  "libwcp_predicate.a"
)
