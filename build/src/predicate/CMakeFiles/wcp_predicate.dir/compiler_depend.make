# Empty compiler generated dependencies file for wcp_predicate.
# This may be replaced when dependencies are built.
