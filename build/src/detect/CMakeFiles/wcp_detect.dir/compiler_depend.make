# Empty compiler generated dependencies file for wcp_detect.
# This may be replaced when dependencies are built.
