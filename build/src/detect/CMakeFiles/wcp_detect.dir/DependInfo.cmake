
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/boolean.cc" "src/detect/CMakeFiles/wcp_detect.dir/boolean.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/boolean.cc.o.d"
  "/root/repo/src/detect/centralized.cc" "src/detect/CMakeFiles/wcp_detect.dir/centralized.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/centralized.cc.o.d"
  "/root/repo/src/detect/chandy_lamport.cc" "src/detect/CMakeFiles/wcp_detect.dir/chandy_lamport.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/chandy_lamport.cc.o.d"
  "/root/repo/src/detect/direct_dep.cc" "src/detect/CMakeFiles/wcp_detect.dir/direct_dep.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/direct_dep.cc.o.d"
  "/root/repo/src/detect/gcp.cc" "src/detect/CMakeFiles/wcp_detect.dir/gcp.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/gcp.cc.o.d"
  "/root/repo/src/detect/gcp_online.cc" "src/detect/CMakeFiles/wcp_detect.dir/gcp_online.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/gcp_online.cc.o.d"
  "/root/repo/src/detect/lattice.cc" "src/detect/CMakeFiles/wcp_detect.dir/lattice.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/lattice.cc.o.d"
  "/root/repo/src/detect/lattice_online.cc" "src/detect/CMakeFiles/wcp_detect.dir/lattice_online.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/lattice_online.cc.o.d"
  "/root/repo/src/detect/lower_bound.cc" "src/detect/CMakeFiles/wcp_detect.dir/lower_bound.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/lower_bound.cc.o.d"
  "/root/repo/src/detect/multi_token.cc" "src/detect/CMakeFiles/wcp_detect.dir/multi_token.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/multi_token.cc.o.d"
  "/root/repo/src/detect/offline.cc" "src/detect/CMakeFiles/wcp_detect.dir/offline.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/offline.cc.o.d"
  "/root/repo/src/detect/relational.cc" "src/detect/CMakeFiles/wcp_detect.dir/relational.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/relational.cc.o.d"
  "/root/repo/src/detect/result.cc" "src/detect/CMakeFiles/wcp_detect.dir/result.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/result.cc.o.d"
  "/root/repo/src/detect/token_vc.cc" "src/detect/CMakeFiles/wcp_detect.dir/token_vc.cc.o" "gcc" "src/detect/CMakeFiles/wcp_detect.dir/token_vc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/wcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/wcp_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/wcp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
