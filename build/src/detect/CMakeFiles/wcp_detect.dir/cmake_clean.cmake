file(REMOVE_RECURSE
  "CMakeFiles/wcp_detect.dir/boolean.cc.o"
  "CMakeFiles/wcp_detect.dir/boolean.cc.o.d"
  "CMakeFiles/wcp_detect.dir/centralized.cc.o"
  "CMakeFiles/wcp_detect.dir/centralized.cc.o.d"
  "CMakeFiles/wcp_detect.dir/chandy_lamport.cc.o"
  "CMakeFiles/wcp_detect.dir/chandy_lamport.cc.o.d"
  "CMakeFiles/wcp_detect.dir/direct_dep.cc.o"
  "CMakeFiles/wcp_detect.dir/direct_dep.cc.o.d"
  "CMakeFiles/wcp_detect.dir/gcp.cc.o"
  "CMakeFiles/wcp_detect.dir/gcp.cc.o.d"
  "CMakeFiles/wcp_detect.dir/gcp_online.cc.o"
  "CMakeFiles/wcp_detect.dir/gcp_online.cc.o.d"
  "CMakeFiles/wcp_detect.dir/lattice.cc.o"
  "CMakeFiles/wcp_detect.dir/lattice.cc.o.d"
  "CMakeFiles/wcp_detect.dir/lattice_online.cc.o"
  "CMakeFiles/wcp_detect.dir/lattice_online.cc.o.d"
  "CMakeFiles/wcp_detect.dir/lower_bound.cc.o"
  "CMakeFiles/wcp_detect.dir/lower_bound.cc.o.d"
  "CMakeFiles/wcp_detect.dir/multi_token.cc.o"
  "CMakeFiles/wcp_detect.dir/multi_token.cc.o.d"
  "CMakeFiles/wcp_detect.dir/offline.cc.o"
  "CMakeFiles/wcp_detect.dir/offline.cc.o.d"
  "CMakeFiles/wcp_detect.dir/relational.cc.o"
  "CMakeFiles/wcp_detect.dir/relational.cc.o.d"
  "CMakeFiles/wcp_detect.dir/result.cc.o"
  "CMakeFiles/wcp_detect.dir/result.cc.o.d"
  "CMakeFiles/wcp_detect.dir/token_vc.cc.o"
  "CMakeFiles/wcp_detect.dir/token_vc.cc.o.d"
  "libwcp_detect.a"
  "libwcp_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
