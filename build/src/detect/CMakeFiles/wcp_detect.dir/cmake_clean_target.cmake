file(REMOVE_RECURSE
  "libwcp_detect.a"
)
