file(REMOVE_RECURSE
  "CMakeFiles/wcp_trace.dir/computation.cc.o"
  "CMakeFiles/wcp_trace.dir/computation.cc.o.d"
  "CMakeFiles/wcp_trace.dir/diagram.cc.o"
  "CMakeFiles/wcp_trace.dir/diagram.cc.o.d"
  "CMakeFiles/wcp_trace.dir/dot_export.cc.o"
  "CMakeFiles/wcp_trace.dir/dot_export.cc.o.d"
  "CMakeFiles/wcp_trace.dir/trace_io.cc.o"
  "CMakeFiles/wcp_trace.dir/trace_io.cc.o.d"
  "libwcp_trace.a"
  "libwcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
