# Empty compiler generated dependencies file for wcp_trace.
# This may be replaced when dependencies are built.
