file(REMOVE_RECURSE
  "libwcp_trace.a"
)
