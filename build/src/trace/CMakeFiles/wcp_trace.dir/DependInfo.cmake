
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/computation.cc" "src/trace/CMakeFiles/wcp_trace.dir/computation.cc.o" "gcc" "src/trace/CMakeFiles/wcp_trace.dir/computation.cc.o.d"
  "/root/repo/src/trace/diagram.cc" "src/trace/CMakeFiles/wcp_trace.dir/diagram.cc.o" "gcc" "src/trace/CMakeFiles/wcp_trace.dir/diagram.cc.o.d"
  "/root/repo/src/trace/dot_export.cc" "src/trace/CMakeFiles/wcp_trace.dir/dot_export.cc.o" "gcc" "src/trace/CMakeFiles/wcp_trace.dir/dot_export.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/wcp_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/wcp_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clock/CMakeFiles/wcp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
