file(REMOVE_RECURSE
  "CMakeFiles/wcp_sim.dir/address.cc.o"
  "CMakeFiles/wcp_sim.dir/address.cc.o.d"
  "CMakeFiles/wcp_sim.dir/latency.cc.o"
  "CMakeFiles/wcp_sim.dir/latency.cc.o.d"
  "CMakeFiles/wcp_sim.dir/network.cc.o"
  "CMakeFiles/wcp_sim.dir/network.cc.o.d"
  "CMakeFiles/wcp_sim.dir/simulator.cc.o"
  "CMakeFiles/wcp_sim.dir/simulator.cc.o.d"
  "libwcp_sim.a"
  "libwcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
