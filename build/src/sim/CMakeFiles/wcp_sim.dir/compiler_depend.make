# Empty compiler generated dependencies file for wcp_sim.
# This may be replaced when dependencies are built.
