file(REMOVE_RECURSE
  "libwcp_sim.a"
)
