file(REMOVE_RECURSE
  "libwcp_app.a"
)
