file(REMOVE_RECURSE
  "CMakeFiles/wcp_app.dir/app_driver.cc.o"
  "CMakeFiles/wcp_app.dir/app_driver.cc.o.d"
  "CMakeFiles/wcp_app.dir/instrument.cc.o"
  "CMakeFiles/wcp_app.dir/instrument.cc.o.d"
  "libwcp_app.a"
  "libwcp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
