# Empty dependencies file for wcp_app.
# This may be replaced when dependencies are built.
