
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/db_workload.cc" "src/workload/CMakeFiles/wcp_workload.dir/db_workload.cc.o" "gcc" "src/workload/CMakeFiles/wcp_workload.dir/db_workload.cc.o.d"
  "/root/repo/src/workload/mutex_workload.cc" "src/workload/CMakeFiles/wcp_workload.dir/mutex_workload.cc.o" "gcc" "src/workload/CMakeFiles/wcp_workload.dir/mutex_workload.cc.o.d"
  "/root/repo/src/workload/random_workload.cc" "src/workload/CMakeFiles/wcp_workload.dir/random_workload.cc.o" "gcc" "src/workload/CMakeFiles/wcp_workload.dir/random_workload.cc.o.d"
  "/root/repo/src/workload/ring_workload.cc" "src/workload/CMakeFiles/wcp_workload.dir/ring_workload.cc.o" "gcc" "src/workload/CMakeFiles/wcp_workload.dir/ring_workload.cc.o.d"
  "/root/repo/src/workload/termination_workload.cc" "src/workload/CMakeFiles/wcp_workload.dir/termination_workload.cc.o" "gcc" "src/workload/CMakeFiles/wcp_workload.dir/termination_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/wcp_clock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
