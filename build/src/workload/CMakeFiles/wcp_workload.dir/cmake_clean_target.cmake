file(REMOVE_RECURSE
  "libwcp_workload.a"
)
