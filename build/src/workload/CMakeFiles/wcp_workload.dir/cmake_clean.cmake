file(REMOVE_RECURSE
  "CMakeFiles/wcp_workload.dir/db_workload.cc.o"
  "CMakeFiles/wcp_workload.dir/db_workload.cc.o.d"
  "CMakeFiles/wcp_workload.dir/mutex_workload.cc.o"
  "CMakeFiles/wcp_workload.dir/mutex_workload.cc.o.d"
  "CMakeFiles/wcp_workload.dir/random_workload.cc.o"
  "CMakeFiles/wcp_workload.dir/random_workload.cc.o.d"
  "CMakeFiles/wcp_workload.dir/ring_workload.cc.o"
  "CMakeFiles/wcp_workload.dir/ring_workload.cc.o.d"
  "CMakeFiles/wcp_workload.dir/termination_workload.cc.o"
  "CMakeFiles/wcp_workload.dir/termination_workload.cc.o.d"
  "libwcp_workload.a"
  "libwcp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
