# Empty compiler generated dependencies file for wcp_workload.
# This may be replaced when dependencies are built.
