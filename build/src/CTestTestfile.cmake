# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("clock")
subdirs("trace")
subdirs("predicate")
subdirs("sim")
subdirs("app")
subdirs("detect")
subdirs("workload")
