file(REMOVE_RECURSE
  "CMakeFiles/vector_clock_test.dir/vector_clock_test.cc.o"
  "CMakeFiles/vector_clock_test.dir/vector_clock_test.cc.o.d"
  "vector_clock_test"
  "vector_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
