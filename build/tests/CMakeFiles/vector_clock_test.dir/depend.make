# Empty dependencies file for vector_clock_test.
# This may be replaced when dependencies are built.
