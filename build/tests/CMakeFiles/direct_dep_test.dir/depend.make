# Empty dependencies file for direct_dep_test.
# This may be replaced when dependencies are built.
