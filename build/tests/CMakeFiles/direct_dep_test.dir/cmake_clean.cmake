file(REMOVE_RECURSE
  "CMakeFiles/direct_dep_test.dir/direct_dep_test.cc.o"
  "CMakeFiles/direct_dep_test.dir/direct_dep_test.cc.o.d"
  "direct_dep_test"
  "direct_dep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_dep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
