# Empty dependencies file for ring_workload_test.
# This may be replaced when dependencies are built.
