file(REMOVE_RECURSE
  "CMakeFiles/ring_workload_test.dir/ring_workload_test.cc.o"
  "CMakeFiles/ring_workload_test.dir/ring_workload_test.cc.o.d"
  "ring_workload_test"
  "ring_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
