file(REMOVE_RECURSE
  "CMakeFiles/gcp_edge_test.dir/gcp_edge_test.cc.o"
  "CMakeFiles/gcp_edge_test.dir/gcp_edge_test.cc.o.d"
  "gcp_edge_test"
  "gcp_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
