# Empty compiler generated dependencies file for gcp_edge_test.
# This may be replaced when dependencies are built.
