# Empty dependencies file for causality_oracle_test.
# This may be replaced when dependencies are built.
