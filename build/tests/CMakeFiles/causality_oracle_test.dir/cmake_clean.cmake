file(REMOVE_RECURSE
  "CMakeFiles/causality_oracle_test.dir/causality_oracle_test.cc.o"
  "CMakeFiles/causality_oracle_test.dir/causality_oracle_test.cc.o.d"
  "causality_oracle_test"
  "causality_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causality_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
