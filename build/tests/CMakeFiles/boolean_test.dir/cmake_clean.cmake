file(REMOVE_RECURSE
  "CMakeFiles/boolean_test.dir/boolean_test.cc.o"
  "CMakeFiles/boolean_test.dir/boolean_test.cc.o.d"
  "boolean_test"
  "boolean_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
