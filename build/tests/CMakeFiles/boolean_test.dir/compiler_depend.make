# Empty compiler generated dependencies file for boolean_test.
# This may be replaced when dependencies are built.
