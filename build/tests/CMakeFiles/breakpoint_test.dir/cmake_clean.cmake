file(REMOVE_RECURSE
  "CMakeFiles/breakpoint_test.dir/breakpoint_test.cc.o"
  "CMakeFiles/breakpoint_test.dir/breakpoint_test.cc.o.d"
  "breakpoint_test"
  "breakpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
