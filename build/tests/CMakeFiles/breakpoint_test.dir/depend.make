# Empty dependencies file for breakpoint_test.
# This may be replaced when dependencies are built.
