# Empty dependencies file for definitely_test.
# This may be replaced when dependencies are built.
