file(REMOVE_RECURSE
  "CMakeFiles/definitely_test.dir/definitely_test.cc.o"
  "CMakeFiles/definitely_test.dir/definitely_test.cc.o.d"
  "definitely_test"
  "definitely_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/definitely_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
