file(REMOVE_RECURSE
  "CMakeFiles/computation_test.dir/computation_test.cc.o"
  "CMakeFiles/computation_test.dir/computation_test.cc.o.d"
  "computation_test"
  "computation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/computation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
