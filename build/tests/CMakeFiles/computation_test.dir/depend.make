# Empty dependencies file for computation_test.
# This may be replaced when dependencies are built.
