file(REMOVE_RECURSE
  "CMakeFiles/offline_test.dir/offline_test.cc.o"
  "CMakeFiles/offline_test.dir/offline_test.cc.o.d"
  "offline_test"
  "offline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
