# Empty compiler generated dependencies file for gcp_test.
# This may be replaced when dependencies are built.
