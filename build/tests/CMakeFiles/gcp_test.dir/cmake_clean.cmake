file(REMOVE_RECURSE
  "CMakeFiles/gcp_test.dir/gcp_test.cc.o"
  "CMakeFiles/gcp_test.dir/gcp_test.cc.o.d"
  "gcp_test"
  "gcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
