file(REMOVE_RECURSE
  "CMakeFiles/multi_token_test.dir/multi_token_test.cc.o"
  "CMakeFiles/multi_token_test.dir/multi_token_test.cc.o.d"
  "multi_token_test"
  "multi_token_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
