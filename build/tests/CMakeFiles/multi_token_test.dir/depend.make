# Empty dependencies file for multi_token_test.
# This may be replaced when dependencies are built.
