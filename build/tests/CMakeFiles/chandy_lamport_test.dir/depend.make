# Empty dependencies file for chandy_lamport_test.
# This may be replaced when dependencies are built.
