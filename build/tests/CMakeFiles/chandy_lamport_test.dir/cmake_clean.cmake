file(REMOVE_RECURSE
  "CMakeFiles/chandy_lamport_test.dir/chandy_lamport_test.cc.o"
  "CMakeFiles/chandy_lamport_test.dir/chandy_lamport_test.cc.o.d"
  "chandy_lamport_test"
  "chandy_lamport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chandy_lamport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
