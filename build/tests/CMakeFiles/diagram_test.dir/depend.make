# Empty dependencies file for diagram_test.
# This may be replaced when dependencies are built.
