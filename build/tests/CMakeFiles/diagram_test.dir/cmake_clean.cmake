file(REMOVE_RECURSE
  "CMakeFiles/diagram_test.dir/diagram_test.cc.o"
  "CMakeFiles/diagram_test.dir/diagram_test.cc.o.d"
  "diagram_test"
  "diagram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
