# Empty dependencies file for compression_test.
# This may be replaced when dependencies are built.
