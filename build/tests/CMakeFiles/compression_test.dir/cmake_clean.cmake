file(REMOVE_RECURSE
  "CMakeFiles/compression_test.dir/compression_test.cc.o"
  "CMakeFiles/compression_test.dir/compression_test.cc.o.d"
  "compression_test"
  "compression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
