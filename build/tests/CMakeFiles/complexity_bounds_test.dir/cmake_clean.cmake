file(REMOVE_RECURSE
  "CMakeFiles/complexity_bounds_test.dir/complexity_bounds_test.cc.o"
  "CMakeFiles/complexity_bounds_test.dir/complexity_bounds_test.cc.o.d"
  "complexity_bounds_test"
  "complexity_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
