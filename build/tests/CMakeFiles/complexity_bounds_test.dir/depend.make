# Empty dependencies file for complexity_bounds_test.
# This may be replaced when dependencies are built.
