# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for complexity_bounds_test.
