# Empty compiler generated dependencies file for expr_fuzz_test.
# This may be replaced when dependencies are built.
