file(REMOVE_RECURSE
  "CMakeFiles/expr_fuzz_test.dir/expr_fuzz_test.cc.o"
  "CMakeFiles/expr_fuzz_test.dir/expr_fuzz_test.cc.o.d"
  "expr_fuzz_test"
  "expr_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
