# Empty dependencies file for gcp_online_test.
# This may be replaced when dependencies are built.
