file(REMOVE_RECURSE
  "CMakeFiles/gcp_online_test.dir/gcp_online_test.cc.o"
  "CMakeFiles/gcp_online_test.dir/gcp_online_test.cc.o.d"
  "gcp_online_test"
  "gcp_online_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcp_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
