file(REMOVE_RECURSE
  "CMakeFiles/app_driver_test.dir/app_driver_test.cc.o"
  "CMakeFiles/app_driver_test.dir/app_driver_test.cc.o.d"
  "app_driver_test"
  "app_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
