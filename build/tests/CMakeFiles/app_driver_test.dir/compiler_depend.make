# Empty compiler generated dependencies file for app_driver_test.
# This may be replaced when dependencies are built.
