file(REMOVE_RECURSE
  "CMakeFiles/instrument_test.dir/instrument_test.cc.o"
  "CMakeFiles/instrument_test.dir/instrument_test.cc.o.d"
  "instrument_test"
  "instrument_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
