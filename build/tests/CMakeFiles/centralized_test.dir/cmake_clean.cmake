file(REMOVE_RECURSE
  "CMakeFiles/centralized_test.dir/centralized_test.cc.o"
  "CMakeFiles/centralized_test.dir/centralized_test.cc.o.d"
  "centralized_test"
  "centralized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
