# Empty dependencies file for centralized_test.
# This may be replaced when dependencies are built.
