# Empty compiler generated dependencies file for invariant_property_test.
# This may be replaced when dependencies are built.
