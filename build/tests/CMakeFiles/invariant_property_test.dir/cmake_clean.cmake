file(REMOVE_RECURSE
  "CMakeFiles/invariant_property_test.dir/invariant_property_test.cc.o"
  "CMakeFiles/invariant_property_test.dir/invariant_property_test.cc.o.d"
  "invariant_property_test"
  "invariant_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
