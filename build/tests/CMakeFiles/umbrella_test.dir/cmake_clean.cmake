file(REMOVE_RECURSE
  "CMakeFiles/umbrella_test.dir/umbrella_test.cc.o"
  "CMakeFiles/umbrella_test.dir/umbrella_test.cc.o.d"
  "umbrella_test"
  "umbrella_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umbrella_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
