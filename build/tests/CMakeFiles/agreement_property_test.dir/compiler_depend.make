# Empty compiler generated dependencies file for agreement_property_test.
# This may be replaced when dependencies are built.
