file(REMOVE_RECURSE
  "CMakeFiles/agreement_property_test.dir/agreement_property_test.cc.o"
  "CMakeFiles/agreement_property_test.dir/agreement_property_test.cc.o.d"
  "agreement_property_test"
  "agreement_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreement_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
