# Empty dependencies file for lattice_online_test.
# This may be replaced when dependencies are built.
