file(REMOVE_RECURSE
  "CMakeFiles/lattice_online_test.dir/lattice_online_test.cc.o"
  "CMakeFiles/lattice_online_test.dir/lattice_online_test.cc.o.d"
  "lattice_online_test"
  "lattice_online_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
