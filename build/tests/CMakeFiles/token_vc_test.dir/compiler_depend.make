# Empty compiler generated dependencies file for token_vc_test.
# This may be replaced when dependencies are built.
