file(REMOVE_RECURSE
  "CMakeFiles/token_vc_test.dir/token_vc_test.cc.o"
  "CMakeFiles/token_vc_test.dir/token_vc_test.cc.o.d"
  "token_vc_test"
  "token_vc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
