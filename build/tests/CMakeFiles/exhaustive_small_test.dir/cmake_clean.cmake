file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_small_test.dir/exhaustive_small_test.cc.o"
  "CMakeFiles/exhaustive_small_test.dir/exhaustive_small_test.cc.o.d"
  "exhaustive_small_test"
  "exhaustive_small_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_small_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
