# Empty compiler generated dependencies file for exhaustive_small_test.
# This may be replaced when dependencies are built.
