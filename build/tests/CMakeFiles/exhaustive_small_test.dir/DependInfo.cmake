
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exhaustive_small_test.cc" "tests/CMakeFiles/exhaustive_small_test.dir/exhaustive_small_test.cc.o" "gcc" "tests/CMakeFiles/exhaustive_small_test.dir/exhaustive_small_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/wcp_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wcp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/wcp_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/wcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/wcp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
