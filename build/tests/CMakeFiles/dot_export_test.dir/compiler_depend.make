# Empty compiler generated dependencies file for dot_export_test.
# This may be replaced when dependencies are built.
