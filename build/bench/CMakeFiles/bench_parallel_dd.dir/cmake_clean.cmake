file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_dd.dir/bench_parallel_dd.cc.o"
  "CMakeFiles/bench_parallel_dd.dir/bench_parallel_dd.cc.o.d"
  "bench_parallel_dd"
  "bench_parallel_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
