file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_token.dir/bench_multi_token.cc.o"
  "CMakeFiles/bench_multi_token.dir/bench_multi_token.cc.o.d"
  "bench_multi_token"
  "bench_multi_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
