# Empty dependencies file for bench_multi_token.
# This may be replaced when dependencies are built.
