# Empty compiler generated dependencies file for bench_token_vc.
# This may be replaced when dependencies are built.
