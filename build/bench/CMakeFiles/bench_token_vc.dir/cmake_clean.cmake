file(REMOVE_RECURSE
  "CMakeFiles/bench_token_vc.dir/bench_token_vc.cc.o"
  "CMakeFiles/bench_token_vc.dir/bench_token_vc.cc.o.d"
  "bench_token_vc"
  "bench_token_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_token_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
