# Empty compiler generated dependencies file for bench_centralized.
# This may be replaced when dependencies are built.
