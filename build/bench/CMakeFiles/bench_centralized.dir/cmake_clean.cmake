file(REMOVE_RECURSE
  "CMakeFiles/bench_centralized.dir/bench_centralized.cc.o"
  "CMakeFiles/bench_centralized.dir/bench_centralized.cc.o.d"
  "bench_centralized"
  "bench_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
