file(REMOVE_RECURSE
  "CMakeFiles/bench_gcp.dir/bench_gcp.cc.o"
  "CMakeFiles/bench_gcp.dir/bench_gcp.cc.o.d"
  "bench_gcp"
  "bench_gcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
