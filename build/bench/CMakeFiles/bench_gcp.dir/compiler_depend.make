# Empty compiler generated dependencies file for bench_gcp.
# This may be replaced when dependencies are built.
