# Empty dependencies file for bench_offline.
# This may be replaced when dependencies are built.
