file(REMOVE_RECURSE
  "CMakeFiles/bench_offline.dir/bench_offline.cc.o"
  "CMakeFiles/bench_offline.dir/bench_offline.cc.o.d"
  "bench_offline"
  "bench_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
