file(REMOVE_RECURSE
  "CMakeFiles/bench_chandy_lamport.dir/bench_chandy_lamport.cc.o"
  "CMakeFiles/bench_chandy_lamport.dir/bench_chandy_lamport.cc.o.d"
  "bench_chandy_lamport"
  "bench_chandy_lamport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chandy_lamport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
