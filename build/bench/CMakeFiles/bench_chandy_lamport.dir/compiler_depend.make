# Empty compiler generated dependencies file for bench_chandy_lamport.
# This may be replaced when dependencies are built.
