# Empty compiler generated dependencies file for bench_crossover.
# This may be replaced when dependencies are built.
