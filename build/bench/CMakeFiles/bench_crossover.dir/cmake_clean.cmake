file(REMOVE_RECURSE
  "CMakeFiles/bench_crossover.dir/bench_crossover.cc.o"
  "CMakeFiles/bench_crossover.dir/bench_crossover.cc.o.d"
  "bench_crossover"
  "bench_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
