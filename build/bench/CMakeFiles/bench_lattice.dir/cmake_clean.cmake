file(REMOVE_RECURSE
  "CMakeFiles/bench_lattice.dir/bench_lattice.cc.o"
  "CMakeFiles/bench_lattice.dir/bench_lattice.cc.o.d"
  "bench_lattice"
  "bench_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
