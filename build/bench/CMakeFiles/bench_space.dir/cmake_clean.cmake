file(REMOVE_RECURSE
  "CMakeFiles/bench_space.dir/bench_space.cc.o"
  "CMakeFiles/bench_space.dir/bench_space.cc.o.d"
  "bench_space"
  "bench_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
