# Empty compiler generated dependencies file for bench_messages.
# This may be replaced when dependencies are built.
