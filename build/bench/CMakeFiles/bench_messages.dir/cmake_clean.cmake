file(REMOVE_RECURSE
  "CMakeFiles/bench_messages.dir/bench_messages.cc.o"
  "CMakeFiles/bench_messages.dir/bench_messages.cc.o.d"
  "bench_messages"
  "bench_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
