file(REMOVE_RECURSE
  "CMakeFiles/bench_direct_dep.dir/bench_direct_dep.cc.o"
  "CMakeFiles/bench_direct_dep.dir/bench_direct_dep.cc.o.d"
  "bench_direct_dep"
  "bench_direct_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
