# Empty compiler generated dependencies file for bench_direct_dep.
# This may be replaced when dependencies are built.
