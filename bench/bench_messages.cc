// E2 — §3.4 claim: the token algorithm sends at most 2mn monitor-layer
// messages (mn token moves + mn snapshots) of O(n) size each, i.e. O(n^2 m)
// bits in total.
//
// Counters:
//   tokens, snapshots     measured message counts
//   msgs_per_2mn          (tokens + snapshots) / (2 m n)    <= ~1
//   bits_per_n2m          monitor+snapshot bits / (n^2 m * 64)
#include <algorithm>

#include "bench_common.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void BM_TokenVc_Messages(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::int64_t rounds = state.range(1);
  // Worst-case workload (violation only at the end) so the token really
  // travels and every candidate is shipped to a monitor.
  const auto& comp = cached_worstcase(n, rounds, /*seed=*/7 + n);
  double m = 0;
  for (ProcessId p : comp.predicate_processes())
    m = std::max(m, static_cast<double>(comp.events(p).size()));
  const double nd = static_cast<double>(n);

  detect::DetectionResult last;
  for (auto _ : state) {
    last = detect::run_token_vc(comp, default_opts());
    benchmark::DoNotOptimize(last.detected);
  }

  const double tokens =
      static_cast<double>(last.monitor_metrics.total_messages(MsgKind::kToken));
  const double snaps =
      static_cast<double>(last.app_metrics.total_messages(MsgKind::kSnapshot));
  const double bits =
      static_cast<double>(last.monitor_metrics.total_bits(MsgKind::kToken) +
                          last.app_metrics.total_bits(MsgKind::kSnapshot));
  state.counters["n"] = nd;
  state.counters["m"] = m;
  state.counters["tokens"] = tokens;
  state.counters["snapshots"] = snaps;
  state.counters["msgs_per_2mn"] = (tokens + snaps) / (2.0 * m * nd);
  state.counters["bits_per_n2m"] = bits / (nd * nd * m * 64.0);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 7 + n;
  const double bound = 2.0 * m * nd;  // §3.4: at most 2mn monitor messages
  report_run(state, "E2_messages", rp, last, bound, (tokens + snaps) / bound);
}
BENCHMARK(BM_TokenVc_Messages)
    ->Args({2, 20})
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({12, 20})
    ->Args({8, 10})
    ->Args({8, 40})
    ->Args({8, 80});

}  // namespace
}  // namespace wcp::bench
