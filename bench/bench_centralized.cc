// E9 — §1/§3.4/§6: the centralized Garg-Waldecker checker does the same
// O(n^2 m) total work as the token algorithm, but ALL of it in one process;
// the token algorithm's contribution is the distribution: max work per
// process drops from O(n^2 m) to O(nm) "without increasing the total number
// of messages, or increasing (except possibly by a constant factor) the
// total amount of work performed" (§6).
//
// Counters:
//   checker_work         all of it on one process
//   token_max_work       busiest monitor of the distributed algorithm
//   distribution_gain    checker_work / token_max_work — grows with n
//   work_ratio           token_total / checker_total — the §6 "constant"
#include "bench_common.h"
#include "detect/centralized.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void BM_Centralized_VsToken(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& comp = cached_worstcase(n, /*rounds=*/10, /*seed=*/41 + n);
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::DetectionResult checker, token;
  for (auto _ : state) {
    checker = detect::run_centralized(comp, default_opts());
    token = detect::run_token_vc(comp, default_opts());
    benchmark::DoNotOptimize(checker.detected);
  }

  const double cw = static_cast<double>(checker.monitor_metrics.total_work());
  const double tw = static_cast<double>(token.monitor_metrics.total_work());
  const double tmax =
      static_cast<double>(token.monitor_metrics.max_work_per_process());
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = m;
  state.counters["checker_work"] = cw;
  state.counters["token_total_work"] = tw;
  state.counters["token_max_work"] = tmax;
  state.counters["distribution_gain"] = tmax > 0 ? cw / tmax : 0;
  state.counters["work_ratio"] = cw > 0 ? tw / cw : 0;

  // ratio = token total / checker total: the §6 "constant factor".
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 41 + n;
  report_run(state, "E9_centralized", rp,
             {{"checker_work", cw},
              {"token_total_work", tw},
              {"token_max_work", tmax},
              {"distribution_gain", tmax > 0 ? cw / tmax : 0}},
             cw, cw > 0 ? std::optional<double>(tw / cw) : std::nullopt);
}
BENCHMARK(BM_Centralized_VsToken)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace wcp::bench
