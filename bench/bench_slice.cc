// E15 — computation slicing (Mittal & Garg): the slice restricts detection
// to the lattice of *satisfying* cuts, so on workloads where the
// Cooper-Marzullo baseline drowns in non-satisfying cuts (the E10 blowup
// shape) the sliced detectors stay polynomial.
//
// Workload: the E10 independent workload — n processes with no
// cross-causality and the predicate true only in the last states. The full
// lattice has states^n cuts; the slice has n(states-1)+... candidate
// states, period.
//
// Counters:
//   lattice_cuts          cuts the possibly() baseline explored
//   sliced_cuts           candidate states the sliced possibly() examined
//   possibly_prune        lattice_cuts / sliced_cuts
//   definitely_cuts       cuts the definitely() baseline explored
//   sliced_def_cuts       handoff probes of the sliced definitely()
//   definitely_prune      definitely_cuts / sliced_def_cuts
//   slice_groups/edges    size of the slice itself
//
// BM_Slice_Parallel sweeps the parallel Slice::build (one J column per
// slot, see slice/slice.h) over thread counts — the EXPERIMENTS.md E15
// speedup row; slice contents and counters stay identical.
#include "bench_common.h"
#include "detect/lattice.h"
#include "detect/lattice_online.h"
#include "detect/sliced.h"
#include "slice/slice.h"

namespace wcp::bench {
namespace {

Computation independent_workload(std::size_t n, std::int64_t states) {
  ComputationBuilder b(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::int64_t k = 1; k < states; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % n)));  // never delivered
  for (std::size_t p = 0; p < n; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  return b.build();
}

void BM_Slice_Blowup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::int64_t states = state.range(1);
  const auto comp = independent_workload(n, states);

  detect::LatticeResult lat, sliced;
  detect::DefinitelyResult defb, defs;
  slice::SliceBuildCounters ctr;
  slice::Slice sl;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/50'000'000);
    sliced = detect::detect_lattice_sliced(comp);
    defb = detect::detect_definitely(comp, /*max_cuts=*/50'000'000);
    defs = detect::detect_definitely_sliced(comp);
    ctr = {};
    sl = slice::Slice::build(comp, &ctr);
    benchmark::DoNotOptimize(sliced.detected);
  }
  const auto cc = sl.num_cuts();

  const double lc = static_cast<double>(lat.cuts_explored);
  const double sc = static_cast<double>(sliced.cuts_explored);
  const double dc = static_cast<double>(defb.cuts_explored);
  const double sdc = static_cast<double>(defs.cuts_explored);
  state.counters["n"] = static_cast<double>(n);
  state.counters["states_per_proc"] = static_cast<double>(states);
  state.counters["lattice_cuts"] = lc;
  state.counters["sliced_cuts"] = sc;
  state.counters["possibly_prune"] = lc / sc;
  state.counters["definitely_cuts"] = dc;
  state.counters["sliced_def_cuts"] = sdc;
  state.counters["definitely_prune"] = dc / sdc;
  state.counters["slice_groups"] = static_cast<double>(sl.num_groups());
  state.counters["slice_edges"] = static_cast<double>(sl.num_edges());

  // bound = states^n, the lattice the baseline must explore; ratio is the
  // sliced cost against it — it should collapse toward 0 as n grows.
  // Saturating uint64 keeps the bound exact where std::pow misrounds.
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(n);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = states;
  const std::uint64_t bound =
      saturating_pow(static_cast<std::uint64_t>(states), n);
  report_run(state, "E15_slice_blowup", rp,
             {{"lattice_cuts", lat.cuts_explored},
              {"sliced_cuts", sliced.cuts_explored},
              {"possibly_prune", lc / sc},
              {"definitely_cuts", defb.cuts_explored},
              {"sliced_def_cuts", defs.cuts_explored},
              {"definitely_prune", dc / sdc},
              {"slice_groups", sl.num_groups()},
              {"slice_edges", sl.num_edges()},
              {"slice_cuts", cc.count}},
             static_cast<double>(bound), sc / static_cast<double>(bound));
}
BENCHMARK(BM_Slice_Blowup)
    ->Args({3, 10})
    ->Args({4, 10})
    ->Args({5, 10})
    ->Args({5, 20})
    ->Args({6, 10})
    ->Args({4, 40});

// Online slicer vs online lattice checker on general random workloads: both
// detect the same cut; the slicer's work is the n^2 m fixpoint instead of
// lattice exploration.
void BM_Slice_Online(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& comp = cached_random(N, n, /*events=*/30, /*seed=*/17,
                                   /*pred_prob=*/0.3);

  detect::SliceOnlineResult r;
  detect::LatticeOnlineResult base;
  for (auto _ : state) {
    r = detect::run_slice_online(comp, default_opts());
    base = detect::run_lattice_online(comp, default_opts(), 1'000'000);
    benchmark::DoNotOptimize(r.detected);
  }

  const double base_cuts = static_cast<double>(base.cuts_explored);
  state.counters["N"] = static_cast<double>(N);
  state.counters["n"] = static_cast<double>(n);
  state.counters["jil_advances"] = static_cast<double>(r.jil_advances);
  state.counters["lattice_cuts"] = base_cuts;
  state.counters["slice_cuts"] = static_cast<double>(r.slice_cuts);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = comp.max_messages_per_process();
  rp.seed = 17;
  auto metrics = detect::slice_report_metrics(r);
  metrics.emplace_back("lattice_cuts_explored", base.cuts_explored);
  metrics.emplace_back("lattice_max_frontier", base.max_frontier);
  metrics.emplace_back("monitor_work", r.monitor_metrics.total_work());
  report_run(state, "E15_slice_online", rp, metrics, std::nullopt,
             std::nullopt);
}
BENCHMARK(BM_Slice_Online)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({24, 12});

// Thread sweep of the parallel slice build on a wide random computation
// (many slots => many independent J columns). Identical slice for every
// thread count; the row's value is wall clock.
void BM_Slice_Parallel(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto& comp = cached_random(/*N=*/24, /*n=*/16, /*events=*/60,
                                   /*seed=*/9, /*pred_prob=*/0.6);

  slice::SliceBuildCounters ctr;
  slice::Slice sl;
  for (auto _ : state) {
    ctr = {};
    sl = slice::Slice::build(comp, &ctr, threads);
    benchmark::DoNotOptimize(sl.num_groups());
  }

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["slice_groups"] = static_cast<double>(sl.num_groups());
  state.counters["jil_advances"] = static_cast<double>(ctr.jil.advances);

  detect::ReportParams rp;
  rp.N = 24;
  rp.n = 16;
  rp.m = comp.max_messages_per_process();
  rp.seed = 9;
  report_run(state, "E15_slice_par_t" + std::to_string(threads), rp,
             {{"threads", static_cast<std::int64_t>(threads)},
              {"slice_groups", sl.num_groups()},
              {"slice_edges", sl.num_edges()},
              {"jil_advances", ctr.jil.advances},
              {"jil_clock_lookups", ctr.jil.clock_lookups}},
             std::nullopt, std::nullopt);
}
BENCHMARK(BM_Slice_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace wcp::bench
