// E3 — §3.4 claim: the distributed token algorithm needs only O(nm) buffer
// space on any single monitor, while the centralized checker concentrates
// O(n^2 m) at one process.
//
// Uses an undetectable workload (one predicate process never satisfies its
// predicate) so that queues reach their high-water marks. Counters:
//   monitor_peak_bytes   busiest token-algorithm monitor buffer
//   checker_peak_bytes   the checker's buffer
//   concentration        checker / monitor  — should grow ~linearly with n
//
// E17 (BM_CutStorage) measures the flat cut-storage layer itself: the
// arena+table peak bytes of a bounded lattice exploration against the
// analytic footprint of the per-cut heap representation it replaced.
//
// E18 (BM_TraceStore) does the same for the at-rest side: the columnar
// delta-encoded clock store vs the eager O(N * total_states) clock matrix.
#include "bench_common.h"
#include "detect/centralized.h"
#include "detect/lattice.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

Computation starvation_workload(std::size_t n, std::int64_t rounds) {
  // P0's predicate never holds; every other process is true in all states
  // and keeps messaging P0, so all their candidates stay buffered forever.
  ComputationBuilder b(n);
  for (std::size_t p = 1; p < n; ++p)
    b.set_default_pred(ProcessId(static_cast<int>(p)), true);
  for (std::int64_t round = 0; round < rounds; ++round)
    for (std::size_t p = 1; p < n; ++p)
      b.transfer(ProcessId(static_cast<int>(p)), ProcessId(0));
  return b.build();
}

void BM_Space_TokenVsChecker(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::int64_t rounds = state.range(1);
  const auto comp = starvation_workload(n, rounds);
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::DetectionResult token, checker;
  for (auto _ : state) {
    token = detect::run_token_vc(comp, default_opts());
    checker = detect::run_centralized(comp, default_opts());
    benchmark::DoNotOptimize(token.detected);
  }

  const double mon_peak =
      static_cast<double>(token.monitor_metrics.max_peak_buffered_bytes());
  const double chk_peak = static_cast<double>(
      checker.monitor_metrics.at(ProcessId(static_cast<int>(n)))
          .peak_buffered_bytes);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = m;
  state.counters["monitor_peak_bytes"] = mon_peak;
  state.counters["checker_peak_bytes"] = chk_peak;
  state.counters["concentration"] = chk_peak / mon_peak;
  state.counters["monitor_per_nm"] =
      mon_peak / (static_cast<double>(n) * m * 8.0);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  const double bound = static_cast<double>(n) * m * 8.0;  // §3.4: O(nm) words
  report_run(state, "E3_space", rp,
             {{"monitor_peak_bytes", mon_peak},
              {"checker_peak_bytes", chk_peak},
              {"concentration", chk_peak / mon_peak}},
             bound, mon_peak / bound);
}
BENCHMARK(BM_Space_TokenVsChecker)
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({12, 20})
    ->Args({16, 20})
    ->Args({8, 40})
    ->Args({8, 80});

// ---- E17: flat cut storage ------------------------------------------------

/// Analytic peak footprint of the representation common/cut_storage.h
/// replaced, from the same exploration's counters. Per distinct visited cut
/// the old serial BFS held: one unordered_set node (libstdc++ x86-64: next
/// pointer + cached hash + the 24 B std::vector object, rounded to the
/// 16 B malloc quantum after the 8 B header) plus one bucket pointer, plus
/// the vector's own heap buffer of n StateIndex (8 B) components; and at
/// the frontier high-water mark, a second full copy of each queued cut in
/// the BFS deque (24 B vector object by value + its heap buffer).
std::int64_t vector_baseline_bytes(std::int64_t cuts, std::int64_t frontier,
                                   std::size_t n) {
  const auto chunk16 = [](std::int64_t payload) {
    return (payload + 8 + 15) / 16 * 16;  // +8 B malloc header
  };
  const std::int64_t buffer = chunk16(static_cast<std::int64_t>(n) * 8);
  const std::int64_t node = chunk16(8 + 8 + 24) + 8;  // node + bucket ptr
  return cuts * (node + buffer) + frontier * (24 + buffer);
}

/// E17 — peak cut-storage bytes of a capped serial lattice exploration:
/// measured arena+table high-water mark vs the analytic bytes the same
/// exploration would have pinned in the old per-cut heap representation.
/// The predicate never holds (prob 0), so the search always runs the full
/// cap and the numbers are shape-deterministic.
void BM_CutStorage(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  const std::size_t n = N / 2;  // predicate width scales with the system
  const auto& comp =
      cached_random(N, n, /*events=*/12, /*seed=*/7, /*pred_prob=*/0.0,
                    /*ensure_detectable=*/false);

  detect::LatticeResult lat;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/200'000);
    benchmark::DoNotOptimize(lat.cuts_explored);
  }

  const std::int64_t arena_peak = lat.storage.peak_bytes;
  const std::int64_t baseline =
      vector_baseline_bytes(lat.storage.cuts_interned, lat.max_frontier, n);
  const double reduction =
      static_cast<double>(baseline) / static_cast<double>(arena_peak);
  state.counters["N"] = static_cast<double>(N);
  state.counters["peak_arena_bytes"] = static_cast<double>(arena_peak);
  state.counters["vector_baseline_bytes"] = static_cast<double>(baseline);
  state.counters["reduction"] = reduction;

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = 12;
  rp.seed = 7;
  report_run(state, "E17_cut_storage", rp,
             {{"cuts_explored", lat.cuts_explored},
              {"max_frontier", lat.max_frontier},
              {"peak_arena_bytes", arena_peak},
              {"vector_baseline_bytes", baseline},
              {"cuts_interned", lat.storage.cuts_interned},
              {"table_probes", lat.storage.table_probes},
              {"hot_allocs", lat.storage.heap_allocs},
              {"reduction", reduction}},
             static_cast<double>(baseline), reduction);
}
BENCHMARK(BM_CutStorage)->Arg(8)->Arg(16)->Arg(24);

// ---- E18: columnar trace store --------------------------------------------

/// Analytic footprint of the eager ground-truth clock matrix the columnar
/// TraceStore replaced: one N-wide VectorClock per local state, held in
/// per-process vectors — a 24 B std::vector object per clock plus its heap
/// buffer of N StateIndex (8 B) components rounded to the 16 B malloc
/// quantum after the 8 B header.
std::int64_t clock_matrix_baseline_bytes(std::int64_t total_states,
                                         std::size_t N) {
  const std::int64_t buffer =
      (static_cast<std::int64_t>(N) * 8 + 8 + 15) / 16 * 16;
  return total_states * (24 + buffer);
}

/// E18 — peak resident bytes of the delta-encoded clock store (build
/// scratch included) against the analytic full-matrix baseline, over the
/// same capped exploration as E17. Clock components only change on
/// receives, so the delta columns shrink with N while the matrix grows
/// quadratically in it.
void BM_TraceStore(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  const std::size_t n = N / 2;
  const auto& comp =
      cached_random(N, n, /*events=*/12, /*seed=*/7, /*pred_prob=*/0.0,
                    /*ensure_detectable=*/false);

  detect::LatticeResult lat;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/200'000);
    benchmark::DoNotOptimize(lat.cuts_explored);
  }

  const std::int64_t store_peak = lat.trace_store.peak_bytes;
  const std::int64_t baseline =
      clock_matrix_baseline_bytes(lat.trace_store.clocks_interned, N);
  const double reduction =
      static_cast<double>(baseline) / static_cast<double>(store_peak);
  state.counters["N"] = static_cast<double>(N);
  state.counters["store_peak_bytes"] = static_cast<double>(store_peak);
  state.counters["matrix_baseline_bytes"] = static_cast<double>(baseline);
  state.counters["reduction"] = reduction;
  state.counters["delta_ratio"] = lat.trace_store.delta_ratio;

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = 12;
  rp.seed = 7;
  report_run(state, "E18_trace_store", rp,
             {{"clocks_interned", lat.trace_store.clocks_interned},
              {"delta_entries", lat.trace_store.delta_entries},
              {"delta_ratio", lat.trace_store.delta_ratio},
              {"store_peak_bytes", store_peak},
              {"matrix_baseline_bytes", baseline},
              {"reduction", reduction}},
             static_cast<double>(baseline), reduction);
}
BENCHMARK(BM_TraceStore)->Arg(8)->Arg(16)->Arg(24);

}  // namespace
}  // namespace wcp::bench
