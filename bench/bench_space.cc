// E3 — §3.4 claim: the distributed token algorithm needs only O(nm) buffer
// space on any single monitor, while the centralized checker concentrates
// O(n^2 m) at one process.
//
// Uses an undetectable workload (one predicate process never satisfies its
// predicate) so that queues reach their high-water marks. Counters:
//   monitor_peak_bytes   busiest token-algorithm monitor buffer
//   checker_peak_bytes   the checker's buffer
//   concentration        checker / monitor  — should grow ~linearly with n
#include "bench_common.h"
#include "detect/centralized.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

Computation starvation_workload(std::size_t n, std::int64_t rounds) {
  // P0's predicate never holds; every other process is true in all states
  // and keeps messaging P0, so all their candidates stay buffered forever.
  ComputationBuilder b(n);
  for (std::size_t p = 1; p < n; ++p)
    b.set_default_pred(ProcessId(static_cast<int>(p)), true);
  for (std::int64_t round = 0; round < rounds; ++round)
    for (std::size_t p = 1; p < n; ++p)
      b.transfer(ProcessId(static_cast<int>(p)), ProcessId(0));
  return b.build();
}

void BM_Space_TokenVsChecker(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::int64_t rounds = state.range(1);
  const auto comp = starvation_workload(n, rounds);
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::DetectionResult token, checker;
  for (auto _ : state) {
    token = detect::run_token_vc(comp, default_opts());
    checker = detect::run_centralized(comp, default_opts());
    benchmark::DoNotOptimize(token.detected);
  }

  const double mon_peak =
      static_cast<double>(token.monitor_metrics.max_peak_buffered_bytes());
  const double chk_peak = static_cast<double>(
      checker.monitor_metrics.at(ProcessId(static_cast<int>(n)))
          .peak_buffered_bytes);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = m;
  state.counters["monitor_peak_bytes"] = mon_peak;
  state.counters["checker_peak_bytes"] = chk_peak;
  state.counters["concentration"] = chk_peak / mon_peak;
  state.counters["monitor_per_nm"] =
      mon_peak / (static_cast<double>(n) * m * 8.0);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  const double bound = static_cast<double>(n) * m * 8.0;  // §3.4: O(nm) words
  report_run(state, "E3_space", rp,
             {{"monitor_peak_bytes", mon_peak},
              {"checker_peak_bytes", chk_peak},
              {"concentration", chk_peak / mon_peak}},
             bound, mon_peak / bound);
}
BENCHMARK(BM_Space_TokenVsChecker)
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({12, 20})
    ->Args({16, 20})
    ->Args({8, 40})
    ->Args({8, 80});

}  // namespace
}  // namespace wcp::bench
