// E1 — §3.4 claim: the single-token vector-clock algorithm performs
// O(n^2 m) total work, with at most O(nm) work on any single monitor.
//
// Sweeps n (at fixed m) and m (at fixed n) over random detectable
// computations. Counters:
//   total_work        measured comparison/elimination units, all monitors
//   max_work_proc     the busiest monitor's share
//   work_per_n2m      total_work / (n^2 m)   — should stay ~flat in n and m
//   maxwork_per_nm    max_work_proc / (n m)  — should stay ~flat
#include <algorithm>

#include "bench_common.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void run_case(benchmark::State& state, std::size_t n, std::int64_t rounds) {
  // Worst case: serialized mutex, violation only in the final round, so the
  // token must eliminate every earlier candidate.
  const auto& comp = cached_worstcase(n, rounds, /*seed=*/91 + n);
  // m over the *predicate* processes (clients do 3 events per round).
  double m = 0;
  for (ProcessId p : comp.predicate_processes())
    m = std::max(m, static_cast<double>(comp.events(p).size()));
  const double nd = static_cast<double>(n);

  detect::DetectionResult last;
  for (auto _ : state) {
    last = detect::run_token_vc(comp, default_opts());
    benchmark::DoNotOptimize(last.detected);
  }

  const double total = static_cast<double>(last.monitor_metrics.total_work());
  const double mx =
      static_cast<double>(last.monitor_metrics.max_work_per_process());
  state.counters["n"] = nd;
  state.counters["m"] = m;
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["total_work"] = total;
  state.counters["max_work_proc"] = mx;
  state.counters["work_per_n2m"] = total / (nd * nd * m);
  state.counters["maxwork_per_nm"] = mx / (nd * m);
  state.counters["token_hops"] = static_cast<double>(last.token_hops);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 91 + n;
  const double bound = nd * nd * m;  // §3.4: O(n^2 m) total work
  report_run(state, "E1_token_vc", rp, last, bound, total / bound);
}

void BM_TokenVc_SweepN(benchmark::State& state) {
  run_case(state, static_cast<std::size_t>(state.range(0)), /*rounds=*/10);
}
BENCHMARK(BM_TokenVc_SweepN)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_TokenVc_SweepM(benchmark::State& state) {
  run_case(state, /*n=*/6, /*rounds=*/state.range(0));
}
BENCHMARK(BM_TokenVc_SweepM)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace wcp::bench
