// E14 — large-scale work measurement using the offline executions (no
// simulator overhead), far beyond what packet-level simulation reaches in
// bench time: N up to 256 processes, thousands of states per process.
// Confirms the E1/E4 normalized-cost flatness at scale and reports raw
// wall-clock for the two algorithms on identical runs.
#include "bench_common.h"
#include "detect/offline.h"

namespace wcp::bench {
namespace {

void BM_Offline_TokenVc_Scale(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::int64_t rounds = state.range(1);
  const auto& comp = cached_worstcase(n, rounds, /*seed=*/3);
  double m = 0;
  for (ProcessId p : comp.predicate_processes())
    m = std::max(m, static_cast<double>(comp.events(p).size()));

  detect::DetectionResult r;
  for (auto _ : state) {
    r = detect::detect_token_vc_offline(comp);
    benchmark::DoNotOptimize(r.detected);
  }
  const double nd = static_cast<double>(n);
  state.counters["n"] = nd;
  state.counters["m"] = m;
  state.counters["total_work"] =
      static_cast<double>(r.monitor_metrics.total_work());
  state.counters["work_per_n2m"] =
      static_cast<double>(r.monitor_metrics.total_work()) / (nd * nd * m);
  state.counters["maxwork_per_nm"] =
      static_cast<double>(r.monitor_metrics.max_work_per_process()) /
      (nd * m);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 3;
  const double bound = nd * nd * m;
  report_run(state, "E14_offline_token_vc", rp, r, bound,
             static_cast<double>(r.monitor_metrics.total_work()) / bound);
}
BENCHMARK(BM_Offline_TokenVc_Scale)
    ->Args({16, 40})
    ->Args({32, 40})
    ->Args({64, 40})
    ->Args({128, 20})
    ->Args({16, 320})
    ->Args({32, 160});

void BM_Offline_DirectDep_Scale(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const std::int64_t rounds = state.range(1);
  const auto& comp = cached_worstcase(clients, rounds, /*seed=*/3);
  const double m = static_cast<double>(comp.max_messages_per_process());
  const double Nd = static_cast<double>(comp.num_processes());

  detect::DetectionResult r;
  for (auto _ : state) {
    r = detect::detect_direct_dep_offline(comp);
    benchmark::DoNotOptimize(r.detected);
  }
  state.counters["N"] = Nd;
  state.counters["m"] = m;
  state.counters["total_work"] =
      static_cast<double>(r.monitor_metrics.total_work());
  state.counters["work_per_Nm"] =
      static_cast<double>(r.monitor_metrics.total_work()) / (Nd * m);
  state.counters["maxwork_per_m"] =
      static_cast<double>(r.monitor_metrics.max_work_per_process()) / m;

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(clients);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 3;
  const double bound = Nd * m;
  report_run(state, "E14_offline_direct_dep", rp, r, bound,
             static_cast<double>(r.monitor_metrics.total_work()) / bound);
}
BENCHMARK(BM_Offline_DirectDep_Scale)
    ->Args({16, 40})
    ->Args({64, 40})
    ->Args({255, 20})
    ->Args({16, 320});

}  // namespace
}  // namespace wcp::bench
