// E10 — §1: general-predicate detection à la Cooper-Marzullo must search
// the global-state lattice, which blows up combinatorially (the group-
// checker decentralization of [7] has the same exponential hazard); the
// WCP-specialized algorithms stay polynomial.
//
// Workload: n processes with NO cross-causality (all sends undelivered)
// and the predicate true only in the last states — the lattice has
// (m+1)^n cuts and BFS must visit all of them; the token algorithm walks
// straight to the final cut.
//
// Counters:
//   lattice_cuts        consistent cuts the baseline explored
//   token_work          the token algorithm's total work on the same run
//   blowup              lattice_cuts / token_work
#include <cmath>

#include "bench_common.h"
#include "detect/lattice.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

Computation independent_workload(std::size_t n, std::int64_t states) {
  ComputationBuilder b(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::int64_t k = 1; k < states; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % n)));  // never delivered
  for (std::size_t p = 0; p < n; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  return b.build();
}

void BM_Lattice_Blowup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::int64_t states = state.range(1);
  const auto comp = independent_workload(n, states);

  detect::LatticeResult lat;
  detect::DetectionResult token;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/50'000'000);
    token = detect::run_token_vc(comp, default_opts());
    benchmark::DoNotOptimize(lat.detected);
  }

  state.counters["n"] = static_cast<double>(n);
  state.counters["states_per_proc"] = static_cast<double>(states);
  state.counters["lattice_cuts"] = static_cast<double>(lat.cuts_explored);
  state.counters["lattice_frontier"] = static_cast<double>(lat.max_frontier);
  state.counters["token_work"] =
      static_cast<double>(token.monitor_metrics.total_work());
  state.counters["blowup"] =
      static_cast<double>(lat.cuts_explored) /
      static_cast<double>(token.monitor_metrics.total_work());

  // bound = states^n, the lattice size this workload forces the general
  // baseline to explore; ratio ~1 certifies the blowup is really realized.
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(n);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = states;
  const double bound =
      std::pow(static_cast<double>(states), static_cast<double>(n));
  report_run(state, "E10_lattice", rp,
             {{"lattice_cuts", static_cast<double>(lat.cuts_explored)},
              {"lattice_frontier", static_cast<double>(lat.max_frontier)},
              {"token_work",
               static_cast<double>(token.monitor_metrics.total_work())},
              {"blowup",
               static_cast<double>(lat.cuts_explored) /
                   static_cast<double>(token.monitor_metrics.total_work())}},
             bound, static_cast<double>(lat.cuts_explored) / bound);
}
BENCHMARK(BM_Lattice_Blowup)
    ->Args({2, 10})
    ->Args({3, 10})
    ->Args({4, 10})
    ->Args({5, 10})
    ->Args({6, 10})
    ->Args({4, 5})
    ->Args({4, 20})
    ->Args({4, 40});

}  // namespace
}  // namespace wcp::bench
