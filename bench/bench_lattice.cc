// E10 — §1: general-predicate detection à la Cooper-Marzullo must search
// the global-state lattice, which blows up combinatorially (the group-
// checker decentralization of [7] has the same exponential hazard); the
// WCP-specialized algorithms stay polynomial.
//
// Workload: n processes with NO cross-causality (all sends undelivered)
// and the predicate true only in the last states — the lattice has
// (m+1)^n cuts and BFS must visit all of them; the token algorithm walks
// straight to the final cut.
//
// Counters:
//   lattice_cuts        consistent cuts the baseline explored
//   token_work          the token algorithm's total work on the same run
//   blowup              lattice_cuts / token_work
//
// BM_Lattice_Parallel sweeps detect_lattice over thread counts on the
// N=6, m=10 blowup point (the EXPERIMENTS.md E10 speedup row); the
// parallel explorer returns bit-identical results, so only wall clock
// moves. BM_Lattice_Sweep drives the detect/batch.h sweep runner.
#include "bench_common.h"
#include "detect/batch.h"
#include "detect/lattice.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

Computation independent_workload(std::size_t n, std::int64_t states) {
  ComputationBuilder b(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::int64_t k = 1; k < states; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % n)));  // never delivered
  for (std::size_t p = 0; p < n; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  return b.build();
}

void BM_Lattice_Blowup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::int64_t states = state.range(1);
  const auto comp = independent_workload(n, states);

  detect::LatticeResult lat;
  detect::DetectionResult token;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/50'000'000);
    token = detect::run_token_vc(comp, default_opts());
    benchmark::DoNotOptimize(lat.detected);
  }

  state.counters["n"] = static_cast<double>(n);
  state.counters["states_per_proc"] = static_cast<double>(states);
  state.counters["lattice_cuts"] = static_cast<double>(lat.cuts_explored);
  state.counters["lattice_frontier"] = static_cast<double>(lat.max_frontier);
  state.counters["token_work"] =
      static_cast<double>(token.monitor_metrics.total_work());
  state.counters["blowup"] =
      static_cast<double>(lat.cuts_explored) /
      static_cast<double>(token.monitor_metrics.total_work());
  state.counters["peak_storage_bytes"] =
      static_cast<double>(lat.storage.peak_bytes);

  // bound = states^n, the lattice size this workload forces the general
  // baseline to explore; ratio ~1 certifies the blowup is really realized.
  // Exact saturating-uint64 arithmetic: std::pow went through double and
  // already misrounds for bounds past 2^53.
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(n);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = states;
  const std::uint64_t bound =
      saturating_pow(static_cast<std::uint64_t>(states), n);
  report_run(state, "E10_lattice", rp,
             {{"lattice_cuts", lat.cuts_explored},
              {"lattice_frontier", lat.max_frontier},
              {"token_work", token.monitor_metrics.total_work()},
              {"blowup",
               static_cast<double>(lat.cuts_explored) /
                   static_cast<double>(token.monitor_metrics.total_work())},
              {"peak_storage_bytes", lat.storage.peak_bytes},
              {"cuts_interned", lat.storage.cuts_interned},
              {"table_probes", lat.storage.table_probes},
              {"hot_allocs", lat.storage.heap_allocs}},
             static_cast<double>(bound),
             static_cast<double>(lat.cuts_explored) /
                 static_cast<double>(bound));
}
BENCHMARK(BM_Lattice_Blowup)
    ->Args({2, 10})
    ->Args({3, 10})
    ->Args({4, 10})
    ->Args({5, 10})
    ->Args({6, 10})
    ->Args({4, 5})
    ->Args({4, 20})
    ->Args({4, 40});

// Thread sweep on the biggest square blowup point (n=6, m=10: 10^6 cuts).
// The results are identical across thread counts — the row's value is the
// wall-clock column, the EXPERIMENTS.md E10 speedup-vs-threads row.
void BM_Lattice_Parallel(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 6;
  const std::int64_t states = 10;
  const auto comp = independent_workload(n, states);

  detect::LatticeResult lat;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/50'000'000, threads);
    benchmark::DoNotOptimize(lat.detected);
  }

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["lattice_cuts"] = static_cast<double>(lat.cuts_explored);
  state.counters["lattice_frontier"] = static_cast<double>(lat.max_frontier);
  state.counters["peak_storage_bytes"] =
      static_cast<double>(lat.storage.peak_bytes);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(n);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = states;
  // storage is the one result block that varies with the thread count (the
  // parallel explorer shards its arenas), so it stays out of the byte-diff
  // gate and goes into the per-thread-count rows here.
  report_run(state, "E10_lattice_par_t" + std::to_string(threads), rp,
             {{"threads", static_cast<std::int64_t>(threads)},
              {"lattice_cuts", lat.cuts_explored},
              {"lattice_frontier", lat.max_frontier},
              {"peak_storage_bytes", lat.storage.peak_bytes},
              {"cuts_interned", lat.storage.cuts_interned},
              {"table_probes", lat.storage.table_probes},
              {"hot_allocs", lat.storage.heap_allocs}},
             std::nullopt, std::nullopt);
}
BENCHMARK(BM_Lattice_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Batch sweep runner (detect/batch.h): the whole one-trace × many-(algo,
// seed) grid as one call, jobs fanned out across the pool.
void BM_Lattice_Sweep(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto& comp = cached_random(/*N=*/8, /*n=*/4, /*events=*/25,
                                   /*seed=*/11);
  const auto jobs = detect::cross_jobs({"lattice", "lattice-sliced", "token"},
                                       {1, 2, 3, 4});

  std::vector<detect::SweepRow> rows;
  for (auto _ : state) {
    rows = detect::run_sweep(comp, jobs, threads);
    benchmark::DoNotOptimize(rows.size());
  }

  std::int64_t cost = 0;
  for (const auto& row : rows) cost += row.cost;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["jobs"] = static_cast<double>(jobs.size());

  detect::ReportParams rp;
  rp.N = 8;
  rp.n = 4;
  rp.m = comp.max_messages_per_process();
  rp.seed = 11;
  report_run(state, "E10_sweep_t" + std::to_string(threads), rp,
             {{"threads", static_cast<std::int64_t>(threads)},
              {"jobs", static_cast<std::int64_t>(jobs.size())},
              {"total_cost", cost}},
             std::nullopt, std::nullopt);
}
BENCHMARK(BM_Lattice_Sweep)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace wcp::bench
