// E6 — §3.5 claim: partitioning the monitors into g groups with one token
// each introduces concurrency: "a monitor process is active only if it has
// the token" is the single-token drawback this removes.
//
// Sweeps g at fixed (n, m). Virtual detection time (the simulator clock at
// detect) is the concurrency metric: more tokens => group work overlaps.
// Counters also report the coordination overhead (token hops include the
// leader round-trips).
#include "bench_common.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void BM_MultiToken_SweepGroups(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  const std::size_t n = 12;
  const auto& comp = cached_worstcase(n, /*rounds=*/12, /*seed=*/23);
  const double m = static_cast<double>(comp.max_messages_per_process());

  // Make token travel the dominant cost (fast application interconnect,
  // slow detection overlay): this is the regime where the g tokens'
  // concurrent group walks pay off.
  detect::RunOptions opts = default_opts();
  opts.latency = sim::LatencyModel::fixed_delay(1);
  opts.monitor_latency = sim::LatencyModel::fixed_delay(50);
  opts.step_delay = 1;

  detect::DetectionResult last;
  for (auto _ : state) {
    if (g == 0) {
      last = detect::run_token_vc(comp, opts);
    } else {
      detect::MultiTokenOptions mt;
      mt.num_groups = g;
      last = detect::run_multi_token(comp, opts, mt);
    }
    benchmark::DoNotOptimize(last.detected);
  }

  state.counters["g"] = g == 0 ? 1 : static_cast<double>(g);
  state.counters["single_token"] = g == 0 ? 1 : 0;
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = m;
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["virtual_detect_time"] =
      static_cast<double>(last.detect_time);
  state.counters["token_hops"] = static_cast<double>(last.token_hops);
  state.counters["total_work"] =
      static_cast<double>(last.monitor_metrics.total_work());
  state.counters["max_work_proc"] =
      static_cast<double>(last.monitor_metrics.max_work_per_process());

  // One record per group count; g rides in the bench id so rows with equal
  // (n, m) stay distinct in the summary.
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 23;
  report_run(state,
             g == 0 ? std::string("E6_multi_token/single")
                    : "E6_multi_token/g=" + std::to_string(g),
             rp, last, std::nullopt, std::nullopt);
}
// g == 0 encodes the plain single-token algorithm as the baseline row.
BENCHMARK(BM_MultiToken_SweepGroups)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(6)
    ->Arg(12);

}  // namespace
}  // namespace wcp::bench
