// E8 — §5 / Theorem 5.1: against the adversary, ANY comparison-based
// online detection algorithm needs at least nm - n sequential deletions
// (hence Ω(nm) steps) before it can answer.
//
// Plays the adversary game with the natural greedy player over a grid of
// (n, m). Counters:
//   deletions        measured deletions until a queue emptied
//   bound            nm - n from the theorem
//   deletions_per_bound   >= 1.0 always (the theorem), ~1.0 here
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "detect/lower_bound.h"

namespace wcp::bench {
namespace {

void BM_LowerBound_AdversaryGame(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t m = state.range(1);

  detect::GameOutcome out;
  for (auto _ : state) {
    out = detect::play_greedy(n, m);
    benchmark::DoNotOptimize(out.steps);
  }

  state.counters["n"] = n;
  state.counters["m"] = static_cast<double>(m);
  state.counters["steps"] = static_cast<double>(out.steps);
  state.counters["deletions"] = static_cast<double>(out.deletions);
  state.counters["bound_nm_minus_n"] = static_cast<double>(out.bound);
  state.counters["deletions_per_bound"] =
      static_cast<double>(out.deletions) / static_cast<double>(out.bound);

  detect::ReportParams rp;
  rp.n = n;
  rp.m = m;
  report_run(state, "E8_lower_bound", rp,
             {{"steps", static_cast<double>(out.steps)},
              {"deletions", static_cast<double>(out.deletions)}},
             static_cast<double>(out.bound),  // Theorem 5.1: nm - n
             static_cast<double>(out.deletions) /
                 static_cast<double>(out.bound));
}
BENCHMARK(BM_LowerBound_AdversaryGame)
    ->Args({2, 100})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({16, 100})
    ->Args({8, 25})
    ->Args({8, 400})
    ->Args({8, 1600})
    ->Args({32, 1000});

}  // namespace
}  // namespace wcp::bench
