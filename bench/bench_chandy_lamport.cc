// E13 (extension) — stable-predicate baseline vs online detection.
// Chandy-Lamport snapshot rounds detect termination only at the first
// snapshot AFTER it became true; the online GCP checker pinpoints the exact
// cut. Sweeps the snapshot period: detection lag grows with the period
// while the online detector is period-free; message overhead of repeated
// rounds is ~N^2 markers per round.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "detect/chandy_lamport.h"
#include "detect/gcp_online.h"
#include "workload/termination_workload.h"

namespace wcp::bench {
namespace {

void BM_ClVsGcp_Termination(benchmark::State& state) {
  const std::size_t N = 6;
  const SimTime period = state.range(0);
  workload::TerminationSpec spec;
  spec.num_processes = N;
  spec.initial_work = 6;
  spec.spawn_prob = 0.45;
  spec.seed = 77;
  const auto t = workload::make_termination(spec);
  const auto channels = detect::ChannelPredicate::all_channels_empty(N);

  detect::RunOptions opts;
  opts.seed = 2;
  opts.latency = sim::LatencyModel::uniform(1, 4);

  detect::ClResult cl_result;
  detect::DetectionResult gcp_result;
  for (auto _ : state) {
    detect::ClOptions cl;
    cl.first_round_at = 2;
    cl.inter_round_delay = period;
    cl.max_rounds = 10'000;
    cl_result = detect::run_chandy_lamport(t.computation, opts, cl);
    gcp_result = detect::run_gcp_centralized(t.computation, channels, opts);
    benchmark::DoNotOptimize(cl_result.detected);
  }

  state.counters["period"] = static_cast<double>(period);
  state.counters["cl_detect_time"] =
      static_cast<double>(cl_result.detect_time);
  state.counters["gcp_detect_time"] =
      static_cast<double>(gcp_result.detect_time);
  state.counters["cl_rounds"] =
      static_cast<double>(cl_result.snapshots.size());
  state.counters["cl_control_msgs"] = static_cast<double>(
      cl_result.app_metrics.total_messages(MsgKind::kControl));
  state.counters["gcp_snapshots"] = static_cast<double>(
      gcp_result.app_metrics.total_messages(MsgKind::kSnapshot));
  state.counters["lag_cl_over_gcp"] =
      gcp_result.detect_time > 0
          ? static_cast<double>(cl_result.detect_time) /
                static_cast<double>(gcp_result.detect_time)
          : 0;

  // ratio = CL detection lag over the online GCP checker on the same run;
  // the snapshot period rides in the bench id (N is fixed).
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(N);
  rp.m = static_cast<std::int64_t>(period);
  rp.seed = 77;
  report_run(
      state, "E13_chandy_lamport/period=" + std::to_string(period), rp,
      {{"cl_detect_time", static_cast<double>(cl_result.detect_time)},
       {"gcp_detect_time", static_cast<double>(gcp_result.detect_time)},
       {"cl_rounds", static_cast<double>(cl_result.snapshots.size())},
       {"cl_control_msgs",
        static_cast<double>(
            cl_result.app_metrics.total_messages(MsgKind::kControl))}},
      static_cast<double>(gcp_result.detect_time),
      gcp_result.detect_time > 0
          ? std::optional<double>(static_cast<double>(cl_result.detect_time) /
                                  static_cast<double>(gcp_result.detect_time))
          : std::nullopt);
}
BENCHMARK(BM_ClVsGcp_Termination)->Arg(5)->Arg(20)->Arg(80)->Arg(320);

}  // namespace
}  // namespace wcp::bench
