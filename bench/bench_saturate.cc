// E21 — many-client saturation of the epoll streaming daemon.
//
// Opens C concurrent TCP connections (all established before any stream
// starts) against an in-process EventLoopServer and replays one recorded
// computation per client through the full wire path, pumped by a small
// fixed pool of client threads — the server side multiplexes everything
// on its epoll loops, so C is bounded by fds, not thread stacks. Claims:
//
//   - Zero dropped or garbled frames at saturation: every client's
//     verdicts are identical to the offline oracle for its trace
//     (`verdict_mismatches` — CI gates this at 0) and every stream
//     completes (`incomplete` = 0).
//   - Tail latency stays bounded: per-client time from first frame sent
//     to STATS received, reported as p50/p99 (`p50_ms`, `p99_ms`).
//   - Aggregate throughput (`events_per_sec`, snapshots applied across
//     all clients per second of wall clock) is the capacity headline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/event_loop.h"
#include "serve/replay.h"
#include "serve/tcp.h"

namespace wcp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct SaturateResult {
  std::vector<double> latencies_ms;  // per completed client
  std::int64_t snapshots = 0;
  std::int64_t verdict_mismatches = 0;
  std::int64_t incomplete = 0;
  double seconds = 0;
};

SaturateResult run_saturation(const Computation& comp,
                              const serve::ReplayOptions& opts,
                              std::size_t num_clients,
                              std::size_t pump_threads) {
  serve::TcpListener listener(0);
  serve::EventLoopServer server(listener, serve::EventLoopOptions{}, {});
  std::thread server_thread(
      [&] { server.run(static_cast<std::int64_t>(num_clients)); });

  // Establish every connection up front: the daemon holds num_clients
  // concurrently-open sessions before the first snapshot flows.
  struct ClientState {
    std::unique_ptr<serve::TcpTransport> transport;
    std::unique_ptr<serve::StreamClient> client;
    Clock::time_point start;
    double latency_ms = 0;
    bool finished = false;
  };
  std::vector<ClientState> clients(num_clients);
  for (ClientState& c : clients) {
    c.transport = serve::tcp_connect("127.0.0.1", listener.port());
    c.client = std::make_unique<serve::StreamClient>(*c.transport,
                                                     opts.client);
  }

  // Pump all streams concurrently from a small shard-per-thread pool;
  // TCP is reliable, so a quiet round just waits for the server.
  const auto t0 = Clock::now();
  std::vector<std::thread> pumps;
  const std::size_t shard =
      (num_clients + pump_threads - 1) / pump_threads;
  for (std::size_t p = 0; p < pump_threads; ++p) {
    const std::size_t lo = p * shard;
    const std::size_t hi = std::min(num_clients, lo + shard);
    if (lo >= hi) break;
    pumps.emplace_back([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        clients[i].start = Clock::now();
        serve::enqueue_replay(*clients[i].client, comp, opts);
      }
      std::size_t open = hi - lo;
      while (open > 0) {
        bool progressed = false;
        for (std::size_t i = lo; i < hi; ++i) {
          ClientState& c = clients[i];
          if (c.finished) continue;
          try {
            progressed |= c.client->pump(/*block=*/false);
            if (c.client->done()) {
              c.latency_ms = std::chrono::duration<double, std::milli>(
                                 Clock::now() - c.start)
                                 .count();
              c.finished = true;
              --open;
            } else if (c.transport->closed()) {
              c.finished = true;  // incomplete; counted below
              --open;
            }
          } catch (const std::exception&) {
            c.finished = true;  // garbled stream; counted below
            --open;
          }
        }
        if (!progressed)
          std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  for (std::thread& t : pumps) t.join();
  server_thread.join();

  SaturateResult out;
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::optional<std::vector<StateIndex>> oracle = comp.first_wcp_cut();
  for (ClientState& c : clients) {
    if (!c.client->done()) {
      ++out.incomplete;
      continue;
    }
    out.latencies_ms.push_back(c.latency_ms);
    out.snapshots += c.client->server_stats().snapshots_in;
    // Byte-identical to offline: same number of verdicts, same detection
    // bit, same minimal cut on every subscription.
    if (c.client->verdicts().size() != opts.subs.size()) {
      ++out.verdict_mismatches;
      continue;
    }
    for (const serve::VerdictBody& v : c.client->verdicts()) {
      if (v.truncated || v.detected != oracle.has_value() ||
          (v.detected && v.cut != *oracle))
        ++out.verdict_mismatches;
    }
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

void BM_Serve_Saturate(benchmark::State& state) {
  const auto num_clients = static_cast<std::size_t>(state.range(0));
  const std::size_t N = 6, n = 3;
  const std::int64_t events = 12;
  const std::uint64_t seed = 21;
  const auto& comp = cached_random(N, n, events, seed,
                                   /*pred_prob=*/0.25,
                                   /*ensure_detectable=*/true);

  serve::ReplayOptions opts;
  opts.serve.gc_every = 16;
  for (const serve::StreamAlgo algo :
       {serve::StreamAlgo::kToken, serve::StreamAlgo::kChecker,
        serve::StreamAlgo::kSlicer})
    opts.subs.push_back({algo, 0, -1});

  SaturateResult r;
  for (auto _ : state) {
    r = run_saturation(comp, opts, num_clients, /*pump_threads=*/4);
    benchmark::DoNotOptimize(r.snapshots);
  }

  const double events_per_sec =
      r.seconds > 0 ? static_cast<double>(r.snapshots) / r.seconds : 0;
  const double p50 = percentile(r.latencies_ms, 0.50);
  const double p99 = percentile(r.latencies_ms, 0.99);

  state.counters["clients"] = static_cast<double>(num_clients);
  state.counters["events_per_sec"] = events_per_sec;
  state.counters["p50_ms"] = p50;
  state.counters["p99_ms"] = p99;
  state.counters["verdict_mismatches"] =
      static_cast<double>(r.verdict_mismatches);
  state.counters["incomplete"] = static_cast<double>(r.incomplete);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = comp.max_messages_per_process();
  rp.seed = seed;
  // Distinct bench name per client count: summary records are keyed on
  // (bench, N, n, m, seed), which the sweep parameter is not part of.
  std::ostringstream bench_name;
  bench_name << "E21_saturate_c" << num_clients;
  report_run(state, bench_name.str(), rp,
             {{"clients", static_cast<std::int64_t>(num_clients)},
              {"snapshots", r.snapshots},
              {"events_per_sec", events_per_sec},
              {"p50_ms", p50},
              {"p99_ms", p99},
              {"wall_seconds", r.seconds},
              {"verdict_mismatches", r.verdict_mismatches},
              {"incomplete", r.incomplete}},
             std::nullopt, std::nullopt);
}
BENCHMARK(BM_Serve_Saturate)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcp::bench
