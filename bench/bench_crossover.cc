// E5 — the paper's central comparison (§1, §4, §6): the vector-clock token
// algorithm costs ~n^2 m while the direct-dependence algorithm costs ~N m.
// "The relative values of n and N determine which algorithm is more
// efficient": direct-dependence wins when n^2 >> N, token-VC wins when the
// predicate touches only a few of many processes (n^2 << N).
//
// Sweeps n at fixed N over the same computations and reports both
// algorithms' measured work and monitor traffic; the `token_over_dd` ratio
// crosses 1 near n ~ sqrt(N).
#include "bench_common.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/sliced.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void BM_Crossover_SweepPredicateWidth(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& comp = cached_random(N, n, /*events=*/30, /*seed=*/17,
                                   /*pred_prob=*/0.3);
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::DetectionResult token, dd;
  for (auto _ : state) {
    token = detect::run_token_vc(comp, default_opts());
    dd = detect::run_direct_dep(comp, default_opts());
    benchmark::DoNotOptimize(token.detected);
  }

  const double tw = static_cast<double>(token.monitor_metrics.total_work());
  const double dw = static_cast<double>(dd.monitor_metrics.total_work());
  const double tbits =
      static_cast<double>(token.monitor_metrics.total_bits() +
                          token.app_metrics.total_bits(MsgKind::kSnapshot));
  const double dbits =
      static_cast<double>(dd.monitor_metrics.total_bits() +
                          dd.app_metrics.total_bits(MsgKind::kSnapshot));
  state.counters["N"] = static_cast<double>(N);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = m;
  state.counters["n2_over_N"] =
      static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(N);
  state.counters["token_work"] = tw;
  state.counters["dd_work"] = dw;
  state.counters["token_over_dd_work"] = tw / dw;
  state.counters["token_over_dd_bits"] = tbits / dbits;

  // ratio = token work / dd work: crosses 1 near n ~ sqrt(N) (§1, §6).
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 17;
  report_run(state, "E5_crossover", rp,
             {{"token_work", tw},
              {"dd_work", dw},
              {"token_bits", tbits},
              {"dd_bits", dbits},
              {"n2_over_N", static_cast<double>(n) * static_cast<double>(n) /
                                static_cast<double>(N)}},
             dw, tw / dw);
}
BENCHMARK(BM_Crossover_SweepPredicateWidth)
    ->Args({24, 2})
    ->Args({24, 3})
    ->Args({24, 5})
    ->Args({24, 8})
    ->Args({24, 12})
    ->Args({24, 18})
    ->Args({24, 24})
    ->Args({48, 3})
    ->Args({48, 7})
    ->Args({48, 14})
    ->Args({48, 28})
    ->Args({48, 48});

// Same sweep, offline: the Cooper-Marzullo lattice baseline against the
// slice-pruned detector. The lattice cost grows with the number of
// consistent cuts below the minimal satisfying cut (worst case m^n); the
// sliced cost stays O(n^2 m) regardless of n, so the prune factor widens as
// the predicate touches more processes.
void BM_Crossover_SlicedVsLattice(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto& comp = cached_random(N, n, /*events=*/30, /*seed=*/17,
                                   /*pred_prob=*/0.3);
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::LatticeResult lat, sliced;
  for (auto _ : state) {
    lat = detect::detect_lattice(comp, /*max_cuts=*/10'000'000);
    sliced = detect::detect_lattice_sliced(comp);
    benchmark::DoNotOptimize(sliced.detected);
  }

  const double lc = static_cast<double>(lat.cuts_explored);
  const double sc = static_cast<double>(sliced.cuts_explored);
  state.counters["N"] = static_cast<double>(N);
  state.counters["n"] = static_cast<double>(n);
  state.counters["lattice_cuts"] = lc;
  state.counters["sliced_cuts"] = sc;
  state.counters["prune"] = lc / sc;

  // bound = n^2 m, the sliced detector's work budget; ratio certifies it.
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 17;
  const double bound = static_cast<double>(n) * static_cast<double>(n) * m;
  report_run(state, "E5_sliced_crossover", rp,
             {{"lattice_cuts", lc},
              {"sliced_cuts", sc},
              {"prune", lc / sc},
              {"lattice_frontier", static_cast<double>(lat.max_frontier)}},
             bound, sc / bound);
}
BENCHMARK(BM_Crossover_SlicedVsLattice)
    ->Args({24, 3})
    ->Args({24, 8})
    ->Args({24, 16})
    ->Args({48, 7})
    ->Args({48, 24});

}  // namespace
}  // namespace wcp::bench
