// E20 — multicore scaling of the barrier-free lattice engine
// (ALGORITHMS.md §15).
//
// Workload: the E10 blowup point (n = 6 independent processes, m = 10, so
// the full 10^6-cut lattice is explored) — the largest committed
// exploration, and one whose level structure starts and ends narrow, which
// is exactly the shape the old level-synchronous barrier serialized on and
// the work-stealing frontier does not.
//
// Counters per thread count K:
//   wall_ms   best-of-iterations wall clock of detect_lattice at K threads
//   speedup   wall_ms(1) / wall_ms(K)
//   cores     std::thread::hardware_concurrency() on this runner
//
// Acceptance gate (ISSUE 8): speedup at 4 threads must reach 1.8x on a
// multicore runner. The gate is core-count aware — on a 1-core runner the
// engine cannot scale and the gate is skipped with a logged notice; on 2-3
// cores 4 lanes oversubscribe, so only a reduced 1.15x bar applies; the
// full 1.8x bar applies from 4 cores up. The CI bench-smoke job re-checks
// the recorded E20 rows with the same core-aware rule.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "bench_common.h"
#include "detect/lattice.h"

namespace wcp::bench {
namespace {

Computation independent_workload(std::size_t n, std::int64_t states) {
  ComputationBuilder b(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::int64_t k = 1; k < states; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % n)));  // never delivered
  for (std::size_t p = 0; p < n; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  return b.build();
}

std::map<std::size_t, double>& wall_ms_by_threads() {
  static std::map<std::size_t, double> m;
  return m;
}

void BM_MC_Scaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kN = 6;
  constexpr std::int64_t kStates = 10;
  const auto comp = independent_workload(kN, kStates);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  detect::LatticeResult lat;
  double best_ms = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    lat = detect::detect_lattice(comp, /*max_cuts=*/50'000'000, threads);
    const auto t1 = std::chrono::steady_clock::now();
    best_ms = std::min(
        best_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
    benchmark::DoNotOptimize(lat.detected);
  }
  wall_ms_by_threads()[threads] = best_ms;

  double speedup = 0.0;
  if (const auto it = wall_ms_by_threads().find(1);
      it != wall_ms_by_threads().end() && best_ms > 0.0)
    speedup = it->second / best_ms;

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cores"] = static_cast<double>(cores);
  state.counters["wall_ms"] = best_ms;
  state.counters["speedup"] = speedup;
  state.counters["lattice_cuts"] = static_cast<double>(lat.cuts_explored);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(kN);
  rp.n = static_cast<std::int64_t>(kN);
  rp.m = kStates;
  report_run(state, "E20_mc_t" + std::to_string(threads), rp,
             {{"threads", static_cast<std::int64_t>(threads)},
              {"cores", static_cast<std::int64_t>(cores)},
              {"wall_ms", best_ms},
              {"speedup", speedup},
              {"lattice_cuts", lat.cuts_explored},
              {"max_frontier", lat.max_frontier}},
             std::nullopt, std::nullopt);

  // The gate rides on the 4-thread row. speedup == 0 means the 1-thread
  // row was filtered out of this invocation; nothing to compare then.
  if (threads == 4 && speedup > 0.0) {
    if (cores < 2) {
      std::fprintf(stderr,
                   "E20 NOTICE: single-core runner (cores=%u) — scaling gate "
                   "skipped; speedup at 4 threads measured %.2fx\n",
                   cores, speedup);
    } else {
      const double gate = cores >= 4 ? 1.8 : 1.15;
      if (speedup < gate) {
        std::fprintf(stderr,
                     "E20 FAIL: speedup at 4 threads is %.2fx on %u cores "
                     "(gate %.2fx)\n",
                     speedup, cores, gate);
        std::exit(1);
      }
      std::fprintf(stderr, "E20 OK: speedup at 4 threads %.2fx on %u cores "
                   "(gate %.2fx)\n", speedup, cores, gate);
    }
  }
}
BENCHMARK(BM_MC_Scaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace wcp::bench
