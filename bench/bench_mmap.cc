// E22 — zero-copy mapped trace loading. The wcp-tracebin loader can serve
// its columns straight out of an mmap of the file (docs/ALGORITHMS.md §13);
// with --trusted the O(file) replay verification is skipped too, so opening
// a trace costs one structural scan and O(N) owned metadata instead of a
// full buffered read plus a rebuild of every clock delta.
//
// This bench measures exactly that contract, per trace size:
//   mapped_open_ns   trusted mmap open (structural validation only)
//   heap_open_ns     the pre-mmap path: buffered stream read + replay check
//   open_speedup     heap / mapped — the E22 gate wants >= 5x at the
//                    largest size
//   resident_ratio   trusted resident bytes / file bytes — O(1) in the
//                    trace size, shrinking as files grow
//   verdict_equal    1 iff trusted, verified, and in-memory verdicts agree
#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "trace/trace_store.h"

namespace wcp::bench {
namespace {

/// Best-of-reps wall time: open latency is a lower-bound quantity, and the
/// minimum is the estimator least disturbed by scheduler noise on shared
/// CI runners.
template <class F>
double best_ns(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

void BM_MappedOpen(benchmark::State& state) {
  const std::int64_t events = state.range(0);
  constexpr std::size_t kN = 8;
  constexpr std::uint64_t kSeed = 22;
  const auto& comp = cached_random(kN, 4, events, kSeed, 0.25);
  const std::string path =
      "/tmp/wcp_bench_mmap_" + std::to_string(events) + ".tracebin";
  save_tracebin_file(path, comp);
  std::uint64_t file_bytes = 0;
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<std::uint64_t>(f.tellg());
  }

  TraceLoadOptions trusted;
  trusted.verify_replay = false;

  for (auto _ : state) {
    const auto c = load_tracebin_file(path, trusted);
    benchmark::DoNotOptimize(c.total_states());
  }

  const int reps = events >= 2048 ? 4 : 12;
  const double mapped_ns = best_ns(reps, [&] {
    const auto c = load_tracebin_file(path, trusted);
    benchmark::DoNotOptimize(c.total_states());
  });
  const double heap_ns = best_ns(reps, [&] {
    std::ifstream f(path, std::ios::binary);
    const auto c = load_tracebin(f);
    benchmark::DoNotOptimize(c.total_states());
  });

  const auto fast = load_tracebin_file(path, trusted);
  const auto verified = load_tracebin_file(path);
  const bool verdict_equal = fast.first_wcp_cut() == comp.first_wcp_cut() &&
                             verified.first_wcp_cut() == comp.first_wcp_cut();
  const double resident =
      static_cast<double>(fast.trace_store_stats().peak_bytes);
  const double speedup = heap_ns / mapped_ns;

  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.counters["mapped_open_ns"] = mapped_ns;
  state.counters["heap_open_ns"] = heap_ns;
  state.counters["open_speedup"] = speedup;
  state.counters["resident_bytes"] = resident;
  state.counters["resident_ratio"] = resident / static_cast<double>(file_bytes);
  state.counters["verdict_equal"] = verdict_equal ? 1.0 : 0.0;

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(kN);
  rp.n = 4;
  rp.m = static_cast<std::int64_t>(comp.max_messages_per_process());
  rp.seed = kSeed;
  report_run(state, "E22_mmap", rp,
             {{"events_per_process", events},
              {"file_bytes", file_bytes},
              {"mapped_open_ns", mapped_ns},
              {"heap_open_ns", heap_ns},
              {"open_speedup", speedup},
              {"resident_bytes", resident},
              {"resident_ratio", resident / static_cast<double>(file_bytes)},
              {"mapped", fast.trace_store().mapped() ? 1 : 0},
              {"verdict_equal", verdict_equal ? 1 : 0}},
             /*bound=*/5.0, /*ratio=*/speedup);
  std::remove(path.c_str());
}
BENCHMARK(BM_MappedOpen)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wcp::bench
