// E7 — §4.5 claim: letting red processes search for candidates and poll
// dependences *before* the token arrives improves the average case: when
// the token shows up, the work is already done and it moves on immediately.
//
// Compares serial vs parallel direct-dependence on identical runs.
// Counters: virtual detection time (lower = more overlap), token holding
// time per hop, and the (unchanged) total message count.
#include "bench_common.h"
#include "detect/direct_dep.h"

namespace wcp::bench {
namespace {

void BM_DirectDep_SerialVsParallel(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  const auto& comp = cached_worstcase(clients, /*rounds=*/10,
                                      /*seed=*/3 + clients);
  const std::size_t N = comp.num_processes();
  const double m = static_cast<double>(comp.max_messages_per_process());

  detect::DetectionResult last;
  for (auto _ : state) {
    detect::DdRunOptions dd;
    dd.parallel = parallel;
    last = detect::run_direct_dep(comp, default_opts(), dd);
    benchmark::DoNotOptimize(last.detected);
  }

  state.counters["parallel"] = parallel ? 1 : 0;
  state.counters["N"] = static_cast<double>(N);
  state.counters["m"] = m;
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["virtual_detect_time"] =
      static_cast<double>(last.detect_time);
  state.counters["token_hops"] = static_cast<double>(last.token_hops);
  state.counters["time_per_hop"] =
      last.token_hops > 0 ? static_cast<double>(last.detect_time) /
                                static_cast<double>(last.token_hops)
                          : 0.0;
  state.counters["monitor_msgs"] =
      static_cast<double>(last.monitor_metrics.total_messages());

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(clients);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 3 + clients;
  report_run(state,
             parallel ? "E7_parallel_dd/parallel" : "E7_parallel_dd/serial",
             rp, last, std::nullopt, std::nullopt);
}
BENCHMARK(BM_DirectDep_SerialVsParallel)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 24})
    ->Args({1, 24});

}  // namespace
}  // namespace wcp::bench
