// E11 (ablation) — piggybacked-clock cost. The §3 algorithm attaches an
// n-component vector clock to every application message; the §4 algorithm
// attaches one integer. Differential (Singhal-Kshemkalyani) compression is
// the classic middle ground: only the components that changed since the
// previous message on that channel travel.
//
// Counters:
//   plain_app_bits     vector-clock piggyback, uncompressed
//   packed_app_bits    compressed piggyback
//   dd_app_bits        the direct-dependence scalar piggyback
//   compression_ratio  plain / packed — grows with n for sparse channels
#include "bench_common.h"
#include "detect/direct_dep.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

void BM_ClockCompression(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& comp = cached_random(n, n, /*events=*/30, /*seed=*/13 + n,
                                   /*pred_prob=*/0.25);

  detect::DetectionResult plain, packed, dd;
  for (auto _ : state) {
    auto o = default_opts();
    plain = detect::run_token_vc(comp, o);
    o.compress_clocks = true;
    packed = detect::run_token_vc(comp, o);
    dd = detect::run_direct_dep(comp, default_opts());
    benchmark::DoNotOptimize(plain.detected);
  }

  const double pb = static_cast<double>(
      plain.app_metrics.total_bits(MsgKind::kApplication));
  const double kb = static_cast<double>(
      packed.app_metrics.total_bits(MsgKind::kApplication));
  const double db = static_cast<double>(
      dd.app_metrics.total_bits(MsgKind::kApplication));
  state.counters["n"] = static_cast<double>(n);
  state.counters["plain_app_bits"] = pb;
  state.counters["packed_app_bits"] = kb;
  state.counters["dd_app_bits"] = db;
  state.counters["compression_ratio"] = pb / kb;

  // ratio = plain / compressed piggyback bits (grows with n).
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(comp.max_messages_per_process());
  rp.seed = 13 + n;
  report_run(state, "E11_compression", rp,
             {{"plain_app_bits", pb},
              {"packed_app_bits", kb},
              {"dd_app_bits", db}},
             pb, pb / kb);
}
BENCHMARK(BM_ClockCompression)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace wcp::bench
