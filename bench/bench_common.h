// Shared helpers for the experiment benches (E1-E10, see DESIGN.md §3).
//
// Every bench regenerates one of the paper's evaluation claims: it sweeps
// the relevant parameter, runs the detector(s) on the simulator, and
// reports measured costs as benchmark counters next to the paper's
// asymptotic bound, so the ratio column should stay roughly flat if the
// implementation matches the claimed complexity.
//
// Machine-readable output: every bench also registers one run-report record
// per (bench, params) row, and the registry writes a consolidated
// BENCH_summary.json at process exit (merging with the records of benches
// run earlier, so `for b in build/bench/bench_*; do $b; done` accumulates
// the whole suite in one file). Schema: see src/detect/report.h and
// EXPERIMENTS.md. The output path defaults to ./BENCH_summary.json and can
// be overridden with the WCP_BENCH_SUMMARY environment variable.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "detect/report.h"
#include "detect/result.h"
#include "trace/computation.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::bench {

/// Deterministic, cached random computation for a (N, n, m, seed) shape so
/// repeated benchmark iterations measure detection, not generation.
inline const Computation& cached_random(std::size_t N, std::size_t n,
                                        std::int64_t events,
                                        std::uint64_t seed,
                                        double pred_prob = 0.3,
                                        bool ensure_detectable = true) {
  static std::map<std::tuple<std::size_t, std::size_t, std::int64_t,
                             std::uint64_t, std::uint64_t, bool>,
                  Computation>
      cache;
  static std::mutex mu;
  // Key on the exact bit pattern of pred_prob: truncating to an int (the
  // previous scheme) collided for probabilities closer than the truncation
  // step and silently returned the wrong cached computation.
  const auto key = std::make_tuple(N, n, events, seed,
                                   std::bit_cast<std::uint64_t>(pred_prob),
                                   ensure_detectable);
  std::lock_guard lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::RandomSpec spec;
    spec.num_processes = N;
    spec.num_predicate = n;
    spec.events_per_process = events;
    spec.local_pred_prob = pred_prob;
    spec.ensure_detectable = ensure_detectable;
    spec.seed = seed;
    it = cache.emplace(key, workload::make_random(spec)).first;
  }
  return it->second;
}

/// Worst-case detection workload: serialized mutual exclusion with the
/// violation forced into the LAST round, so every earlier candidate state
/// must be examined and eliminated. n = clients, m ~ 3*rounds per client.
inline const Computation& cached_worstcase(std::size_t clients,
                                           std::int64_t rounds,
                                           std::uint64_t seed = 1) {
  static std::map<std::tuple<std::size_t, std::int64_t, std::uint64_t>,
                  Computation>
      cache;
  static std::mutex mu;
  const auto key = std::make_tuple(clients, rounds, seed);
  std::lock_guard lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::MutexSpec spec;
    spec.num_clients = clients;
    spec.rounds_per_client = rounds;
    spec.force_final_violation = true;
    spec.seed = seed;
    it = cache.emplace(key, workload::make_mutex(spec).computation).first;
  }
  return it->second;
}

inline detect::RunOptions default_opts(std::uint64_t seed = 1) {
  detect::RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 4);
  return o;
}

/// base^exp in saturating std::uint64_t arithmetic — exact where the old
/// std::pow-based bounds silently rounded (2^53 onward) and pinned to
/// uint64 max instead of overflowing past it.
inline std::uint64_t saturating_pow(std::uint64_t base, std::uint64_t exp) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t out = 1;
  for (; exp > 0; --exp) {
    if (base != 0 && out > kMax / base) return kMax;
    out *= base;
  }
  return out;
}

// ---- unified run reporter -------------------------------------------------

inline constexpr std::string_view kSummarySchema = "wcp-bench-summary/1";

/// Collects one compact run-report line per (bench, params) row and flushes
/// them into BENCH_summary.json at process exit, merging with whatever an
/// earlier bench binary already wrote there. Records with the same key are
/// replaced (benchmark repetitions overwrite, they do not duplicate).
class SummaryRegistry {
 public:
  static SummaryRegistry& instance() {
    static SummaryRegistry registry;
    return registry;
  }

  void add(const std::string& key, std::string record) {
    std::lock_guard lock(mu_);
    auto it = records_.find(key);
    if (it == records_.end()) {
      order_.push_back(key);
      records_.emplace(key, std::move(record));
    } else {
      it->second = std::move(record);
    }
  }

  ~SummaryRegistry() { flush(); }

  SummaryRegistry(const SummaryRegistry&) = delete;
  SummaryRegistry& operator=(const SummaryRegistry&) = delete;

 private:
  SummaryRegistry() = default;

  static std::string path() {
    const char* env = std::getenv("WCP_BENCH_SUMMARY");
    return env && *env ? env : "BENCH_summary.json";
  }

  static std::string key_of(const json::Value& run) {
    std::ostringstream oss;
    const json::Value* bench = run.find("bench");
    oss << (bench ? bench->string : "?");
    if (const json::Value* params = run.find("params");
        params && params->is_object()) {
      for (const char* k : {"N", "n", "m", "seed"}) {
        const json::Value* v = params->find(k);
        oss << '|' << (v ? v->integer : 0);
      }
    }
    return oss.str();
  }

  void flush() {
    std::lock_guard lock(mu_);
    if (records_.empty()) return;
    const std::string file = path();

    // Start from the records of previously-run bench binaries.
    std::vector<std::string> keys;
    std::map<std::string, std::string> lines;
    if (std::ifstream in(file); in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (const auto doc = json::parse(buf.str());
          doc && doc->is_object()) {
        if (const json::Value* runs = doc->find("runs");
            runs && runs->is_array()) {
          for (const json::Value& run : runs->array) {
            std::string k = key_of(run);
            if (lines.emplace(k, run.dump(/*indent=*/0)).second)
              keys.push_back(std::move(k));
          }
        }
      }
    }
    for (const std::string& k : order_) {
      if (lines.emplace(k, records_.at(k)).second)
        keys.push_back(k);
      else
        lines[k] = records_.at(k);
    }

    std::ofstream out(file, std::ios::trunc);
    if (!out) return;  // unwritable cwd: drop the summary, not the bench
    out << "{\n  \"schema\": \"" << kSummarySchema << "\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < keys.size(); ++i)
      out << "    " << lines.at(keys[i]) << (i + 1 < keys.size() ? ",\n" : "\n");
    out << "  ]\n}\n";
  }

  std::mutex mu_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> records_;
};

inline std::string record_key(std::string_view bench,
                              const detect::ReportParams& p) {
  std::ostringstream oss;
  oss << bench << '|' << p.N << '|' << p.n << '|' << p.m << '|' << p.seed;
  return oss.str();
}

/// Reports one simulator-hosted run: attaches the standard measured
/// counters (messages, bits, work, token hops, peak buffered bytes) to the
/// benchmark row and registers the run-report record for BENCH_summary.json.
inline void report_run(benchmark::State& state, std::string_view bench,
                       const detect::ReportParams& params,
                       const detect::DetectionResult& r,
                       std::optional<double> bound,
                       std::optional<double> ratio) {
  state.counters["msgs_total"] = static_cast<double>(
      r.app_metrics.total_messages() + r.monitor_metrics.total_messages());
  state.counters["bits_total"] = static_cast<double>(
      r.app_metrics.total_bits() + r.monitor_metrics.total_bits());
  state.counters["work_total"] = static_cast<double>(
      r.app_metrics.total_work() + r.monitor_metrics.total_work());
  state.counters["hops"] = static_cast<double>(r.token_hops);
  state.counters["peak_buf_bytes"] = static_cast<double>(
      std::max(r.app_metrics.max_peak_buffered_bytes(),
               r.monitor_metrics.max_peak_buffered_bytes()));
  if (bound) state.counters["bound"] = *bound;
  if (ratio) state.counters["ratio"] = *ratio;
  SummaryRegistry::instance().add(
      record_key(bench, params),
      detect::run_report_string(bench, params, r, bound, ratio,
                                /*include_wall_clock=*/true, /*indent=*/0));
}

/// Reports one run that has no DetectionResult (adversary game, lattice
/// baseline, A-vs-B comparisons): `metrics` is written verbatim. Counters
/// passed as integers stay integers in BENCH_summary.json (no `1e+05`).
inline void report_run(
    benchmark::State& state, std::string_view bench,
    const detect::ReportParams& params,
    const std::vector<std::pair<std::string, detect::MetricValue>>& metrics,
    std::optional<double> bound, std::optional<double> ratio) {
  if (bound) state.counters["bound"] = *bound;
  if (ratio) state.counters["ratio"] = *ratio;
  std::ostringstream oss;
  json::Writer w(oss, /*indent=*/0);
  detect::write_run_report(w, bench, params, metrics, bound, ratio);
  SummaryRegistry::instance().add(record_key(bench, params), oss.str());
}

}  // namespace wcp::bench
