// Shared helpers for the experiment benches (E1-E10, see DESIGN.md §3).
//
// Every bench regenerates one of the paper's evaluation claims: it sweeps
// the relevant parameter, runs the detector(s) on the simulator, and
// reports measured costs as benchmark counters next to the paper's
// asymptotic bound, so the ratio column should stay roughly flat if the
// implementation matches the claimed complexity.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <mutex>

#include "detect/result.h"
#include "trace/computation.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::bench {

/// Deterministic, cached random computation for a (N, n, m, seed) shape so
/// repeated benchmark iterations measure detection, not generation.
inline const Computation& cached_random(std::size_t N, std::size_t n,
                                        std::int64_t events,
                                        std::uint64_t seed,
                                        double pred_prob = 0.3,
                                        bool ensure_detectable = true) {
  static std::map<std::tuple<std::size_t, std::size_t, std::int64_t,
                             std::uint64_t, int, bool>,
                  Computation>
      cache;
  static std::mutex mu;
  const auto key = std::make_tuple(N, n, events, seed,
                                   static_cast<int>(pred_prob * 1000),
                                   ensure_detectable);
  std::lock_guard lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::RandomSpec spec;
    spec.num_processes = N;
    spec.num_predicate = n;
    spec.events_per_process = events;
    spec.local_pred_prob = pred_prob;
    spec.ensure_detectable = ensure_detectable;
    spec.seed = seed;
    it = cache.emplace(key, workload::make_random(spec)).first;
  }
  return it->second;
}

/// Worst-case detection workload: serialized mutual exclusion with the
/// violation forced into the LAST round, so every earlier candidate state
/// must be examined and eliminated. n = clients, m ~ 3*rounds per client.
inline const Computation& cached_worstcase(std::size_t clients,
                                           std::int64_t rounds,
                                           std::uint64_t seed = 1) {
  static std::map<std::tuple<std::size_t, std::int64_t, std::uint64_t>,
                  Computation>
      cache;
  static std::mutex mu;
  const auto key = std::make_tuple(clients, rounds, seed);
  std::lock_guard lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::MutexSpec spec;
    spec.num_clients = clients;
    spec.rounds_per_client = rounds;
    spec.force_final_violation = true;
    spec.seed = seed;
    it = cache.emplace(key, workload::make_mutex(spec).computation).first;
  }
  return it->second;
}

inline detect::RunOptions default_opts(std::uint64_t seed = 1) {
  detect::RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 4);
  return o;
}

}  // namespace wcp::bench
