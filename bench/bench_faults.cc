// E16 — cost of surviving a faulty network. The paper's complexity results
// (§3.2, §3.5) assume loss-free channels; this experiment prices that
// assumption: sweep the per-transmission drop rate for both token
// detectors, with the reliable transport restoring exactly-once FIFO
// delivery, and report the wire-message overhead relative to the
// fault-free run (retransmits + acks + duplicate copies). A companion
// sweep adds a mid-run token-holder crash to price token regeneration.
#include "bench_common.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"

namespace wcp::bench {
namespace {

// drop = range(0) / 100; range(1) selects the detector (0 = single token,
// g > 0 = multi-token with g groups).
void BM_Faults_DropSweep(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  const int g = static_cast<int>(state.range(1));
  const std::size_t n = 8;
  const auto& comp = cached_random(/*N=*/8, n, /*events=*/20, /*seed=*/51);

  detect::RunOptions opts = default_opts();
  opts.latency = sim::LatencyModel::uniform(1, 6);
  if (drop > 0) opts.faults = sim::FaultPlan::lossy_dup(drop, drop / 4, 71);

  detect::DetectionResult last;
  for (auto _ : state) {
    if (g == 0) {
      last = detect::run_token_vc(comp, opts);
    } else {
      detect::MultiTokenOptions mt;
      mt.num_groups = g;
      last = detect::run_multi_token(comp, opts, mt);
    }
    benchmark::DoNotOptimize(last.detected);
  }

  // Fault-free baseline of the same detector: the overhead denominator.
  detect::RunOptions clean = opts;
  clean.faults = {};
  detect::DetectionResult base;
  if (g == 0) {
    base = detect::run_token_vc(comp, clean);
  } else {
    detect::MultiTokenOptions mt;
    mt.num_groups = g;
    base = detect::run_multi_token(comp, clean, mt);
  }
  const double base_msgs = static_cast<double>(
      base.app_metrics.total_messages() + base.monitor_metrics.total_messages());
  const double faulty_msgs = static_cast<double>(
      last.app_metrics.total_messages() + last.monitor_metrics.total_messages());

  state.counters["drop"] = drop;
  state.counters["g"] = static_cast<double>(g);
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["drops_total"] = static_cast<double>(last.faults.total_drops());
  state.counters["retransmits"] = static_cast<double>(last.faults.retransmits);
  state.counters["acks"] = static_cast<double>(last.faults.acks);
  state.counters["dup_suppressed"] =
      static_cast<double>(last.faults.dup_suppressed);
  state.counters["msg_overhead"] =
      base_msgs > 0 ? faulty_msgs / base_msgs : 0.0;
  state.counters["virtual_detect_time"] =
      static_cast<double>(last.detect_time);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(comp.max_messages_per_process());
  rp.seed = 51;
  const std::string id =
      std::string("E16_faults/") + (g == 0 ? "token" : "multi") +
      "/drop=" + std::to_string(state.range(0));
  report_run(state, id, rp, last, std::nullopt, std::nullopt);
}
BENCHMARK(BM_Faults_DropSweep)
    ->ArgsProduct({{0, 5, 10, 20, 30}, {0, 2}});

// A lossy run (drop=0.2, dup=0.05) with one monitor crash/restart window:
// prices the heartbeat/lease machinery and token regeneration.
void BM_Faults_HolderCrash(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  const std::size_t n = 8;
  const auto& comp = cached_random(/*N=*/8, n, /*events=*/20, /*seed=*/51);

  detect::RunOptions opts = default_opts();
  opts.latency = sim::LatencyModel::uniform(1, 6);
  opts.faults = sim::FaultPlan::lossy_dup(0.2, 0.05, 71);
  opts.faults.crashes.push_back({sim::NodeAddr::monitor(
                                     comp.predicate_processes().front()),
                                 /*at=*/20, /*restart=*/80});

  detect::DetectionResult last;
  for (auto _ : state) {
    if (g == 0) {
      last = detect::run_token_vc(comp, opts);
    } else {
      detect::MultiTokenOptions mt;
      mt.num_groups = g;
      last = detect::run_multi_token(comp, opts, mt);
    }
    benchmark::DoNotOptimize(last.detected);
  }

  state.counters["g"] = static_cast<double>(g);
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["crashes"] = static_cast<double>(last.faults.crashes);
  state.counters["restarts"] = static_cast<double>(last.faults.restarts);
  state.counters["token_regenerations"] =
      static_cast<double>(last.faults.token_regenerations);
  state.counters["heartbeats"] = static_cast<double>(last.faults.heartbeats);
  state.counters["virtual_detect_time"] =
      static_cast<double>(last.detect_time);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(n);
  rp.m = static_cast<std::int64_t>(comp.max_messages_per_process());
  rp.seed = 51;
  report_run(state,
             std::string("E16_faults/crash/") + (g == 0 ? "token" : "multi"),
             rp, last, std::nullopt, std::nullopt);
}
BENCHMARK(BM_Faults_HolderCrash)->Arg(0)->Arg(2);

}  // namespace
}  // namespace wcp::bench
