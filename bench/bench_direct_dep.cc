// E4 — §4.4 claim: the direct-dependence algorithm needs O(Nm) total work,
// messages and bits, and only O(m) work/space per process, independent of n.
//
// Sweeps N (at fixed m) and m (at fixed N). Counters:
//   total_work       all-monitor work units
//   work_per_Nm      total_work / (N m)   — should stay ~flat
//   maxwork_per_m    busiest monitor / m  — should stay ~flat (O(m)/proc)
//   msgs_per_3Nm     (token+poll+reply) / (3 N m)
#include "bench_common.h"
#include "detect/direct_dep.h"

namespace wcp::bench {
namespace {

void run_case(benchmark::State& state, std::size_t clients,
              std::int64_t rounds) {
  // Worst case (violation in the final round): every process's candidates
  // get eliminated all the way to the end. N = clients + server.
  const auto& comp = cached_worstcase(clients, rounds, /*seed=*/5 + clients);
  const std::size_t N = comp.num_processes();
  const double m = static_cast<double>(comp.max_messages_per_process());
  const double Nd = static_cast<double>(N);

  detect::DetectionResult last;
  for (auto _ : state) {
    last = detect::run_direct_dep(comp, default_opts());
    benchmark::DoNotOptimize(last.detected);
  }

  const double total = static_cast<double>(last.monitor_metrics.total_work());
  const double mx =
      static_cast<double>(last.monitor_metrics.max_work_per_process());
  const double msgs = static_cast<double>(
      last.monitor_metrics.total_messages(MsgKind::kToken) +
      last.monitor_metrics.total_messages(MsgKind::kPoll) +
      last.monitor_metrics.total_messages(MsgKind::kPollReply));
  state.counters["N"] = Nd;
  state.counters["m"] = m;
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["total_work"] = total;
  state.counters["work_per_Nm"] = total / (Nd * m);
  state.counters["maxwork_per_m"] = mx / m;
  state.counters["msgs_per_3Nm"] = msgs / (3.0 * Nd * m);

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(clients);
  rp.m = static_cast<std::int64_t>(m);
  rp.seed = 5 + clients;
  const double bound = Nd * m;  // §4.4: O(Nm) total work
  report_run(state, "E4_direct_dep", rp, last, bound, total / bound);
}

void BM_DirectDep_SweepN(benchmark::State& state) {
  run_case(state, static_cast<std::size_t>(state.range(0)), /*rounds=*/10);
}
BENCHMARK(BM_DirectDep_SweepN)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_DirectDep_SweepM(benchmark::State& state) {
  run_case(state, /*clients=*/8, /*rounds=*/state.range(0));
}
BENCHMARK(BM_DirectDep_SweepM)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace wcp::bench
