// E19 — streaming detection service: throughput and bounded memory.
//
// Streams one long random trace through the full client -> wire -> session
// path with 1, 4, and 16 concurrent subscriptions (cycling token, checker,
// slicer — the bounded-frontier family; the lattice explorer is O(m^n) and
// excluded from the scaling claim) and frontier GC on. Claims:
//
//   - Throughput (events/sec) degrades roughly linearly in the number of
//     subscriptions sharing the stream (each snapshot fans into every
//     core).
//   - Peak retained snapshot-store bytes stay a small fraction of the
//     offline baseline (retaining every snapshot: states * (4n + 8) bytes,
//     the columnar cost per row) regardless of stream length — the
//     `ratio` column is what CI gates (<= 0.5).
#include <chrono>

#include "bench_common.h"
#include "serve/replay.h"

namespace wcp::bench {
namespace {

void BM_Serve_Stream(benchmark::State& state) {
  const auto subs = static_cast<std::size_t>(state.range(0));
  const std::size_t N = 12, n = 6;
  const std::int64_t events = 240;
  const auto& comp = cached_random(N, n, events, /*seed=*/19 + subs,
                                   /*pred_prob=*/0.15,
                                   /*ensure_detectable=*/false);

  serve::ReplayOptions opts;
  opts.serve.gc_every = 64;
  const serve::StreamAlgo cycle[] = {serve::StreamAlgo::kToken,
                                     serve::StreamAlgo::kChecker,
                                     serve::StreamAlgo::kSlicer};
  for (std::size_t i = 0; i < subs; ++i)
    opts.subs.push_back({cycle[i % 3], 0, -1});

  serve::ReplayResult r;
  double seconds = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    r = serve::replay_stream(comp, opts);
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    benchmark::DoNotOptimize(r.stats.snapshots_in);
  }

  const double snapshots = static_cast<double>(r.stats.snapshots_in);
  const double events_per_sec = seconds > 0 ? snapshots / seconds : 0;
  // Offline baseline: what the store would hold with GC off — every
  // appended snapshot at the columnar row cost of 4n + 8 bytes.
  const double baseline = snapshots * static_cast<double>(4 * n + 8);
  const double ratio =
      baseline > 0 ? static_cast<double>(r.stats.store_peak_bytes) / baseline
                   : 0;

  state.counters["subs"] = static_cast<double>(subs);
  state.counters["events_per_sec"] = events_per_sec;
  state.counters["store_peak_bytes"] =
      static_cast<double>(r.stats.store_peak_bytes);
  state.counters["peak_retained_states"] =
      static_cast<double>(r.stats.peak_retained_states);
  state.counters["checker_peak_bytes"] =
      static_cast<double>(r.stats.checker_peak_bytes);
  state.counters["bound"] = baseline;
  state.counters["ratio"] = ratio;

  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(n);
  rp.m = comp.max_messages_per_process();
  rp.seed = 19 + subs;
  report_run(state, "E19_serve", rp,
             {{"subs", static_cast<std::int64_t>(subs)},
              {"snapshots", r.stats.snapshots_in},
              {"events_per_sec", events_per_sec},
              {"store_peak_bytes", r.stats.store_peak_bytes},
              {"peak_retained_states", r.stats.peak_retained_states},
              {"checker_peak_bytes", r.stats.checker_peak_bytes},
              {"gc_rounds", r.stats.gc_rounds},
              {"states_retired", r.stats.states_retired},
              {"verdicts_detected", r.stats.verdicts_detected}},
             baseline, ratio);
}
BENCHMARK(BM_Serve_Stream)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace wcp::bench
