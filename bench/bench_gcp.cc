// E12 (extension) — Generalized Conjunctive Predicates: cost of online
// centralized termination detection ((∀ passive) ∧ (∀ channels empty),
// reference [6]) as the system grows.
//
// Counters:
//   snapshots          local snapshots streamed to the checker
//   snapshot_bits      includes the 2N-word channel counters per snapshot
//   eliminations       head eliminations until the true termination cut
//   channel_evals      channel-predicate evaluations
//   work_per_snapshot  checker work normalized by input size (~flat)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "detect/gcp_online.h"
#include "workload/termination_workload.h"

namespace wcp::bench {
namespace {

void BM_GcpTermination(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  workload::TerminationSpec spec;
  spec.num_processes = N;
  spec.initial_work = static_cast<std::int64_t>(N);
  spec.spawn_prob = 0.45;
  spec.max_messages = 40 * static_cast<std::int64_t>(N);
  spec.seed = 29 + N;
  const auto t = workload::make_termination(spec);
  const auto channels = detect::ChannelPredicate::all_channels_empty(N);

  detect::RunOptions opts;
  opts.seed = 1;
  opts.latency = sim::LatencyModel::uniform(1, 4);

  detect::DetectionResult last;
  for (auto _ : state) {
    last = detect::run_gcp_centralized(t.computation, channels, opts);
    benchmark::DoNotOptimize(last.detected);
  }

  const double snaps = static_cast<double>(
      last.app_metrics.total_messages(MsgKind::kSnapshot));
  state.counters["N"] = static_cast<double>(N);
  state.counters["work_msgs"] = static_cast<double>(t.work_messages);
  state.counters["detected"] = last.detected ? 1 : 0;
  state.counters["snapshots"] = snaps;
  state.counters["snapshot_bits"] = static_cast<double>(
      last.app_metrics.total_bits(MsgKind::kSnapshot));
  state.counters["checker_work"] =
      static_cast<double>(last.monitor_metrics.total_work());
  state.counters["work_per_snapshot"] =
      snaps > 0
          ? static_cast<double>(last.monitor_metrics.total_work()) / snaps
          : 0;

  // ratio = checker work per snapshot, normalized by N (should stay ~flat:
  // each head evaluation touches N-1 peers' channel predicates).
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(N);
  rp.n = static_cast<std::int64_t>(N);
  rp.m = static_cast<std::int64_t>(snaps);
  rp.seed = 29 + N;
  const double bound = snaps * static_cast<double>(N);
  report_run(state, "E12_gcp", rp, last, bound,
             bound > 0 ? std::optional<double>(
                             static_cast<double>(
                                 last.monitor_metrics.total_work()) /
                             bound)
                       : std::nullopt);
}
BENCHMARK(BM_GcpTermination)->Arg(3)->Arg(5)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace wcp::bench
