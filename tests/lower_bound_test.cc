#include "detect/lower_bound.h"

#include <gtest/gtest.h>

namespace wcp::detect {
namespace {

TEST(AdversaryGame, FirstAnswerDeclaresExactlyOneComparablePair) {
  AdversaryGame game(3, 4);
  const auto [smaller, larger] = game.compare_heads();
  EXPECT_GE(smaller, 0);
  EXPECT_GE(larger, 0);
  EXPECT_NE(smaller, larger);
}

TEST(AdversaryGame, AnswerStableWithoutDeletion) {
  AdversaryGame game(3, 4);
  const auto a = game.compare_heads();
  const auto b = game.compare_heads();
  EXPECT_EQ(a, b);
  EXPECT_EQ(game.steps(), 2);
}

TEST(AdversaryGame, OnlyDeclaredSmallerHeadIsDeletable) {
  AdversaryGame game(3, 4);
  const auto [smaller, larger] = game.compare_heads();
  // Deleting the declared-larger head is unjustified.
  EXPECT_THROW(game.delete_heads({larger}), std::invalid_argument);
  // Deleting any third head is unjustified too.
  for (int q = 0; q < 3; ++q)
    if (q != smaller && q != larger)
      EXPECT_THROW(game.delete_heads({q}), std::invalid_argument);
  game.delete_heads({smaller});
  EXPECT_EQ(game.deletions(), 1);
}

TEST(AdversaryGame, ForcesOneDeletionPerStepUntilAQueueEmpties) {
  const auto out = play_greedy(4, 5);
  // Theorem 5.1: at least nm - n sequential deletions.
  EXPECT_GE(out.deletions, out.bound);
  // Alternating compare/delete: steps >= 2 * deletions.
  EXPECT_GE(out.steps, 2 * out.deletions);
}

class LowerBoundSweep
    : public ::testing::TestWithParam<std::pair<int, std::int64_t>> {};

TEST_P(LowerBoundSweep, DeletionsMeetTheBound) {
  const auto [n, m] = GetParam();
  const auto out = play_greedy(n, m, /*verify=*/n * m <= 64);
  EXPECT_GE(out.deletions, n * m - n);
  // And the adversary never wastes more than one whole chain:
  EXPECT_LE(out.deletions, n * m);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LowerBoundSweep,
    ::testing::Values(std::pair{2, std::int64_t{3}},
                      std::pair{2, std::int64_t{10}},
                      std::pair{3, std::int64_t{8}},
                      std::pair{4, std::int64_t{6}},
                      std::pair{5, std::int64_t{5}},
                      std::pair{8, std::int64_t{4}}));

TEST(AdversaryGame, HistoryIsRealizableAsAPartialOrder) {
  // Invariant I7: the adversary's answers are consistent with an actual
  // poset on n chains — no declared-concurrent pair is secretly ordered.
  for (const auto [n, m] :
       {std::pair{2, std::int64_t{4}}, std::pair{3, std::int64_t{4}},
        std::pair{4, std::int64_t{3}}}) {
    AdversaryGame game(n, m);
    while (!game.some_queue_empty()) {
      const auto [smaller, larger] = game.compare_heads();
      (void)larger;
      if (smaller < 0) break;
      game.delete_heads({smaller});
    }
    EXPECT_TRUE(game.verify_realizable()) << "n=" << n << " m=" << m;
  }
}

TEST(AdversaryGame, EmptyDeletionIsANoOpStep) {
  AdversaryGame game(2, 2);
  game.compare_heads();
  game.delete_heads({});
  EXPECT_EQ(game.deletions(), 0);
  EXPECT_EQ(game.steps(), 2);
}

TEST(AdversaryGame, RejectsDegenerateGames) {
  EXPECT_THROW(AdversaryGame(1, 5), std::invalid_argument);
  EXPECT_THROW(AdversaryGame(2, 0), std::invalid_argument);
}

TEST(AdversaryGame, AnswersNoneOnceAQueueIsEmpty) {
  AdversaryGame game(2, 1);
  const auto [smaller, larger] = game.compare_heads();
  (void)larger;
  game.delete_heads({smaller});
  EXPECT_TRUE(game.some_queue_empty());
  EXPECT_EQ(game.compare_heads(), (std::pair{-1, -1}));
}

TEST(AdversaryGame, RemainingCountsTrackDeletions) {
  AdversaryGame game(2, 5);
  const auto [smaller, larger] = game.compare_heads();
  (void)larger;
  EXPECT_EQ(game.remaining(smaller), 5);
  game.delete_heads({smaller});
  EXPECT_EQ(game.remaining(smaller), 4);
}

}  // namespace
}  // namespace wcp::detect
