// The umbrella header must compile standalone and expose the whole API.
#include "wcp.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughTheSingleInclude) {
  wcp::ComputationBuilder b(2);
  b.mark_pred(wcp::ProcessId(0), true);
  b.mark_pred(wcp::ProcessId(1), true);
  const auto comp = b.build();

  wcp::detect::RunOptions opts;
  const auto r = wcp::detect::run_token_vc(comp, opts);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<wcp::StateIndex>{1, 1}));

  // A few representatives from each namespace.
  EXPECT_TRUE(wcp::pred::Expr::parse("1 < 2").holds(wcp::pred::Env{}));
  EXPECT_GE(wcp::detect::play_greedy(2, 3).deletions, 4);
  EXPECT_FALSE(wcp::render_diagram(comp).empty());
}

}  // namespace
