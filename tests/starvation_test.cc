// End-of-stream starvation: when the WCP never holds, every detector must
// drain to an idle simulator with detected == false instead of deadlocking
// or spinning. The token algorithm additionally exposes *why* it stopped:
// the monitor holding the token is starved() — still waiting for a
// candidate whose application stream has ended (§3.3's blocking receive,
// resolved by the kControl end-of-stream marker).
#include <gtest/gtest.h>

#include "app/app_driver.h"
#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

/// P0's local predicate never holds; everyone else is true in every state
/// and keeps messaging P0. The conjunction is unsatisfiable, so slot 0 can
/// never supply a candidate and the token blocks there forever.
Computation starvation_workload(std::size_t n, std::int64_t rounds) {
  ComputationBuilder b(n);
  for (std::size_t p = 1; p < n; ++p)
    b.set_default_pred(ProcessId(static_cast<int>(p)), true);
  for (std::int64_t round = 0; round < rounds; ++round)
    for (std::size_t p = 1; p < n; ++p)
      b.transfer(ProcessId(static_cast<int>(p)), ProcessId(0));
  return b.build();
}

TEST(Starvation, TokenVcDrainsIdleAndReportsStarvedMonitor) {
  const std::size_t n = 4;
  const auto comp = starvation_workload(n, /*rounds=*/5);
  const auto o = opts();

  // Assemble the network by hand (run_token_vc tears it down before we can
  // inspect monitor state).
  sim::NetworkConfig ncfg;
  ncfg.num_processes = comp.num_processes();
  ncfg.latency = o.latency;
  ncfg.seed = o.seed;
  sim::Network net(ncfg);

  const auto preds = comp.predicate_processes();
  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());
  auto shared = install_token_vc_monitors(net, slot_to_pid);

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = o.step_delay;
  app::install_app_drivers(net, comp, drv);

  net.start_and_run();

  // The run ended because the event queue drained, not via detection.
  EXPECT_FALSE(shared->detected);
  EXPECT_TRUE(net.simulator().idle());

  // The token is parked at slot 0's monitor, starved: still waiting for a
  // candidate after P0's end-of-stream.
  int holders = 0, starved = 0;
  for (ProcessId pid : slot_to_pid) {
    auto* m = dynamic_cast<TokenVcMonitor*>(
        net.node(sim::NodeAddr::monitor(pid)));
    ASSERT_NE(m, nullptr);
    holders += m->holding_token() ? 1 : 0;
    starved += m->starved() ? 1 : 0;
  }
  EXPECT_EQ(holders, 1);
  EXPECT_EQ(starved, 1);
  auto* slot0 = dynamic_cast<TokenVcMonitor*>(
      net.node(sim::NodeAddr::monitor(slot_to_pid[0])));
  ASSERT_NE(slot0, nullptr);
  EXPECT_TRUE(slot0->holding_token());
  EXPECT_TRUE(slot0->starved());

  // Every application process announced end-of-stream exactly once.
  EXPECT_EQ(net.app_metrics().total_messages(MsgKind::kControl),
            static_cast<std::int64_t>(comp.num_processes()));
}

TEST(Starvation, TokenVcRunHarnessAgrees) {
  const auto comp = starvation_workload(4, /*rounds=*/5);
  const auto r = run_token_vc(comp, opts());
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.cut.empty());
  // The drained run still accounted for its control traffic.
  EXPECT_EQ(r.app_metrics.total_messages(MsgKind::kControl),
            static_cast<std::int64_t>(comp.num_processes()));
  EXPECT_EQ(r.stats.packets_delivered[static_cast<std::size_t>(
                MsgKind::kControl)],
            static_cast<std::int64_t>(comp.num_processes()));
}

TEST(Starvation, DirectDepDrainsIdleWithoutDetection) {
  const auto comp = starvation_workload(4, /*rounds=*/5);
  for (const bool parallel : {false, true}) {
    DdRunOptions dd;
    dd.parallel = parallel;
    const auto r = run_direct_dep(comp, opts(), dd);
    EXPECT_FALSE(r.detected) << "parallel=" << parallel;
    EXPECT_TRUE(r.cut.empty()) << "parallel=" << parallel;
    // End-of-stream control messages flowed from every process.
    EXPECT_GE(r.app_metrics.total_messages(MsgKind::kControl),
              static_cast<std::int64_t>(comp.num_processes()))
        << "parallel=" << parallel;
  }
}

TEST(Starvation, SeedsDoNotRescueAnUnsatisfiablePredicate) {
  const auto comp = starvation_workload(3, /*rounds=*/4);
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    EXPECT_FALSE(run_token_vc(comp, opts(seed)).detected) << seed;
    EXPECT_FALSE(run_direct_dep(comp, opts(seed)).detected) << seed;
  }
}

}  // namespace
}  // namespace wcp::detect
