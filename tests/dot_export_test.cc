#include "trace/dot_export.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace wcp {
namespace {

Computation tiny() {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  return b.build();
}

TEST(DotExport, ContainsNodesEdgesAndClusters) {
  const auto dot = dot_to_string(tiny());
  EXPECT_NE(dot.find("digraph computation {"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("s0_1 -> s0_2;"), std::string::npos);   // program order
  EXPECT_NE(dot.find("s0_1 -> s1_2 [style=dotted, label=\"m0\"];"),
            std::string::npos);                               // message
  EXPECT_NE(dot.find("fillcolor=palegreen"), std::string::npos);  // pred true
}

TEST(DotExport, CutStatesHighlighted) {
  DotOptions opts;
  opts.cut_procs = {ProcessId(0), ProcessId(1)};
  opts.cut = {1, 2};
  const auto dot = dot_to_string(tiny(), opts);
  EXPECT_NE(dot.find("penwidth=3, color=red"), std::string::npos);
}

TEST(DotExport, UndeliveredMessagesOmitted) {
  ComputationBuilder b(2);
  b.send(ProcessId(0), ProcessId(1));
  const auto dot = dot_to_string(b.build());
  EXPECT_EQ(dot.find("style=dotted"), std::string::npos);
}

TEST(DotExport, BalancedBraces) {
  const auto dot = dot_to_string(tiny());
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, RejectsMismatchedCut) {
  DotOptions opts;
  opts.cut_procs = {ProcessId(0)};
  opts.cut = {};
  EXPECT_THROW(dot_to_string(tiny(), opts), std::invalid_argument);
}

}  // namespace
}  // namespace wcp
