// The batch sweep runner (detect/batch.h): rows must be independent of the
// sweep's thread count and must match what direct detector calls produce.
#include "detect/batch.h"

#include <gtest/gtest.h>

#include "detect/lattice.h"
#include "detect/sliced.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

Computation make_case(std::uint64_t seed) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 3;
  spec.events_per_process = 15;
  spec.local_pred_prob = 0.3;
  spec.ensure_detectable = true;
  spec.seed = seed;
  return workload::make_random(spec);
}

TEST(Batch, CrossJobsEnumeratesAlgosMajor) {
  const auto jobs = cross_jobs({"a", "b"}, {1, 2, 3});
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].algo, "a");
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[2].seed, 3u);
  EXPECT_EQ(jobs[3].algo, "b");
}

TEST(Batch, RowsIndependentOfThreadCount) {
  const auto comp = make_case(5);
  const auto jobs = cross_jobs(
      {"token", "dd", "lattice", "lattice-sliced", "definitely", "oracle"},
      {1, 2});
  const auto serial = run_sweep(comp, jobs, /*threads=*/1);
  ASSERT_EQ(serial.size(), jobs.size());
  for (std::size_t threads : {2u, 8u}) {
    const auto par = run_sweep(comp, jobs, threads);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].algo, serial[i].algo) << "row " << i;
      EXPECT_EQ(par[i].seed, serial[i].seed) << "row " << i;
      EXPECT_EQ(par[i].verdict, serial[i].verdict) << "row " << i;
      EXPECT_EQ(par[i].cut, serial[i].cut) << "row " << i;
      EXPECT_EQ(par[i].cost, serial[i].cost) << "row " << i;
      EXPECT_EQ(par[i].report, serial[i].report) << "row " << i;
    }
  }
}

TEST(Batch, RowsMatchDirectDetectorCalls) {
  const auto comp = make_case(7);
  const auto rows = run_sweep(
      comp, cross_jobs({"lattice", "lattice-sliced", "token"}, {3}), 2);
  ASSERT_EQ(rows.size(), 3u);

  const auto lat = detect_lattice(comp, 10'000'000);
  EXPECT_EQ(rows[0].verdict, lat.detected);
  EXPECT_EQ(rows[0].cut, lat.cut);
  EXPECT_EQ(rows[0].cost, lat.cuts_explored);

  const auto sliced = detect_lattice_sliced(comp);
  EXPECT_EQ(rows[1].verdict, sliced.detected);
  EXPECT_EQ(rows[1].cut, sliced.cut);

  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 6);
  const auto tok = run_token_vc(comp, o);
  EXPECT_EQ(rows[2].verdict, tok.detected);
  EXPECT_EQ(rows[2].cut, tok.cut);

  // The two possibly-family detectors agree on the same trace — the
  // cross-check the randomized suites lean on.
  EXPECT_EQ(rows[0].verdict, rows[1].verdict);
  EXPECT_EQ(rows[0].cut, rows[1].cut);
}

TEST(Batch, UnknownAlgoThrows) {
  const auto comp = make_case(1);
  EXPECT_THROW(run_sweep(comp, {{SweepJob{"nope", 1}}}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace wcp::detect
