#include "trace/diagram.h"

#include <gtest/gtest.h>

namespace wcp {
namespace {

Computation tiny() {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  return b.build();
}

TEST(Diagram, RendersStatesEventsAndPredicates) {
  const auto text = render_diagram(tiny());
  EXPECT_EQ(text,
            "P0   [1:T] -s0-> [2:.]\n"
            "P1   [1:.] -r0-> [2:T]\n");
}

TEST(Diagram, MarksCutStates) {
  DiagramOptions opts;
  opts.cut_procs = {ProcessId(0), ProcessId(1)};
  opts.cut = {1, 2};
  const auto text = render_diagram(tiny(), opts);
  EXPECT_NE(text.find("*[1:T]"), std::string::npos);
  EXPECT_NE(text.find("*[2:T]"), std::string::npos);
  EXPECT_EQ(text.find("*[2:.]"), std::string::npos);
}

TEST(Diagram, MessageTableShowsEndpointsAndInFlight) {
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  b.send(ProcessId(1), ProcessId(0));  // in flight
  const auto c = b.build();
  DiagramOptions opts;
  opts.message_table = true;
  const auto text = render_diagram(c, opts);
  EXPECT_NE(text.find("m0: P0@1 -> P1@2"), std::string::npos);
  EXPECT_NE(text.find("m1: P1@2 -> P0 (in flight)"), std::string::npos);
}

TEST(Diagram, TruncatesLongTimelines) {
  ComputationBuilder b(2);
  for (int i = 0; i < 10; ++i) b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  DiagramOptions opts;
  opts.max_states = 3;
  const auto text = render_diagram(c, opts);
  EXPECT_NE(text.find("...(8 more)"), std::string::npos);
}

TEST(Diagram, RejectsMismatchedCut) {
  DiagramOptions opts;
  opts.cut_procs = {ProcessId(0)};
  opts.cut = {1, 2};
  EXPECT_THROW(render_diagram(tiny(), opts), std::invalid_argument);
}

}  // namespace
}  // namespace wcp
