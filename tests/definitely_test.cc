#include <gtest/gtest.h>

#include "detect/lattice.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

TEST(Definitely, TrueWhenBottomSatisfies) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  const auto r = detect_definitely(c);
  EXPECT_TRUE(r.definitely);
}

TEST(Definitely, FalseWhenPredicateNeverHolds) {
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  EXPECT_FALSE(detect_definitely(c).definitely);
}

TEST(Definitely, PossiblyButNotDefinitely) {
  // Two independent processes, predicate true only in (P0 state 1, P1
  // state 2)-ish combinations: an observation can order the events so the
  // simultaneous window is skipped.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);   // P0 state 1
  b.send(ProcessId(0), ProcessId(1));  // undelivered: no causality
  b.mark_pred(ProcessId(1), true);   // P1 state 1
  b.send(ProcessId(1), ProcessId(0));  // undelivered
  const auto c = b.build();
  // possibly: cut (1,1) satisfies.
  ASSERT_TRUE(detect_lattice(c).detected);
  // but an observer may see P0 advance to state 2 (pred false) before ever
  // observing P1's state 1... the path (1,1)? The bottom (1,1) satisfies
  // => every observation starts there => definitely.
  EXPECT_TRUE(detect_definitely(c).definitely);
}

TEST(Definitely, AvoidablePredicateIsNotDefinite) {
  // P0: states 1(false) 2(true) 3(false); P1: states 1(false) 2(true)
  // 3(false); no causality. possibly((T,T)) via (2,2), but an observation
  // can interleave to avoid both being true simultaneously.
  ComputationBuilder b(2);
  for (int p = 0; p < 2; ++p) {
    b.send(ProcessId(p), ProcessId(1 - p));  // undelivered
    b.mark_pred(ProcessId(p), true);         // state 2
    b.send(ProcessId(p), ProcessId(1 - p));  // undelivered
  }
  const auto c = b.build();
  ASSERT_TRUE(detect_lattice(c).detected);
  EXPECT_FALSE(detect_definitely(c).definitely);
}

TEST(Definitely, ForcedByCausality) {
  // A synchronization pattern that FORCES the predicate: P0 true from
  // state 2 on, P1 true only at state 2, and messages pin every
  // observation to pass through (>=2, 2).
  //   P0 state 1 -> send m1 -> P1 receives (state 2, true)
  //   P1 then sends m2 back, P0 receives it (P0 states stay true).
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), false);
  const MessageId m1 = b.send(ProcessId(0), ProcessId(1));
  b.set_default_pred(ProcessId(0), true);  // P0 true from state 2 on
  b.receive(m1);
  b.mark_pred(ProcessId(1), true);  // P1 state 2 true
  const MessageId m2 = b.send(ProcessId(1), ProcessId(0));
  b.receive(m2);
  const auto c = b.build();
  // Any observation: P1 enters state 2 only after P0 reached state 2;
  // P1 leaves state 2 (to state 3) only via the send whose receipt puts
  // P0 in state 3 — but P0 states 2,3 are all true, so while P1 is in its
  // true state 2, P0 is always in a true state.
  EXPECT_TRUE(detect_definitely(c).definitely);
  ASSERT_TRUE(detect_lattice(c).detected);
}

TEST(Definitely, ImpliesPossibly) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 4;
    spec.events_per_process = 8;
    spec.local_pred_prob = 0.5;
    spec.seed = seed;
    const auto c = workload::make_random(spec);
    const auto def = detect_definitely(c, 1'000'000);
    const auto pos = detect_lattice(c, 1'000'000);
    ASSERT_FALSE(def.truncated);
    ASSERT_FALSE(pos.truncated);
    if (def.definitely) EXPECT_TRUE(pos.detected) << "seed " << seed;
    if (!pos.detected) EXPECT_FALSE(def.definitely) << "seed " << seed;
  }
}

TEST(Definitely, TruncationReported) {
  ComputationBuilder b(3);
  for (int p = 0; p < 3; ++p)
    for (int k = 0; k < 8; ++k)
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
  const auto c = b.build();  // predicate never true, big lattice
  const auto r = detect_definitely(c, /*max_cuts=*/10);
  EXPECT_TRUE(r.truncated);
}

}  // namespace
}  // namespace wcp::detect
