// Randomized trace round-trip properties and the malformed-trace corpus:
// every generated computation must survive text and binary serialization
// clock-for-clock with identical detector verdicts at every thread count,
// and every corrupt input must die with a descriptive parse error.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detect/lattice.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"
#include "workload/random_workload.h"

namespace wcp {
namespace {

constexpr std::int64_t kCutCap = 20'000;

void expect_same_clocks(const Computation& a, const Computation& b) {
  ASSERT_EQ(a.num_processes(), b.num_processes());
  for (std::size_t p = 0; p < a.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    ASSERT_EQ(a.num_states(pid), b.num_states(pid));
    for (StateIndex k = 1; k <= a.num_states(pid); ++k) {
      ASSERT_EQ(a.local_pred(pid, k), b.local_pred(pid, k))
          << "p=" << p << " k=" << k;
      ASSERT_EQ(a.ground_truth_clock(pid, k), b.ground_truth_clock(pid, k))
          << "p=" << p << " k=" << k;
    }
  }
}

void expect_same_verdicts(const Computation& a, const Computation& b) {
  ASSERT_EQ(a.first_wcp_cut(), b.first_wcp_cut());
  const auto la = detect::detect_lattice(a, kCutCap);
  const auto lb = detect::detect_lattice(b, kCutCap);
  ASSERT_EQ(la.detected, lb.detected);
  ASSERT_EQ(la.truncated, lb.truncated);
  ASSERT_EQ(la.cut, lb.cut);
  ASSERT_EQ(la.cuts_explored, lb.cuts_explored);
  ASSERT_EQ(la.witness_path, lb.witness_path);
  const auto da = detect::detect_definitely(a, kCutCap);
  const auto db = detect::detect_definitely(b, kCutCap);
  ASSERT_EQ(da.definitely, db.definitely);
  ASSERT_EQ(da.truncated, db.truncated);
  ASSERT_EQ(da.witness, db.witness);
  ASSERT_EQ(da.witness_path, db.witness_path);
}

TEST(TraceFuzz, RandomComputationsRoundTripBothFormats) {
  // Sweep the workload space, including the all-false and all-true
  // predicate extremes and traces that leave messages in flight.
  const double pred_probs[] = {0.0, 0.25, 0.6, 1.0};
  const double drain_probs[] = {0.4, 1.0};
  std::uint64_t seed = 0;
  for (std::size_t np = 3; np <= 6; ++np)
    for (const double pp : pred_probs)
      for (const double dp : drain_probs) {
        workload::RandomSpec spec;
        spec.num_processes = np;
        spec.num_predicate = np >= 4 ? np / 2 : np;
        spec.events_per_process = 4 + static_cast<int>(seed % 7);
        spec.local_pred_prob = pp;
        spec.drain_prob = dp;
        spec.seed = 101 + seed++;
        const auto original = workload::make_random(spec);

        SCOPED_TRACE("spec N=" + std::to_string(np) +
                     " pp=" + std::to_string(pp) +
                     " dp=" + std::to_string(dp));
        // Text round trip.
        const auto from_text = trace_from_string(trace_to_string(original));
        expect_same_clocks(original, from_text);
        // Binary round trip.
        std::ostringstream os;
        save_tracebin(os, original);
        std::istringstream is(os.str());
        const auto from_bin = load_tracebin(is);
        expect_same_clocks(original, from_bin);
        // The loader serves columns straight from the parsed bytes (message
        // ids keep their file order), so save-then-load is a byte-level
        // fixed point from the very first generation.
        std::ostringstream os2;
        save_tracebin(os2, from_bin);
        ASSERT_EQ(os.str(), os2.str());
        std::istringstream is2(os2.str());
        const auto gen2 = load_tracebin(is2);
        std::ostringstream os3;
        save_tracebin(os3, gen2);
        ASSERT_EQ(os2.str(), os3.str());
      }
}

TEST(TraceFuzz, RoundTripsPreserveDetectorVerdicts) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 3;
    spec.events_per_process = 10;
    spec.local_pred_prob = seed % 2 ? 0.5 : 0.2;
    spec.drain_prob = 0.7;
    spec.seed = 900 + seed;
    const auto original = workload::make_random(spec);
    SCOPED_TRACE("seed " + std::to_string(spec.seed));

    const auto from_text = trace_from_string(trace_to_string(original));
    expect_same_verdicts(original, from_text);
    std::ostringstream os;
    save_tracebin(os, original);
    std::istringstream is(os.str());
    const auto from_bin = load_tracebin(is);
    expect_same_verdicts(original, from_bin);
  }
}

TEST(TraceFuzz, VerdictsAndWitnessesAreThreadInvariant) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 3;
    spec.events_per_process = 9;
    spec.local_pred_prob = 0.45;
    spec.seed = 500 + seed;
    const auto c = workload::make_random(spec);
    SCOPED_TRACE("seed " + std::to_string(spec.seed));

    const auto l1 = detect::detect_lattice(c, kCutCap, 1);
    const auto d1 = detect::detect_definitely(c, kCutCap, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const auto lt = detect::detect_lattice(c, kCutCap, threads);
      ASSERT_EQ(lt.detected, l1.detected);
      ASSERT_EQ(lt.cut, l1.cut);
      ASSERT_EQ(lt.cuts_explored, l1.cuts_explored);
      ASSERT_EQ(lt.witness_path, l1.witness_path) << threads << " threads";
      ASSERT_EQ(lt.trace_store.peak_bytes, l1.trace_store.peak_bytes);
      ASSERT_EQ(lt.trace_store.delta_entries, l1.trace_store.delta_entries);
      const auto dt = detect::detect_definitely(c, kCutCap, threads);
      ASSERT_EQ(dt.definitely, d1.definitely);
      ASSERT_EQ(dt.witness, d1.witness);
      ASSERT_EQ(dt.witness_path, d1.witness_path) << threads << " threads";
    }
  }
}

TEST(TraceFuzz, MappedLoaderMatchesHeapLoaderAtAllThreadCounts) {
  // The mmap fast path must be invisible to the detectors: verdicts,
  // explored-cut counts, and witness paths are byte-for-byte identical
  // whether the columns live in heap vectors or in the page cache, with
  // and without the replay check, at every thread count.
  const std::string path =
      ::testing::TempDir() + "/wcp_fuzz_mapped.tracebin";
  TraceLoadOptions trusted;
  trusted.verify_replay = false;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 3;
    spec.events_per_process = 9;
    spec.local_pred_prob = seed % 2 ? 0.5 : 0.25;
    spec.drain_prob = 0.7;
    spec.seed = 1300 + seed;
    const auto original = workload::make_random(spec);
    SCOPED_TRACE("seed " + std::to_string(spec.seed));
    save_tracebin_file(path, original);

    const auto verified = load_any_trace_file(path);
    const auto fast = load_any_trace_file(path, trusted);
    expect_same_clocks(original, verified);
    expect_same_clocks(original, fast);

    const auto l1 = detect::detect_lattice(original, kCutCap, 1);
    const auto d1 = detect::detect_definitely(original, kCutCap, 1);
    for (const Computation* c : {&verified, &fast}) {
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        const auto lt = detect::detect_lattice(*c, kCutCap, threads);
        ASSERT_EQ(lt.detected, l1.detected) << threads << " threads";
        ASSERT_EQ(lt.cut, l1.cut);
        ASSERT_EQ(lt.cuts_explored, l1.cuts_explored);
        ASSERT_EQ(lt.witness_path, l1.witness_path);
        const auto dt = detect::detect_definitely(*c, kCutCap, threads);
        ASSERT_EQ(dt.definitely, d1.definitely) << threads << " threads";
        ASSERT_EQ(dt.witness, d1.witness);
        ASSERT_EQ(dt.witness_path, d1.witness_path);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceFuzz, MalformedTraceCorpusFailsWithLineErrors) {
  // Every entry exercises a distinct reader rejection; all must throw
  // std::invalid_argument whose message names the offending line.
  const char* corpus[] = {
      "wcp-trace 1\nprocesses 0\nend\n",              // zero processes
      "wcp-trace 1\nprocesses -3\nend\n",             // negative count
      "wcp-trace 1\nprocesses 99999999999999\nend\n", // > int32 max
      "wcp-trace 1\nprocesses 2\nprocesses 2\nend\n", // duplicate directive
      "wcp-trace 1\npredicate 0\nend\n",              // predicate before N
      "wcp-trace 1\nprocesses 2\npredicate 0 0\nend\n",  // duplicate pid
      "wcp-trace 1\nprocesses 2\npredicate 2\nend\n",    // pid out of range
      "wcp-trace 1\nprocesses 2\ndefault 0 7\nend\n",    // value not in {0,1}
      "wcp-trace 1\nprocesses 2\ndefault 5 1\nend\n",    // pid out of range
      "wcp-trace 1\nprocesses 2\nsend 0\nend\n",         // missing receiver
      "wcp-trace 1\nprocesses 2\nsend 0 0\nend\n",       // self-send
      "wcp-trace 1\nprocesses 2\nsend 0 3\nend\n",       // receiver >= N
      "wcp-trace 1\nprocesses 2\nrecv 0\nend\n",         // recv before send
      "wcp-trace 1\nprocesses 2\nsend 0 1\nrecv 1\nend\n",  // unsent id
      "wcp-trace 1\nprocesses 2\nsend 0 1\nrecv -1\nend\n", // negative id
      "wcp-trace 1\nprocesses 2\nsend 0 1\nrecv 0\nrecv 0\nend\n",  // double
      "wcp-trace 1\nprocesses 2\nmark 0\nend\n",         // missing value
      "wcp-trace 1\nprocesses 2\nmark 0 1 1\nend\n",     // trailing token
      "wcp-trace 1\nprocesses 2\nmark zero 1\nend\n",    // unparseable pid
      "wcp-trace 1\nprocesses 2\nsend 0x0 1\nend\n",     // hex garbage
      "wcp-trace 1\nprocesses 2\nbogus 1 2\nend\n",      // unknown directive
      "wcp-trace 1\nprocesses 2\nsend 0 1\n",            // missing end
      "wcp-trace 1\nprocesses 2\nend 1\n",               // token after end
      "wcp-trace 1\nprocesses 2\nend\nmark 0 1\n",       // content after end
  };
  for (const char* text : corpus) {
    SCOPED_TRACE(text);
    try {
      (void)trace_from_string(text);
      FAIL() << "expected parse error";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace wcp
