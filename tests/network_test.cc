#include "sim/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wcp::sim {
namespace {

// A node that records everything it receives.
class Recorder final : public Node {
 public:
  void on_packet(Packet&& p) override {
    received.push_back({p.from, net().simulator().now(),
                        std::any_cast<int>(p.payload)});
  }
  struct Rx {
    NodeAddr from;
    SimTime at;
    int value;
  };
  std::vector<Rx> received;
};

// A node that sends a burst of messages at start.
class Burster final : public Node {
 public:
  Burster(NodeAddr to, int count) : to_(to), count_(count) {}
  void on_start() override {
    for (int i = 0; i < count_; ++i)
      send(to_, MsgKind::kApplication, i, /*bits=*/64);
  }
  void on_packet(Packet&&) override { FAIL() << "unexpected packet"; }

 private:
  NodeAddr to_;
  int count_;
};

NetworkConfig config(std::size_t n, LatencyModel lat, bool fifo_all,
                     std::uint64_t seed = 1) {
  NetworkConfig cfg;
  cfg.num_processes = n;
  cfg.latency = lat;
  cfg.fifo_all = fifo_all;
  cfg.seed = seed;
  return cfg;
}

TEST(Network, DeliversMessagesWithLatency) {
  Network net(config(2, LatencyModel::fixed_delay(3), false));
  auto rec = std::make_unique<Recorder>();
  auto* rec_ptr = rec.get();
  net.add_node(NodeAddr::app(ProcessId(1)), std::move(rec));
  net.add_node(NodeAddr::app(ProcessId(0)),
               std::make_unique<Burster>(NodeAddr::app(ProcessId(1)), 1));
  net.start_and_run();
  ASSERT_EQ(rec_ptr->received.size(), 1u);
  EXPECT_EQ(rec_ptr->received[0].at, 3);
  EXPECT_EQ(rec_ptr->received[0].value, 0);
}

TEST(Network, AppToMonitorIsAlwaysFifo) {
  // With high-variance latency, messages to a monitor must still arrive in
  // send order.
  Network net(config(2, LatencyModel::uniform(1, 50), /*fifo_all=*/false, 7));
  auto rec = std::make_unique<Recorder>();
  auto* rec_ptr = rec.get();
  net.add_node(NodeAddr::monitor(ProcessId(0)), std::move(rec));
  net.add_node(NodeAddr::app(ProcessId(0)),
               std::make_unique<Burster>(NodeAddr::monitor(ProcessId(0)), 30));
  net.start_and_run();
  ASSERT_EQ(rec_ptr->received.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(rec_ptr->received[i].value, i);
}

TEST(Network, MonitorToMonitorNotFifoByDefault) {
  // Deliberately racy channel: with uniform latency and many messages, some
  // reordering should appear on a non-FIFO monitor->monitor channel.
  Network net(config(2, LatencyModel::uniform(1, 50), /*fifo_all=*/false, 3));
  auto rec = std::make_unique<Recorder>();
  auto* rec_ptr = rec.get();
  net.add_node(NodeAddr::monitor(ProcessId(1)), std::move(rec));

  class MonBurster final : public Node {
   public:
    void on_start() override {
      for (int i = 0; i < 40; ++i)
        send(NodeAddr::monitor(ProcessId(1)), MsgKind::kPoll, i, 64);
    }
    void on_packet(Packet&&) override {}
  };
  net.add_node(NodeAddr::monitor(ProcessId(0)), std::make_unique<MonBurster>());
  net.start_and_run();
  ASSERT_EQ(rec_ptr->received.size(), 40u);
  bool reordered = false;
  for (std::size_t i = 1; i < rec_ptr->received.size(); ++i)
    if (rec_ptr->received[i].value < rec_ptr->received[i - 1].value)
      reordered = true;
  EXPECT_TRUE(reordered);
}

TEST(Network, FifoAllForcesOrderEverywhere) {
  Network net(config(2, LatencyModel::uniform(1, 50), /*fifo_all=*/true, 3));
  auto rec = std::make_unique<Recorder>();
  auto* rec_ptr = rec.get();
  net.add_node(NodeAddr::monitor(ProcessId(1)), std::move(rec));

  class MonBurster final : public Node {
   public:
    void on_start() override {
      for (int i = 0; i < 40; ++i)
        send(NodeAddr::monitor(ProcessId(1)), MsgKind::kPoll, i, 64);
    }
    void on_packet(Packet&&) override {}
  };
  net.add_node(NodeAddr::monitor(ProcessId(0)), std::make_unique<MonBurster>());
  net.start_and_run();
  for (std::size_t i = 1; i < rec_ptr->received.size(); ++i)
    EXPECT_GT(rec_ptr->received[i].value, rec_ptr->received[i - 1].value);
}

TEST(Network, MetricsAttributeSendsByLayer) {
  Network net(config(2, LatencyModel::fixed_delay(1), false));
  net.add_node(NodeAddr::monitor(ProcessId(0)), std::make_unique<Recorder>());
  net.add_node(NodeAddr::app(ProcessId(0)),
               std::make_unique<Burster>(NodeAddr::monitor(ProcessId(0)), 5));
  net.start_and_run();
  EXPECT_EQ(net.app_metrics().total_messages(), 5);
  EXPECT_EQ(net.app_metrics().total_bits(), 5 * 64);
  EXPECT_EQ(net.monitor_metrics().total_messages(), 0);
}

TEST(Network, SendToUnknownNodeThrows) {
  Network net(config(2, LatencyModel::fixed_delay(1), false));
  net.add_node(NodeAddr::app(ProcessId(0)),
               std::make_unique<Burster>(NodeAddr::app(ProcessId(1)), 1));
  EXPECT_THROW(net.start_and_run(), std::invalid_argument);
}

TEST(Network, DuplicateNodeRejected) {
  Network net(config(1, LatencyModel::fixed_delay(1), false));
  net.add_node(NodeAddr::app(ProcessId(0)), std::make_unique<Recorder>());
  EXPECT_THROW(
      net.add_node(NodeAddr::app(ProcessId(0)), std::make_unique<Recorder>()),
      std::invalid_argument);
}

TEST(Network, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Network net(config(2, LatencyModel::exponential(6.0), false, 99));
    auto rec = std::make_unique<Recorder>();
    auto* rec_ptr = rec.get();
    net.add_node(NodeAddr::monitor(ProcessId(0)), std::move(rec));
    net.add_node(NodeAddr::app(ProcessId(0)),
                 std::make_unique<Burster>(NodeAddr::monitor(ProcessId(0)), 20));
    net.start_and_run();
    std::vector<SimTime> times;
    for (const auto& rx : rec_ptr->received) times.push_back(rx.at);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LatencyModel, SamplesAreAtLeastOne) {
  Rng rng(5);
  const auto models = {LatencyModel::fixed_delay(0),
                       LatencyModel::uniform(1, 4),
                       LatencyModel::exponential(0.3)};
  for (const auto& m : models)
    for (int i = 0; i < 200; ++i) EXPECT_GE(m.sample(rng), 1);
}

TEST(NodeAddr, IndexingIsDense) {
  const std::size_t N = 4;
  EXPECT_EQ(NodeAddr::app(ProcessId(2)).index(N), 2u);
  EXPECT_EQ(NodeAddr::monitor(ProcessId(2)).index(N), 6u);
  EXPECT_EQ(NodeAddr::coordinator().index(N), 8u);
}

}  // namespace
}  // namespace wcp::sim
