// Coverage for remaining public surfaces: split latency planes, the
// coordinator metrics slot, node timers, bimodal latency, result
// formatting, token wire sizes, and cross-feature combinations.
#include <gtest/gtest.h>

#include <sstream>

#include "detect/token_vc.h"
#include "sim/network.h"
#include "workload/random_workload.h"

namespace wcp {
namespace {

TEST(MonitorLatency, SeparatePlaneOnlyAffectsMonitorTraffic) {
  // One app->monitor message and one monitor->monitor message; the second
  // plane is 50x slower.
  struct Echo final : public sim::Node {
    void on_packet(sim::Packet&& p) override {
      received_at.push_back(net().simulator().now());
      if (p.from.role == sim::NodeRole::kApplication)
        send(sim::NodeAddr::monitor(ProcessId(1)), MsgKind::kToken, 0, 1);
    }
    std::vector<SimTime> received_at;
  };
  struct Pinger final : public sim::Node {
    void on_start() override {
      send(sim::NodeAddr::monitor(ProcessId(0)), MsgKind::kSnapshot, 0, 1);
    }
    void on_packet(sim::Packet&&) override {}
  };

  sim::NetworkConfig cfg;
  cfg.num_processes = 2;
  cfg.latency = sim::LatencyModel::fixed_delay(1);
  cfg.monitor_latency = sim::LatencyModel::fixed_delay(50);
  sim::Network net(cfg);
  auto echo0 = std::make_unique<Echo>();
  auto* e0 = echo0.get();
  auto echo1 = std::make_unique<Echo>();
  auto* e1 = echo1.get();
  net.add_node(sim::NodeAddr::monitor(ProcessId(0)), std::move(echo0));
  net.add_node(sim::NodeAddr::monitor(ProcessId(1)), std::move(echo1));
  net.add_node(sim::NodeAddr::app(ProcessId(0)), std::make_unique<Pinger>());
  net.start_and_run();
  ASSERT_EQ(e0->received_at.size(), 1u);
  ASSERT_EQ(e1->received_at.size(), 1u);
  EXPECT_EQ(e0->received_at[0], 1);       // app plane: fast
  EXPECT_EQ(e1->received_at[0], 1 + 50);  // monitor plane: slow
}

TEST(CoordinatorMetrics, SendsLandInTheExtraSlot) {
  struct Coord final : public sim::Node {
    void on_start() override {
      send(sim::NodeAddr::monitor(ProcessId(0)), MsgKind::kControl, 0, 8);
    }
    void on_packet(sim::Packet&&) override {}
  };
  struct Sink final : public sim::Node {
    void on_packet(sim::Packet&&) override {}
  };
  sim::NetworkConfig cfg;
  cfg.num_processes = 3;
  sim::Network net(cfg);
  net.add_node(sim::NodeAddr::coordinator(), std::make_unique<Coord>());
  net.add_node(sim::NodeAddr::monitor(ProcessId(0)), std::make_unique<Sink>());
  net.start_and_run();
  // Coordinator's slot is index N in the monitor metrics.
  EXPECT_EQ(net.monitor_metrics().at(ProcessId(3)).total_messages(), 1);
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(net.monitor_metrics().at(ProcessId(p)).total_messages(), 0);
}

TEST(NodeTimers, AfterFiresAtTheRightVirtualTime) {
  struct Timed final : public sim::Node {
    void on_start() override {
      after(7, [this] { fired_at = net().simulator().now(); });
    }
    void on_packet(sim::Packet&&) override {}
    SimTime fired_at = -1;
  };
  sim::NetworkConfig cfg;
  cfg.num_processes = 1;
  sim::Network net(cfg);
  auto node = std::make_unique<Timed>();
  auto* ptr = node.get();
  net.add_node(sim::NodeAddr::app(ProcessId(0)), std::move(node));
  net.start_and_run();
  EXPECT_EQ(ptr->fired_at, 7);
}

TEST(BimodalLatency, MixesFastAndSpikes) {
  Rng rng(3);
  const auto m = sim::LatencyModel::bimodal(2, 0.2, 100);
  int fast = 0, spikes = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime d = m.sample(rng);
    ASSERT_TRUE(d == 2 || d == 100);
    (d == 2 ? fast : spikes)++;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / 2000.0, 0.2, 0.05);
  EXPECT_GT(fast, 0);
}

TEST(DetectionResult, StreamFormat) {
  detect::DetectionResult r;
  r.detected = true;
  r.cut = {2, 5};
  r.detect_time = 42;
  r.end_time = 50;
  r.token_hops = 7;
  std::ostringstream oss;
  oss << r;
  EXPECT_EQ(oss.str(), "DETECTED cut=[2,5] t_detect=42 t_end=50 hops=7");

  detect::DetectionResult none;
  std::ostringstream oss2;
  oss2 << none;
  EXPECT_EQ(oss2.str(), "not-detected t_detect=0 t_end=0 hops=0");
}

TEST(VcToken, WireSizeWithAndWithoutCandidateClocks) {
  detect::VcToken tok(4);
  // Paper token: G (4 words) + color (4 bits).
  EXPECT_EQ(tok.bits(false), 4 * 64 + 4);
  // Multi-token variant adds 4 clocks of 4 words.
  EXPECT_EQ(tok.bits(true), 4 * 64 + 4 + 4 * 4 * 64);
}

TEST(CrossFeature, CompressionPlusHaltPlusFifoAll) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 4;
  spec.events_per_process = 12;
  spec.local_pred_prob = 0.35;
  spec.ensure_detectable = true;
  spec.seed = 77;
  const auto comp = workload::make_random(spec);

  detect::RunOptions o;
  o.seed = 4;
  o.latency = sim::LatencyModel::bimodal(1, 0.1, 60);
  o.fifo_all = true;
  o.compress_clocks = true;
  o.halt_on_detect = true;
  const auto r = detect::run_token_vc(comp, o);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, *comp.first_wcp_cut());
  EXPECT_EQ(r.frozen_cut.size(), comp.num_processes());
}

}  // namespace
}  // namespace wcp
