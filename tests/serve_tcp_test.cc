// Regression tests for the TCP transport's send path. The PR-9 bugfix:
// TcpTransport::send used to swallow every non-EINTR error mid-frame,
// silently dropping the frame tail — the peer's FrameAssembler then reads
// the next frame's bytes as the rest of the current one and the stream is
// desynced forever. These tests pin the fixed contract on real sockets
// (AF_UNIX socketpairs, so no ports and no flakes): a frame is delivered
// byte-identical and whole, or the sender gets an exception naming the
// error — never a silent truncation. The EAGAIN path of nonblocking
// sockets (the epoll event loop's mode) must buffer the tail, not drop it.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/tcp.h"

namespace wcp::serve {
namespace {

/// A connected AF_UNIX stream pair; optionally shrinks the first end's
/// send buffer so a big frame cannot be written in one go.
std::pair<int, int> make_socketpair(int sndbuf = 0) {
  int sv[2] = {-1, -1};
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  if (sndbuf > 0) {
    EXPECT_EQ(0, ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                              sizeof(sndbuf)));
  }
  return {sv[0], sv[1]};
}

/// A frame comfortably larger than any kernel socket buffer we configure.
std::vector<std::uint8_t> big_frame(std::size_t payload,
                                    std::uint64_t seq = 7) {
  return encode_frame(make_error(std::string(payload, 'x')), seq);
}

TEST(ServeTcp, SendToClosedPeerThrowsInsteadOfSilentlyDropping) {
  auto [a_fd, b_fd] = make_socketpair();
  TcpTransport a(a_fd);
  ::close(b_fd);

  // Pre-fix behavior: send() returned silently and the frame vanished.
  EXPECT_THROW(a.send(encode_frame(make_finish(), 0)), std::runtime_error);
  EXPECT_TRUE(a.closed());
  EXPECT_EQ(a.pending_out(), 0u);  // dead stream retains nothing
  // And it keeps failing loudly, not quietly.
  EXPECT_THROW(a.send(encode_frame(make_finish(), 1)), std::runtime_error);
}

TEST(ServeTcp, BlockingSendDeliversLargeFrameWhole) {
  auto [a_fd, b_fd] = make_socketpair(/*sndbuf=*/4096);
  TcpTransport a(a_fd);
  TcpTransport b(b_fd);

  const std::vector<std::uint8_t> frame = big_frame(300'000);
  // The reader drains concurrently; the blocking writer must push the
  // whole frame through the tiny kernel buffer.
  std::thread writer([&] { a.send(frame); });
  const std::optional<std::vector<std::uint8_t>> got =
      b.receive(/*block=*/true);
  writer.join();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);  // byte-identical, tail included
  EXPECT_EQ(a.pending_out(), 0u);
}

TEST(ServeTcp, NonblockingPartialWriteBuffersTheTail) {
  auto [a_fd, b_fd] = make_socketpair(/*sndbuf=*/4096);
  TcpTransport a(a_fd);
  TcpTransport b(b_fd);
  a.set_nonblocking();

  const std::vector<std::uint8_t> frame = big_frame(300'000);
  a.send(frame);  // kernel takes a prefix; the tail must be buffered
  EXPECT_GT(a.pending_out(), 0u);
  EXPECT_FALSE(a.closed());

  // Alternate reader drain and sender flush (what EPOLLOUT does) until
  // the whole frame crossed; no byte may be lost or reordered.
  std::optional<std::vector<std::uint8_t>> got;
  int rounds = 0;
  while (!got.has_value() && rounds++ < 100'000) {
    if (a.pending_out() > 0) a.flush();
    got = b.receive(/*block=*/false);
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_EQ(a.pending_out(), 0u);
  EXPECT_TRUE(a.flush());  // idempotent once drained

  // The stream stays framed: a second, small frame arrives intact too.
  const std::vector<std::uint8_t> next = encode_frame(make_finish(), 8);
  a.send(next);
  while (a.pending_out() > 0) a.flush();
  got = b.receive(/*block=*/false);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, next);
}

TEST(ServeTcp, ErrorAfterPartialWriteSurfacesOnFlush) {
  auto [a_fd, b_fd] = make_socketpair(/*sndbuf=*/4096);
  TcpTransport a(a_fd);
  a.set_nonblocking();

  a.send(big_frame(300'000));
  ASSERT_GT(a.pending_out(), 0u);

  ::close(b_fd);  // peer dies mid-frame
  // Draining now hits EPIPE/ECONNRESET: the error must surface, the
  // connection must read as closed.
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000 && !a.flush(); ++i) {
        }
      },
      std::runtime_error);
  EXPECT_TRUE(a.closed());
  EXPECT_EQ(a.pending_out(), 0u);
}

TEST(ServeTcp, QueuedFramesStayInOrderAcrossBackpressure) {
  auto [a_fd, b_fd] = make_socketpair(/*sndbuf=*/4096);
  TcpTransport a(a_fd);
  TcpTransport b(b_fd);
  a.set_nonblocking();

  // Two big frames back to back while the kernel buffer is full: both
  // queue behind the same write buffer and must come out whole, in order.
  const std::vector<std::uint8_t> f1 = big_frame(100'000, 1);
  const std::vector<std::uint8_t> f2 = big_frame(100'000, 2);
  a.send(f1);
  a.send(f2);

  std::vector<std::vector<std::uint8_t>> got;
  int rounds = 0;
  while (got.size() < 2 && rounds++ < 100'000) {
    if (a.pending_out() > 0) a.flush();
    while (auto f = b.receive(/*block=*/false)) got.push_back(*f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], f1);
  EXPECT_EQ(got[1], f2);
}

TEST(ServeTcp, TryAcceptReturnsNullWhenNothingPending) {
  std::unique_ptr<TcpListener> listener;
  try {
    listener = std::make_unique<TcpListener>(0);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }
  listener->set_nonblocking();
  bool pressure = true;
  EXPECT_EQ(listener->try_accept(&pressure), nullptr);
  EXPECT_FALSE(pressure);

  // And with a pending connection it hands it over.
  const auto client = tcp_connect("127.0.0.1", listener->port());
  std::unique_ptr<TcpTransport> conn;
  for (int i = 0; i < 1000 && !conn; ++i) {
    conn = listener->try_accept();
    if (!conn) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(conn, nullptr);
}

}  // namespace
}  // namespace wcp::serve
