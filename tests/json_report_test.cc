// The observability layer: json::Writer formatting, json::parse round
// trips, metrics serialization, and the determinism contract of the
// wcp-run-report records ("identical (computation, seed, latency model) ->
// byte-identical report modulo wall-clock").
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <sstream>

#include "common/json.h"
#include "common/metrics.h"
#include "detect/report.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp {
namespace {

std::string render(const std::function<void(json::Writer&)>& body,
                   int indent = 0) {
  std::ostringstream os;
  json::Writer w(os, indent);
  body(w);
  EXPECT_TRUE(w.complete());
  return os.str();
}

TEST(JsonWriter, CompactObjectAndArray) {
  const auto s = render([](json::Writer& w) {
    w.begin_object();
    w.field("a", 1).field("b", true).field("c", nullptr);
    w.key("list").begin_array().value(1).value(2.5).value("x").end_array();
    w.end_object();
  });
  EXPECT_EQ(s, R"({"a":1,"b":true,"c":null,"list":[1,2.5,"x"]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  const auto s = render([](json::Writer& w) {
    w.begin_object();
    w.field("k", std::string_view("a\"b\\c\n\t\x01z"));
    w.end_object();
  });
  EXPECT_EQ(s, "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001z\"}");
}

TEST(JsonWriter, DoublesUseShortestRoundTrip) {
  const auto s = render([](json::Writer& w) {
    w.begin_array();
    w.value(0.1).value(1.0).value(-2.5e300);
    w.end_array();
  });
  EXPECT_EQ(s, "[0.1,1,-2.5e+300]");
}

TEST(JsonWriter, IntegralDoublesAvoidExponentNotation) {
  // Counters that pass through double (1e5 explored cuts, ...) must print
  // as plain integers up to 2^53; beyond that, shortest round-trip applies.
  const auto s = render([](json::Writer& w) {
    w.begin_array();
    w.value(100000.0).value(1e7).value(-42.0).value(9007199254740992.0);
    w.value(1.8446744073709552e19);  // > 2^53: shortest round-trip applies
    w.end_array();
  });
  EXPECT_EQ(s, "[100000,10000000,-42,9007199254740992,18446744073709551616]");
  // And they re-parse as exact integers.
  const auto v = json::parse("[100000,10000000]");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->array[0].integer, 100000);
  EXPECT_EQ(v->array[1].integer, 10000000);
}

TEST(JsonWriter, NonFiniteDoublesClampToNullAndCount) {
  std::ostringstream os;
  json::Writer w(os, 0);
  w.begin_array();
  EXPECT_EQ(w.nonfinite_clamped(), 0);
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);  // finite values do not bump the counter
  w.end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), "[null,null,null,1.5]");
  EXPECT_EQ(w.nonfinite_clamped(), 3);
  // The clamped output still parses cleanly.
  EXPECT_TRUE(json::parse(os.str()).has_value());
}

TEST(JsonReport, FlatMetricsKeepIntegerTypes) {
  detect::ReportParams rp;
  rp.N = 4;
  rp.n = 4;
  rp.m = 10;
  std::ostringstream os;
  json::Writer w(os, 0);
  detect::write_run_report(
      w, "test:flat", rp,
      {{"lattice_cuts", std::int64_t{100000}},
       {"token_work", std::uint64_t{10000000}},
       {"blowup", 0.5}},
      /*bound=*/1e7, /*ratio=*/std::nullopt);
  const auto v = json::parse(os.str());
  ASSERT_TRUE(v.has_value());
  const auto* metrics = v->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("lattice_cuts")->kind, json::Value::Kind::kInt);
  EXPECT_EQ(metrics->find("lattice_cuts")->integer, 100000);
  EXPECT_EQ(metrics->find("token_work")->integer, 10000000);
  EXPECT_DOUBLE_EQ(metrics->find("blowup")->as_number(), 0.5);
  // The double-typed bound also renders without exponent notation now.
  EXPECT_EQ(v->find("bound")->kind, json::Value::Kind::kInt);
  EXPECT_EQ(v->find("bound")->integer, 10000000);
  EXPECT_EQ(os.str().find("e+"), std::string::npos);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  const std::string doc =
      R"({"schema":"x/1","n":3,"pi":3.25,"ok":true,"none":null,)"
      R"("arr":[1,2,3],"nested":{"deep":[{"a":1}]}})";
  const auto v = json::parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->dump(0), doc);  // parse -> dump is the identity on our output
  ASSERT_NE(v->find("n"), nullptr);
  EXPECT_EQ(v->find("n")->integer, 3);
  EXPECT_DOUBLE_EQ(v->find("pi")->as_number(), 3.25);
  EXPECT_EQ(v->find("arr")->array.size(), 3u);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,2", R"({"a":})", "tru", "1 2", R"({"a" 1})",
        R"({"a":1,})", "[1,]", "\"unterminated"}) {
    EXPECT_FALSE(json::parse(bad).has_value()) << bad;
  }
}

TEST(JsonParse, KeepsInsertionOrderAndErases) {
  auto v = json::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "z");
  EXPECT_EQ(v->object[2].first, "m");
  EXPECT_TRUE(v->erase("a"));
  EXPECT_FALSE(v->erase("a"));
  EXPECT_EQ(v->dump(0), R"({"z":1,"m":3})");
}

TEST(JsonReport, MetricsExportCarriesAllKinds) {
  Metrics m(2);
  m.at(ProcessId(0))
      .messages_sent[static_cast<std::size_t>(MsgKind::kToken)] = 4;
  m.at(ProcessId(1)).work_units = 7;
  const auto s = render([&](json::Writer& w) { m.write_json(w); }, 0);
  const auto v = json::parse(s);
  ASSERT_TRUE(v.has_value());
  const auto* msgs = v->find("messages");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->find("token")->integer, 4);
  EXPECT_EQ(msgs->find("total")->integer, 4);
  EXPECT_EQ(v->find("work_units")->integer, 7);
}

TEST(JsonReport, RunReportValidatesAgainstSchema) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 3;
  spec.events_per_process = 15;
  spec.ensure_detectable = true;
  spec.seed = 11;
  const auto comp = workload::make_random(spec);

  detect::RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 6);
  const auto r = detect::run_token_vc(comp, o);

  detect::ReportParams rp;
  rp.N = 5;
  rp.n = 3;
  rp.m = comp.max_messages_per_process();
  rp.seed = 3;
  const auto s = detect::run_report_string("test:token", rp, r, 100.0, 0.5);
  const auto v = json::parse(s);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("schema")->string, detect::kRunReportSchema);
  EXPECT_EQ(v->find("bench")->string, "test:token");
  EXPECT_EQ(v->find("params")->find("N")->integer, 5);
  EXPECT_EQ(v->find("params")->find("seed")->integer, 3);
  const auto* metrics = v->find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* k : {"detected", "messages", "bits", "work_units",
                        "token_hops", "detect_time", "result"}) {
    EXPECT_NE(metrics->find(k), nullptr) << k;
  }
  const auto* sim = metrics->find("result")->find("sim");
  ASSERT_NE(sim, nullptr);
  EXPECT_GT(sim->find("events_processed")->integer, 0);
  EXPECT_GT(sim->find("peak_queue_depth")->integer, 0);
  EXPECT_DOUBLE_EQ(v->find("bound")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(v->find("ratio")->as_number(), 0.5);
}

TEST(JsonReport, IdenticalRunsProduceByteIdenticalReports) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 4;
  spec.events_per_process = 20;
  spec.seed = 23;
  const auto comp = workload::make_random(spec);

  detect::RunOptions o;
  o.seed = 9;
  o.latency = sim::LatencyModel::uniform(1, 6);

  detect::ReportParams rp;
  rp.N = 6;
  rp.n = 4;
  rp.m = comp.max_messages_per_process();
  rp.seed = 9;

  // Two independent end-to-end runs. With wall-clock excluded the rendered
  // record is a pure function of (computation, seed, latency model).
  const auto a = detect::run_report_string(
      "det", rp, detect::run_token_vc(comp, o), std::nullopt, std::nullopt,
      /*include_wall_clock=*/false);
  const auto b = detect::run_report_string(
      "det", rp, detect::run_token_vc(comp, o), std::nullopt, std::nullopt,
      /*include_wall_clock=*/false);
  EXPECT_EQ(a, b);

  // With wall-clock included, stripping the one nondeterministic field
  // restores byte equality.
  auto strip = [&]() {
    auto v = json::parse(detect::run_report_string(
        "det", rp, detect::run_token_vc(comp, o), std::nullopt,
        std::nullopt));
    EXPECT_TRUE(v.has_value());
    auto* metrics = const_cast<json::Value*>(v->find("metrics"));
    auto* result = const_cast<json::Value*>(metrics->find("result"));
    auto* sim = const_cast<json::Value*>(result->find("sim"));
    EXPECT_TRUE(sim->erase("wall_ms"));
    return v->dump();
  };
  EXPECT_EQ(strip(), strip());
}

}  // namespace
}  // namespace wcp
