#include "app/instrument.h"

#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"

namespace wcp::app {
namespace {

TEST(Instrument, VectorClockFollowsFig2Rules) {
  sim::NetworkConfig cfg;
  cfg.num_processes = 2;
  sim::Network net(cfg);

  // Minimal sink so snapshot sends have a destination.
  class Sink final : public sim::Node {
   public:
    void on_packet(sim::Packet&&) override { ++count; }
    int count = 0;
  };
  net.add_node(sim::NodeAddr::monitor(ProcessId(0)), std::make_unique<Sink>());

  Instrument::Config ic;
  ic.vector_clock_mode = true;
  ic.predicate_width = 2;
  ic.pred_slot = 0;
  ic.monitor = sim::NodeAddr::monitor(ProcessId(0));
  Instrument inst(net, ProcessId(0), ic);

  EXPECT_EQ(inst.vclock(), VectorClock(std::vector<StateIndex>{1, 0}));
  const ClockHeader h = inst.on_send(ProcessId(1));
  EXPECT_EQ(h.vclock, VectorClock(std::vector<StateIndex>{1, 0}));
  EXPECT_EQ(inst.vclock(), VectorClock(std::vector<StateIndex>{2, 0}));

  ClockHeader incoming;
  incoming.vclock = VectorClock(std::vector<StateIndex>{1, 5});
  inst.on_receive(ProcessId(1), incoming);
  EXPECT_EQ(inst.vclock(), VectorClock(std::vector<StateIndex>{3, 5}));
}

TEST(Instrument, SnapshotFirstflagSemantics) {
  sim::NetworkConfig cfg;
  cfg.num_processes = 1;
  sim::Network net(cfg);
  class Sink final : public sim::Node {
   public:
    void on_packet(sim::Packet&& p) override {
      if (p.kind == MsgKind::kSnapshot) ++count;
    }
    int count = 0;
  };
  auto sink = std::make_unique<Sink>();
  auto* sink_ptr = sink.get();
  net.add_node(sim::NodeAddr::monitor(ProcessId(0)), std::move(sink));

  Instrument::Config ic;
  ic.vector_clock_mode = false;  // DD mode, but pred_slot set
  ic.pred_slot = 0;
  ic.monitor = sim::NodeAddr::monitor(ProcessId(0));
  Instrument inst(net, ProcessId(0), ic);

  inst.set_predicate(true);   // snapshot 1 (state 1)
  inst.set_predicate(true);   // same state: suppressed
  inst.set_predicate(false);
  inst.set_predicate(true);   // still same state: suppressed (already sent)
  net.simulator().run();
  EXPECT_EQ(sink_ptr->count, 1);

  (void)inst.on_send(ProcessId(0));  // new state; predicate still true
  net.simulator().run();
  EXPECT_EQ(sink_ptr->count, 2);
}

TEST(Recorder, ReconstructsComputation) {
  Recorder rec(2);
  rec.set_predicate_processes({ProcessId(0), ProcessId(1)});
  rec.record_pred(ProcessId(0), true);
  const auto id = rec.record_send(ProcessId(0), ProcessId(1));
  rec.record_receive(id);
  rec.record_pred(ProcessId(1), true);
  rec.record_pred(ProcessId(0), true);
  const auto c = rec.build();
  EXPECT_EQ(c.num_states(ProcessId(0)), 2);
  EXPECT_EQ(c.num_states(ProcessId(1)), 2);
  EXPECT_EQ(c.first_wcp_cut(), (std::vector<StateIndex>{2, 2}));
}

// A miniature live application (two ping-pong peers + a relay) whose
// detection must match the recorded computation's oracle across seeds.
struct PingMsg {
  ClockHeader hdr;
};

class Peer final : public sim::Node {
 public:
  Peer(Instrument::Config icfg, ProcessId other, int rounds, bool starts)
      : icfg_(std::move(icfg)), other_(other), rounds_(rounds),
        starts_(starts) {}

  void on_start() override {
    inst_.emplace(net(), pid(), icfg_);
    inst_->set_predicate(false);
    if (starts_) ping();
  }

  void on_packet(sim::Packet&& p) override {
    auto msg = std::any_cast<PingMsg>(std::move(p.payload));
    inst_->on_receive(p.from.pid, msg.hdr);
    // Predicate: "waiting" — true in states where we've handled an even
    // number of messages (an arbitrary but deterministic local condition).
    ++handled_;
    inst_->set_predicate(handled_ % 2 == 0);
    if (rounds_-- > 0) ping();
  }

 private:
  void ping() {
    PingMsg msg{inst_->on_send(other_)};
    inst_->set_predicate(handled_ % 2 == 0);
    send(sim::NodeAddr::app(other_), MsgKind::kApplication, msg,
         msg.hdr.bits());
  }

  Instrument::Config icfg_;
  std::optional<Instrument> inst_;
  ProcessId other_;
  int rounds_;
  bool starts_;
  int handled_ = 0;
};

TEST(Instrument, LiveDetectionMatchesRecordedOracle) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::NetworkConfig cfg;
    cfg.num_processes = 2;
    cfg.latency = sim::LatencyModel::uniform(1, 5);
    cfg.seed = seed;
    sim::Network net(cfg);

    auto recorder = std::make_shared<Recorder>(2);
    const std::vector<ProcessId> preds{ProcessId(0), ProcessId(1)};
    recorder->set_predicate_processes(preds);

    for (int p = 0; p < 2; ++p) {
      Instrument::Config ic;
      ic.vector_clock_mode = true;
      ic.predicate_width = 2;
      ic.pred_slot = p;
      ic.monitor = sim::NodeAddr::monitor(ProcessId(p));
      ic.recorder = recorder;
      net.add_node(sim::NodeAddr::app(ProcessId(p)),
                   std::make_unique<Peer>(ic, ProcessId(1 - p), 4, p == 0));
    }
    auto shared = detect::install_token_vc_monitors(net, preds);
    net.start_and_run();

    const auto recorded = recorder->build();
    const auto oracle = recorded.first_wcp_cut();
    ASSERT_EQ(shared->detected, oracle.has_value()) << "seed " << seed;
    if (oracle) EXPECT_EQ(shared->cut, *oracle) << "seed " << seed;
  }
}

TEST(Instrument, LiveDirectDependenceDetectionMatchesRecordedOracle) {
  // The same ping-pong pair, but instrumented in direct-dependence mode
  // with install_dd_monitors: scalar clocks, dependence lists, red chain.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::NetworkConfig cfg;
    cfg.num_processes = 2;
    cfg.latency = sim::LatencyModel::uniform(1, 5);
    cfg.seed = seed + 70;
    sim::Network net(cfg);

    auto recorder = std::make_shared<Recorder>(2);
    const std::vector<ProcessId> preds{ProcessId(0), ProcessId(1)};
    recorder->set_predicate_processes(preds);

    for (int p = 0; p < 2; ++p) {
      Instrument::Config ic;
      ic.vector_clock_mode = false;  // §4.1 instrumentation
      ic.pred_slot = p;
      ic.monitor = sim::NodeAddr::monitor(ProcessId(p));
      ic.recorder = recorder;
      net.add_node(sim::NodeAddr::app(ProcessId(p)),
                   std::make_unique<Peer>(ic, ProcessId(1 - p), 4, p == 0));
    }
    auto inst = detect::install_dd_monitors(net, 2);
    net.start_and_run();

    const auto recorded = recorder->build();
    const auto oracle = recorded.first_wcp_cut_all_processes();
    ASSERT_EQ(inst.shared->detected, oracle.has_value()) << "seed " << seed;
    if (oracle) {
      for (std::size_t p = 0; p < 2; ++p)
        EXPECT_EQ(inst.monitors[p]->G(), (*oracle)[p]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace wcp::app
