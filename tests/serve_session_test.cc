// Session-level tests of the streaming service (src/serve/session.h):
// protocol-state violations (each failing with the "wcp-stream parse
// error:" prefix), multi-tenant predicate multiplexing over one shared
// snapshot stream, and fault-tolerant delivery — a lossy, duplicating,
// reordering pipe must yield verdicts identical to a clean run.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/replay.h"
#include "serve/session.h"
#include "serve/transport.h"
#include "workload/random_workload.h"

namespace wcp::serve {
namespace {

/// Drives a session directly (no transport): feed() encodes with an
/// auto-incremented seq and applies; responses are collected.
struct DirectSession {
  ServeOptions opts;
  std::vector<Frame> out;
  Session session{opts, [this](std::vector<std::uint8_t> bytes) {
                    out.push_back(decode_frame(bytes));
                  }};
  std::uint64_t seq = 0;

  void feed(const Frame& f) {
    // seq advances only on success, so a frame after a rejected one reuses
    // its number (the rejected frame was never applied).
    session.on_frame(encode_frame(f, seq));
    ++seq;
  }
};

void expect_violation(DirectSession& s, const Frame& f,
                      const std::string& needle) {
  try {
    s.feed(f);
    FAIL() << "expected a violation containing: " << needle;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("wcp-stream parse error: ", 0), 0u) << msg;
    EXPECT_NE(msg.find(needle), std::string::npos) << msg;
  }
}

TEST(ServeSession, HappyPathSingleSubscription) {
  DirectSession s;
  s.feed(make_hello(2, 1));
  s.feed(make_subscribe(0, StreamAlgo::kChecker, 0));
  // Two concurrent true states: cut [1,1] is consistent (clocks [1,0],[0,1]).
  s.feed(make_snapshot(0, 1, {1, 0}));
  s.feed(make_snapshot(1, 1, {0, 1}));
  s.feed(make_finish());
  ASSERT_TRUE(s.session.finished());
  ASSERT_EQ(s.session.verdicts().size(), 1u);
  EXPECT_TRUE(s.session.verdicts()[0].detected);
  EXPECT_EQ(s.session.verdicts()[0].cut, (std::vector<StateIndex>{1, 1}));
  // Responses: one ack per frame + verdict + stats.
  int acks = 0, verdicts = 0, stats = 0;
  for (const Frame& f : s.out) {
    acks += f.type == FrameType::kAck;
    verdicts += f.type == FrameType::kVerdict;
    stats += f.type == FrameType::kStats;
  }
  EXPECT_EQ(acks, 5);
  EXPECT_EQ(verdicts, 1);
  EXPECT_EQ(stats, 1);
}

TEST(ServeSession, MultiTenantPredicateBits) {
  // One stream, three subscriptions on three predicate bits. Bit 0 is
  // always true, bit 1 true only in causally ordered states (never
  // concurrent), bit 2 never true.
  DirectSession s;
  s.feed(make_hello(2, 3));
  s.feed(make_subscribe(10, StreamAlgo::kToken, 0));
  s.feed(make_subscribe(11, StreamAlgo::kChecker, 1));
  s.feed(make_subscribe(12, StreamAlgo::kSlicer, 2));
  // P0: two states; P1 hears about P0's state 2 before its own state 2, so
  // (2 on P0, 2 on P1) is ordered, not concurrent: pred bit 1 only there.
  s.feed(make_snapshot(0, 0b001, {1, 0}));
  s.feed(make_snapshot(1, 0b001, {0, 1}));
  s.feed(make_snapshot(0, 0b011, {2, 0}));
  s.feed(make_snapshot(1, 0b011, {2, 2}));
  s.feed(make_finish());
  ASSERT_TRUE(s.session.finished());
  ASSERT_EQ(s.session.verdicts().size(), 3u);
  for (const VerdictBody& v : s.session.verdicts()) {
    if (v.sub_id == 10) {
      EXPECT_TRUE(v.detected);
      EXPECT_EQ(v.cut, (std::vector<StateIndex>{1, 1}));
    } else if (v.sub_id == 11) {
      // States (2,2) both satisfy bit 1 but are causally ordered: no
      // consistent cut exists.
      EXPECT_FALSE(v.detected) << "ordered states must not form a cut";
    } else {
      EXPECT_FALSE(v.detected);
    }
  }
  EXPECT_EQ(s.session.stats().subscriptions, 3);
}

TEST(ServeSession, OutOfOrderFramesAreResequenced) {
  ServeOptions opts;
  std::vector<Frame> out;
  Session session(opts, [&out](std::vector<std::uint8_t> bytes) {
    out.push_back(decode_frame(bytes));
  });
  const std::vector<Frame> frames = {
      make_hello(2, 1),
      make_subscribe(0, StreamAlgo::kChecker, 0),
      make_snapshot(0, 1, {1, 0}),
      make_snapshot(1, 1, {0, 1}),
      make_finish(),
  };
  // Deliver in a scrambled but gap-free order; duplicates sprinkled in.
  const std::vector<std::size_t> order = {1, 0, 0, 3, 2, 1, 4};
  for (const std::size_t i : order)
    session.on_frame(encode_frame(frames[i], i));
  ASSERT_TRUE(session.finished());
  ASSERT_EQ(session.verdicts().size(), 1u);
  EXPECT_TRUE(session.verdicts()[0].detected);
  EXPECT_GT(session.stats().resequenced, 0);
  EXPECT_GT(session.stats().duplicates, 0);
}

TEST(ServeSession, ReseqWindowOverflowFailsConnection) {
  ServeOptions opts;
  opts.reseq_window = 4;
  Session session(opts, [](std::vector<std::uint8_t>) {});
  session.on_frame(encode_frame(make_hello(1, 1), 0));
  try {
    // Frames 2..7 arrive while frame 1 is missing: the 5th stash bursts
    // the window.
    for (std::uint64_t seq = 2; seq <= 7; ++seq)
      session.on_frame(encode_frame(make_snapshot(0, 1, {1}), seq));
    FAIL() << "expected resequence window violation";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("resequence window exceeded"),
              std::string::npos);
  }
}

// ---- protocol-state violations ----------------------------------------

TEST(ServeSession, ViolationCorpus) {
  {
    DirectSession s;
    expect_violation(s, make_subscribe(0, StreamAlgo::kToken, 0),
                     "subscribe before hello");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 1));
    expect_violation(s, make_hello(2, 1), "duplicate hello");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 1));
    expect_violation(s, make_snapshot(2, 1, {1, 0}),
                     "process slot 2 out of range [0, 2)");
  }
  {
    // Non-monotone own component: slot 0 jumps from state 1 to state 3.
    DirectSession s;
    s.feed(make_hello(2, 1));
    s.feed(make_subscribe(0, StreamAlgo::kToken, 0));
    s.feed(make_snapshot(0, 1, {1, 0}));
    expect_violation(s, make_snapshot(0, 1, {3, 0}),
                     "non-monotone clock on slot 0: own component 3");
  }
  {
    // Clock component decreasing vs the previous snapshot on the slot.
    DirectSession s;
    s.feed(make_hello(2, 1));
    s.feed(make_subscribe(0, StreamAlgo::kToken, 0));
    s.feed(make_snapshot(0, 1, {1, 5}));
    expect_violation(s, make_snapshot(0, 1, {2, 4}),
                     "non-monotone clock on slot 0: component 1");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 1));
    s.feed(make_subscribe(0, StreamAlgo::kToken, 0));
    expect_violation(s, make_subscribe(0, StreamAlgo::kChecker, 0),
                     "subscription id 0 reused");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 2));
    expect_violation(s, make_subscribe(0, StreamAlgo::kToken, 2),
                     "predicate index 2 out of range");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 1));
    s.feed(make_subscribe(0, StreamAlgo::kToken, 0));
    s.feed(make_snapshot(0, 1, {1, 0}));
    expect_violation(s, make_subscribe(1, StreamAlgo::kToken, 0),
                     "subscribe after the first snapshot");
  }
  {
    DirectSession s;
    s.feed(make_hello(2, 1));
    s.feed(make_eos(0));
    expect_violation(s, make_snapshot(0, 1, {1, 0}), "after its eos");
    expect_violation(s, make_eos(0), "duplicate eos on slot 0");
  }
  {
    DirectSession s;
    s.feed(make_hello(1, 1));
    s.feed(make_finish());
    expect_violation(s, make_snapshot(0, 1, {1}), "frame after finish");
  }
  {
    DirectSession s;
    expect_violation(s, make_ack(0), "server frame type ack");
  }
}

// ---- fault-tolerant delivery ------------------------------------------

TEST(ServeSession, FaultyPipeYieldsIdenticalVerdicts) {
  const auto comp = workload::make_random([] {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 3;
    spec.events_per_process = 14;
    spec.seed = 1234;
    spec.ensure_detectable = true;
    return spec;
  }());

  ReplayOptions clean;
  for (const auto algo : {StreamAlgo::kToken, StreamAlgo::kChecker,
                          StreamAlgo::kLatticeOnline, StreamAlgo::kSlicer})
    clean.subs.push_back({algo, 0, -1});
  const ReplayResult base = replay_stream(comp, clean);
  ASSERT_EQ(base.verdicts.size(), 4u);
  ASSERT_EQ(base.pipe.dropped, 0);
  ASSERT_EQ(base.retransmits, 0);

  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    ReplayOptions faulty = clean;
    faulty.faults.plan.drop = 0.25;
    faulty.faults.plan.dup = 0.10;
    faulty.faults.plan.seed = seed;
    faulty.faults.reorder = 0.20;
    const ReplayResult r = replay_stream(comp, faulty);
    EXPECT_GT(r.pipe.dropped + r.pipe.duplicated + r.pipe.reordered, 0)
        << "fault plan did nothing (seed " << seed << ")";
    ASSERT_EQ(r.verdicts.size(), base.verdicts.size());
    for (std::size_t i = 0; i < base.verdicts.size(); ++i) {
      EXPECT_EQ(r.verdicts[i].sub_id, base.verdicts[i].sub_id);
      EXPECT_EQ(r.verdicts[i].detected, base.verdicts[i].detected);
      EXPECT_EQ(r.verdicts[i].cut, base.verdicts[i].cut)
          << "verdict diverged under faults (seed " << seed << ")";
    }
  }
}

TEST(ServeSession, DropExactIndicesRecovered) {
  const auto comp = workload::make_random([] {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 2;
    spec.events_per_process = 10;
    spec.seed = 55;
    return spec;
  }());
  ReplayOptions opts;
  opts.subs.push_back({StreamAlgo::kChecker, 0, -1});
  const ReplayResult base = replay_stream(comp, opts);

  ReplayOptions lossy = opts;
  lossy.faults.plan.drop_exact = {0, 1, 5, 9};  // hello + subscribe included
  const ReplayResult r = replay_stream(comp, lossy);
  EXPECT_EQ(r.pipe.dropped, 4);
  EXPECT_GT(r.retransmits, 0);
  ASSERT_EQ(r.verdicts.size(), base.verdicts.size());
  EXPECT_EQ(r.verdicts[0].detected, base.verdicts[0].detected);
  EXPECT_EQ(r.verdicts[0].cut, base.verdicts[0].cut);
}

}  // namespace
}  // namespace wcp::serve
