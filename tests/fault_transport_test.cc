// Fault-injection property tests: every online detector must reach the
// offline oracle's verdict and minimal cut when the network drops,
// duplicates, bursts, and partitions messages, and when the monitor that
// holds the token crashes mid-run. The detectors themselves are unchanged —
// the reliable transport (sim/reliable.h) restores the §2 channel
// assumptions and the token lease/heartbeat recovery (detect/token_vc,
// detect/multi_token) restores the single-token invariant across crashes.
#include <gtest/gtest.h>

#include <sstream>

#include "common/json.h"
#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/multi_token.h"
#include "detect/sliced.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

Computation random_case(std::uint64_t seed, std::size_t N = 5,
                        std::size_t n = 3, std::size_t events = 10) {
  workload::RandomSpec spec;
  spec.num_processes = N;
  spec.num_predicate = n;
  spec.events_per_process = events;
  spec.local_pred_prob = 0.3;
  spec.seed = seed;
  return workload::make_random(spec);
}

TEST(FaultTransport, AllDetectorsMatchOracleUnderLossDupAndPartition) {
  struct Condition {
    const char* name;
    sim::FaultPlan plan;
  };
  sim::FaultPlan partition = sim::FaultPlan::lossy(0.1, 3);
  partition.partitions.push_back({/*a=*/0, /*b=*/1, /*start=*/30, /*end=*/120});
  const Condition conditions[] = {
      {"drop10", sim::FaultPlan::lossy(0.1, 11)},
      {"drop30", sim::FaultPlan::lossy(0.3, 12)},
      {"drop20_dup10", sim::FaultPlan::lossy_dup(0.2, 0.1, 13)},
      {"flaky", sim::FaultPlan::flaky(14)},
      {"partition", partition},
  };

  for (const auto& cond : conditions) {
    std::int64_t drops_seen = 0, retransmits_seen = 0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto comp = random_case(seed + 100);
      const auto oracle = comp.first_wcp_cut();
      const auto oracle_full = comp.first_wcp_cut_all_processes();

      RunOptions o;
      o.seed = seed * 7 + 1;
      o.latency = sim::LatencyModel::uniform(1, 6);
      o.faults = cond.plan;
      o.faults.seed += seed;  // a fresh fault schedule per workload

      const auto token = run_token_vc(comp, o);
      ASSERT_EQ(token.detected, oracle.has_value())
          << cond.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(token.cut, *oracle) << cond.name << " seed " << seed;
      }
      drops_seen += token.faults.total_drops();
      retransmits_seen += token.faults.retransmits;

      MultiTokenOptions mt;
      mt.num_groups = 2;
      const auto multi = run_multi_token(comp, o, mt);
      ASSERT_EQ(multi.detected, oracle.has_value())
          << cond.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(multi.cut, *oracle) << cond.name << " seed " << seed;
      }

      const auto direct = run_direct_dep(comp, o);
      ASSERT_EQ(direct.detected, oracle.has_value())
          << cond.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(direct.full_cut, *oracle_full) << cond.name << " seed " << seed;
      }

      const auto central = run_centralized(comp, o);
      ASSERT_EQ(central.detected, oracle.has_value())
          << cond.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(central.cut, *oracle) << cond.name << " seed " << seed;
      }

      const auto sliced = run_slice_online(comp, o);
      ASSERT_EQ(sliced.detected, oracle.has_value())
          << cond.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(sliced.cut, *oracle) << cond.name << " seed " << seed;
      }
    }
    // The condition actually exercised the fault path.
    EXPECT_GT(drops_seen, 0) << cond.name;
    EXPECT_GT(retransmits_seen, 0) << cond.name;
  }
}

TEST(FaultTransport, TokenDetectorsSurviveHolderCrashOn50Seeds) {
  // The ISSUE acceptance criterion: drop=0.2, dup=0.05, plus one monitor
  // crash window that — depending on the seed — catches the token in
  // flight, held at the crashed monitor, or elsewhere. 50 randomized seeds,
  // both token detectors, verdict and cut must match the oracle every time.
  std::int64_t crashes_seen = 0, regenerations_seen = 0, heartbeats_seen = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto comp = random_case(seed + 500);
    const auto oracle = comp.first_wcp_cut();
    const auto preds = comp.predicate_processes();

    RunOptions o;
    o.seed = seed + 1;
    o.latency = sim::LatencyModel::uniform(1, 6);
    o.faults = sim::FaultPlan::lossy_dup(0.2, 0.05, seed + 21);
    // Crash the monitor of the first predicate process mid-run; it comes
    // back 30 time units later having lost all volatile state (the token,
    // if it held one).
    o.faults.crashes.push_back(
        {sim::NodeAddr::monitor(preds.front()), /*at=*/12, /*restart=*/42});

    const auto token = run_token_vc(comp, o);
    ASSERT_EQ(token.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) {
      EXPECT_EQ(token.cut, *oracle) << "seed " << seed;
    }
    crashes_seen += token.faults.crashes;
    regenerations_seen += token.faults.token_regenerations;
    heartbeats_seen += token.faults.heartbeats;

    MultiTokenOptions mt;
    mt.num_groups = 2;
    const auto multi = run_multi_token(comp, o, mt);
    ASSERT_EQ(multi.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) {
      EXPECT_EQ(multi.cut, *oracle) << "seed " << seed;
    }
    regenerations_seen += multi.faults.token_regenerations;
  }
  // The crash fires in every run still alive at t=12 (a handful of seeds
  // detect before the window opens), and across the sweep the crashes
  // actually cost tokens (regeneration fired) and holders heartbeated.
  EXPECT_GE(crashes_seen, 40);
  EXPECT_GT(regenerations_seen, 0);
  EXPECT_GT(heartbeats_seen, 0);
}

TEST(FaultTransport, PermanentMonitorCrashTerminatesWithoutFalsePositive) {
  // A monitor that never comes back can make detection impossible — but it
  // must never produce a wrong answer, and the simulation must drain
  // (recovery and retransmission both give up on forever-dead nodes).
  std::int64_t crashes_seen = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto comp = random_case(seed + 900);
    const auto oracle = comp.first_wcp_cut();
    const auto preds = comp.predicate_processes();

    RunOptions o;
    o.seed = seed + 3;
    o.latency = sim::LatencyModel::uniform(1, 4);
    o.faults = sim::FaultPlan::lossy(0.1, seed + 41);
    o.faults.crashes.push_back(
        {sim::NodeAddr::monitor(preds.back()), /*at=*/15, /*restart=*/-1});

    const auto token = run_token_vc(comp, o);
    // Soundness survives: a verdict of "detected" is always the oracle cut.
    if (token.detected) {
      ASSERT_TRUE(oracle.has_value()) << "seed " << seed;
      EXPECT_EQ(token.cut, *oracle) << "seed " << seed;
    }
    EXPECT_EQ(token.faults.restarts, 0) << "seed " << seed;
    crashes_seen += token.faults.crashes;
  }
  EXPECT_GT(crashes_seen, 0);  // the dead-monitor path actually ran
}

TEST(FaultTransport, CrashAndRestartCountersSurfaceInResult) {
  // A workload whose fault-free detection takes >100 time units, so a
  // 10-unit outage early in the run both crashes AND restarts the monitor
  // before the verdict lands.
  const auto comp = random_case(506);
  const auto preds = comp.predicate_processes();
  RunOptions o;
  o.seed = 7;
  o.latency = sim::LatencyModel::uniform(1, 6);
  o.faults = sim::FaultPlan::lossy_dup(0.2, 0.05, 27);
  o.faults.crashes.push_back(
      {sim::NodeAddr::monitor(preds.front()), /*at=*/10, /*restart=*/20});

  const auto r = run_token_vc(comp, o);
  EXPECT_EQ(r.faults.crashes, 1);
  EXPECT_EQ(r.faults.restarts, 1);
  EXPECT_GT(r.faults.total_drops(), 0);
  EXPECT_GT(r.faults.retransmits, 0);
  EXPECT_GT(r.faults.acks, 0);
}

TEST(FaultTransport, FaultsBlockIsDeterministicPerSeed) {
  const auto comp = random_case(13);
  const auto preds = comp.predicate_processes();
  RunOptions o;
  o.seed = 11;
  o.latency = sim::LatencyModel::uniform(1, 8);
  o.faults = sim::FaultPlan::lossy_dup(0.2, 0.05, 77);
  o.faults.crashes.push_back(
      {sim::NodeAddr::monitor(preds.front()), /*at=*/40, /*restart=*/100});

  const auto render = [](const DetectionResult& r) {
    std::ostringstream oss;
    json::Writer w(oss, 0);
    r.write_json(w, /*include_wall_clock=*/false);
    return oss.str();
  };

  const auto a = run_token_vc(comp, o);
  const auto b = run_token_vc(comp, o);
  ASSERT_TRUE(a.faults.any());
  EXPECT_EQ(render(a), render(b));  // byte-identical replay, faults included

  // A different fault seed must yield a different fault history.
  o.faults.seed = 78;
  const auto c = run_token_vc(comp, o);
  EXPECT_NE(render(a), render(c));
}

TEST(FaultTransport, FaultSpecRoundTripDrivesTheSameRun) {
  // The CLI-facing spec string parses back to an equivalent plan.
  const auto comp = random_case(21);
  RunOptions o;
  o.seed = 2;
  o.latency = sim::LatencyModel::uniform(1, 5);
  o.faults = sim::FaultPlan::parse("drop=0.2,dup=0.05,seed=7,crash=m0@40+60");
  EXPECT_EQ(sim::FaultPlan::parse(o.faults.to_string()).to_string(),
            o.faults.to_string());

  const auto a = run_token_vc(comp, o);
  RunOptions o2 = o;
  o2.faults = sim::FaultPlan::parse(o.faults.to_string());
  const auto b = run_token_vc(comp, o2);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.faults.total_drops(), b.faults.total_drops());
}

}  // namespace
}  // namespace wcp::detect
