#include "predicate/expr.h"

#include <gtest/gtest.h>

namespace wcp::pred {
namespace {

Env env_with(std::initializer_list<std::pair<const char*, std::int64_t>> kv) {
  Env e;
  for (const auto& [k, v] : kv) e.set(k, v);
  return e;
}

TEST(Expr, LiteralAndVariable) {
  const Env e = env_with({{"x", 5}});
  EXPECT_EQ(Expr::lit(7).eval(e), 7);
  EXPECT_EQ(Expr::var("x").eval(e), 5);
  EXPECT_EQ(Expr::var("missing").eval(e), 0);  // uninitialized => 0
}

TEST(Expr, Arithmetic) {
  const Env e = env_with({{"x", 3}, {"y", 4}});
  EXPECT_EQ((Expr::var("x") + Expr::var("y")).eval(e), 7);
  EXPECT_EQ((Expr::var("x") - Expr::var("y")).eval(e), -1);
  EXPECT_EQ((Expr::var("x") * Expr::var("y")).eval(e), 12);
  EXPECT_EQ((-Expr::var("x")).eval(e), -3);
}

TEST(Expr, Comparisons) {
  const Env e = env_with({{"x", 3}});
  EXPECT_TRUE((Expr::var("x") > Expr::lit(2)).holds(e));
  EXPECT_FALSE((Expr::var("x") > Expr::lit(3)).holds(e));
  EXPECT_TRUE((Expr::var("x") >= Expr::lit(3)).holds(e));
  EXPECT_TRUE((Expr::var("x") < Expr::lit(4)).holds(e));
  EXPECT_TRUE((Expr::var("x") <= Expr::lit(3)).holds(e));
  EXPECT_TRUE((Expr::var("x") == Expr::lit(3)).holds(e));
  EXPECT_TRUE((Expr::var("x") != Expr::lit(4)).holds(e));
}

TEST(Expr, BooleanConnectives) {
  const Env e = env_with({{"a", 1}, {"b", 0}});
  const Expr a = Expr::var("a"), b = Expr::var("b");
  EXPECT_TRUE((a || b).holds(e));
  EXPECT_FALSE((a && b).holds(e));
  EXPECT_TRUE((!b).holds(e));
  EXPECT_FALSE((!a).holds(e));
}

TEST(ExprParse, RespectsPrecedence) {
  const Env e = env_with({{"x", 2}, {"y", 3}});
  EXPECT_EQ(Expr::parse("x + y * 2").eval(e), 8);
  EXPECT_EQ(Expr::parse("(x + y) * 2").eval(e), 10);
  EXPECT_TRUE(Expr::parse("x < y && y < 10").holds(e));
  EXPECT_TRUE(Expr::parse("x > y || y == 3").holds(e));
  // && binds tighter than ||.
  EXPECT_TRUE(Expr::parse("1 || 0 && 0").holds(e));
}

TEST(ExprParse, UnaryOperators) {
  const Env e = env_with({{"x", 5}});
  EXPECT_EQ(Expr::parse("-x + 7").eval(e), 2);
  EXPECT_TRUE(Expr::parse("!(x == 4)").holds(e));
  EXPECT_FALSE(Expr::parse("!!0").holds(e));
}

TEST(ExprParse, ComparisonOperatorDisambiguation) {
  const Env e = env_with({{"x", 3}});
  EXPECT_TRUE(Expr::parse("x <= 3").holds(e));
  EXPECT_TRUE(Expr::parse("x >= 3").holds(e));
  EXPECT_TRUE(Expr::parse("x != 4").holds(e));
  EXPECT_FALSE(Expr::parse("x < 3").holds(e));
}

TEST(ExprParse, IdentifiersWithUnderscoresAndDigits) {
  const Env e = env_with({{"in_cs_2", 1}});
  EXPECT_TRUE(Expr::parse("in_cs_2 == 1").holds(e));
}

TEST(ExprParse, RejectsGarbage) {
  EXPECT_THROW(Expr::parse(""), std::invalid_argument);
  EXPECT_THROW(Expr::parse("x +"), std::invalid_argument);
  EXPECT_THROW(Expr::parse("(x"), std::invalid_argument);
  EXPECT_THROW(Expr::parse("x ? y"), std::invalid_argument);
  EXPECT_THROW(Expr::parse("1 2"), std::invalid_argument);
}

TEST(ExprParse, ErrorMentionsPosition) {
  try {
    Expr::parse("x + $");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

TEST(Expr, ToStringRoundTripsThroughParse) {
  const Env e = env_with({{"x", 2}, {"y", 7}});
  for (const char* text :
       {"x + y * 2", "(x < y) && (y != 0)", "!(x == 2) || y >= 7",
        "-x + 3 * (y - 1)"}) {
    const Expr original = Expr::parse(text);
    const Expr reparsed = Expr::parse(original.to_string());
    EXPECT_EQ(original.eval(e), reparsed.eval(e)) << text;
  }
}

TEST(Expr, DefaultConstructedIsFalse) {
  EXPECT_FALSE(Expr().holds(Env{}));
}

TEST(Expr, CopiesShareNoMutableState) {
  Expr a = Expr::parse("x + 1");
  Expr b = a;  // cheap shared-immutable copy
  Env e;
  e.set("x", 41);
  EXPECT_EQ(a.eval(e), 42);
  EXPECT_EQ(b.eval(e), 42);
}

}  // namespace
}  // namespace wcp::pred
