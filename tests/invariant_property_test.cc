// Online verification of the paper's correctness lemmas (DESIGN.md I1-I3,
// I5): observer hooks fire at every token movement and check the token
// state against the ground-truth causality of the computation.
#include <gtest/gtest.h>

#include <sstream>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 8);
  return o;
}

// Checks Lemma 3.1 on a token snapshot.
void check_lemma_3_1(const Computation& comp, const VcToken& tok,
                     const std::optional<std::vector<StateIndex>>& first_cut,
                     const std::string& label) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();

  for (std::size_t i = 0; i < n; ++i) {
    if (tok.G[i] == 0) continue;

    if (tok.color[i] == Color::kRed) {
      // Part 1: a red non-zero candidate happened before some G[j].
      bool dominated = false;
      for (std::size_t j = 0; j < n && !dominated; ++j) {
        if (j == i || tok.G[j] == 0) continue;
        if (comp.happened_before(preds[i], tok.G[i], preds[j], tok.G[j]))
          dominated = true;
      }
      EXPECT_TRUE(dominated)
          << label << ": red slot " << i << " (G=" << tok.G[i]
          << ") dominates nothing (Lemma 3.1.1)";
      // Part 4: no WCP cut contains (i, G[i]) — in particular the first cut
      // is strictly ahead of every red candidate.
      if (first_cut)
        EXPECT_LT(tok.G[i], (*first_cut)[i])
            << label << ": red slot " << i << " (Lemma 3.1.4)";
    } else {
      // Part 2: a green candidate happened before no other candidate.
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i || tok.G[k] == 0) continue;
        EXPECT_FALSE(
            comp.happened_before(preds[i], tok.G[i], preds[k], tok.G[k]))
            << label << ": green slot " << i << " happened before slot " << k
            << " (Lemma 3.1.2)";
      }
      // The candidate cut never overshoots the first WCP cut.
      if (first_cut)
        EXPECT_LE(tok.G[i], (*first_cut)[i])
            << label << ": slot " << i << " overshot the first cut";
    }
  }

  // Part 3: greens are pairwise concurrent.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      if (tok.color[i] != Color::kGreen || tok.color[j] != Color::kGreen)
        continue;
      if (tok.G[i] == 0 || tok.G[j] == 0) continue;
      EXPECT_TRUE(comp.concurrent(preds[i], tok.G[i], preds[j], tok.G[j]))
          << label << ": green slots " << i << "," << j
          << " not concurrent (Lemma 3.1.3)";
    }
}

class TokenVcInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenVcInvariants, Lemma31HoldsAtEveryTokenMove) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 5;
  spec.events_per_process = 15;
  spec.local_pred_prob = 0.3;
  spec.seed = seed;
  const auto comp = workload::make_random(spec);
  const auto first_cut = comp.first_wcp_cut();

  int observations = 0;
  auto observer = [&](const VcToken& tok, int holder, bool detecting) {
    ++observations;
    std::ostringstream label;
    label << "seed=" << seed << " holder=" << holder
          << " detecting=" << detecting << " obs=" << observations;
    check_lemma_3_1(comp, tok, first_cut, label.str());
    if (detecting) {
      for (std::size_t s = 0; s < tok.color.size(); ++s)
        EXPECT_EQ(tok.color[s], Color::kGreen);
    }
  };
  run_token_vc(comp, opts(seed + 1), observer);
  EXPECT_GT(observations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenVcInvariants,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(TokenVcInvariantsMutex, Lemma31OnDomainWorkload) {
  workload::MutexSpec spec;
  spec.num_clients = 3;
  spec.rounds_per_client = 5;
  spec.violation_prob = 0.4;
  spec.seed = 5;
  const auto mc = workload::make_mutex(spec);
  const auto first_cut = mc.computation.first_wcp_cut();
  auto observer = [&](const VcToken& tok, int, bool) {
    check_lemma_3_1(mc.computation, tok, first_cut, "mutex");
  };
  run_token_vc(mc.computation, opts(9), observer);
}

// Direct-dependence invariants at every handoff (serial mode, where the
// chain is quiescent at handoff): the candidate cut never overshoots the
// first full cut, and red candidates are strictly behind it.
class DdInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdInvariants, CandidatesNeverOvershootFirstCut) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 4;
  spec.events_per_process = 12;
  spec.local_pred_prob = 0.35;
  spec.seed = seed;
  const auto comp = workload::make_random(spec);
  const auto first_full = comp.first_wcp_cut_all_processes();

  auto inspector = [&](const std::vector<DdMonitor*>& monitors, ProcessId,
                       int) {
    if (!first_full) return;
    for (std::size_t p = 0; p < monitors.size(); ++p) {
      const auto* m = monitors[p];
      if (m->color() == Color::kRed) {
        // Eliminated-through threshold must stay strictly below the cut.
        EXPECT_LT(m->G(), (*first_full)[p]) << "seed=" << seed << " P" << p;
      } else {
        EXPECT_LE(m->G(), (*first_full)[p]) << "seed=" << seed << " P" << p;
      }
    }
  };
  run_direct_dep(comp, opts(seed + 1), {}, inspector);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdInvariants,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace wcp::detect
