#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace wcp::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(2); });
  s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.events_processed(), 3);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    s.schedule_at(7, [&order, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) s.schedule_after(1, chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), 9);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator s;
  s.schedule_at(5, [] {});
  s.step();
  EXPECT_THROW(s.schedule_at(4, [] {}), std::invalid_argument);
}

TEST(Simulator, StepOnEmptyReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.step());
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator s;
  int ran = 0;
  s.schedule_at(1, [&] {
    ++ran;
    s.stop();
  });
  s.schedule_at(2, [&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(s.idle());  // the second event is still pending
}

TEST(Simulator, MaxEventsBound) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [] {});
  s.run(/*max_events=*/4);
  EXPECT_EQ(s.events_processed(), 4);
}

}  // namespace
}  // namespace wcp::sim
