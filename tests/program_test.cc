#include "predicate/program.h"

#include <gtest/gtest.h>

#include "detect/token_vc.h"

namespace wcp::pred {
namespace {

TEST(ProgramBuilder, VariableAssignmentsDrivePredicates) {
  ProgramBuilder pb(2);
  pb.local_predicate(ProcessId(0), Expr::parse("x > 0"));
  pb.local_predicate(ProcessId(1), Expr::parse("y == 2"));

  pb.set(ProcessId(0), "x", 1);   // P0 state 1 true
  pb.transfer(ProcessId(0), ProcessId(1));
  pb.set(ProcessId(1), "y", 2);   // P1 state 2 true

  const auto c = pb.build();
  EXPECT_TRUE(c.local_pred(ProcessId(0), 1));
  EXPECT_TRUE(c.local_pred(ProcessId(0), 2));  // x carries over
  EXPECT_FALSE(c.local_pred(ProcessId(1), 1));
  EXPECT_TRUE(c.local_pred(ProcessId(1), 2));
}

TEST(ProgramBuilder, StickyWithinState) {
  // The predicate held transiently inside a state: the state stays marked
  // (snapshot semantics: "becomes true" fires the snapshot).
  ProgramBuilder pb(2);
  pb.local_predicate(ProcessId(0), Expr::parse("x == 1"));
  pb.set(ProcessId(0), "x", 1);  // true...
  pb.set(ProcessId(0), "x", 5);  // ...then false again, same state
  const auto c = pb.build();
  EXPECT_TRUE(c.local_pred(ProcessId(0), 1));
}

TEST(ProgramBuilder, CarriedValueMarksNewStates) {
  ProgramBuilder pb(2);
  pb.local_predicate(ProcessId(0), Expr::parse("x > 0"));
  pb.set(ProcessId(0), "x", 3);
  pb.transfer(ProcessId(0), ProcessId(1));  // P0 state 2: x still 3
  pb.transfer(ProcessId(0), ProcessId(1));  // P0 state 3
  const auto c = pb.build();
  for (StateIndex k = 1; k <= 3; ++k)
    EXPECT_TRUE(c.local_pred(ProcessId(0), k)) << k;
}

TEST(ProgramBuilder, ReceiverStateReevaluated) {
  ProgramBuilder pb(2);
  pb.local_predicate(ProcessId(1), Expr::parse("got > 0"));
  pb.set(ProcessId(1), "got", 1);
  // A fresh state on P1 created by a receive must re-evaluate to true.
  pb.transfer(ProcessId(0), ProcessId(1));
  const auto c = pb.build();
  EXPECT_TRUE(c.local_pred(ProcessId(1), 2));
}

TEST(ProgramBuilder, PredicateOrderDefinesSlots) {
  ProgramBuilder pb(3);
  pb.local_predicate(ProcessId(2), Expr::parse("a > 0"));
  pb.local_predicate(ProcessId(0), Expr::parse("b > 0"));
  const auto c = pb.build();
  ASSERT_EQ(c.predicate_processes().size(), 2u);
  EXPECT_EQ(c.predicate_processes()[0], ProcessId(2));
  EXPECT_EQ(c.predicate_processes()[1], ProcessId(0));
  EXPECT_EQ(c.predicate_slot(ProcessId(1)), -1);  // relay
}

TEST(ProgramBuilder, DuplicatePredicateRejected) {
  ProgramBuilder pb(2);
  pb.local_predicate(ProcessId(0), Expr::parse("x > 0"));
  EXPECT_THROW(pb.local_predicate(ProcessId(0), Expr::parse("x > 1")),
               std::invalid_argument);
}

TEST(ProgramBuilder, EndToEndDetection) {
  // The §2 mutual-exclusion example written at the variable level:
  // in_cs flips to 1 inside the critical section.
  ProgramBuilder pb(3);  // 2 clients + server
  const ProcessId c0(0), c1(1), server(2);
  pb.local_predicate(c0, Expr::parse("in_cs == 1"));
  pb.local_predicate(c1, Expr::parse("in_cs == 1"));

  // Round 1 (correct): c0 then c1, serialized through the server.
  pb.transfer(c0, server);            // request
  pb.transfer(server, c0);            // grant
  pb.set(c0, "in_cs", 1);
  pb.set(c0, "in_cs", 0);
  pb.transfer(c0, server);            // release
  pb.transfer(c1, server);
  pb.transfer(server, c1);
  pb.set(c1, "in_cs", 1);
  pb.set(c1, "in_cs", 0);
  pb.transfer(c1, server);

  // Round 2 (buggy): both granted at once.
  pb.transfer(c0, server);
  pb.transfer(c1, server);
  pb.transfer(server, c0);
  pb.transfer(server, c1);
  pb.set(c0, "in_cs", 1);
  pb.set(c1, "in_cs", 1);

  const auto comp = pb.build();
  const auto cut = comp.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  // Both CS states of round 2 (after their round-2 grants).
  EXPECT_TRUE(comp.is_consistent_cut(comp.predicate_processes(), *cut));

  detect::RunOptions opts;
  opts.seed = 2;
  const auto r = detect::run_token_vc(comp, opts);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, *cut);
}

TEST(ProgramBuilder, RejectsBadProcessIds) {
  ProgramBuilder pb(2);
  EXPECT_THROW(pb.set(ProcessId(5), "x", 1), std::invalid_argument);
  EXPECT_THROW(pb.local_predicate(ProcessId(-1), Expr::lit(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wcp::pred
