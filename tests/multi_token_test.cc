#include "detect/multi_token.h"

#include <gtest/gtest.h>

#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

class MultiTokenGroups : public ::testing::TestWithParam<int> {};

TEST_P(MultiTokenGroups, MatchesOracleOnRandomRuns) {
  const int g = GetParam();
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 6;
    spec.events_per_process = 15;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    MultiTokenOptions mt;
    mt.num_groups = g;
    const auto r = run_multi_token(comp, opts(seed + 1), mt);
    ASSERT_EQ(r.detected, expect.has_value()) << "g=" << g << " seed=" << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "g=" << g << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, MultiTokenGroups,
                         ::testing::Values(1, 2, 3, 6, 8));

TEST(MultiToken, AgreesWithSingleTokenAlgorithm) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 8;
    spec.num_predicate = 6;
    spec.events_per_process = 18;
    spec.local_pred_prob = 0.25;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto single = run_token_vc(comp, opts());
    MultiTokenOptions mt;
    mt.num_groups = 3;
    const auto multi = run_multi_token(comp, opts(), mt);
    EXPECT_EQ(single.detected, multi.detected) << "seed " << seed;
    EXPECT_EQ(single.cut, multi.cut) << "seed " << seed;
  }
}

TEST(MultiToken, DetectsTrivialCut) {
  ComputationBuilder b(3);
  for (int p = 0; p < 3; ++p) b.mark_pred(ProcessId(p), true);
  const auto comp = b.build();
  MultiTokenOptions mt;
  mt.num_groups = 3;
  const auto r = run_multi_token(comp, opts(), mt);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1, 1}));
}

TEST(MultiToken, NotDetectedTerminates) {
  ComputationBuilder b(3);
  b.mark_pred(ProcessId(0), true);  // others never true
  const auto comp = b.build();
  MultiTokenOptions mt;
  mt.num_groups = 2;
  const auto r = run_multi_token(comp, opts(), mt);
  EXPECT_FALSE(r.detected);
}

TEST(MultiToken, GroupCountClampedToPredicateWidth) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  MultiTokenOptions mt;
  mt.num_groups = 100;  // clamped to n == 2
  const auto r = run_multi_token(comp, opts(), mt);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
}

TEST(MultiToken, CutIsConsistentOnDetectableRun) {
  workload::RandomSpec spec;
  spec.num_processes = 9;
  spec.num_predicate = 9;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.3;
  spec.ensure_detectable = true;
  spec.seed = 4;
  const auto comp = workload::make_random(spec);
  MultiTokenOptions mt;
  mt.num_groups = 3;
  const auto r = run_multi_token(comp, opts(), mt);
  ASSERT_TRUE(r.detected);
  EXPECT_TRUE(comp.is_consistent_cut(comp.predicate_processes(), r.cut));
}

}  // namespace
}  // namespace wcp::detect
