#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace wcp::common {
namespace {

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  ::setenv("WCP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ::setenv("WCP_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 1u);
  ::unsetenv("WCP_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, DefaultThreadsRejectsInvalidEnvValues) {
  // A thread count of 0 or garbage used to fall back silently to
  // hardware_concurrency(), hiding typos like WCP_THREADS=O8. Every
  // invalid value must now fail loudly.
  for (const char* bad : {"0", "-1", "-8", " ", "4x", "x4", "garbage",
                          "1e3", "0x4", "99999999999999999999"}) {
    ::setenv("WCP_THREADS", bad, 1);
    EXPECT_THROW(ThreadPool::default_threads(), std::invalid_argument)
        << "WCP_THREADS=\"" << bad << "\" should be rejected";
  }
  // An empty value means unset, matching the shell's `WCP_THREADS= cmd`.
  ::setenv("WCP_THREADS", "", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("WCP_THREADS");
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> hits{0};
  pool.submit([&] { ++hits; });
  EXPECT_EQ(hits.load(), 1);  // no workers: submit executes synchronously
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> seen(1000);
    pool.parallel_for(seen.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++seen[i];
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, ParallelMapPreservesSubmissionOrder) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto out = pool.parallel_map<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ParallelReduceMatchesSerialFold) {
  std::vector<int> xs(1234);
  std::iota(xs.begin(), xs.end(), 1);
  const long expect = std::accumulate(xs.begin(), xs.end(), 0L);
  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    const long got = pool.parallel_reduce<long>(
        xs.size(), 0L, [&](long& acc, std::size_t i) { acc += xs[i]; },
        [](long& a, long& b) { a += b; });
    EXPECT_EQ(got, expect);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t b, std::size_t) {
                          if (b >= 50) throw std::runtime_error("boom");
                        },
                        /*grain=*/1),
      std::runtime_error);
  // The pool survives a failed job and keeps serving work.
  const auto out =
      pool.parallel_map<int>(8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out.size(), 8u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(
      8,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          // Inner fan-out on the same pool: the caller lane participates,
          // so exhausted queues cannot deadlock the outer job.
          ThreadPool inner(2);
          inner.parallel_for(16, [&](std::size_t ib, std::size_t ie) {
            total += static_cast<int>(ie - ib);
          });
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, SubmittedTasksDrainOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) pool.submit([&] { ++done; });
  }  // destructor joins workers after the queues drain
  EXPECT_EQ(done.load(), 64);
}

TEST(WorkFrontier, ProcessesEveryItemExactlyOnceAcrossLanes) {
  // Items form a complete binary tree rooted at 1: processing v pushes
  // {2v, 2v+1} while 2v+1 <= kMax. Every item must be processed exactly
  // once regardless of which lane pops or steals it.
  constexpr std::uint32_t kMax = 4095;  // 4095 items: 1..kMax
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    WorkFrontier frontier(lanes);
    std::vector<std::atomic<int>> hits(kMax + 1);
    frontier.seed(1);
    ThreadPool pool(lanes);
    pool.parallel_for(
        frontier.lanes(),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t lane = b; lane < e; ++lane) {
            frontier.run_lane(lane, [&, lane](std::uint32_t v) {
              ++hits[v];
              const std::uint32_t kids[2] = {2 * v, 2 * v + 1};
              if (kids[1] <= kMax) frontier.push_batch(lane, kids);
            });
          }
        },
        /*grain=*/1);
    for (std::uint32_t v = 1; v <= kMax; ++v)
      ASSERT_EQ(hits[v].load(), 1) << "item " << v << " lanes " << lanes;
  }
}

TEST(WorkFrontier, QuiesceRunsExclusivelyAndResumes) {
  constexpr std::uint32_t kMax = 2047;
  const std::size_t lanes = 4;
  WorkFrontier frontier(lanes);
  std::atomic<int> processed{0};
  std::atomic<int> rounds{0};
  std::atomic<bool> in_round{false};
  frontier.seed(1);
  ThreadPool pool(lanes);
  pool.parallel_for(
      frontier.lanes(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t lane = b; lane < e; ++lane) {
          frontier.run_lane(lane, [&, lane](std::uint32_t v) {
            ++processed;
            if (v % 97 == 0) {
              frontier.quiesce([&] {
                // Total exclusivity: no two rounds may overlap.
                ASSERT_FALSE(in_round.exchange(true));
                ++rounds;
                in_round.store(false);
              });
            }
            const std::uint32_t kids[2] = {2 * v, 2 * v + 1};
            if (kids[1] <= kMax) frontier.push_batch(lane, kids);
          });
        }
      },
      /*grain=*/1);
  EXPECT_EQ(processed.load(), static_cast<int>(kMax));
  // Rounds coalesce, so the count is only bounded, not exact.
  EXPECT_GE(rounds.load(), 1);
  EXPECT_FALSE(in_round.load());
}

}  // namespace
}  // namespace wcp::common
