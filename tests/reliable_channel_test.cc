// Transport-alone tests for the ack/retransmission layer (sim/reliable.h):
// exactly-once in-order delivery over lossy/duplicating channels, FIFO
// resequencing without the network-level FIFO clamp, the exponential
// backoff cap, and deterministic replay. The detection algorithms sit on
// top of these guarantees (§2 assumes reliable channels; §3.1 FIFO
// app->monitor), so this layer is tested in isolation with plain
// sender/receiver nodes before any detector runs over it.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/json.h"
#include "sim/network.h"

namespace wcp::sim {
namespace {

/// Sends `count` numbered kApplication messages to `to`, paced `gap` apart.
class Sender final : public Node {
 public:
  Sender(NodeAddr to, int count, SimTime gap)
      : to_(to), count_(count), gap_(gap) {}

  void on_start() override { step(); }
  void on_packet(Packet&&) override {}

 private:
  void step() {
    if (sent_ == count_) return;
    send(to_, MsgKind::kApplication, ++sent_, /*bits=*/64);
    after(gap_, [this] { step(); });
  }

  NodeAddr to_;
  int count_;
  SimTime gap_;
  int sent_ = 0;
};

/// Records every delivered payload in arrival order.
class Receiver final : public Node {
 public:
  explicit Receiver(std::vector<int>* sink) : sink_(sink) {}
  void on_packet(Packet&& p) override {
    sink_->push_back(std::any_cast<int>(p.payload));
  }

 private:
  std::vector<int>* sink_;
};

struct RunOutcome {
  std::vector<int> received;
  FaultCounters faults;
  SimTime end_time = 0;
};

RunOutcome run_channel(const FaultPlan& plan, int count,
                       LatencyModel latency = LatencyModel::fixed_delay(1),
                       ReliableConfig rc = {}) {
  NetworkConfig cfg;
  cfg.num_processes = 2;
  cfg.latency = latency;
  cfg.seed = 17;
  cfg.faults = plan;
  cfg.reliable = rc;
  cfg.reliable_all = true;

  Network net(std::move(cfg));
  RunOutcome out;
  net.add_node(NodeAddr::app(ProcessId(0)),
               std::make_unique<Sender>(NodeAddr::app(ProcessId(1)), count,
                                        /*gap=*/3));
  net.add_node(NodeAddr::app(ProcessId(1)),
               std::make_unique<Receiver>(&out.received));
  net.start_and_run();
  out.faults = net.fault_counters();
  out.end_time = net.simulator().now();
  return out;
}

std::vector<int> iota_vec(int count) {
  std::vector<int> v;
  for (int i = 1; i <= count; ++i) v.push_back(i);
  return v;
}

std::string counters_json(const FaultCounters& fc) {
  std::ostringstream oss;
  json::Writer w(oss, 0);
  fc.write_json(w);
  return oss.str();
}

TEST(ReliableChannel, ExactlyOnceInOrderUnderHeavyLossAndDuplication) {
  FaultPlan plan;
  plan.drop = 0.3;
  plan.dup = 0.2;
  plan.seed = 5;
  const auto out = run_channel(plan, /*count=*/60);

  // Despite 30% loss and 20% duplication on the wire, the application sees
  // each message exactly once, in send order.
  EXPECT_EQ(out.received, iota_vec(60));
  EXPECT_GT(out.faults.drops_random, 0);
  EXPECT_GT(out.faults.dups, 0);
  EXPECT_GT(out.faults.retransmits, 0);
  EXPECT_GT(out.faults.acks, 0);
  // Duplicates and retransmit races must have been suppressed on receive.
  EXPECT_GT(out.faults.dup_suppressed, 0);
}

TEST(ReliableChannel, ResequencesOutOfOrderArrivalsWithoutFifoClamp) {
  // Wildly variable latency and NO network FIFO clamp on reliable channels:
  // frames arrive out of order and the transport's resequencing buffer must
  // restore send order.
  FaultPlan plan;
  plan.drop = 0.05;  // enabled() => channels go reliable, loss stays light
  plan.seed = 9;
  const auto out =
      run_channel(plan, /*count=*/80, LatencyModel::uniform(1, 40));

  EXPECT_EQ(out.received, iota_vec(80));
  EXPECT_GT(out.faults.resequenced, 0);
}

TEST(ReliableChannel, BackoffIsCappedNotUnbounded) {
  // Drop the first 10 transmissions of a single message via exact-index
  // drops. With rto_initial=2 and rto_cap=16 the retransmit schedule is
  // 2, 4, 8, 16, 16, ... — the 11th transmission goes out at t=126. An
  // uncapped doubling schedule would not deliver until past t=2000.
  FaultPlan plan;
  for (std::int64_t i = 0; i < 10; ++i) plan.drop_exact.push_back(i);
  ReliableConfig rc;
  rc.rto_initial = 2;
  rc.rto_cap = 16;
  const auto out =
      run_channel(plan, /*count=*/1, LatencyModel::fixed_delay(1), rc);

  EXPECT_EQ(out.received, iota_vec(1));
  EXPECT_EQ(out.faults.retransmits, 10);
  EXPECT_EQ(out.faults.drops_random, 10);  // exact drops count as random
  EXPECT_GE(out.end_time, 126);            // sum of the capped backoffs
  EXPECT_LT(out.end_time, 200);            // far below the uncapped schedule
}

TEST(ReliableChannel, SameSeedReplaysBitIdentically) {
  FaultPlan plan;
  plan.drop = 0.25;
  plan.dup = 0.1;
  plan.seed = 31;
  const auto a = run_channel(plan, /*count=*/50, LatencyModel::uniform(1, 10));
  const auto b = run_channel(plan, /*count=*/50, LatencyModel::uniform(1, 10));

  // The fault Rng is seeded from the plan alone, so the whole loss /
  // duplication / retransmission history replays exactly.
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(counters_json(a.faults), counters_json(b.faults));

  // A different fault seed perturbs the history (same latency seed).
  plan.seed = 32;
  const auto c = run_channel(plan, /*count=*/50, LatencyModel::uniform(1, 10));
  EXPECT_NE(counters_json(a.faults), counters_json(c.faults));
}

TEST(ReliableChannel, FaultFreePlanAddsNoTransportTraffic) {
  // reliable_all with a zero-fault plan: the transport still frames and
  // acks, but nothing is dropped, duplicated, or retransmitted.
  FaultPlan plan;  // disabled
  const auto out = run_channel(plan, /*count=*/20);
  EXPECT_EQ(out.received, iota_vec(20));
  EXPECT_EQ(out.faults.total_drops(), 0);
  EXPECT_EQ(out.faults.retransmits, 0);
  EXPECT_EQ(out.faults.dup_suppressed, 0);
  EXPECT_EQ(out.faults.acks, 20);  // one cumulative ack per arrival
}

}  // namespace
}  // namespace wcp::sim
