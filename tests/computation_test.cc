#include "trace/computation.h"

#include <gtest/gtest.h>

namespace wcp {
namespace {

// Two-process exchange:
//   P0: [1] --m0--> (send)  [2]
//   P1: [1]  (recv m0) [2]
Computation two_proc_exchange() {
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  return b.build();
}

TEST(Computation, StateCountsFollowEvents) {
  const auto c = two_proc_exchange();
  EXPECT_EQ(c.num_processes(), 2u);
  EXPECT_EQ(c.num_states(ProcessId(0)), 2);
  EXPECT_EQ(c.num_states(ProcessId(1)), 2);
  EXPECT_EQ(c.total_states(), 4);
  EXPECT_EQ(c.max_messages_per_process(), 1);
}

TEST(Computation, MessageRecordsSendAndRecvStates) {
  const auto c = two_proc_exchange();
  ASSERT_EQ(c.messages().size(), 1u);
  const MessageRecord& m = c.messages()[0];
  EXPECT_EQ(m.from, ProcessId(0));
  EXPECT_EQ(m.send_state, 1);
  EXPECT_EQ(m.to, ProcessId(1));
  EXPECT_EQ(m.recv_state, 2);
  EXPECT_TRUE(m.delivered());
}

TEST(Computation, HappenedBeforeAcrossOneMessage) {
  const auto c = two_proc_exchange();
  // (0,1) -> (1,2): the send ending P0's state 1 was received into (1,2).
  EXPECT_TRUE(c.happened_before(ProcessId(0), 1, ProcessId(1), 2));
  EXPECT_FALSE(c.happened_before(ProcessId(1), 2, ProcessId(0), 1));
  // (0,2) is concurrent with both P1 states.
  EXPECT_TRUE(c.concurrent(ProcessId(0), 2, ProcessId(1), 1));
  EXPECT_TRUE(c.concurrent(ProcessId(0), 2, ProcessId(1), 2));
  // Same-process order.
  EXPECT_TRUE(c.happened_before(ProcessId(0), 1, ProcessId(0), 2));
  EXPECT_FALSE(c.happened_before(ProcessId(0), 2, ProcessId(0), 2));
}

TEST(Computation, GroundTruthClocks) {
  const auto c = two_proc_exchange();
  EXPECT_EQ(c.ground_truth_clock(ProcessId(0), 1),
            VectorClock(std::vector<StateIndex>{1, 0}));
  EXPECT_EQ(c.ground_truth_clock(ProcessId(0), 2),
            VectorClock(std::vector<StateIndex>{2, 0}));
  EXPECT_EQ(c.ground_truth_clock(ProcessId(1), 1),
            VectorClock(std::vector<StateIndex>{0, 1}));
  EXPECT_EQ(c.ground_truth_clock(ProcessId(1), 2),
            VectorClock(std::vector<StateIndex>{1, 2}));
}

TEST(Computation, TransitiveCausalityThroughRelay) {
  // P0 -> P2 (relay) -> P1.
  ComputationBuilder b(3);
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  const auto c = b.build();
  // (0,1) -> (1,2) transitively through P2.
  EXPECT_TRUE(c.happened_before(ProcessId(0), 1, ProcessId(1), 2));
  EXPECT_TRUE(c.concurrent(ProcessId(0), 2, ProcessId(1), 2));
}

TEST(Computation, ReceiveDependence) {
  const auto c = two_proc_exchange();
  EXPECT_FALSE(c.receive_dependence(ProcessId(0), 1).has_value());
  EXPECT_FALSE(c.receive_dependence(ProcessId(0), 2).has_value());  // send
  EXPECT_FALSE(c.receive_dependence(ProcessId(1), 1).has_value());
  const auto dep = c.receive_dependence(ProcessId(1), 2);
  ASSERT_TRUE(dep.has_value());
  EXPECT_EQ(dep->source, ProcessId(0));
  EXPECT_EQ(dep->clock, 1);
}

TEST(Computation, UndeliveredMessageInducesNoDependence) {
  ComputationBuilder b(2);
  b.send(ProcessId(0), ProcessId(1));  // never received
  const auto c = b.build();
  EXPECT_FALSE(c.messages()[0].delivered());
  EXPECT_TRUE(c.concurrent(ProcessId(0), 1, ProcessId(1), 1));
  EXPECT_EQ(c.num_states(ProcessId(1)), 1);
}

TEST(ComputationBuilder, RejectsSelfMessages) {
  ComputationBuilder b(2);
  EXPECT_THROW(b.send(ProcessId(0), ProcessId(0)), std::invalid_argument);
}

TEST(ComputationBuilder, RejectsDoubleReceive) {
  ComputationBuilder b(2);
  const MessageId m = b.send(ProcessId(0), ProcessId(1));
  b.receive(m);
  EXPECT_THROW(b.receive(m), std::invalid_argument);
}

TEST(ComputationBuilder, RejectsUnknownMessage) {
  ComputationBuilder b(2);
  EXPECT_THROW(b.receive(5), std::invalid_argument);
}

TEST(ComputationBuilder, RejectsDuplicatePredicateProcess) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(1), ProcessId(1)});
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ComputationBuilder, DefaultPredicateAppliesToNewStates) {
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  EXPECT_TRUE(c.local_pred(ProcessId(0), 1));
  EXPECT_TRUE(c.local_pred(ProcessId(0), 2));
  EXPECT_FALSE(c.local_pred(ProcessId(1), 1));
  EXPECT_FALSE(c.local_pred(ProcessId(1), 2));
}

TEST(ComputationBuilder, MarkPredAffectsCurrentStateOnly) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);   // state 1
  b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  EXPECT_TRUE(c.local_pred(ProcessId(0), 1));
  EXPECT_FALSE(c.local_pred(ProcessId(0), 2));
}

TEST(ComputationBuilder, InFlightQueueIsFifoPerDestination) {
  ComputationBuilder b(3);
  const MessageId m0 = b.send(ProcessId(0), ProcessId(2));
  const MessageId m1 = b.send(ProcessId(1), ProcessId(2));
  EXPECT_EQ(b.in_flight_to(ProcessId(2)), 2u);
  EXPECT_EQ(b.next_in_flight_to(ProcessId(2)), m0);
  b.receive(m0);
  EXPECT_EQ(b.next_in_flight_to(ProcessId(2)), m1);
  b.receive(m1);
  EXPECT_FALSE(b.next_in_flight_to(ProcessId(2)).has_value());
}

TEST(Computation, IsConsistentCut) {
  const auto c = two_proc_exchange();
  const ProcessId procs[] = {ProcessId(0), ProcessId(1)};
  const StateIndex good[] = {2, 2};
  const StateIndex bad[] = {1, 2};  // (0,1) -> (1,2)
  EXPECT_TRUE(c.is_consistent_cut(procs, good));
  EXPECT_FALSE(c.is_consistent_cut(procs, bad));
  const StateIndex initial[] = {1, 1};
  EXPECT_TRUE(c.is_consistent_cut(procs, initial));
}

TEST(Computation, FirstWcpCutSimple) {
  // P0 true at state 2, P1 true at state 2; (2,2) consistent.
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto c = b.build();
  const auto cut = c.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<StateIndex>{2, 2}));
}

TEST(Computation, FirstWcpCutSkipsInconsistentCandidates) {
  // P0 true at 1; P1 true only at 2, but (0,1) -> (1,2). P0 must advance.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // state 1
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);  // P1 state 2
  b.mark_pred(ProcessId(0), true);  // P0 state 2
  const auto c = b.build();
  const auto cut = c.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<StateIndex>{2, 2}));
}

TEST(Computation, FirstWcpCutNoneWhenPredicateNeverHolds) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  const auto c = b.build();  // P1 never true
  EXPECT_FALSE(c.first_wcp_cut().has_value());
}

TEST(Computation, FirstWcpCutAllProcessesExtendsOverRelays) {
  // Predicate over {P0, P1}; P2 is a relay.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  b.mark_pred(ProcessId(1), true);  // P1 state 2, depends on (0,1)
  b.mark_pred(ProcessId(0), true);  // P0 state 2 (after its send)
  const auto c = b.build();
  const auto cut = c.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<StateIndex>{2, 2}));

  const auto full = c.first_wcp_cut_all_processes();
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->size(), 3u);
  // Projection onto the predicate processes matches.
  EXPECT_EQ((*full)[0], 2);
  EXPECT_EQ((*full)[1], 2);
  // P2's component is consistent with the rest.
  const ProcessId all[] = {ProcessId(0), ProcessId(1), ProcessId(2)};
  EXPECT_TRUE(c.is_consistent_cut(all, *full));
}

TEST(Computation, PredicateSlotLookup) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(2), ProcessId(0)});
  const auto c = b.build();
  EXPECT_EQ(c.predicate_slot(ProcessId(2)), 0);
  EXPECT_EQ(c.predicate_slot(ProcessId(0)), 1);
  EXPECT_EQ(c.predicate_slot(ProcessId(1)), -1);
}

}  // namespace
}  // namespace wcp
