#include "common/lockfree_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/rng.h"

namespace wcp {
namespace {

using PackedCut = std::vector<std::uint32_t>;

std::uint64_t zhash(std::span<const std::uint32_t> cut) {
  return ZobristCutHash{}(cut);
}

TEST(LockFreeCutTable, InternDeduplicatesSingleLane) {
  SegmentedCutStore store(3, 1);
  LockFreeCutTable table(1);
  const PackedCut c{3, 1, 4};
  const auto r1 = table.intern(0, store, c, zhash(c), 5, 0);
  ASSERT_EQ(r1.outcome, LockFreeCutTable::Outcome::kInserted);
  const auto r2 = table.intern(0, store, c, zhash(c), 5, 0);
  ASSERT_EQ(r2.outcome, LockFreeCutTable::Outcome::kFound);
  EXPECT_EQ(r1.handle, r2.handle);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(store.total_cuts(), 1u);
  EXPECT_TRUE(std::equal(c.begin(), c.end(), store.cut(r1.handle).begin()));
}

TEST(LockFreeCutTable, CollidingTagsResolveByProbing) {
  // The caller supplies the hash, so the test can force every cut onto the
  // same slot chain; distinct contents must still intern distinctly.
  SegmentedCutStore store(2, 1);
  LockFreeCutTable table(1);
  constexpr std::uint64_t kSameHash = 0xdeadbeefcafef00dULL;
  std::vector<CutHandle> handles;
  for (std::uint32_t i = 1; i <= 64; ++i) {
    const PackedCut c{i, i + 1};
    const auto r = table.intern(0, store, c, kSameHash, i, 0);
    ASSERT_EQ(r.outcome, LockFreeCutTable::Outcome::kInserted);
    handles.push_back(r.handle);
  }
  EXPECT_EQ(table.size(), 64u);
  for (std::uint32_t i = 1; i <= 64; ++i) {
    const PackedCut c{i, i + 1};
    const auto r = table.intern(0, store, c, kSameHash, i, 0);
    EXPECT_EQ(r.outcome, LockFreeCutTable::Outcome::kFound);
    EXPECT_EQ(r.handle, handles[i - 1]);
  }
}

TEST(LockFreeCutTable, GrowRehashesEveryEntry) {
  // Start tiny so the load-factor gate trips repeatedly; the single-lane
  // caller plays the quiesce round itself.
  SegmentedCutStore store(2, 1);
  LockFreeCutTable table(1, /*initial_slots=*/16);
  constexpr std::uint32_t kCount = 3000;
  std::vector<CutHandle> handles;
  for (std::uint32_t i = 1; i <= kCount; ++i) {
    const PackedCut c{i, 9000 - i};
    for (;;) {
      const auto r = table.intern(0, store, c, zhash(c), i, 0);
      if (r.outcome == LockFreeCutTable::Outcome::kTableFull) {
        table.grow(store);
        continue;
      }
      ASSERT_EQ(r.outcome, LockFreeCutTable::Outcome::kInserted);
      handles.push_back(r.handle);
      break;
    }
  }
  ASSERT_GT(table.growths(), 2);
  EXPECT_EQ(table.size(), kCount);
  EXPECT_EQ(store.total_cuts(), kCount);
  EXPECT_GT(table.slot_count(), 16u);  // doubled away from the initial size
  for (std::uint32_t i = 1; i <= kCount; ++i) {
    const PackedCut c{i, 9000 - i};
    const auto r = table.intern(0, store, c, zhash(c), i, 0);
    EXPECT_EQ(r.outcome, LockFreeCutTable::Outcome::kFound);
    EXPECT_EQ(r.handle, handles[i - 1]);
  }
}

// The satellite hammer: 8 threads intern overlapping randomized batches
// drawn from one shared pool of distinct cuts. Exact dedup — every distinct
// cut interned by exactly one CAS win, every loser handed the winner's
// handle — is checked by aggregating per-thread logs after the join.
TEST(LockFreeCutTable, EightThreadHammerExactDedup) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kWidth = 4;
  constexpr std::size_t kPool = 4096;    // distinct cuts in the universe
  constexpr std::size_t kPerThread = 20'000;  // draws per thread (overlap!)

  // Distinct cut pool (component values chosen so no two cuts collide).
  std::vector<PackedCut> pool;
  pool.reserve(kPool);
  Rng gen(0x5eed);
  std::set<PackedCut> uniq;
  while (uniq.size() < kPool) {
    PackedCut c(kWidth);
    for (auto& v : c)
      v = static_cast<std::uint32_t>(gen.uniform_int(1, 64));
    uniq.insert(c);
  }
  pool.assign(uniq.begin(), uniq.end());

  SegmentedCutStore store(kWidth, kThreads);
  // Sized so the load factor never trips: growth under contention needs the
  // engine's quiesce rendezvous, which is exercised by the differential
  // sweep — this test isolates the CAS protocol.
  LockFreeCutTable table(kThreads, /*initial_slots=*/1 << 14);

  struct ThreadLog {
    std::vector<std::uint32_t> pool_idx;
    std::vector<CutHandle> handle;
    std::vector<bool> inserted;
  };
  std::vector<ThreadLog> logs(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xabc0 + t);
      ThreadLog& log = logs[t];
      log.pool_idx.reserve(kPerThread);
      log.handle.reserve(kPerThread);
      log.inserted.reserve(kPerThread);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pi = rng.index(kPool);
        const PackedCut& c = pool[pi];
        const auto r = table.intern(t, store, c, zhash(c),
                                    /*level=*/static_cast<std::uint32_t>(pi),
                                    /*false_count=*/0);
        ASSERT_NE(r.outcome, LockFreeCutTable::Outcome::kTableFull);
        log.pool_idx.push_back(static_cast<std::uint32_t>(pi));
        log.handle.push_back(r.handle);
        log.inserted.push_back(r.outcome ==
                               LockFreeCutTable::Outcome::kInserted);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Aggregate: one handle per touched pool cut, exactly one insert each.
  std::map<std::uint32_t, CutHandle> canonical;
  std::map<std::uint32_t, int> inserts;
  for (const ThreadLog& log : logs) {
    for (std::size_t i = 0; i < log.pool_idx.size(); ++i) {
      const std::uint32_t pi = log.pool_idx[i];
      const auto [it, fresh] = canonical.emplace(pi, log.handle[i]);
      if (!fresh)
        ASSERT_EQ(it->second, log.handle[i])
            << "two threads got different handles for pool cut " << pi;
      inserts[pi] += log.inserted[i] ? 1 : 0;
    }
  }
  for (const auto& [pi, n] : inserts)
    ASSERT_EQ(n, 1) << "pool cut " << pi << " won " << n << " CAS races";

  // No lost or duplicate handles: the canonical map is a bijection onto the
  // store, and every handle reads back its own content.
  std::set<CutHandle> distinct_handles;
  for (const auto& [pi, h] : canonical) {
    ASSERT_TRUE(distinct_handles.insert(h).second)
        << "handle " << h << " assigned to two distinct cuts";
    const auto got = store.cut(h);
    ASSERT_TRUE(std::equal(pool[pi].begin(), pool[pi].end(), got.begin()))
        << "handle " << h << " does not read back pool cut " << pi;
    EXPECT_EQ(store.level(h), pi);
    EXPECT_EQ(store.hash(h), zhash(pool[pi]));
  }

  // Stats consistency at quiescence.
  EXPECT_EQ(table.size(), canonical.size());
  EXPECT_EQ(store.total_cuts(), canonical.size());
  std::size_t lane_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) lane_sum += store.lane_count(t);
  EXPECT_EQ(lane_sum, canonical.size());
  EXPECT_GE(table.probes(),
            static_cast<std::int64_t>(kThreads * kPerThread));
  EXPECT_EQ(table.growths(), 0);
  CutStorageStats s;
  table.add_stats(s);
  store.add_stats(s);
  EXPECT_EQ(s.cuts_interned, static_cast<std::int64_t>(canonical.size()));
  EXPECT_GT(s.peak_bytes, 0);
}

}  // namespace
}  // namespace wcp
