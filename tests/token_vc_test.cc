#include "detect/token_vc.h"

#include <gtest/gtest.h>

#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

TEST(TokenVc, DetectsTrivialInitialCut) {
  // Both predicates true in the initial states.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
}

TEST(TokenVc, DetectsCutAfterEliminations) {
  // P0 true at 1 (eliminated: (0,1) -> (1,2)) and at 2; P1 true at 2.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));
}

TEST(TokenVc, ReportsNotDetectedWhenPredicateNeverConjoins) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.cut.empty());
}

TEST(TokenVc, NotDetectedWhenStatesAlwaysOrdered) {
  // P0 true only at state 1, P1 true only at state 2, but (0,1) -> (1,2):
  // never concurrent.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  EXPECT_FALSE(r.detected);
}

TEST(TokenVc, MatchesOfflineOracleOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 15;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    const auto r = run_token_vc(comp, opts(seed + 1));
    ASSERT_EQ(r.detected, expect.has_value()) << "seed " << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "seed " << seed;
  }
}

TEST(TokenVc, DetectedCutIsConsistentAndSatisfiesPredicates) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 6;
  spec.events_per_process = 25;
  spec.local_pred_prob = 0.35;
  spec.seed = 77;
  spec.ensure_detectable = true;
  const auto comp = workload::make_random(spec);
  const auto r = run_token_vc(comp, opts());
  ASSERT_TRUE(r.detected);
  const auto preds = comp.predicate_processes();
  EXPECT_TRUE(comp.is_consistent_cut(preds, r.cut));
  for (std::size_t s = 0; s < preds.size(); ++s)
    EXPECT_TRUE(comp.local_pred(preds[s], r.cut[s]));
}

TEST(TokenVc, SingleProcessPredicate) {
  // n == 1: the first true state is the cut.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(1)});
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2}));
  EXPECT_EQ(r.token_hops, 0);  // the token never leaves the only monitor
}

TEST(TokenVc, InsensitiveToNetworkSeed) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 5;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.3;
  spec.seed = 123;
  const auto comp = workload::make_random(spec);
  const auto a = run_token_vc(comp, opts(1));
  const auto b = run_token_vc(comp, opts(999));
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(TokenVc, CausalityThroughRelaysIsRespected) {
  // The predicate spans P0 and P1 but all their communication flows through
  // relay P2. A false detection would occur if the relay dropped causality.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.mark_pred(ProcessId(0), true);                 // (0,1)
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  b.mark_pred(ProcessId(1), true);                 // (1,2) depends on (0,1)
  const auto comp = b.build();
  const auto r = run_token_vc(comp, opts());
  // (0,1) -> (1,2): not concurrent, and P0 has no later true state.
  EXPECT_FALSE(r.detected);
}

TEST(TokenVc, TokenMessageCountWithinPaperBound) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 6;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.25;
  spec.seed = 5;
  const auto comp = workload::make_random(spec);
  const auto r = run_token_vc(comp, opts());
  const std::int64_t n = static_cast<std::int64_t>(6);
  const std::int64_t m = comp.max_messages_per_process();
  // §3.4: the token moves at most nm times; snapshots <= nm in total.
  EXPECT_LE(r.token_hops, n * (m + 1));
  EXPECT_LE(r.monitor_metrics.total_messages(MsgKind::kToken), n * (m + 1));
  EXPECT_LE(r.app_metrics.total_messages(MsgKind::kSnapshot), n * (m + 1));
}

TEST(TokenVc, WorksUnderHeavyLatencyVariance) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 12;
  spec.local_pred_prob = 0.4;
  spec.ensure_detectable = true;
  spec.seed = 31;
  const auto comp = workload::make_random(spec);
  RunOptions o;
  o.latency = sim::LatencyModel::exponential(20.0);
  o.seed = 8;
  const auto r = run_token_vc(comp, o);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, *comp.first_wcp_cut());
}

}  // namespace
}  // namespace wcp::detect
