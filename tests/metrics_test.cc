#include "common/metrics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wcp {
namespace {

TEST(Metrics, RecordSendAccumulatesPerKind) {
  Metrics m(2);
  m.record_send(ProcessId(0), MsgKind::kSnapshot, 128);
  m.record_send(ProcessId(0), MsgKind::kSnapshot, 128);
  m.record_send(ProcessId(1), MsgKind::kToken, 64);
  EXPECT_EQ(m.total_messages(MsgKind::kSnapshot), 2);
  EXPECT_EQ(m.total_messages(MsgKind::kToken), 1);
  EXPECT_EQ(m.total_messages(), 3);
  EXPECT_EQ(m.total_bits(), 320);
}

TEST(Metrics, WorkAttribution) {
  Metrics m(3);
  m.add_work(ProcessId(0), 10);
  m.add_work(ProcessId(2), 25);
  m.add_work(ProcessId(2), 5);
  EXPECT_EQ(m.total_work(), 40);
  EXPECT_EQ(m.max_work_per_process(), 30);
}

TEST(Metrics, BufferHighWaterMark) {
  Metrics m(1);
  m.buffer_change(ProcessId(0), 100, 1);
  m.buffer_change(ProcessId(0), 200, 1);
  m.buffer_change(ProcessId(0), -100, -1);
  m.buffer_change(ProcessId(0), 50, 1);
  EXPECT_EQ(m.max_peak_buffered_bytes(), 300);
  EXPECT_EQ(m.at(ProcessId(0)).buffered_bytes, 250);
  EXPECT_EQ(m.at(ProcessId(0)).snapshots_buffered, 2);
}

TEST(Metrics, BufferUnderflowIsInvariantViolation) {
  Metrics m(1);
  EXPECT_THROW(m.buffer_change(ProcessId(0), -1, 0), InvariantViolation);
}

TEST(Metrics, TokenHops) {
  Metrics m(1);
  m.bump_token_hops();
  m.bump_token_hops();
  EXPECT_EQ(m.token_hops(), 2);
}

TEST(Metrics, MergeAddsCountersAndMaxesPeaks) {
  Metrics a(2), b(2);
  a.record_send(ProcessId(0), MsgKind::kPoll, 10);
  b.record_send(ProcessId(0), MsgKind::kPoll, 20);
  a.add_work(ProcessId(1), 5);
  b.add_work(ProcessId(1), 7);
  a.buffer_change(ProcessId(0), 100, 1);
  b.buffer_change(ProcessId(0), 40, 1);
  a.merge(b);
  EXPECT_EQ(a.total_messages(MsgKind::kPoll), 2);
  EXPECT_EQ(a.total_bits(), 30);
  EXPECT_EQ(a.total_work(), 12);
  EXPECT_EQ(a.max_peak_buffered_bytes(), 100);  // max, not sum
}

TEST(Metrics, SummaryMentionsKeyCounters) {
  Metrics m(1);
  m.record_send(ProcessId(0), MsgKind::kSnapshot, 64);
  const auto s = m.summary();
  EXPECT_NE(s.find("messages=1"), std::string::npos);
  EXPECT_NE(s.find("bits=64"), std::string::npos);
}

TEST(MsgKind, Names) {
  EXPECT_STREQ(to_string(MsgKind::kSnapshot), "snapshot");
  EXPECT_STREQ(to_string(MsgKind::kToken), "token");
  EXPECT_STREQ(to_string(MsgKind::kPoll), "poll");
  EXPECT_STREQ(to_string(MsgKind::kPollReply), "poll_reply");
  EXPECT_STREQ(to_string(MsgKind::kApplication), "application");
  EXPECT_STREQ(to_string(MsgKind::kControl), "control");
}

}  // namespace
}  // namespace wcp
