// Singhal-Kshemkalyani differential clock compression (ablation E11):
// detection results are bit-for-bit identical; only the piggybacked
// application-message bits shrink.
#include <gtest/gtest.h>

#include "detect/centralized.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(bool compress, std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  o.compress_clocks = compress;
  return o;
}

TEST(Compression, DetectionUnchangedOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 5;
    spec.events_per_process = 18;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto plain = run_token_vc(comp, opts(false, seed + 1));
    const auto packed = run_token_vc(comp, opts(true, seed + 1));
    EXPECT_EQ(plain.detected, packed.detected) << "seed " << seed;
    EXPECT_EQ(plain.cut, packed.cut) << "seed " << seed;
  }
}

TEST(Compression, DetectionUnchangedForChecker) {
  workload::MutexSpec spec;
  spec.num_clients = 3;
  spec.rounds_per_client = 6;
  spec.violation_prob = 0.4;
  spec.seed = 11;
  const auto mc = workload::make_mutex(spec);
  const auto plain = run_centralized(mc.computation, opts(false));
  const auto packed = run_centralized(mc.computation, opts(true));
  EXPECT_EQ(plain.detected, packed.detected);
  EXPECT_EQ(plain.cut, packed.cut);
}

TEST(Compression, ShrinksApplicationMessageBits) {
  // Wide predicate, sparse communication per pair: each channel's clock
  // changes in only a few components between messages.
  workload::RandomSpec spec;
  spec.num_processes = 12;
  spec.num_predicate = 12;
  spec.events_per_process = 25;
  spec.local_pred_prob = 0.2;
  spec.seed = 3;
  const auto comp = workload::make_random(spec);
  const auto plain = run_token_vc(comp, opts(false));
  const auto packed = run_token_vc(comp, opts(true));
  const auto plain_bits =
      plain.app_metrics.total_bits(MsgKind::kApplication);
  const auto packed_bits =
      packed.app_metrics.total_bits(MsgKind::kApplication);
  EXPECT_LT(packed_bits, plain_bits);
  // Same number of application messages either way.
  EXPECT_EQ(plain.app_metrics.total_messages(MsgKind::kApplication),
            packed.app_metrics.total_messages(MsgKind::kApplication));
}

TEST(Compression, FirstMessagePerChannelCarriesWholeClock) {
  // Two predicate processes, one message: the diff must contain every
  // non-zero component, so bits are comparable to the full clock.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);  // (0,2) || (1,2): detectable at (2,2)
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto plain = run_token_vc(comp, opts(false));
  const auto packed = run_token_vc(comp, opts(true));
  ASSERT_TRUE(plain.detected);
  ASSERT_TRUE(packed.detected);
  EXPECT_EQ(plain.cut, packed.cut);
}

}  // namespace
}  // namespace wcp::detect
