#include "detect/gcp.h"

#include <gtest/gtest.h>

#include "workload/random_workload.h"
#include "workload/termination_workload.h"

namespace wcp::detect {
namespace {

TEST(InTransit, CountsSendsAndReceivesAtTheCut) {
  // P0 sends m0 (received) then m1 (in flight at the end).
  ComputationBuilder b(2);
  const MessageId m0 = b.send(ProcessId(0), ProcessId(1));
  b.receive(m0);
  b.send(ProcessId(0), ProcessId(1));  // m1, never received
  const auto c = b.build();

  // At (1,1): nothing sent yet (the send ends state 1).
  EXPECT_EQ(in_transit(c, ProcessId(0), 1, ProcessId(1), 1), 0);
  // At (2,1): m0 sent, not received.
  EXPECT_EQ(in_transit(c, ProcessId(0), 2, ProcessId(1), 1), 1);
  // At (2,2): m0 sent and received.
  EXPECT_EQ(in_transit(c, ProcessId(0), 2, ProcessId(1), 2), 0);
  // At (3,2): m1 also sent, still in flight.
  EXPECT_EQ(in_transit(c, ProcessId(0), 3, ProcessId(1), 2), 1);
}

TEST(ChannelPredicate, Holds) {
  const auto empty = ChannelPredicate::empty(ProcessId(0), ProcessId(1));
  EXPECT_TRUE(empty.holds(0));
  EXPECT_FALSE(empty.holds(2));
  const auto atmost = ChannelPredicate::at_most(ProcessId(0), ProcessId(1), 2);
  EXPECT_TRUE(atmost.holds(2));
  EXPECT_FALSE(atmost.holds(3));
  const auto atleast =
      ChannelPredicate::at_least(ProcessId(0), ProcessId(1), 1);
  EXPECT_FALSE(atleast.holds(0));
  EXPECT_TRUE(atleast.holds(1));
}

TEST(ChannelPredicate, AllChannelsEmptyEnumeratesPairs) {
  const auto preds = ChannelPredicate::all_channels_empty(3);
  EXPECT_EQ(preds.size(), 6u);
}

TEST(DetectGcp, PlainWcpWhenNoChannels) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  b.mark_pred(ProcessId(0), true);
  const auto c = b.build();
  const auto r = detect_gcp(c, {});
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));
}

TEST(DetectGcp, ChannelEmptyRejectsFalseTermination) {
  // P0 passive after sending work to P1; P1 passive until the receive,
  // active (never passive again) after. WCP-only sees "all passive" at
  // (2,1); the channel-empty conjunct makes the GCP undetectable.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(1), true);                 // P1 state 1 passive
  const MessageId work = b.send(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);                 // P0 state 2 passive
  b.receive(work);                                 // P1 state 2 active
  const auto c = b.build();

  ASSERT_TRUE(c.first_wcp_cut().has_value());  // false termination exists
  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto r = detect_gcp(c, chan);
  EXPECT_FALSE(r.detected);  // true termination never happens in this run
}

TEST(DetectGcp, FindsTrueTerminationCut) {
  // Same as above, but P1 goes passive after handling the work: the GCP
  // must skip the false cut and land on the real one.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(1), true);
  const MessageId work = b.send(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.receive(work);
  b.mark_pred(ProcessId(1), true);  // P1 state 2 passive again
  const auto c = b.build();

  const auto wcp_cut = c.first_wcp_cut();
  ASSERT_TRUE(wcp_cut.has_value());
  EXPECT_EQ(*wcp_cut, (std::vector<StateIndex>{2, 1}));  // false termination

  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto r = detect_gcp(c, chan);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));  // the real one
}

TEST(DetectGcp, AtLeastAdvancesTheSender) {
  // Require >= 1 message in transit on P0 -> P1. P0 must advance past its
  // initial state (nothing sent yet).
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  b.send(ProcessId(0), ProcessId(1));  // never received
  const auto c = b.build();

  const ChannelPredicate chan[] = {
      ChannelPredicate::at_least(ProcessId(0), ProcessId(1), 1)};
  const auto r = detect_gcp(c, chan);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 1}));
}

TEST(DetectGcp, ChannelEndpointsOutsidePredicateSetJoinTheCut) {
  // Predicate over P0 only; channel predicate touches P1 and P2.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0)});
  b.mark_pred(ProcessId(0), true);
  const MessageId m = b.send(ProcessId(1), ProcessId(2));
  b.receive(m);
  const auto c = b.build();

  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(1), ProcessId(2))};
  const auto r = detect_gcp(c, chan);
  ASSERT_TRUE(r.detected);
  ASSERT_EQ(r.procs.size(), 3u);  // P0 + both endpoints
  EXPECT_EQ(r.cut.size(), 3u);
}

class GcpVsLattice : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcpVsLattice, AdvanceCandidateMatchesLatticeOracle) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 8;
  spec.local_pred_prob = 0.45;
  spec.drain_prob = 0.8;
  spec.seed = seed;
  const auto c = workload::make_random(spec);

  const auto channels = ChannelPredicate::all_channels_empty(4);
  const auto fast = detect_gcp(c, channels);
  const auto oracle = detect_gcp_lattice(c, channels, /*max_cuts=*/500'000);
  ASSERT_EQ(fast.detected, oracle.detected) << "seed " << seed;
  if (fast.detected) EXPECT_EQ(fast.cut, oracle.cut) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcpVsLattice,
                         ::testing::Range<std::uint64_t>(0, 15));

class GcpAtMostVsLattice : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcpAtMostVsLattice, MixedKindsMatchOracle) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 3;
  spec.num_predicate = 3;
  spec.events_per_process = 8;
  spec.local_pred_prob = 0.6;
  spec.drain_prob = 0.6;
  spec.seed = seed + 500;
  const auto c = workload::make_random(spec);

  const ChannelPredicate channels[] = {
      ChannelPredicate::at_most(ProcessId(0), ProcessId(1), 1),
      ChannelPredicate::at_most(ProcessId(1), ProcessId(2), 2),
      ChannelPredicate::empty(ProcessId(2), ProcessId(0)),
  };
  const auto fast = detect_gcp(c, channels);
  const auto oracle = detect_gcp_lattice(c, channels, /*max_cuts=*/500'000);
  ASSERT_EQ(fast.detected, oracle.detected) << "seed " << seed;
  if (fast.detected) EXPECT_EQ(fast.cut, oracle.cut) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcpAtMostVsLattice,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Termination, GcpFindsTheTrueTerminationCut) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::TerminationSpec spec;
    spec.num_processes = 4;
    spec.initial_work = 3;
    spec.spawn_prob = 0.35;
    spec.seed = seed;
    const auto t = workload::make_termination(spec);
    const auto channels = ChannelPredicate::all_channels_empty(4);
    const auto r = detect_gcp(t.computation, channels);
    ASSERT_TRUE(r.detected) << "seed " << seed;
    EXPECT_EQ(r.cut, t.termination_cut) << "seed " << seed;
  }
}

TEST(Termination, WcpAloneDetectsFalseTermination) {
  // Whenever work was actually spawned, the local-only WCP fires strictly
  // before the true termination cut on at least one component.
  int earlier = 0, runs = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::TerminationSpec spec;
    spec.num_processes = 4;
    spec.initial_work = 3;
    spec.seed = seed + 100;
    const auto t = workload::make_termination(spec);
    if (t.work_messages == 0) continue;
    ++runs;
    const auto wcp = t.computation.first_wcp_cut();
    ASSERT_TRUE(wcp.has_value()) << "seed " << seed;
    bool strictly_earlier = false;
    for (std::size_t s = 0; s < wcp->size(); ++s) {
      ASSERT_LE((*wcp)[s], t.termination_cut[s]);
      if ((*wcp)[s] < t.termination_cut[s]) strictly_earlier = true;
    }
    if (strictly_earlier) ++earlier;
  }
  ASSERT_GT(runs, 0);
  EXPECT_EQ(earlier, runs);  // every run with work has a false termination
}

TEST(Termination, WorkloadShape) {
  workload::TerminationSpec spec;
  spec.num_processes = 5;
  spec.seed = 4;
  const auto t = workload::make_termination(spec);
  EXPECT_EQ(t.computation.num_processes(), 5u);
  EXPECT_EQ(t.computation.predicate_processes().size(), 5u);
  EXPECT_GT(t.work_messages, 0);
  // The final states are all passive.
  for (std::size_t p = 0; p < 5; ++p) {
    const ProcessId pid(static_cast<int>(p));
    EXPECT_TRUE(t.computation.local_pred(pid, t.computation.num_states(pid)));
  }
}

}  // namespace
}  // namespace wcp::detect
