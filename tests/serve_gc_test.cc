// Frontier-GC tests: the session's retained state must be bounded by the
// GC cadence — flat in stream length — while a GC-disabled session grows
// linearly; and GC must never change a verdict (the lattice core's collect
// remaps its visited arena and heap without losing reachable cuts).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/protocol.h"
#include "serve/replay.h"
#include "serve/session.h"
#include "workload/random_workload.h"

namespace wcp::serve {
namespace {

/// Streams `states_per_slot` snapshots on two independent (never
/// communicating) slots with the local predicate false everywhere, under
/// token + checker + slicer subscriptions (the bounded-frontier family; the
/// lattice explorer is inherently O(m^n) and measured separately).
ServeStats run_synthetic(std::int64_t states_per_slot, std::size_t gc_every) {
  ServeOptions opts;
  opts.gc_every = gc_every;
  Session session(opts, [](std::vector<std::uint8_t>) {});
  std::uint64_t seq = 0;
  const auto feed = [&](const Frame& f) {
    session.on_frame(encode_frame(f, seq++));
  };
  feed(make_hello(2, 1));
  feed(make_subscribe(0, StreamAlgo::kToken, 0));
  feed(make_subscribe(1, StreamAlgo::kChecker, 0));
  feed(make_subscribe(2, StreamAlgo::kSlicer, 0));
  for (StateIndex k = 1; k <= states_per_slot; ++k) {
    feed(make_snapshot(0, 0, {k, 0}));
    feed(make_snapshot(1, 0, {0, k}));
  }
  feed(make_finish());
  EXPECT_TRUE(session.finished());
  for (const VerdictBody& v : session.verdicts())
    EXPECT_FALSE(v.detected) << "predicate is false everywhere";
  return session.stats();
}

TEST(ServeGc, RetainedStatesBoundedByGcCadence) {
  const std::size_t gc_every = 64;
  const ServeStats s = run_synthetic(4000, gc_every);
  // Between GC rounds at most gc_every snapshots accumulate on top of
  // whatever the frontier had not yet released at the previous round (a
  // handful of positions per slot).
  EXPECT_LE(s.peak_retained_states,
            static_cast<std::int64_t>(2 * gc_every + 16))
      << "GC failed to keep the snapshot store bounded";
  EXPECT_GT(s.gc_rounds, 0);
  EXPECT_GT(s.states_retired, 7000);
}

TEST(ServeGc, DisabledGcGrowsLinearly) {
  const ServeStats s = run_synthetic(2000, /*gc_every=*/0);
  EXPECT_EQ(s.gc_rounds, 0);
  EXPECT_EQ(s.states_retired, 0);
  EXPECT_EQ(s.peak_retained_states, 4000);  // every snapshot retained
}

TEST(ServeGc, PeakMemoryIsFlatIn10xStreamLength) {
  // The acceptance bar: a stream 10x longer than the largest committed
  // trace (164 states) completes with the same bounded peak.
  const ServeStats base = run_synthetic(400, 64);
  const ServeStats long10x = run_synthetic(4000, 64);
  EXPECT_LE(long10x.peak_retained_states, base.peak_retained_states + 4);
  EXPECT_LE(long10x.store_peak_bytes, base.store_peak_bytes + 64);
  // Checker-side state (queues, candidate cut, slicer fixpoint) is flat
  // too: sampled at every GC round.
  EXPECT_LE(long10x.checker_peak_bytes, 2 * base.checker_peak_bytes + 1024);
}

TEST(ServeGc, GcStatsAccountExactly) {
  const ServeStats s = run_synthetic(1000, 10);
  // finish() applies the trailing partial window too, so all but at most
  // one window's worth of states end up retired by the final frontier.
  EXPECT_EQ(s.snapshots_in, 2000);
  EXPECT_GE(s.states_retired, 2000 - 2 * 10 - 2);
  EXPECT_GT(s.store_peak_bytes, 0);
}

TEST(ServeGc, LatticeCollectPreservesVerdictUnderAggressiveGc) {
  // Random communicating traces, lattice-online only, GC after every
  // snapshot: collect() must compact the visited arena + ready heap + park
  // lists without ever dropping a cut that is still reachable.
  for (const std::uint64_t seed : {5u, 23u, 47u}) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 3;
    spec.events_per_process = 14;
    spec.seed = seed;
    spec.ensure_detectable = (seed != 23u);
    spec.local_pred_prob = 0.25;
    const auto comp = workload::make_random(spec);

    ReplayOptions no_gc;
    no_gc.subs.push_back({StreamAlgo::kLatticeOnline, 0, -1});
    no_gc.serve.gc_every = 0;
    ReplayOptions hard = no_gc;
    hard.serve.gc_every = 1;

    const ReplayResult a = replay_stream(comp, no_gc);
    const ReplayResult b = replay_stream(comp, hard);
    ASSERT_EQ(a.verdicts.size(), 1u);
    ASSERT_EQ(b.verdicts.size(), 1u);
    EXPECT_EQ(a.verdicts[0].detected, b.verdicts[0].detected)
        << "seed " << seed;
    EXPECT_EQ(a.verdicts[0].cut, b.verdicts[0].cut) << "seed " << seed;
  }
}

TEST(ServeGc, CutsRetiredReportedForLattice) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 3;
  spec.events_per_process = 16;
  spec.seed = 101;
  spec.local_pred_prob = 0.05;  // keep the explorer busy to the end
  const auto comp = workload::make_random(spec);
  ReplayOptions opts;
  opts.subs.push_back({StreamAlgo::kLatticeOnline, 0, -1});
  opts.serve.gc_every = 8;
  const ReplayResult r = replay_stream(comp, opts);
  EXPECT_GT(r.stats.gc_rounds, 0);
  // Whether any cut retires depends on the trace's communication shape;
  // the counter must at least be internally consistent.
  EXPECT_GE(r.stats.cuts_retired, 0);
}

}  // namespace
}  // namespace wcp::serve
