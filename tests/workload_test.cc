#include <gtest/gtest.h>

#include "workload/db_workload.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::workload {
namespace {

TEST(RandomWorkload, RespectsShape) {
  RandomSpec spec;
  spec.num_processes = 7;
  spec.num_predicate = 3;
  spec.events_per_process = 25;
  spec.seed = 1;
  const auto c = make_random(spec);
  EXPECT_EQ(c.num_processes(), 7u);
  EXPECT_EQ(c.predicate_processes().size(), 3u);
  // Every process participated (event budget was consumed network-wide).
  EXPECT_GT(c.messages().size(), 0u);
  EXPECT_GE(c.max_messages_per_process(), 25);
}

TEST(RandomWorkload, DeterministicPerSeed) {
  RandomSpec spec;
  spec.seed = 33;
  const auto a = make_random(spec);
  const auto b = make_random(spec);
  EXPECT_EQ(a.messages().size(), b.messages().size());
  EXPECT_EQ(a.total_states(), b.total_states());
  EXPECT_EQ(a.first_wcp_cut(), b.first_wcp_cut());
}

TEST(RandomWorkload, SeedsDiffer) {
  RandomSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(make_random(a).first_wcp_cut(), make_random(b).first_wcp_cut());
}

TEST(RandomWorkload, EnsureDetectableGuaranteesACut) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 4;
    spec.local_pred_prob = 0.0;  // only the forced final marks
    spec.ensure_detectable = true;
    spec.seed = seed;
    const auto c = make_random(spec);
    EXPECT_TRUE(c.first_wcp_cut().has_value()) << "seed " << seed;
  }
}

TEST(RandomWorkload, FullDrainDeliversEverything) {
  RandomSpec spec;
  spec.drain_prob = 1.0;
  spec.seed = 9;
  const auto c = make_random(spec);
  for (const auto& m : c.messages()) EXPECT_TRUE(m.delivered());
}

TEST(RandomWorkload, RandomSubsetSelectsExactlyN) {
  RandomSpec spec;
  spec.num_processes = 10;
  spec.num_predicate = 4;
  spec.random_predicate_subset = true;
  spec.seed = 5;
  const auto c = make_random(spec);
  EXPECT_EQ(c.predicate_processes().size(), 4u);
}

TEST(RandomWorkload, SingleProcessEdgeCase) {
  RandomSpec spec;
  spec.num_processes = 1;
  spec.num_predicate = 1;
  spec.local_pred_prob = 1.0;
  const auto c = make_random(spec);
  EXPECT_EQ(c.num_processes(), 1u);
  const auto cut = c.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<StateIndex>{1}));
}

TEST(RandomWorkload, RejectsBadSpecs) {
  RandomSpec spec;
  spec.num_predicate = 0;
  EXPECT_THROW(make_random(spec), std::invalid_argument);
  spec.num_predicate = 9;
  spec.num_processes = 8;
  EXPECT_THROW(make_random(spec), std::invalid_argument);
}

TEST(MutexWorkload, CleanRunsNeverViolate) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    MutexSpec spec;
    spec.num_clients = 3;
    spec.rounds_per_client = 6;
    spec.violation_prob = 0.0;
    spec.seed = seed;
    const auto mc = make_mutex(spec);
    EXPECT_FALSE(mc.violation_injected);
    EXPECT_FALSE(mc.computation.first_wcp_cut().has_value())
        << "false mutual-exclusion violation, seed " << seed;
  }
}

TEST(MutexWorkload, InjectedViolationIsDetectable) {
  MutexSpec spec;
  spec.num_clients = 3;
  spec.rounds_per_client = 8;
  spec.violation_prob = 0.5;
  spec.seed = 3;
  const auto mc = make_mutex(spec);
  ASSERT_TRUE(mc.violation_injected);
  const auto cut = mc.computation.first_wcp_cut();
  ASSERT_TRUE(cut.has_value());
  // The cut states really are pairwise concurrent critical sections.
  const auto preds = mc.computation.predicate_processes();
  EXPECT_TRUE(mc.computation.is_consistent_cut(preds, *cut));
  for (std::size_t s = 0; s < preds.size(); ++s)
    EXPECT_TRUE(mc.computation.local_pred(preds[s], (*cut)[s]));
}

TEST(MutexWorkload, ViolationIffDetection) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    MutexSpec spec;
    spec.num_clients = 2;
    spec.rounds_per_client = 5;
    spec.violation_prob = 0.25;
    spec.seed = seed;
    const auto mc = make_mutex(spec);
    EXPECT_EQ(mc.computation.first_wcp_cut().has_value(),
              mc.violation_injected)
        << "seed " << seed;
  }
}

TEST(MutexWorkload, PredicateCoversClientsOnly) {
  MutexSpec spec;
  spec.num_clients = 4;
  const auto mc = make_mutex(spec);
  EXPECT_EQ(mc.computation.num_processes(), 5u);  // clients + server
  EXPECT_EQ(mc.computation.predicate_processes().size(), 4u);
  EXPECT_EQ(mc.computation.predicate_slot(ProcessId(4)), -1);  // server
}

TEST(DbWorkload, CleanRunsNeverViolate) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DbSpec spec;
    spec.violation_prob = 0.0;
    spec.seed = seed;
    const auto db = make_db(spec);
    EXPECT_FALSE(db.violation_injected);
    EXPECT_FALSE(db.computation.first_wcp_cut().has_value())
        << "false 2PL violation, seed " << seed;
  }
}

TEST(DbWorkload, ViolationIffDetection) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    DbSpec spec;
    spec.num_readers = 2;
    spec.num_writers = 2;
    spec.rounds = 6;
    spec.violation_prob = 0.3;
    spec.seed = seed;
    const auto db = make_db(spec);
    EXPECT_EQ(db.computation.first_wcp_cut().has_value(),
              db.violation_injected)
        << "seed " << seed;
  }
}

TEST(DbWorkload, ShapeAndPredicate) {
  DbSpec spec;
  spec.num_readers = 3;
  spec.num_writers = 2;
  const auto db = make_db(spec);
  EXPECT_EQ(db.computation.num_processes(), 6u);
  const auto preds = db.computation.predicate_processes();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], ProcessId(0));  // tracked reader
  EXPECT_EQ(preds[1], ProcessId(3));  // tracked writer
}

}  // namespace
}  // namespace wcp::workload
