#include "detect/gcp_online.h"

#include <gtest/gtest.h>

#include "workload/random_workload.h"
#include "workload/termination_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

TEST(GcpOnline, MatchesOfflineOnHandBuiltTermination) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(1), true);
  const MessageId work = b.send(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.receive(work);
  b.mark_pred(ProcessId(1), true);
  const auto c = b.build();

  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto offline = detect_gcp(c, chan);
  const auto online = run_gcp_centralized(c, chan, opts());
  ASSERT_TRUE(offline.detected);
  ASSERT_TRUE(online.detected);
  EXPECT_EQ(online.cut, offline.cut);
  EXPECT_EQ(online.cut, (std::vector<StateIndex>{2, 2}));
}

TEST(GcpOnline, NotDetectedTerminates) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(1), true);
  const MessageId work = b.send(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.receive(work);  // P1 never passive again
  const auto c = b.build();
  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto online = run_gcp_centralized(c, chan, opts());
  EXPECT_FALSE(online.detected);
}

TEST(GcpOnline, RejectsChannelEndpointOutsidePredicate) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0)});
  const auto c = b.build();
  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(1), ProcessId(2))};
  EXPECT_THROW(run_gcp_centralized(c, chan, opts()), std::invalid_argument);
}

class GcpOnlineVsOffline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcpOnlineVsOffline, AgreeOnRandomRuns) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;  // endpoints must be predicate processes
  spec.events_per_process = 12;
  spec.local_pred_prob = 0.4;
  spec.drain_prob = 0.8;
  spec.seed = seed;
  const auto c = workload::make_random(spec);

  const auto channels = ChannelPredicate::all_channels_empty(5);
  const auto offline = detect_gcp(c, channels);
  const auto online = run_gcp_centralized(c, channels, opts(seed + 1));
  ASSERT_EQ(online.detected, offline.detected) << "seed " << seed;
  if (offline.detected) EXPECT_EQ(online.cut, offline.cut) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcpOnlineVsOffline,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(GcpOnline, TerminationDetectionEndToEnd) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    workload::TerminationSpec spec;
    spec.num_processes = 4;
    spec.initial_work = 3;
    spec.seed = seed + 40;
    const auto t = workload::make_termination(spec);
    const auto channels = ChannelPredicate::all_channels_empty(4);
    const auto online = run_gcp_centralized(t.computation, channels,
                                            opts(seed + 1));
    ASSERT_TRUE(online.detected) << "seed " << seed;
    EXPECT_EQ(online.cut, t.termination_cut) << "seed " << seed;
  }
}

TEST(GcpOnline, MixedChannelKindsAgreeWithLatticeOracle) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 3;
    spec.num_predicate = 3;
    spec.events_per_process = 8;
    spec.local_pred_prob = 0.6;
    spec.drain_prob = 0.6;
    spec.seed = seed + 900;
    const auto c = workload::make_random(spec);
    const ChannelPredicate channels[] = {
        ChannelPredicate::at_most(ProcessId(0), ProcessId(1), 1),
        ChannelPredicate::empty(ProcessId(1), ProcessId(2)),
    };
    const auto oracle = detect_gcp_lattice(c, channels, 500'000);
    const auto online = run_gcp_centralized(c, channels, opts(seed + 1));
    ASSERT_EQ(online.detected, oracle.detected) << "seed " << seed;
    if (oracle.detected) EXPECT_EQ(online.cut, oracle.cut) << "seed " << seed;
  }
}

TEST(GcpOnline, SnapshotsCarryCountsAndCostMore) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 10;
  spec.local_pred_prob = 0.5;
  spec.seed = 5;
  const auto c = workload::make_random(spec);
  const auto channels = ChannelPredicate::all_channels_empty(4);
  const auto online = run_gcp_centralized(c, channels, opts());
  // Each snapshot: n*64 clock bits + 2N*64 counter bits + the pred flag.
  const auto snaps = online.app_metrics.total_messages(MsgKind::kSnapshot);
  EXPECT_EQ(online.app_metrics.total_bits(MsgKind::kSnapshot),
            snaps * (4 * 64 + 2 * 4 * 64 + 1));
}

}  // namespace
}  // namespace wcp::detect
