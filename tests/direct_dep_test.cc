#include "detect/direct_dep.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

class DirectDepModes : public ::testing::TestWithParam<bool> {
 protected:
  DdRunOptions dd() const {
    DdRunOptions d;
    d.parallel = GetParam();
    return d;
  }
};

TEST_P(DirectDepModes, DetectsTrivialInitialCut) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_direct_dep(comp, opts(), dd());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
  EXPECT_EQ(r.full_cut, (std::vector<StateIndex>{1, 1}));
}

TEST_P(DirectDepModes, DetectsCutAfterElimination) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  const auto r = run_direct_dep(comp, opts(), dd());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));
}

TEST_P(DirectDepModes, NotDetectedTerminates) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  const auto comp = b.build();
  const auto r = run_direct_dep(comp, opts(), dd());
  EXPECT_FALSE(r.detected);
}

TEST_P(DirectDepModes, IndirectDependenceThroughRelay) {
  // (0,1) -> relay -> (1,2): only *direct* dependences are tracked, so the
  // relay's participation is what keeps the detection sound (Lemma 4.1
  // requires all N processes in the cut).
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_direct_dep(comp, opts(), dd());
  // P0 is true only at (0,1) which precedes (1,2): no consistent cut.
  EXPECT_FALSE(r.detected);
}

TEST_P(DirectDepModes, MatchesAllProcessOracleOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 12;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut_all_processes();
    const auto r = run_direct_dep(comp, opts(seed + 1), dd());
    ASSERT_EQ(r.detected, expect.has_value())
        << "seed=" << seed << " parallel=" << GetParam();
    if (expect)
      EXPECT_EQ(r.full_cut, *expect)
          << "seed=" << seed << " parallel=" << GetParam();
  }
}

TEST_P(DirectDepModes, ProjectionMatchesPredicateOracle) {
  // The full-cut projection onto the predicate processes must equal the
  // n-process first WCP cut (the minimal consistent extension argument).
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 3;
    spec.events_per_process = 14;
    spec.local_pred_prob = 0.35;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    const auto r = run_direct_dep(comp, opts(), dd());
    ASSERT_EQ(r.detected, expect.has_value()) << "seed " << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "seed " << seed;
  }
}

TEST_P(DirectDepModes, MessageComplexityWithinPaperBound) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 6;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.25;
  spec.seed = 5;
  const auto comp = workload::make_random(spec);
  const auto r = run_direct_dep(comp, opts(), dd());
  const std::int64_t N = 6;
  // m counts sends + receives per process; states per process <= m + 1.
  const std::int64_t m = comp.max_messages_per_process() + 1;
  // §4.4: <= 3mN monitor messages (token + polls + replies).
  const std::int64_t monitor_msgs =
      r.monitor_metrics.total_messages(MsgKind::kToken) +
      r.monitor_metrics.total_messages(MsgKind::kPoll) +
      r.monitor_metrics.total_messages(MsgKind::kPollReply);
  EXPECT_LE(monitor_msgs, 3 * m * N);
  // <= mN local snapshots.
  EXPECT_LE(r.app_metrics.total_messages(MsgKind::kSnapshot), m * N);
}

TEST_P(DirectDepModes, InsensitiveToNetworkSeed) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 16;
  spec.local_pred_prob = 0.3;
  spec.seed = 21;
  const auto comp = workload::make_random(spec);
  const auto a = run_direct_dep(comp, opts(3), dd());
  const auto b = run_direct_dep(comp, opts(777), dd());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.full_cut, b.full_cut);
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, DirectDepModes,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Parallel" : "Serial";
                         });

// Table 1 of the paper: the token data structures are distributed — the
// token itself carries nothing, and each monitor owns its color and G.
TEST(DirectDep, TokenCarriesNoData) {
  static_assert(std::is_empty_v<DdToken>,
                "the direct-dependence token must be empty (Table 1)");
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_direct_dep(comp, opts(), {});
  ASSERT_TRUE(r.detected);
  // Token messages were accounted at 1 bit each.
  EXPECT_EQ(r.monitor_metrics.total_bits(MsgKind::kToken),
            r.monitor_metrics.total_messages(MsgKind::kToken));
}

// Red-chain invariant (Lemma 4.2.3): at every handoff, the set of red
// monitors equals the chain reachable from the new holder.
TEST(DirectDep, RedChainInvariantHoldsAtEveryHandoff) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 15;
  spec.local_pred_prob = 0.3;
  spec.ensure_detectable = true;
  spec.seed = 13;
  const auto comp = workload::make_random(spec);

  int handoffs = 0;
  auto inspector = [&](const std::vector<DdMonitor*>& monitors, ProcessId from,
                       int next) {
    ++handoffs;
    // Collect the chain starting at `next`.
    std::set<int> chain;
    int cur = next;
    while (cur >= 0) {
      ASSERT_TRUE(chain.insert(cur).second) << "chain has a cycle";
      cur = monitors[static_cast<std::size_t>(cur)]->next_red();
    }
    // Chain == red set (the sender has just turned green).
    for (std::size_t p = 0; p < monitors.size(); ++p) {
      const bool red = monitors[p]->color() == Color::kRed;
      const bool on_chain = chain.contains(static_cast<int>(p));
      EXPECT_EQ(red, on_chain)
          << "P" << p << " red=" << red << " on_chain=" << on_chain
          << " at handoff from " << from;
    }
  };
  const auto r = run_direct_dep(comp, opts(), {}, inspector);
  ASSERT_TRUE(r.detected);
  EXPECT_GT(handoffs, 0);
}

}  // namespace
}  // namespace wcp::detect
