// The daemon layer around the epoll event loop: the strict flag parser
// (PR-9 bugfix: `--port xyz` used to parse as 0 and a valueless flag used
// to swallow the next `--flag`), serialized report lines that stay
// well-formed under concurrent connection completion (bugfix: lines used
// to interleave), the event-loop equivalence guarantee (many concurrent
// TCP clients each get verdicts identical to the offline oracle), and the
// no-terminate guarantee (a misbehaving client fails its own connection,
// never the daemon).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/daemon.h"
#include "serve/replay.h"
#include "serve/tcp.h"
#include "workload/random_workload.h"

namespace wcp::serve {
namespace {

// ---------------------------------------------------------------- flags ---

TEST(DaemonFlags, DefaultsAndGoodValues) {
  const DaemonOptions d = parse_daemon_flags({});
  EXPECT_EQ(d.port, 7410);
  EXPECT_EQ(d.once, 0);
  EXPECT_FALSE(d.json);
  EXPECT_EQ(d.loop.loop_threads, 0u);

  const DaemonOptions o = parse_daemon_flags(
      {"--port", "0", "--once", "4", "--threads", "2", "--gc-every", "32",
       "--window", "8", "--high-water", "65536", "--json"});
  EXPECT_EQ(o.port, 0);
  EXPECT_EQ(o.once, 4);
  EXPECT_TRUE(o.json);
  EXPECT_EQ(o.loop.loop_threads, 2u);
  EXPECT_EQ(o.loop.serve.gc_every, 32u);
  EXPECT_EQ(o.loop.serve.reseq_window, 8u);
  EXPECT_EQ(o.loop.write_high_water, 65536u);
}

TEST(DaemonFlags, MalformedFlagCorpusAllRejected) {
  // Every entry used to be accepted by the old strtoll-without-endptr
  // parser (or mis-parsed a neighbouring flag). Each must now throw with
  // a message that names the offending flag.
  const struct {
    std::vector<std::string> argv;
    std::string needle;  // must appear in the exception message
  } corpus[] = {
      {{"--port", "xyz"}, "--port"},           // pure garbage -> was port 0
      {{"--port", "74x10"}, "--port"},         // trailing garbage
      {{"--port", ""}, "--port"},              // empty value
      {{"--port", "70000"}, "--port"},         // > 65535
      {{"--port", "-1"}, "--port"},            // negative
      {{"--once", "4x"}, "--once"},            // trailing garbage
      {{"--once", "-2"}, "--once"},            // negative quota
      {{"--once", "99999999999999999999"}, "--once"},  // overflow
      {{"--window", "0"}, "--window"},         // below minimum (1)
      {{"--high-water", "10"}, "--high-water"},  // below minimum (4096)
      {{"--threads", "1e3"}, "--threads"},     // no float syntax
      {{"--port"}, "--port"},                  // value flag at end of argv
      {{"--once", "--json"}, "--once"},        // valueless flag ate a flag
      {{"--prot", "7410"}, "--prot"},          // typo'd flag name
      {{"7410"}, "7410"},                      // bare non-flag argument
      {{"--json", "extra"}, "extra"},          // trailing junk
  };
  for (const auto& c : corpus) {
    try {
      (void)parse_daemon_flags(c.argv);
      FAIL() << "argv accepted: " << ::testing::PrintToString(c.argv);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "message \"" << e.what() << "\" does not name " << c.needle;
      EXPECT_EQ(std::string(e.what()).rfind("wcp_served: ", 0), 0u)
          << e.what();
    }
  }
}

TEST(DaemonFlags, UsageMentionsEveryFlag) {
  const std::string u = daemon_usage();
  for (const char* flag : {"--port", "--once", "--threads", "--gc-every",
                           "--window", "--high-water", "--json"})
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
}

// -------------------------------------------------------------- reports ---

ConnectionResult fake_result(bool clean, const std::string& error) {
  ConnectionResult r;
  r.clean = clean;
  r.error = error;
  r.stats.frames_in = 12;
  r.stats.snapshots_in = 9;
  return r;
}

TEST(DaemonReport, JsonLineParsesAndCarriesTheFields) {
  std::ostringstream out;
  report_connection(out, 3, fake_result(false, "boom \"quoted\""), true);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto v = json::parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  EXPECT_EQ(v->find("schema")->string, "wcp-run-report/1");
  EXPECT_EQ(v->find("connection")->as_number(), 3);
  EXPECT_EQ(v->find("clean")->as_number(), 0);
  EXPECT_EQ(v->find("error")->string, "boom \"quoted\"");
  ASSERT_NE(v->find("metrics"), nullptr);
  EXPECT_EQ(v->find("metrics")->find("frames_in")->as_number(), 12);
}

TEST(DaemonReport, TextLineIsSingleTerminatedLine) {
  std::ostringstream out;
  report_connection(out, 7, fake_result(true, ""), false);
  const std::string line = out.str();
  EXPECT_EQ(line.rfind("connection 7: clean", 0), 0u) << line;
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

// --------------------------------------------- event-loop over real TCP ---

Computation make_comp(std::uint64_t seed, bool detectable) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 3;
  spec.events_per_process = 12;
  spec.seed = seed;
  spec.ensure_detectable = detectable;
  return workload::make_random(spec);
}

ReplayOptions all_algo_options() {
  ReplayOptions opts;
  for (const StreamAlgo algo :
       {StreamAlgo::kToken, StreamAlgo::kChecker, StreamAlgo::kLatticeOnline,
        StreamAlgo::kSlicer})
    opts.subs.push_back({algo, 0, -1});
  return opts;
}

/// An EventLoopServer on an ephemeral loopback port, running on its own
/// thread, with reports appended (already serialized by the server) to a
/// shared stream. Skips the test if loopback is unavailable.
struct ServerFixture {
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<EventLoopServer> server;
  std::thread thread;
  std::ostringstream reports;

  explicit ServerFixture(std::int64_t once, EventLoopOptions opts = {}) {
    listener = std::make_unique<TcpListener>(0);
    server = std::make_unique<EventLoopServer>(
        *listener, opts, [this](std::int64_t id, const ConnectionResult& r) {
          report_connection(reports, id, r, /*as_json=*/true);
        });
    thread = std::thread([this, once] { server->run(once); });
  }
  ~ServerFixture() {
    server->stop();
    if (thread.joinable()) thread.join();
  }
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(DaemonLoop, ConcurrentClientsMatchTheOfflineOracle) {
  // The tentpole equivalence check: many clients stream concurrently
  // through the epoll loop and every one must receive exactly the offline
  // verdict for its own trace — same detection bit, same minimal cut, for
  // all four algorithms. Mixed detectable/undetectable traces so both
  // verdict shapes cross the wire under contention.
  constexpr int kClients = 24;
  std::unique_ptr<ServerFixture> fx;
  try {
    fx = std::make_unique<ServerFixture>(kClients);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        const Computation comp =
            make_comp(1000 + static_cast<std::uint64_t>(c), (c % 2) == 0);
        const auto transport = tcp_connect("127.0.0.1", fx->listener->port());
        const ReplayResult r =
            replay_stream_over(comp, all_algo_options(), *transport);
        const auto oracle = comp.first_wcp_cut();
        if (r.verdicts.size() != 4)
          throw std::runtime_error("expected 4 verdicts, got " +
                                   std::to_string(r.verdicts.size()));
        for (const VerdictBody& v : r.verdicts) {
          if (v.detected != oracle.has_value())
            throw std::runtime_error("verdict disagrees with oracle");
          if (v.detected && v.cut != *oracle)
            throw std::runtime_error("cut disagrees with oracle");
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  fx->thread.join();  // run(once=kClients) returns after the last report

  for (int c = 0; c < kClients; ++c)
    EXPECT_TRUE(failures[static_cast<std::size_t>(c)].empty())
        << "client " << c << ": " << failures[static_cast<std::size_t>(c)];
  EXPECT_EQ(fx->server->served(), kClients);

  // Bugfix regression: with connections finishing concurrently, every
  // report line must still be one complete JSON object — no interleaving.
  const std::vector<std::string> lines = split_lines(fx->reports.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kClients));
  std::set<double> ids;
  for (const std::string& line : lines) {
    const auto v = json::parse(line);
    ASSERT_TRUE(v.has_value()) << "garbled report line: " << line;
    EXPECT_EQ(v->find("schema")->string, "wcp-run-report/1");
    EXPECT_EQ(v->find("clean")->as_number(), 1) << line;
    ids.insert(v->find("connection")->as_number());
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kClients))
      << "duplicate or missing connection ids";
}

TEST(DaemonLoop, BadClientFailsAloneGoodClientStillServed) {
  std::unique_ptr<ServerFixture> fx;
  try {
    fx = std::make_unique<ServerFixture>(2);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }

  {
    // A client that speaks garbage: a giant bogus length prefix. The old
    // thread-per-connection daemon relied on a per-thread try/catch; the
    // event loop must likewise fail only this connection.
    const auto bad = tcp_connect("127.0.0.1", fx->listener->port());
    std::vector<std::uint8_t> junk(64, 0xFF);
    bad->send(std::move(junk));
    // Wait for the server to reject us (ERROR frame or close).
    try {
      while (bad->receive(/*block=*/true)) {
      }
    } catch (const std::exception&) {
    }
  }

  // The daemon survived: a well-behaved client completes normally.
  const Computation comp = make_comp(2026, true);
  const auto good = tcp_connect("127.0.0.1", fx->listener->port());
  const ReplayResult r = replay_stream_over(comp, all_algo_options(), *good);
  ASSERT_EQ(r.verdicts.size(), 4u);
  const auto oracle = comp.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());
  for (const VerdictBody& v : r.verdicts) {
    EXPECT_TRUE(v.detected);
    EXPECT_EQ(v.cut, *oracle);
  }

  fx->thread.join();  // once=2: bad + good both reported
  const std::vector<std::string> lines = split_lines(fx->reports.str());
  ASSERT_EQ(lines.size(), 2u);
  int clean = 0, failed = 0;
  for (const std::string& line : lines) {
    const auto v = json::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->find("clean")->as_number() == 1) {
      ++clean;
    } else {
      ++failed;
      ASSERT_NE(v->find("error"), nullptr);
      EXPECT_FALSE(v->find("error")->string.empty());
    }
  }
  EXPECT_EQ(clean, 1);
  EXPECT_EQ(failed, 1);
}

TEST(DaemonLoop, SingleLoopThreadStillServesManyClients) {
  // Concurrency without parallelism: one loop thread multiplexing all
  // connections is the pure-reactor configuration.
  constexpr int kClients = 8;
  EventLoopOptions opts;
  opts.loop_threads = 1;
  std::unique_ptr<ServerFixture> fx;
  try {
    fx = std::make_unique<ServerFixture>(kClients, opts);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        const Computation comp =
            make_comp(3000 + static_cast<std::uint64_t>(c), true);
        const auto transport = tcp_connect("127.0.0.1", fx->listener->port());
        const ReplayResult r =
            replay_stream_over(comp, all_algo_options(), *transport);
        if (r.verdicts.size() == 4) ok.fetch_add(1);
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& t : clients) t.join();
  fx->thread.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(fx->server->served(), kClients);
}

TEST(DaemonLoop, BackpressuredFramesResumeAfterFlush) {
  // Regression: frames the nonblocking fill had already parked in the
  // FrameAssembler used to strand forever under backpressure — the drive
  // loop broke when pending_out() exceeded the high-water mark, and the
  // EPOLLOUT flush re-armed only EPOLLIN, which is level-triggered on
  // *socket* bytes. A client that had already sent its whole stream (so
  // the socket stayed empty) then hung forever waiting for its verdicts.
  //
  // Deterministic trigger: tiny kernel buffers on both sides so the
  // kernel cannot absorb a burst, a 1 KiB high-water mark, and 64 token
  // subscriptions over 256 slots — processing the single EOS frame emits
  // ~64 x 2 KiB of verdicts in one go, engaging backpressure with the
  // FINISH frame (sent in the same client burst) parked server-side.
  constexpr std::uint32_t kSlots = 256;
  constexpr std::uint32_t kSubs = 64;
  EventLoopOptions opts;
  opts.write_high_water = 1024;
  opts.so_sndbuf = 4096;
  std::unique_ptr<ServerFixture> fx;
  try {
    fx = std::make_unique<ServerFixture>(1, opts);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }

  const auto t = tcp_connect("127.0.0.1", fx->listener->port());
  int rcvbuf = 4096;  // keep the server's TCP window small (no auto-tune)
  ::setsockopt(t->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  t->set_nonblocking();  // unsent tail buffers in userspace: no deadlock

  // The whole stream in one burst, before reading a single response.
  std::uint64_t seq = 0;
  t->send(encode_frame(make_hello(kSlots, 1), seq++));
  for (std::uint32_t i = 0; i < kSubs; ++i)
    t->send(encode_frame(make_subscribe(i, StreamAlgo::kToken, 0), seq++));
  for (std::uint32_t s = 0; s < kSlots; ++s) {
    std::vector<StateIndex> clock(kSlots, 0);
    clock[s] = 1;  // first states, mutually concurrent, predicate true
    t->send(encode_frame(make_snapshot(s, 1, std::move(clock)), seq++));
  }
  t->send(encode_frame(make_eos(), seq++));
  t->send(encode_frame(make_finish(), seq++));

  // Drain until the final STATS frame. Pre-fix the stream stalls after
  // the verdict burst, so bound the wait instead of hanging the suite.
  std::uint32_t verdicts = 0;
  bool stats_seen = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!stats_seen && std::chrono::steady_clock::now() < deadline) {
    if (t->pending_out() > 0) t->flush();
    const auto raw = t->receive(/*block=*/false);
    if (!raw) {
      if (t->closed()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const Frame f = decode_frame(*raw);
    if (f.type == FrameType::kVerdict) {
      ++verdicts;
      EXPECT_TRUE(f.verdict.detected);
      EXPECT_EQ(f.verdict.cut.size(), kSlots);
    }
    if (f.type == FrameType::kStats) stats_seen = true;
  }
  ASSERT_TRUE(stats_seen)
      << "stream stalled: frames parked under backpressure were never "
         "resumed (" << verdicts << " verdicts arrived before the stall)";
  EXPECT_EQ(verdicts, kSubs);

  fx->thread.join();  // once=1: the connection completed and was reported
  EXPECT_EQ(fx->server->served(), 1);
  const std::vector<std::string> lines = split_lines(fx->reports.str());
  ASSERT_EQ(lines.size(), 1u);
  const auto v = json::parse(lines[0]);
  ASSERT_TRUE(v.has_value()) << lines[0];
  EXPECT_EQ(v->find("clean")->as_number(), 1) << lines[0];
}

// --------------------------------------------------------------- daemon ---

TEST(Daemon, RunDaemonReportsBindFailure) {
  // Occupy a port, then ask the daemon for the same one: run_daemon must
  // return nonzero and explain itself on err instead of throwing.
  std::unique_ptr<TcpListener> holder;
  try {
    holder = std::make_unique<TcpListener>(0);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }
  DaemonOptions opts;
  opts.port = holder->port();
  std::ostringstream out, err;
  EXPECT_EQ(run_daemon(opts, out, err), 1);
  EXPECT_NE(err.str().find("wcp_served: "), std::string::npos) << err.str();
}

}  // namespace
}  // namespace wcp::serve
