#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace wcp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r(1);
  EXPECT_THROW(r.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughFrequency) {
  Rng r(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialPositiveWithRoughMean) {
  Rng r(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.25);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(10);
  Rng child = a.split();
  // The child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == child.next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng r(11);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

}  // namespace
}  // namespace wcp
