// Slice-pruned detectors (detect/sliced.h): same verdicts and cuts as the
// Cooper-Marzullo baselines on every randomized case, valid witnesses, and
// an order-of-magnitude pruning guarantee on the E10 blowup shape.
#include <gtest/gtest.h>

#include <vector>

#include "detect/lattice.h"
#include "detect/lattice_online.h"
#include "detect/sliced.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

using Cut = std::vector<StateIndex>;

Computation random_case(std::uint64_t seed, std::size_t N = 4,
                        std::size_t n = 3, std::int64_t events = 6) {
  workload::RandomSpec spec;
  spec.num_processes = N;
  spec.num_predicate = n;
  spec.events_per_process = events;
  spec.local_pred_prob = (seed % 3 == 0) ? 0.6 : 0.3;
  spec.ensure_detectable = (seed % 2 == 0);
  spec.seed = seed;
  return workload::make_random(spec);
}

/// The E10 workload: n processes, no cross-causality, predicate true only
/// in the last states.
Computation blowup_case(std::size_t n, std::int64_t states) {
  ComputationBuilder b(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::int64_t k = 1; k < states; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % n)));  // never delivered
  for (std::size_t p = 0; p < n; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  return b.build();
}

void expect_consistent_non_satisfying(const Computation& comp, const Cut& cut,
                                      const char* what) {
  const auto procs = comp.predicate_processes();
  ASSERT_EQ(cut.size(), procs.size()) << what;
  bool satisfies = true;
  for (std::size_t s = 0; s < procs.size(); ++s) {
    ASSERT_GE(cut[s], 1) << what;
    ASSERT_LE(cut[s], comp.num_states(procs[s])) << what;
    if (!comp.local_pred(procs[s], cut[s])) satisfies = false;
    for (std::size_t t = s + 1; t < procs.size(); ++t)
      EXPECT_FALSE(
          comp.happened_before(procs[s], cut[s], procs[t], cut[t]) ||
          comp.happened_before(procs[t], cut[t], procs[s], cut[s]))
          << what << ": witness cut not consistent";
  }
  EXPECT_FALSE(satisfies) << what << ": witness cut satisfies the WCP";
}

TEST(SlicedDetect, PossiblyMatchesLatticeOnRandomCases) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto comp = random_case(seed);
    const auto base = detect_lattice(comp);
    const auto sliced = detect_lattice_sliced(comp);
    ASSERT_EQ(sliced.detected, base.detected) << "seed " << seed;
    if (base.detected) {
      EXPECT_EQ(sliced.cut, base.cut) << "seed " << seed;
    }
    EXPECT_FALSE(sliced.truncated);
  }
}

TEST(SlicedDetect, DefinitelyMatchesBaselineOnRandomCases) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto comp = random_case(seed, /*N=*/4, /*n=*/4, /*events=*/7);
    const auto base = detect_definitely(comp, 1'000'000);
    const auto sliced = detect_definitely_sliced(comp);
    ASSERT_FALSE(base.truncated) << "seed " << seed;
    ASSERT_FALSE(sliced.truncated) << "seed " << seed;
    ASSERT_EQ(sliced.definitely, base.definitely) << "seed " << seed;

    // Both witnesses, when present, must be consistent non-satisfying cuts.
    if (!base.definitely) {
      expect_consistent_non_satisfying(comp, base.witness, "baseline");
      expect_consistent_non_satisfying(comp, sliced.witness, "sliced");
    } else {
      EXPECT_TRUE(base.witness.empty()) << "seed " << seed;
      EXPECT_TRUE(sliced.witness.empty()) << "seed " << seed;
    }
  }
}

TEST(SlicedDetect, DefinitelyBottomSatisfiesShortCircuits) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto comp = b.build();
  const auto base = detect_definitely(comp);
  const auto sliced = detect_definitely_sliced(comp);
  EXPECT_TRUE(base.definitely);
  EXPECT_TRUE(sliced.definitely);
  EXPECT_EQ(base.cuts_explored, 1);
  EXPECT_EQ(sliced.cuts_explored, 1);
}

TEST(SlicedDetect, WitnessIsBottomWhenPredicateNeverHolds) {
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto comp = b.build();
  const auto base = detect_definitely(comp);
  const auto sliced = detect_definitely_sliced(comp);
  ASSERT_FALSE(base.definitely);
  ASSERT_FALSE(sliced.definitely);
  // With no satisfying cut anywhere, every observation avoids the WCP from
  // the very start: the witness is the bottom cut.
  EXPECT_EQ(base.witness, (Cut{1, 1}));
  expect_consistent_non_satisfying(comp, sliced.witness, "sliced");
}

TEST(SlicedDetect, DefinitelyTruncationReported) {
  // Large all-false computation: the interval handoff graph is big enough
  // for a tiny cap to bite.
  ComputationBuilder b(3);
  for (int p = 0; p < 3; ++p)
    for (int k = 0; k < 8; ++k) {
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
      b.mark_pred(ProcessId(p), k % 2 == 0);         // alternate T/F
    }
  const auto comp = b.build();
  const auto r = detect_definitely_sliced(comp, /*max_cuts=*/2);
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.witness.empty());
}

// The acceptance gate: on the E10 blowup shape both sliced detectors must
// explore >= 10x fewer cuts than the capped baselines while agreeing with
// the oracle about the verdict.
TEST(SlicedDetect, BlowupShapePrunesTenfold) {
  const auto comp = blowup_case(/*n=*/5, /*states=*/20);
  constexpr std::int64_t kCap = 200'000;

  const auto base_pos = detect_lattice(comp, kCap);
  ASSERT_TRUE(base_pos.truncated);  // 20^5 cuts; the baseline drowns
  const auto sliced_pos = detect_lattice_sliced(comp);
  ASSERT_TRUE(sliced_pos.detected);
  EXPECT_EQ(sliced_pos.cut, *comp.first_wcp_cut());
  EXPECT_EQ(sliced_pos.cut, Cut(5, 20));
  EXPECT_GE(base_pos.cuts_explored, 10 * sliced_pos.cuts_explored)
      << "possibly prune factor below 10x: baseline="
      << base_pos.cuts_explored << " sliced=" << sliced_pos.cuts_explored;

  const auto base_def = detect_definitely(comp, kCap);
  ASSERT_TRUE(base_def.truncated);
  const auto sliced_def = detect_definitely_sliced(comp);
  ASSERT_FALSE(sliced_def.truncated);
  // Every observation ends at the top cut, which satisfies the predicate.
  EXPECT_TRUE(sliced_def.definitely);
  EXPECT_GE(base_def.cuts_explored, 10 * sliced_def.cuts_explored)
      << "definitely prune factor below 10x: baseline="
      << base_def.cuts_explored << " sliced=" << sliced_def.cuts_explored;
}

TEST(SlicedDetect, OnlineSlicerMatchesOracle) {
  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto comp = random_case(seed, /*N=*/5, /*n=*/3, /*events=*/8);
    const auto oracle = comp.first_wcp_cut();
    const auto r = run_slice_online(comp, o);
    ASSERT_EQ(r.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) {
      EXPECT_EQ(r.cut, *oracle) << "seed " << seed;
    }
    EXPECT_GT(r.states_received, 0) << "seed " << seed;
  }
}

TEST(SlicedDetect, OnlineSlicerAgreesWithOnlineLattice) {
  RunOptions o;
  o.seed = 5;
  o.latency = sim::LatencyModel::uniform(1, 4);
  const auto comp = random_case(9, /*N=*/5, /*n=*/3, /*events=*/8);
  const auto sliced = run_slice_online(comp, o);
  const auto lattice = run_lattice_online(comp, o, 1'000'000);
  ASSERT_EQ(sliced.detected, lattice.detected);
  if (lattice.detected) {
    EXPECT_EQ(sliced.cut, lattice.cut);
  }
}

TEST(SlicedDetect, OnlineSlicerReportsSliceCounters) {
  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 4);
  const auto comp = blowup_case(/*n=*/4, /*states=*/6);
  const auto r = run_slice_online(comp, o);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, Cut(4, 6));
  EXPECT_EQ(r.slice_cuts, 1);  // only the all-last cut satisfies
  EXPECT_FALSE(r.slice_cuts_saturated);
  EXPECT_GT(r.slice_groups, 0);
  EXPECT_GT(r.jil_advances, 0);

  const auto metrics = slice_report_metrics(r);
  ASSERT_FALSE(metrics.empty());
  EXPECT_EQ(metrics.front().first, "detected");
  EXPECT_EQ(metrics.front().second.as_double(), 1.0);
}

}  // namespace
}  // namespace wcp::detect
