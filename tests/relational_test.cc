#include "detect/relational.h"

#include <gtest/gtest.h>

#include "detect/lattice.h"
#include "predicate/program.h"

namespace wcp::detect {
namespace {

using pred::Env;
using pred::Expr;
using pred::ProgramBuilder;
using pred::VarComputation;

// Token-conservation scenario: two processes exchange "tokens"; the sum
// x0 + x1 should always be 10 except transiently while a transfer is in
// flight — a relational predicate no conjunction of local predicates can
// express.
VarComputation token_transfer(bool deliver) {
  ProgramBuilder pb(2);
  pb.set(ProcessId(0), "x", 6);
  pb.set(ProcessId(1), "x", 4);
  // P0 sends 2 tokens to P1.
  pb.set(ProcessId(0), "x", 4);  // debit before sending
  const MessageId m = pb.send(ProcessId(0), ProcessId(1));
  if (deliver) {
    pb.receive(m);
    pb.set(ProcessId(1), "x", 6);  // credit on receipt
  }
  return pb.build_with_vars();
}

TEST(PossiblyGeneral, DetectsTransientConservationViolation) {
  const auto vc = token_transfer(/*deliver=*/true);
  // During the transfer, a consistent cut sees x0=4 (post-debit) with
  // x1=4 (pre-credit): sum 8 < 10.
  const auto r = detect_possibly_general(vc, [](std::span<const Env> envs) {
    return envs[0].get("x") + envs[1].get("x") < 10;
  });
  ASSERT_TRUE(r.detected);
  // The conservation sum is also possibly 10 (before and after transfer).
  const auto ok = detect_possibly_general(vc, [](std::span<const Env> envs) {
    return envs[0].get("x") + envs[1].get("x") == 10;
  });
  EXPECT_TRUE(ok.detected);
  // But never above 10: tokens are not duplicated.
  const auto over = detect_possibly_general(vc, [](std::span<const Env> envs) {
    return envs[0].get("x") + envs[1].get("x") > 10;
  });
  EXPECT_FALSE(over.detected);
}

TEST(PossiblyGeneral, EnvReflectsEndOfStateValues) {
  ProgramBuilder pb(1);
  pb.set(ProcessId(0), "x", 1);
  pb.set(ProcessId(0), "x", 2);  // same state: end value wins
  const auto vc = pb.build_with_vars();
  EXPECT_EQ(vc.env(ProcessId(0), 1).get("x"), 2);
  const auto r = detect_possibly_general(vc, [](std::span<const Env> envs) {
    return envs[0].get("x") == 2;
  });
  EXPECT_TRUE(r.detected);
}

TEST(PossiblyGeneral, CausalityConstrainsRelationalCuts) {
  // P0 sets x=1 then informs P1, which sets y=1. The cut (x==1, y==0) is
  // possible; (x==0, y==1) is NOT (y=1 causally follows x=1).
  ProgramBuilder pb(2);
  pb.set(ProcessId(0), "x", 1);
  pb.transfer(ProcessId(0), ProcessId(1));
  pb.set(ProcessId(1), "y", 1);
  const auto vc = pb.build_with_vars();

  const auto possible =
      detect_possibly_general(vc, [](std::span<const Env> envs) {
        return envs[0].get("x") == 1 && envs[1].get("y") == 0;
      });
  EXPECT_TRUE(possible.detected);

  const auto impossible =
      detect_possibly_general(vc, [](std::span<const Env> envs) {
        return envs[0].get("x") == 0 && envs[1].get("y") == 1;
      });
  EXPECT_FALSE(impossible.detected);
}

TEST(PossiblyGeneral, AgreesWithWcpLatticeOnConjunctions) {
  // When Φ is a conjunction of local conditions, the general detector and
  // the WCP lattice must agree on detectability.
  ProgramBuilder pb(3);
  pb.local_predicate(ProcessId(0), Expr::parse("a > 0"));
  pb.local_predicate(ProcessId(1), Expr::parse("b > 0"));
  pb.local_predicate(ProcessId(2), Expr::parse("c > 0"));
  pb.set(ProcessId(0), "a", 1);
  pb.transfer(ProcessId(0), ProcessId(1));
  pb.set(ProcessId(1), "b", 1);
  pb.transfer(ProcessId(1), ProcessId(2));
  pb.set(ProcessId(2), "c", 1);
  const auto vc = pb.build_with_vars();

  const auto general =
      detect_possibly_general(vc, [](std::span<const Env> envs) {
        return envs[0].get("a") > 0 && envs[1].get("b") > 0 &&
               envs[2].get("c") > 0;
      });
  const auto wcp = detect_lattice(vc.computation);
  EXPECT_EQ(general.detected, wcp.detected);
}

TEST(PossiblyGeneral, TruncationCap) {
  ProgramBuilder pb(2);
  for (int k = 0; k < 6; ++k) pb.send(ProcessId(0), ProcessId(1));
  for (int k = 0; k < 6; ++k) pb.send(ProcessId(1), ProcessId(0));
  const auto vc = pb.build_with_vars();
  const auto r = detect_possibly_general(
      vc, [](std::span<const Env>) { return false; }, /*max_cuts=*/5);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.cuts_explored, 5);
}

TEST(PossiblyGeneral, RejectsNullPredicate) {
  ProgramBuilder pb(1);
  const auto vc = pb.build_with_vars();
  EXPECT_THROW(detect_possibly_general(vc, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace wcp::detect
