// Computation slicing (src/slice): the slice's cut set must equal the
// brute-force set of satisfying consistent cuts on every randomized case,
// and the structural accessors (bottom/top/groups/contains/num_cuts) must
// agree with it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "slice/jil.h"
#include "slice/slice.h"
#include "workload/random_workload.h"

namespace wcp::slice {
namespace {

using Cut = std::vector<StateIndex>;

/// Every consistent cut of comp's predicate processes, by odometer over the
/// full state product (small shapes only).
std::vector<Cut> brute_force_consistent(const Computation& comp) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();
  std::vector<Cut> out;
  Cut cut(n, 1);
  for (;;) {
    bool consistent = true;
    for (std::size_t s = 0; s < n && consistent; ++s)
      for (std::size_t t = s + 1; t < n && consistent; ++t)
        if (comp.happened_before(procs[s], cut[s], procs[t], cut[t]) ||
            comp.happened_before(procs[t], cut[t], procs[s], cut[s]))
          consistent = false;
    if (consistent) out.push_back(cut);
    std::size_t s = 0;
    while (s < n && cut[s] == comp.num_states(procs[s])) cut[s++] = 1;
    if (s == n) break;
    ++cut[s];
  }
  return out;
}

std::vector<Cut> brute_force_satisfying(const Computation& comp) {
  const auto procs = comp.predicate_processes();
  std::vector<Cut> out;
  for (Cut& cut : brute_force_consistent(comp)) {
    bool sat = true;
    for (std::size_t s = 0; s < procs.size() && sat; ++s)
      if (!comp.local_pred(procs[s], cut[s])) sat = false;
    if (sat) out.push_back(std::move(cut));
  }
  return out;
}

std::set<Cut> enumerate_slice(const Slice& sl) {
  std::set<Cut> out;
  sl.for_each_cut([&](const Cut& c) {
    EXPECT_TRUE(out.insert(c).second) << "duplicate cut from iterator";
    return true;
  });
  return out;
}

TEST(Slice, RandomizedCutSetMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 3;
    spec.events_per_process = 6;
    spec.local_pred_prob = (seed % 2 == 0) ? 0.3 : 0.6;
    spec.ensure_detectable = false;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);

    const auto expected = brute_force_satisfying(comp);
    const std::set<Cut> want(expected.begin(), expected.end());

    SliceBuildCounters ctr;
    const Slice sl = Slice::build(comp, &ctr);
    ASSERT_EQ(sl.empty(), want.empty()) << "seed " << seed;
    EXPECT_EQ(enumerate_slice(sl), want) << "seed " << seed;

    const auto cc = sl.num_cuts();
    ASSERT_FALSE(cc.saturated);
    EXPECT_EQ(cc.count, static_cast<std::int64_t>(want.size()))
        << "seed " << seed;

    // Membership agrees on EVERY consistent cut, in and out of the slice.
    for (const Cut& c : brute_force_consistent(comp))
      EXPECT_EQ(sl.contains(c), want.contains(c))
          << "seed " << seed << " cut mismatch";

    if (want.empty()) continue;
    // Bottom/top are the pointwise meet/join of the satisfying cuts.
    Cut meet = expected.front(), join = expected.front();
    for (const Cut& c : expected)
      for (std::size_t s = 0; s < c.size(); ++s) {
        meet[s] = std::min(meet[s], c[s]);
        join[s] = std::max(join[s], c[s]);
      }
    EXPECT_EQ(sl.bottom(), meet) << "seed " << seed;
    EXPECT_EQ(sl.top(), join) << "seed " << seed;
    EXPECT_EQ(sl.bottom(), *comp.first_wcp_cut()) << "seed " << seed;
  }
}

TEST(Slice, JilIsMonotoneInK) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 8;
  spec.local_pred_prob = 0.5;
  spec.seed = 7;
  const auto comp = workload::make_random(spec);
  const ComputationInput in(comp);

  for (std::size_t s = 0; s < in.num_slots(); ++s) {
    std::optional<std::vector<StateIndex>> prev;
    for (StateIndex k = 1; k <= in.num_states(s); ++k) {
      const auto j = jil(in, s, k);
      if (j) {
        ASSERT_GE((*j)[s], k);
        if (prev) {
          for (std::size_t t = 0; t < in.num_slots(); ++t)
            EXPECT_LE((*prev)[t], (*j)[t]) << "slot " << s << " k " << k;
        }
      } else {
        // Existence is a prefix property: once J_s(k) fails, all later fail.
        for (StateIndex k2 = k; k2 <= in.num_states(s); ++k2)
          EXPECT_FALSE(jil(in, s, k2).has_value());
        break;
      }
      prev = j;
    }
  }
}

TEST(Slice, EmptyWhenPredicateNeverHolds) {
  ComputationBuilder b(2);
  b.transfer(ProcessId(0), ProcessId(1));
  b.transfer(ProcessId(1), ProcessId(0));
  const auto comp = b.build();  // default pred: false everywhere

  const Slice sl = Slice::build(comp);
  EXPECT_TRUE(sl.empty());
  EXPECT_EQ(sl.num_groups(), 0);
  EXPECT_EQ(sl.num_cuts().count, 0);
  EXPECT_FALSE(sl.contains(std::vector<StateIndex>{1, 1}));
  EXPECT_FALSE(sl.cuts().next().has_value());
}

TEST(Slice, AllTruePredicatesYieldEveryConsistentCut) {
  // Two structures: fully independent (lattice = full product) and chained.
  {
    ComputationBuilder b(3);
    for (int p = 0; p < 3; ++p) {
      b.set_default_pred(ProcessId(p), true);
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
    }
    const auto comp = b.build();
    const Slice sl = Slice::build(comp);
    EXPECT_EQ(sl.num_cuts().count, 27);  // 3^3, no causality
    const auto all = brute_force_consistent(comp);
    EXPECT_EQ(enumerate_slice(sl), std::set<Cut>(all.begin(), all.end()));
  }
  {
    ComputationBuilder b(2);
    b.set_default_pred(ProcessId(0), true);
    b.set_default_pred(ProcessId(1), true);
    b.transfer(ProcessId(0), ProcessId(1));
    b.transfer(ProcessId(1), ProcessId(0));
    const auto comp = b.build();
    const Slice sl = Slice::build(comp);
    const auto all = brute_force_consistent(comp);
    EXPECT_EQ(sl.num_cuts().count, static_cast<std::int64_t>(all.size()));
    EXPECT_EQ(enumerate_slice(sl), std::set<Cut>(all.begin(), all.end()));
  }
}

TEST(Slice, UndeliveredMessagesBlowupShapeHasOneCut) {
  // The E10 shape: no cross-causality (recv_state == 0 on every message),
  // predicate true only in the last states. The full lattice has states^n
  // cuts; the slice has exactly one.
  constexpr std::size_t kN = 4;
  constexpr std::int64_t kStates = 6;
  ComputationBuilder b(kN);
  for (std::size_t p = 0; p < kN; ++p)
    for (std::int64_t k = 1; k < kStates; ++k)
      b.send(ProcessId(static_cast<int>(p)),
             ProcessId(static_cast<int>((p + 1) % kN)));
  for (std::size_t p = 0; p < kN; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  const auto comp = b.build();

  const Slice sl = Slice::build(comp);
  ASSERT_FALSE(sl.empty());
  const Cut last(kN, kStates);
  EXPECT_EQ(sl.bottom(), last);
  EXPECT_EQ(sl.top(), last);
  EXPECT_EQ(sl.num_cuts().count, 1);
  EXPECT_TRUE(sl.contains(last));
  EXPECT_FALSE(sl.contains(Cut(kN, 1)));
}

TEST(Slice, SingleProcessSliceIsTrueStates) {
  // One predicate slot; states 1 false, 2 true, 3 false, 4 true (state
  // boundaries via undelivered sends to a second, non-predicate process).
  ComputationBuilder b2(2);
  b2.set_predicate_processes({ProcessId(0)});
  b2.send(ProcessId(0), ProcessId(1));
  b2.mark_pred(ProcessId(0), true);  // state 2
  b2.send(ProcessId(0), ProcessId(1));
  b2.send(ProcessId(0), ProcessId(1));
  b2.mark_pred(ProcessId(0), true);  // state 4
  const auto comp = b2.build();

  const Slice sl = Slice::build(comp);
  ASSERT_FALSE(sl.empty());
  EXPECT_EQ(sl.bottom(), (Cut{2}));
  EXPECT_EQ(sl.top(), (Cut{4}));
  EXPECT_EQ(enumerate_slice(sl), (std::set<Cut>{{2}, {4}}));
}

TEST(Slice, NumCutsSaturatesAtCap) {
  ComputationBuilder b(3);
  for (int p = 0; p < 3; ++p) {
    b.set_default_pred(ProcessId(p), true);
    for (int k = 0; k < 4; ++k)
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
  }
  const auto comp = b.build();  // 5^3 = 125 satisfying cuts

  const Slice sl = Slice::build(comp);
  EXPECT_EQ(sl.num_cuts().count, 125);
  EXPECT_FALSE(sl.num_cuts(125).saturated);  // exact cap is not saturation
  const auto capped = sl.num_cuts(100);
  EXPECT_TRUE(capped.saturated);
  EXPECT_EQ(capped.count, 100);
}

TEST(Slice, IteratorYieldsLevelOrder) {
  workload::RandomSpec spec;
  spec.num_processes = 3;
  spec.num_predicate = 3;
  spec.events_per_process = 6;
  spec.local_pred_prob = 0.6;
  spec.seed = 11;
  const auto comp = workload::make_random(spec);

  const Slice sl = Slice::build(comp);
  auto it = sl.cuts();
  StateIndex prev_level = 0;
  while (const auto cut = it.next()) {
    StateIndex level = 0;
    for (StateIndex k : *cut) level += k;
    EXPECT_GE(level, prev_level);
    prev_level = level;
  }
}

// ---- parallel-vs-serial equivalence ----------------------------------------
//
// The parallel build computes per-slot J columns concurrently but interns
// serially in slot order, so the slice — group numbering, edges, bottom,
// top, cut set — and the accumulated counters must be identical for every
// thread count.

TEST(Slice, ParallelBuildMatchesSerialOnRandomSweep) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 10;
    spec.local_pred_prob = 0.5;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);

    SliceBuildCounters serial_ctr;
    const Slice serial = Slice::build(comp, &serial_ctr, /*threads=*/1);
    for (std::size_t threads : {2u, 8u}) {
      SliceBuildCounters ctr;
      const Slice par = Slice::build(comp, &ctr, threads);
      ASSERT_EQ(par.empty(), serial.empty()) << "seed " << seed;
      EXPECT_EQ(par.num_groups(), serial.num_groups()) << "seed " << seed;
      EXPECT_EQ(par.num_edges(), serial.num_edges()) << "seed " << seed;
      EXPECT_EQ(par.bottom(), serial.bottom()) << "seed " << seed;
      EXPECT_EQ(par.top(), serial.top()) << "seed " << seed;
      EXPECT_EQ(ctr.jil.calls, serial_ctr.jil.calls) << "seed " << seed;
      EXPECT_EQ(ctr.jil.advances, serial_ctr.jil.advances) << "seed " << seed;
      EXPECT_EQ(ctr.jil.clock_lookups, serial_ctr.jil.clock_lookups)
          << "seed " << seed;
      // Group numbering (not just the count) must match: same group id for
      // every state, same JIL cut per group.
      for (int g = 0; g < serial.num_groups(); ++g)
        EXPECT_EQ(par.group_cut(g), serial.group_cut(g)) << "seed " << seed;
      const auto procs = comp.predicate_processes();
      for (std::size_t s = 0; s < procs.size(); ++s)
        for (StateIndex k = 1; k <= comp.num_states(procs[s]); ++k)
          EXPECT_EQ(par.group_of(s, k), serial.group_of(s, k))
              << "seed " << seed << " slot " << s << " k " << k;
      const auto sc = serial.num_cuts();
      const auto pc = par.num_cuts();
      EXPECT_EQ(pc.count, sc.count) << "seed " << seed;
      EXPECT_EQ(pc.saturated, sc.saturated) << "seed " << seed;
    }
  }
}

TEST(Slice, ParallelBuildOfEmptySlice) {
  // One slot never true: the slice is empty; the parallel path exits before
  // any fan-out and must agree.
  ComputationBuilder b(3);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(2), true);
  const auto comp = b.build();
  for (std::size_t threads : {1u, 2u, 8u}) {
    const Slice sl = Slice::build(comp, nullptr, threads);
    EXPECT_TRUE(sl.empty());
    EXPECT_EQ(sl.num_groups(), 0);
  }
}

}  // namespace
}  // namespace wcp::slice
