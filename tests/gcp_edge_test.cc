// GCP edge cases: undelivered messages, zero-message channels, exhausted
// senders for at-least predicates, and channel predicates stacked on the
// same channel.
#include <gtest/gtest.h>

#include "detect/gcp.h"
#include "workload/termination_workload.h"

namespace wcp::detect {
namespace {

TEST(GcpEdge, UndeliveredMessagesStayInTransitForever) {
  // P0 sends a message that is never received; "channel empty" can only
  // hold before the send.
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  b.send(ProcessId(0), ProcessId(1));  // in flight at end of run
  const auto c = b.build();

  const ChannelPredicate empty[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto r = detect_gcp(c, empty);
  ASSERT_TRUE(r.detected);
  // Only (1, x) cuts qualify: the send ends P0's state 1.
  EXPECT_EQ(r.cut[0], 1);
}

TEST(GcpEdge, ZeroMessageChannelIsAlwaysEmpty) {
  ComputationBuilder b(3);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  b.set_default_pred(ProcessId(2), true);
  b.transfer(ProcessId(0), ProcessId(1));
  const auto c = b.build();
  // P2 never communicates: its channels are trivially empty.
  const ChannelPredicate chans[] = {
      ChannelPredicate::empty(ProcessId(2), ProcessId(0)),
      ChannelPredicate::empty(ProcessId(0), ProcessId(2))};
  const auto r = detect_gcp(c, chans);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1, 1}));
}

TEST(GcpEdge, AtLeastUnsatisfiableWhenSenderNeverSendsEnough) {
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  b.send(ProcessId(0), ProcessId(1));  // exactly one message, undelivered
  const auto c = b.build();
  const ChannelPredicate need2[] = {
      ChannelPredicate::at_least(ProcessId(0), ProcessId(1), 2)};
  EXPECT_FALSE(detect_gcp(c, need2).detected);
}

TEST(GcpEdge, StackedPredicatesOnOneChannel) {
  // 1 <= in_transit <= 2 on P0->P1: a window predicate.
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  for (int i = 0; i < 3; ++i) b.send(ProcessId(0), ProcessId(1));
  const auto c = b.build();  // P0 states 1..4; sends never received
  const ChannelPredicate window[] = {
      ChannelPredicate::at_least(ProcessId(0), ProcessId(1), 1),
      ChannelPredicate::at_most(ProcessId(0), ProcessId(1), 2)};
  const auto r = detect_gcp(c, window);
  ASSERT_TRUE(r.detected);
  // First cut with 1..2 in transit: P0 state 2 (one message sent).
  EXPECT_EQ(r.cut[0], 2);
  // Cross-check with the lattice oracle.
  const auto oracle = detect_gcp_lattice(c, window, 100'000);
  ASSERT_TRUE(oracle.detected);
  EXPECT_EQ(r.cut, oracle.cut);
}

TEST(GcpEdge, TerminationWorkloadRespectsMessageCap) {
  workload::TerminationSpec spec;
  spec.num_processes = 6;
  spec.initial_work = 5;
  spec.spawn_prob = 0.95;  // would diffuse forever without the cap
  spec.max_messages = 50;
  spec.seed = 12;
  const auto t = workload::make_termination(spec);
  EXPECT_LE(t.work_messages, 50);
  // Still terminates and the GCP still pins the exact cut.
  const auto channels = ChannelPredicate::all_channels_empty(6);
  const auto r = detect_gcp(t.computation, channels);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, t.termination_cut);
}

TEST(GcpEdge, ChannelEvalsAreCounted) {
  ComputationBuilder b(2);
  b.set_default_pred(ProcessId(0), true);
  b.set_default_pred(ProcessId(1), true);
  const auto c = b.build();
  const ChannelPredicate chan[] = {
      ChannelPredicate::empty(ProcessId(0), ProcessId(1))};
  const auto r = detect_gcp(c, chan);
  ASSERT_TRUE(r.detected);
  EXPECT_GE(r.channel_evals, 1);
  EXPECT_EQ(r.eliminations, 0);
}

}  // namespace
}  // namespace wcp::detect
