// Invariant I4 (DESIGN.md): every detector — single-token, multi-token,
// serial and parallel direct-dependence, centralized checker, lattice
// baseline — agrees exactly with the offline oracle on the first WCP cut,
// across randomized computations and both domain workloads.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"
#include "workload/db_workload.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 8);
  return o;
}

void expect_all_agree(const Computation& comp, std::uint64_t seed,
                      const std::string& label) {
  const auto oracle = comp.first_wcp_cut();
  const auto oracle_full = comp.first_wcp_cut_all_processes();
  // Consistency between the two oracles: the full cut projects onto the
  // predicate cut.
  ASSERT_EQ(oracle.has_value(), oracle_full.has_value()) << label;
  if (oracle) {
    const auto preds = comp.predicate_processes();
    for (std::size_t s = 0; s < preds.size(); ++s)
      ASSERT_EQ((*oracle_full)[preds[s].idx()], (*oracle)[s]) << label;
  }

  const auto token = run_token_vc(comp, opts(seed));
  EXPECT_EQ(token.detected, oracle.has_value()) << label << " [token-vc]";
  if (oracle) EXPECT_EQ(token.cut, *oracle) << label << " [token-vc]";

  for (int g : {2, 3}) {
    MultiTokenOptions mt;
    mt.num_groups = g;
    const auto multi = run_multi_token(comp, opts(seed), mt);
    EXPECT_EQ(multi.detected, oracle.has_value())
        << label << " [multi-token g=" << g << "]";
    if (oracle)
      EXPECT_EQ(multi.cut, *oracle) << label << " [multi-token g=" << g << "]";
  }

  for (bool parallel : {false, true}) {
    DdRunOptions dd;
    dd.parallel = parallel;
    const auto direct = run_direct_dep(comp, opts(seed), dd);
    EXPECT_EQ(direct.detected, oracle.has_value())
        << label << " [direct-dep parallel=" << parallel << "]";
    if (oracle) {
      EXPECT_EQ(direct.cut, *oracle)
          << label << " [direct-dep parallel=" << parallel << "]";
      EXPECT_EQ(direct.full_cut, *oracle_full)
          << label << " [direct-dep parallel=" << parallel << "]";
    }
  }

  const auto checker = run_centralized(comp, opts(seed));
  EXPECT_EQ(checker.detected, oracle.has_value()) << label << " [checker]";
  if (oracle) EXPECT_EQ(checker.cut, *oracle) << label << " [checker]";

  const auto lattice = detect_lattice(comp, /*max_cuts=*/2'000'000);
  ASSERT_FALSE(lattice.truncated) << label;
  EXPECT_EQ(lattice.detected, oracle.has_value()) << label << " [lattice]";
  if (oracle) EXPECT_EQ(lattice.cut, *oracle) << label << " [lattice]";
}

struct SweepCase {
  std::size_t N;
  std::size_t n;
  std::int64_t events;
  double pred_prob;
};

class AgreementSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AgreementSweep, AllDetectorsAgreeWithOracle) {
  const auto& c = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = c.N;
    spec.num_predicate = c.n;
    spec.events_per_process = c.events;
    spec.local_pred_prob = c.pred_prob;
    spec.random_predicate_subset = (seed % 2 == 1);
    spec.seed = seed * 1000 + c.N;
    const auto comp = workload::make_random(spec);
    std::ostringstream label;
    label << "N=" << c.N << " n=" << c.n << " seed=" << seed;
    expect_all_agree(comp, seed + 1, label.str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AgreementSweep,
    ::testing::Values(SweepCase{2, 2, 10, 0.3},   // minimal
                      SweepCase{4, 4, 15, 0.3},   // n == N
                      SweepCase{6, 3, 15, 0.3},   // relays involved
                      SweepCase{8, 2, 12, 0.4},   // tiny predicate, many relays
                      SweepCase{5, 5, 30, 0.1},   // sparse predicate truth
                      SweepCase{5, 5, 8, 0.9},    // dense predicate truth
                      SweepCase{10, 5, 10, 0.25}  // wider system
                      ));

TEST(Agreement, MutexWorkload) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::MutexSpec spec;
    spec.num_clients = 3;
    spec.rounds_per_client = 5;
    spec.violation_prob = 0.3;
    spec.seed = seed;
    const auto mc = workload::make_mutex(spec);
    expect_all_agree(mc.computation, seed + 1,
                     "mutex seed=" + std::to_string(seed));
  }
}

TEST(Agreement, DbWorkload) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::DbSpec spec;
    spec.num_readers = 2;
    spec.num_writers = 2;
    spec.rounds = 5;
    spec.violation_prob = 0.3;
    spec.seed = seed;
    const auto db = workload::make_db(spec);
    expect_all_agree(db.computation, seed + 1,
                     "db seed=" + std::to_string(seed));
  }
}

TEST(Agreement, UndeliveredMessagesDoNotBreakDetectors) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 12;
    spec.local_pred_prob = 0.35;
    spec.drain_prob = 0.5;  // leave messages in flight at the end
    spec.seed = seed + 400;
    const auto comp = workload::make_random(spec);
    expect_all_agree(comp, seed + 1,
                     "undelivered seed=" + std::to_string(seed));
  }
}

TEST(Agreement, RobustToFifoEverywhereAndHeavyJitter) {
  // The algorithms require only app->monitor FIFO; they must behave
  // identically under global FIFO and under heavy-tailed latency.
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 4;
  spec.events_per_process = 15;
  spec.local_pred_prob = 0.3;
  spec.seed = 7;
  const auto comp = workload::make_random(spec);
  const auto oracle = comp.first_wcp_cut();

  for (bool fifo_all : {false, true}) {
    for (auto lat : {sim::LatencyModel::fixed_delay(1),
                     sim::LatencyModel::uniform(1, 40),
                     sim::LatencyModel::exponential(15.0)}) {
      RunOptions o;
      o.seed = 5;
      o.fifo_all = fifo_all;
      o.latency = lat;
      const auto token = run_token_vc(comp, o);
      const auto direct = run_direct_dep(comp, o);
      EXPECT_EQ(token.detected, oracle.has_value());
      EXPECT_EQ(direct.detected, oracle.has_value());
      if (oracle) {
        EXPECT_EQ(token.cut, *oracle);
        EXPECT_EQ(direct.cut, *oracle);
      }
    }
  }
}

}  // namespace
}  // namespace wcp::detect
