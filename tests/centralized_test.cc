#include "detect/centralized.h"

#include <gtest/gtest.h>

#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

TEST(Centralized, DetectsTrivialInitialCut) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_centralized(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
}

TEST(Centralized, EliminatesDominatedHeads) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  const auto r = run_centralized(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));
}

TEST(Centralized, NotDetectedTerminates) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  const auto r = run_centralized(comp, opts());
  EXPECT_FALSE(r.detected);
}

TEST(Centralized, MatchesOracleOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 15;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    const auto r = run_centralized(comp, opts(seed + 1));
    ASSERT_EQ(r.detected, expect.has_value()) << "seed " << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "seed " << seed;
  }
}

TEST(Centralized, AgreesWithTokenAlgorithm) {
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 7;
    spec.num_predicate = 5;
    spec.events_per_process = 18;
    spec.local_pred_prob = 0.25;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto checker = run_centralized(comp, opts());
    const auto token = run_token_vc(comp, opts());
    EXPECT_EQ(checker.detected, token.detected) << "seed " << seed;
    EXPECT_EQ(checker.cut, token.cut) << "seed " << seed;
  }
}

TEST(Centralized, AllBufferingConcentratesAtTheChecker) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 6;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.4;
  spec.seed = 3;
  const auto comp = workload::make_random(spec);
  const auto r = run_centralized(comp, opts());
  // Only the coordinator slot buffers snapshots; monitors don't exist.
  const auto N = comp.num_processes();
  for (std::size_t p = 0; p < N; ++p)
    EXPECT_EQ(r.monitor_metrics.at(ProcessId(static_cast<int>(p)))
                  .peak_buffered_bytes,
              0);
  EXPECT_GT(r.monitor_metrics.at(ProcessId(static_cast<int>(N)))
                .peak_buffered_bytes,
            0);
}

TEST(Centralized, CheckerSendsNoMessages) {
  // The checker is a pure sink: all detection work happens locally.
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 10;
  spec.local_pred_prob = 0.5;
  spec.seed = 2;
  const auto comp = workload::make_random(spec);
  const auto r = run_centralized(comp, opts());
  EXPECT_EQ(r.monitor_metrics.total_messages(), 0);
  EXPECT_EQ(r.token_hops, 0);
}

}  // namespace
}  // namespace wcp::detect
