#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "common/types.h"

namespace wcp {
namespace {

TEST(ProcessId, ValueAndValidity) {
  EXPECT_EQ(ProcessId(3).value(), 3);
  EXPECT_EQ(ProcessId(3).idx(), 3u);
  EXPECT_TRUE(ProcessId(0).valid());
  EXPECT_FALSE(ProcessId::invalid().valid());
  EXPECT_FALSE(ProcessId().valid());
}

TEST(ProcessId, OrderingAndEquality) {
  EXPECT_EQ(ProcessId(2), ProcessId(2));
  EXPECT_NE(ProcessId(2), ProcessId(3));
  EXPECT_LT(ProcessId(2), ProcessId(3));
}

TEST(ProcessId, StreamsAsPn) {
  std::ostringstream oss;
  oss << ProcessId(7);
  EXPECT_EQ(oss.str(), "P7");
}

TEST(ProcessId, Hashable) {
  EXPECT_EQ(std::hash<ProcessId>{}(ProcessId(4)),
            std::hash<ProcessId>{}(ProcessId(4)));
}

TEST(Color, Streams) {
  std::ostringstream oss;
  oss << Color::kRed << ' ' << Color::kGreen;
  EXPECT_EQ(oss.str(), "red green");
}

TEST(ErrorMacros, CheckThrowsInvariantViolation) {
  EXPECT_THROW(WCP_CHECK(1 == 2), InvariantViolation);
  try {
    WCP_CHECK_MSG(false, "value=" << 42);
    FAIL();
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value=42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
  }
}

TEST(ErrorMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(WCP_REQUIRE(false, "bad input " << 7), std::invalid_argument);
  try {
    WCP_REQUIRE(2 + 2 == 5, "math is broken");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

TEST(ErrorMacros, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(WCP_CHECK(true));
  EXPECT_NO_THROW(WCP_REQUIRE(true, "never shown"));
}

TEST(Logger, LevelsGateOutput) {
  auto& log = Logger::instance();
  const LogLevel old = log.level();
  log.set_level(LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  log.set_level(LogLevel::kDebug);
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kDebug));
  EXPECT_FALSE(log.enabled(LogLevel::kTrace));
  log.set_level(old);
}

TEST(Logger, MacroCompilesAndRespectsLevel) {
  auto& log = Logger::instance();
  const LogLevel old = log.level();
  log.set_level(LogLevel::kOff);
  int evaluations = 0;
  // The stream expression must not be evaluated when the level is off.
  WCP_INFO("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  log.set_level(old);
}

}  // namespace
}  // namespace wcp
