#include "detect/chandy_lamport.h"

#include <gtest/gtest.h>

#include "detect/gcp.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"
#include "workload/termination_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

// Every recorded snapshot must be a consistent cut with exact channel
// contents — the CL correctness properties, checked against ground truth.
void verify_snapshots(const Computation& comp, const ClResult& r) {
  const std::size_t N = comp.num_processes();
  std::vector<ProcessId> procs;
  for (std::size_t p = 0; p < N; ++p) procs.emplace_back(static_cast<int>(p));

  for (const ClSnapshot& snap : r.snapshots) {
    EXPECT_TRUE(comp.is_consistent_cut(procs, snap.cut))
        << "round " << snap.round;
    for (std::size_t i = 0; i < N; ++i)
      for (std::size_t j = 0; j < N; ++j) {
        if (i == j) continue;
        EXPECT_EQ(snap.channel[i][j],
                  in_transit(comp, procs[i], snap.cut[i], procs[j],
                             snap.cut[j]))
            << "round " << snap.round << " channel " << i << "->" << j;
      }
    // Predicate flags match the computation.
    for (std::size_t p = 0; p < N; ++p) {
      if (comp.predicate_slot(procs[p]) < 0) continue;
      EXPECT_EQ(snap.pred[p], comp.local_pred(procs[p], snap.cut[p]))
          << "round " << snap.round << " P" << p;
    }
  }
}

class ClRounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClRounds, SnapshotsAreConsistentWithExactChannelContents) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.3;
  spec.drain_prob = 1.0;  // CL rounds need fully-consumed runs
  spec.seed = seed;
  const auto comp = workload::make_random(spec);

  ClOptions cl;
  cl.first_round_at = 3;
  cl.inter_round_delay = 15;
  cl.max_rounds = 10;
  cl.stable_predicate = [](const ClSnapshot&) { return false; };  // record all
  const auto r = run_chandy_lamport(comp, opts(seed + 1), cl);
  ASSERT_GE(r.snapshots.size(), 2u);
  verify_snapshots(comp, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClRounds, ::testing::Range<std::uint64_t>(0, 8));

TEST(ChandyLamport, DetectsTerminationEventually) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::TerminationSpec spec;
    spec.num_processes = 4;
    spec.initial_work = 3;
    spec.seed = seed + 60;
    const auto t = workload::make_termination(spec);

    ClOptions cl;
    cl.first_round_at = 2;
    cl.inter_round_delay = 10;
    cl.max_rounds = 200;
    const auto r = run_chandy_lamport(t.computation, opts(seed), cl);
    ASSERT_TRUE(r.detected) << "seed " << seed;
    // CL catches termination only once it is already true: the snapshot's
    // cut is pointwise at-or-after the true termination cut.
    for (std::size_t p = 0; p < t.termination_cut.size(); ++p)
      EXPECT_GE(r.snapshots.back().cut[p], t.termination_cut[p])
          << "seed " << seed;
    verify_snapshots(t.computation, r);
  }
}

TEST(ChandyLamport, DetectsLaterThanOnlineGcp) {
  // The headline comparison: the stable-predicate baseline observes
  // termination at the next snapshot round; the GCP detector pinpoints the
  // exact first cut.
  workload::TerminationSpec spec;
  spec.num_processes = 4;
  spec.initial_work = 4;
  spec.spawn_prob = 0.4;
  spec.seed = 8;
  const auto t = workload::make_termination(spec);

  ClOptions cl;
  cl.first_round_at = 2;
  cl.inter_round_delay = 10;
  cl.max_rounds = 500;
  const auto cl_result = run_chandy_lamport(t.computation, opts(3), cl);
  ASSERT_TRUE(cl_result.detected);

  const auto channels = ChannelPredicate::all_channels_empty(4);
  const auto gcp = detect_gcp(t.computation, channels);
  ASSERT_TRUE(gcp.detected);

  // CL's detected cut is never before the first termination cut, and in
  // general strictly after (it only samples).
  for (std::size_t p = 0; p < gcp.cut.size(); ++p)
    EXPECT_GE(cl_result.snapshots.back().cut[p], gcp.cut[p]);
}

TEST(ChandyLamport, MissesUnstablePredicates) {
  // A transient mutual-exclusion violation: possibly(CS0 ∧ CS1) is true,
  // but no CL snapshot round observes it when the rounds are timed after
  // the violation window — the paper's motivation for online unstable-
  // predicate detection.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // transient window at the very start
  b.mark_pred(ProcessId(1), true);
  b.transfer(ProcessId(0), ProcessId(1));  // both leave the window
  b.transfer(ProcessId(1), ProcessId(0));
  const auto comp = b.build();

  // The token algorithm detects the (1,1) cut.
  const auto token = run_token_vc(comp, opts());
  ASSERT_TRUE(token.detected);
  EXPECT_EQ(token.cut, (std::vector<StateIndex>{1, 1}));

  // CL rounds sampling "both predicates true" start late and miss it.
  ClOptions cl;
  cl.first_round_at = 500;  // after the run has moved on
  cl.inter_round_delay = 20;
  cl.max_rounds = 5;
  cl.stable_predicate = [](const ClSnapshot& s) {
    return s.pred[0] && s.pred[1];
  };
  const auto r = run_chandy_lamport(comp, opts(), cl);
  EXPECT_FALSE(r.detected);
  EXPECT_GE(r.snapshots.size(), 1u);
}

TEST(ChandyLamport, SingleProcessEdgeCase) {
  ComputationBuilder b(1);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  ClOptions cl;
  cl.first_round_at = 1;
  cl.stable_predicate = [](const ClSnapshot& s) {
    return s.pred[0] && s.total_in_channels() == 0;
  };
  const auto r = run_chandy_lamport(comp, opts(), cl);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.snapshots.back().cut, (std::vector<StateIndex>{1}));
}

}  // namespace
}  // namespace wcp::detect
