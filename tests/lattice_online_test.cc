#include "detect/lattice_online.h"

#include <gtest/gtest.h>

#include "detect/lattice.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

TEST(LatticeOnline, DetectsTrivialInitialCut) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = run_lattice_online(comp, opts());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
  EXPECT_EQ(r.cuts_explored, 1);
}

TEST(LatticeOnline, NotDetectedTerminates) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  b.transfer(ProcessId(0), ProcessId(1));
  const auto comp = b.build();
  const auto r = run_lattice_online(comp, opts());
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.truncated);
  // Same exploration as the offline baseline: all 3 consistent cuts.
  EXPECT_EQ(r.cuts_explored, 3);
}

class LatticeOnlineVsOffline : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LatticeOnlineVsOffline, SameCutAndSameExplorationCount) {
  const std::uint64_t seed = GetParam();
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 4;
  spec.events_per_process = 9;
  spec.local_pred_prob = 0.3;
  spec.seed = seed;
  const auto comp = workload::make_random(spec);

  const auto offline = detect_lattice(comp, /*max_cuts=*/500'000);
  ASSERT_FALSE(offline.truncated);
  const auto online = run_lattice_online(comp, opts(seed + 1));
  ASSERT_EQ(online.detected, offline.detected) << "seed " << seed;
  if (offline.detected) {
    EXPECT_EQ(online.cut, offline.cut) << "seed " << seed;
    // The minimal satisfying cut is unique, so both must report it; the
    // number of cuts materialized before it can differ by exploration
    // order, but on detection the online count never exceeds offline's
    // full-level sweep by more than the final level's width. Check the
    // strong property that matters: same first cut.
  } else {
    // Undetected: both visited the entire lattice.
    EXPECT_EQ(online.cuts_explored, offline.cuts_explored)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeOnlineVsOffline,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(LatticeOnline, AgreesWithTokenDetectorOnDomainWorkload) {
  workload::MutexSpec spec;
  spec.num_clients = 2;
  spec.rounds_per_client = 4;
  spec.violation_prob = 0.5;
  spec.seed = 6;
  const auto mc = workload::make_mutex(spec);
  const auto token = run_token_vc(mc.computation, opts());
  const auto lattice = run_lattice_online(mc.computation, opts());
  EXPECT_EQ(lattice.detected, token.detected);
  if (token.detected) EXPECT_EQ(lattice.cut, token.cut);
}

TEST(LatticeOnline, TruncationCap) {
  // Independent processes, predicate never true: exponential lattice.
  ComputationBuilder b(3);
  for (int p = 0; p < 3; ++p)
    for (int k = 0; k < 6; ++k)
      b.send(ProcessId(p), ProcessId((p + 1) % 3));  // undelivered
  const auto comp = b.build();
  const auto r = run_lattice_online(comp, opts(), /*max_cuts=*/50);
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.truncated);
}

TEST(LatticeOnline, StreamsEveryStateToTheChecker) {
  workload::RandomSpec spec;
  spec.num_processes = 3;
  spec.num_predicate = 3;
  spec.events_per_process = 8;
  spec.local_pred_prob = 0.0;  // never detected: full streams
  spec.seed = 2;
  const auto comp = workload::make_random(spec);
  const auto r = run_lattice_online(comp, opts());
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.app_metrics.total_messages(MsgKind::kSnapshot),
            comp.total_states());
}

}  // namespace
}  // namespace wcp::detect
