// Failure-injection / robustness sweep: every online detector must return
// the oracle cut under adversarial delivery conditions — heavy-tailed
// latencies, bimodal delay spikes (simulating retransmits/partition blips),
// with and without global FIFO — because the algorithms only ever assume
// reliable channels plus FIFO app->monitor links (§2, §3.1).
#include <gtest/gtest.h>

#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"
#include "workload/termination_workload.h"

namespace wcp::detect {
namespace {

struct ChaosCase {
  const char* name;
  sim::LatencyModel latency;
  bool fifo_all;
};

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, AllDetectorsSurvive) {
  const auto& cc = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 4;
    spec.events_per_process = 14;
    spec.local_pred_prob = 0.3;
    spec.seed = seed + 777;
    const auto comp = workload::make_random(spec);
    const auto oracle = comp.first_wcp_cut();
    const auto oracle_full = comp.first_wcp_cut_all_processes();

    RunOptions o;
    o.seed = seed * 13 + 1;
    o.latency = cc.latency;
    o.fifo_all = cc.fifo_all;

    const auto token = run_token_vc(comp, o);
    ASSERT_EQ(token.detected, oracle.has_value())
        << cc.name << " seed " << seed;
    if (oracle) EXPECT_EQ(token.cut, *oracle) << cc.name << " seed " << seed;

    MultiTokenOptions mt;
    mt.num_groups = 2;
    const auto multi = run_multi_token(comp, o, mt);
    EXPECT_EQ(multi.detected, oracle.has_value()) << cc.name;
    if (oracle) EXPECT_EQ(multi.cut, *oracle) << cc.name;

    for (bool parallel : {false, true}) {
      DdRunOptions dd;
      dd.parallel = parallel;
      const auto direct = run_direct_dep(comp, o, dd);
      EXPECT_EQ(direct.detected, oracle.has_value())
          << cc.name << " parallel=" << parallel;
      if (oracle)
        EXPECT_EQ(direct.full_cut, *oracle_full)
            << cc.name << " parallel=" << parallel;
    }

    const auto checker = run_centralized(comp, o);
    EXPECT_EQ(checker.detected, oracle.has_value()) << cc.name;
    if (oracle) EXPECT_EQ(checker.cut, *oracle) << cc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, ChaosSweep,
    ::testing::Values(
        ChaosCase{"spiky", sim::LatencyModel::bimodal(1, 0.1, 200), false},
        ChaosCase{"very_spiky", sim::LatencyModel::bimodal(1, 0.3, 500),
                  false},
        ChaosCase{"heavy_tail", sim::LatencyModel::exponential(40.0), false},
        ChaosCase{"spiky_fifo", sim::LatencyModel::bimodal(2, 0.2, 300),
                  true},
        ChaosCase{"wide_uniform", sim::LatencyModel::uniform(1, 100), false}),
    [](const auto& info) { return info.param.name; });

TEST(Chaos, SlowDetectionOverlayStillCorrect) {
  // Monitor-layer latency 100x the application's: detection lags far behind
  // the application but must still land on the first cut.
  workload::TerminationSpec tspec;
  tspec.num_processes = 4;
  tspec.initial_work = 3;
  tspec.seed = 6;
  const auto t = workload::make_termination(tspec);
  const auto oracle = t.computation.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());

  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::fixed_delay(1);
  o.monitor_latency = sim::LatencyModel::fixed_delay(100);
  const auto token = run_token_vc(t.computation, o);
  ASSERT_TRUE(token.detected);
  EXPECT_EQ(token.cut, *oracle);
  const auto direct = run_direct_dep(t.computation, o);
  ASSERT_TRUE(direct.detected);
  EXPECT_EQ(direct.cut, *oracle);
}

TEST(Chaos, FaultPlanPresetsKeepEveryDetectorOnTheOracle) {
  // The real chaos axis: the presets from sim/fault.h actively drop,
  // duplicate, and burst-lose wire traffic (the earlier sweeps only warp
  // latency). Every detector must stay on the oracle, and the observed
  // fault counters must prove the faults actually happened.
  const struct {
    const char* name;
    sim::FaultPlan plan;
  } presets[] = {
      {"lossy", sim::FaultPlan::lossy(0.2, 5)},
      {"lossy_dup", sim::FaultPlan::lossy_dup(0.2, 0.1, 6)},
      {"flaky", sim::FaultPlan::flaky(7)},
  };

  for (const auto& preset : presets) {
    FaultCounters totals;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      workload::RandomSpec spec;
      spec.num_processes = 6;
      spec.num_predicate = 4;
      spec.events_per_process = 14;
      spec.local_pred_prob = 0.3;
      spec.seed = seed + 333;
      const auto comp = workload::make_random(spec);
      const auto oracle = comp.first_wcp_cut();
      const auto oracle_full = comp.first_wcp_cut_all_processes();

      RunOptions o;
      o.seed = seed * 11 + 2;
      o.latency = sim::LatencyModel::uniform(1, 8);
      o.faults = preset.plan;
      o.faults.seed += seed * 101;

      const auto token = run_token_vc(comp, o);
      ASSERT_EQ(token.detected, oracle.has_value())
          << preset.name << " seed " << seed;
      if (oracle) {
        EXPECT_EQ(token.cut, *oracle) << preset.name << " seed " << seed;
      }
      totals.merge(token.faults);

      MultiTokenOptions mt;
      mt.num_groups = 2;
      const auto multi = run_multi_token(comp, o, mt);
      ASSERT_EQ(multi.detected, oracle.has_value()) << preset.name;
      if (oracle) {
        EXPECT_EQ(multi.cut, *oracle) << preset.name;
      }
      totals.merge(multi.faults);

      const auto direct = run_direct_dep(comp, o);
      ASSERT_EQ(direct.detected, oracle.has_value()) << preset.name;
      if (oracle) {
        EXPECT_EQ(direct.full_cut, *oracle_full) << preset.name;
      }
      totals.merge(direct.faults);

      const auto checker = run_centralized(comp, o);
      ASSERT_EQ(checker.detected, oracle.has_value()) << preset.name;
      if (oracle) {
        EXPECT_EQ(checker.cut, *oracle) << preset.name;
      }
      totals.merge(checker.faults);
    }

    // The preset was not a no-op: loss happened and was repaired.
    EXPECT_GT(totals.drops_random, 0) << preset.name;
    EXPECT_GT(totals.retransmits, 0) << preset.name;
    EXPECT_GT(totals.acks, 0) << preset.name;
    if (preset.plan.dup > 0) {
      EXPECT_GT(totals.dups, 0) << preset.name;
      EXPECT_GT(totals.dup_suppressed, 0) << preset.name;
    }
    if (!preset.plan.bursts.empty()) {
      EXPECT_GT(totals.drops_burst, 0) << preset.name;
    }
  }
}

TEST(Chaos, LatencySeedNeverChangesTheAnswer) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 16;
  spec.local_pred_prob = 0.3;
  spec.seed = 42;
  const auto comp = workload::make_random(spec);
  const auto oracle = comp.first_wcp_cut();
  for (std::uint64_t netseed = 0; netseed < 20; ++netseed) {
    RunOptions o;
    o.seed = netseed;
    o.latency = sim::LatencyModel::bimodal(1, 0.15, 120);
    const auto r = run_token_vc(comp, o);
    ASSERT_EQ(r.detected, oracle.has_value()) << "netseed " << netseed;
    if (oracle) EXPECT_EQ(r.cut, *oracle) << "netseed " << netseed;
  }
}

}  // namespace
}  // namespace wcp::detect
