#include "app/app_driver.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "workload/random_workload.h"

namespace wcp::app {
namespace {

using sim::NodeAddr;

// A monitor stand-in that records the snapshots its application sends.
class SnapshotSink final : public sim::Node {
 public:
  void on_packet(sim::Packet&& p) override {
    if (p.kind == MsgKind::kControl) {
      eos = true;
      return;
    }
    ASSERT_EQ(p.kind, MsgKind::kSnapshot);
    if (auto* vc = std::any_cast<VcSnapshot>(&p.payload)) {
      vc_snaps.push_back(*vc);
    } else {
      dd_snaps.push_back(std::any_cast<DdSnapshot>(p.payload));
    }
  }
  std::vector<VcSnapshot> vc_snaps;
  std::vector<DdSnapshot> dd_snaps;
  bool eos = false;
};

struct Harness {
  explicit Harness(const Computation& comp, Instrumentation mode,
                   bool relay_snapshots) {
    sim::NetworkConfig cfg;
    cfg.num_processes = comp.num_processes();
    cfg.latency = sim::LatencyModel::uniform(1, 5);
    cfg.seed = 12;
    net = std::make_unique<sim::Network>(cfg);
    for (std::size_t p = 0; p < comp.num_processes(); ++p) {
      const ProcessId pid(static_cast<int>(p));
      const bool has_monitor =
          mode == Instrumentation::kDirectDependence ||
          comp.predicate_slot(pid) >= 0;
      if (has_monitor) {
        auto sink = std::make_unique<SnapshotSink>();
        sinks.push_back(sink.get());
        sink_of[p] = sinks.back();
        net->add_node(NodeAddr::monitor(pid), std::move(sink));
      }
    }
    AppDriverOptions base;
    base.mode = mode;
    base.relay_snapshots = relay_snapshots;
    install_app_drivers(*net, comp, base);
    net->start_and_run();
  }
  std::unique_ptr<sim::Network> net;
  std::vector<SnapshotSink*> sinks;
  std::map<std::size_t, SnapshotSink*> sink_of;
};

// P0 true at states 1 and 2; P1 true at state 2 only.
Computation small_comp() {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  return b.build();
}

TEST(AppDriverVc, EmitsOneSnapshotPerTrueState) {
  const auto comp = small_comp();
  Harness h(comp, Instrumentation::kVectorClock, false);
  ASSERT_EQ(h.sink_of[0]->vc_snaps.size(), 2u);
  ASSERT_EQ(h.sink_of[1]->vc_snaps.size(), 1u);
  // Fig. 2 clocks: P0 state 1 = [1,0], state 2 = [2,0]; P1 state 2 = [1,2].
  EXPECT_EQ(h.sink_of[0]->vc_snaps[0].vclock,
            VectorClock(std::vector<StateIndex>{1, 0}));
  EXPECT_EQ(h.sink_of[0]->vc_snaps[1].vclock,
            VectorClock(std::vector<StateIndex>{2, 0}));
  EXPECT_EQ(h.sink_of[1]->vc_snaps[0].vclock,
            VectorClock(std::vector<StateIndex>{1, 2}));
  EXPECT_TRUE(h.sink_of[0]->eos);
  EXPECT_TRUE(h.sink_of[1]->eos);
}

TEST(AppDriverVc, SnapshotClocksMatchGroundTruthOnRandomRuns) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 6;  // all processes in the predicate: clocks line up
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.4;
  spec.seed = 5;
  const auto comp = workload::make_random(spec);
  Harness h(comp, Instrumentation::kVectorClock, false);

  for (std::size_t p = 0; p < comp.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    std::size_t snap_idx = 0;
    for (StateIndex k = 1; k <= comp.num_states(pid); ++k) {
      if (!comp.local_pred(pid, k)) continue;
      ASSERT_LT(snap_idx, h.sink_of[p]->vc_snaps.size());
      // With n == N the replayed width-n clock equals the ground truth.
      EXPECT_EQ(h.sink_of[p]->vc_snaps[snap_idx].vclock,
                comp.ground_truth_clock(pid, k))
          << "P" << p << " state " << k;
      ++snap_idx;
    }
    EXPECT_EQ(snap_idx, h.sink_of[p]->vc_snaps.size());
  }
}

TEST(AppDriverVc, RelaysCarryCausalityButDoNotSnapshot) {
  // P0 -> P2 (relay) -> P1; predicate over {P0, P1}.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  Harness h(comp, Instrumentation::kVectorClock, false);
  // P1's snapshot (slot 1, state 2) must see P0's state 1 through the relay.
  ASSERT_EQ(h.sink_of[1]->vc_snaps.size(), 1u);
  EXPECT_EQ(h.sink_of[1]->vc_snaps[0].vclock[0], 1);
  EXPECT_EQ(h.sink_of[1]->vc_snaps[0].vclock[1], 2);
  // The relay has no monitor and no snapshots.
  EXPECT_EQ(h.sink_of.count(2), 0u);
}

TEST(AppDriverDd, ScalarClocksAndDependences) {
  const auto comp = small_comp();
  Harness h(comp, Instrumentation::kDirectDependence, true);
  // P0 snapshots states 1 and 2 (pred true); P1 snapshots every state
  // (relay_snapshots makes non-pred... here both are predicate processes,
  // so P1 snapshots only state 2).
  ASSERT_EQ(h.sink_of[0]->dd_snaps.size(), 2u);
  EXPECT_EQ(h.sink_of[0]->dd_snaps[0].clock, 1);
  EXPECT_EQ(h.sink_of[0]->dd_snaps[1].clock, 2);
  EXPECT_TRUE(h.sink_of[0]->dd_snaps[0].deps.empty());
  EXPECT_TRUE(h.sink_of[0]->dd_snaps[1].deps.empty());

  ASSERT_EQ(h.sink_of[1]->dd_snaps.size(), 1u);
  EXPECT_EQ(h.sink_of[1]->dd_snaps[0].clock, 2);
  ASSERT_EQ(h.sink_of[1]->dd_snaps[0].deps.size(), 1u);
  EXPECT_EQ(h.sink_of[1]->dd_snaps[0].deps.items()[0],
            (Dependence{ProcessId(0), 1}));
}

TEST(AppDriverDd, NonPredicateProcessesSnapshotEveryState) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.transfer(ProcessId(0), ProcessId(2));
  b.transfer(ProcessId(2), ProcessId(1));
  const auto comp = b.build();
  Harness h(comp, Instrumentation::kDirectDependence, true);
  // P2 has 3 states and snapshots all of them.
  ASSERT_EQ(h.sink_of[2]->dd_snaps.size(), 3u);
  EXPECT_EQ(h.sink_of[2]->dd_snaps[0].clock, 1);
  EXPECT_EQ(h.sink_of[2]->dd_snaps[1].clock, 2);
  EXPECT_EQ(h.sink_of[2]->dd_snaps[2].clock, 3);
  // The receive dependence appears in the snapshot of state 2.
  ASSERT_EQ(h.sink_of[2]->dd_snaps[1].deps.size(), 1u);
  EXPECT_EQ(h.sink_of[2]->dd_snaps[1].deps.items()[0],
            (Dependence{ProcessId(0), 1}));
}

TEST(AppDriverDd, DependencesAccumulateAcrossUntrueStates) {
  // P1's pred is true only at its final state; all receive deps since the
  // last snapshot must be batched into that snapshot.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1)});
  b.transfer(ProcessId(0), ProcessId(1));  // P1 state 2
  b.transfer(ProcessId(2), ProcessId(1));  // P1 state 3
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  Harness h(comp, Instrumentation::kDirectDependence, true);
  // P1: snapshot of state 1 (pred false? no — state 1 pred false, so no
  // snapshot) ... only state 3 is true.
  ASSERT_EQ(h.sink_of[1]->dd_snaps.size(), 1u);
  const auto& snap = h.sink_of[1]->dd_snaps[0];
  EXPECT_EQ(snap.clock, 3);
  ASSERT_EQ(snap.deps.size(), 2u);
  EXPECT_EQ(snap.deps.items()[0], (Dependence{ProcessId(0), 1}));
  EXPECT_EQ(snap.deps.items()[1], (Dependence{ProcessId(2), 1}));
}

TEST(AppDriver, ReplayIsInsensitiveToLatencySeed) {
  // The logical content of snapshots must not depend on network timing.
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 15;
  spec.local_pred_prob = 0.5;
  spec.seed = 9;
  const auto comp = workload::make_random(spec);

  auto collect = [&](std::uint64_t net_seed) {
    sim::NetworkConfig cfg;
    cfg.num_processes = comp.num_processes();
    cfg.latency = sim::LatencyModel::uniform(1, 20);
    cfg.seed = net_seed;
    sim::Network net(cfg);
    std::vector<SnapshotSink*> sinks;
    for (std::size_t p = 0; p < comp.num_processes(); ++p) {
      auto sink = std::make_unique<SnapshotSink>();
      sinks.push_back(sink.get());
      net.add_node(NodeAddr::monitor(ProcessId(static_cast<int>(p))),
                   std::move(sink));
    }
    AppDriverOptions base;
    base.mode = Instrumentation::kVectorClock;
    install_app_drivers(net, comp, base);
    net.start_and_run();
    std::vector<std::vector<VectorClock>> out;
    for (auto* s : sinks) {
      std::vector<VectorClock> clocks;
      for (const auto& snap : s->vc_snaps) clocks.push_back(snap.vclock);
      out.push_back(std::move(clocks));
    }
    return out;
  };
  EXPECT_EQ(collect(1), collect(123456));
}

}  // namespace
}  // namespace wcp::app
