// ByteSource: mmap-backed and owned byte buffers behind the zero-copy
// trace loader — mapping real files, falling back for non-regular ones,
// alignment guarantees, and the read-only stream adapter.
#include "common/byte_source.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace wcp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(f.good());
}

std::string as_string(const ByteSource& src) {
  return std::string(reinterpret_cast<const char*>(src.bytes().data()),
                     src.size());
}

TEST(ByteSource, MapFileServesExactBytes) {
  const std::string path = temp_path("byte_source_map.bin");
  std::string data = "mapped-bytes";
  for (int i = 0; i < 1000; ++i) data += static_cast<char>(i & 0xff);
  write_file(path, data);

  const auto src = ByteSource::map_file(path);
  ASSERT_NE(src, nullptr);
  EXPECT_TRUE(src->mapped());
  EXPECT_EQ(src->name(), path);
  EXPECT_EQ(as_string(*src), data);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(src->bytes().data()) % 8, 0u);

  // Hints must be harmless no-ops as far as the data is concerned.
  src->advise_sequential();
  src->advise_random();
  src->drop_resident();
  EXPECT_EQ(as_string(*src), data);
  std::remove(path.c_str());
}

TEST(ByteSource, MapFileOutlivesUnlink) {
  const std::string path = temp_path("byte_source_unlink.bin");
  write_file(path, "still-here-after-unlink");
  const auto src = ByteSource::map_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(as_string(*src), "still-here-after-unlink");
}

TEST(ByteSource, MapFileFallsBackForNonRegularFiles) {
  // /dev/null is not a mappable regular file; map_file must degrade to the
  // buffered reader instead of failing.
  const auto src = ByteSource::map_file("/dev/null");
  ASSERT_NE(src, nullptr);
  EXPECT_FALSE(src->mapped());
  EXPECT_EQ(src->size(), 0u);
}

TEST(ByteSource, MapFileFallsBackForEmptyFiles) {
  const std::string path = temp_path("byte_source_empty.bin");
  write_file(path, "");
  const auto src = ByteSource::map_file(path);
  ASSERT_NE(src, nullptr);
  EXPECT_FALSE(src->mapped());  // zero-length mappings are not a thing
  EXPECT_EQ(src->size(), 0u);
  std::remove(path.c_str());
}

TEST(ByteSource, MapFileThrowsOnMissingFile) {
  try {
    (void)ByteSource::map_file(temp_path("no_such_byte_source_file"));
    FAIL() << "expected an error for a missing file";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos)
        << e.what();
  }
}

TEST(ByteSource, ReadStreamHandlesChunkBoundariesAndAlignment) {
  // Larger than the reader's 1 MiB chunk so the resize path is exercised.
  std::string data;
  data.reserve(3u << 20);
  for (std::size_t i = 0; i < (3u << 20) + 13; ++i)
    data += static_cast<char>((i * 31 + 7) & 0xff);
  std::istringstream is(data);
  const auto src = ByteSource::read_stream(is, "big");
  EXPECT_FALSE(src->mapped());
  EXPECT_EQ(src->name(), "big");
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(src->bytes().data()) % 8, 0u);
  EXPECT_EQ(as_string(*src), data);

  std::istringstream empty("");
  EXPECT_EQ(ByteSource::read_stream(empty)->size(), 0u);
}

TEST(ByteSource, FromBytesCopiesIntoAlignedStorage) {
  const std::string data = "0123456789abcdef!";
  const auto src = ByteSource::from_bytes(data);
  EXPECT_FALSE(src->mapped());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(src->bytes().data()) % 8, 0u);
  EXPECT_EQ(as_string(*src), data);
  EXPECT_EQ(ByteSource::from_bytes("")->size(), 0u);
}

TEST(ByteSource, StreamAdapterReadsWithoutCopying) {
  const auto src = ByteSource::from_bytes("line one\nline two\nrest");
  ByteSourceStream s(*src);
  std::string line;
  ASSERT_TRUE(std::getline(s, line));
  EXPECT_EQ(line, "line one");
  ASSERT_TRUE(std::getline(s, line));
  EXPECT_EQ(line, "line two");
  ASSERT_TRUE(std::getline(s, line));
  EXPECT_EQ(line, "rest");
  EXPECT_FALSE(std::getline(s, line));
  EXPECT_TRUE(s.eof());
}

TEST(ByteSource, StreamAdapterOverMappedFile) {
  const std::string path = temp_path("byte_source_stream.txt");
  write_file(path, "alpha\nbeta\n");
  const auto src = ByteSource::map_file(path);
  ByteSourceStream s(*src);
  std::string a, b;
  ASSERT_TRUE(std::getline(s, a));
  ASSERT_TRUE(std::getline(s, b));
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "beta");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcp
