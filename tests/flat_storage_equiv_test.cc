// Randomized equivalence suite for the flat cut-storage rewrite: the
// detectors rebuilt on CutArena/CutTable must be observably identical to
// the pre-flat representation. The reference implementations below are the
// old std::queue + std::unordered_set<std::vector<StateIndex>> code paths,
// kept verbatim as test-only oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cut_hash.h"
#include "detect/batch.h"
#include "detect/gcp.h"
#include "detect/lattice.h"
#include "detect/sliced.h"
#include "slice/slice.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

using Cut = std::vector<StateIndex>;

// ---- reference implementations (pre-flat-storage code) ----------------------

struct RefLatticeResult {
  bool detected = false;
  bool truncated = false;
  Cut cut;
  std::int64_t cuts_explored = 0;
  std::int64_t max_frontier = 0;
};

RefLatticeResult ref_detect_lattice(const Computation& comp,
                                    std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();
  RefLatticeResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut initial(n, 1);
  std::queue<Cut> frontier;
  std::unordered_set<Cut, CutHash> visited;
  frontier.push(initial);
  visited.insert(initial);

  while (!frontier.empty()) {
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(frontier.size()));
    Cut cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;
    if (satisfies(cut)) {
      res.detected = true;
      res.cut = std::move(cut);
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (consistent && visited.insert(next).second)
        frontier.push(std::move(next));
    }
  }
  return res;
}

struct RefDefinitelyResult {
  bool definitely = false;
  bool truncated = false;
  std::int64_t cuts_explored = 0;
  Cut witness;
};

Cut ref_reconstruct_witness(const Computation& comp, std::size_t n,
                            const Cut& top,
                            const std::unordered_map<Cut, Cut, CutHash>&
                                parent_of) {
  std::vector<Cut> path;
  for (Cut c = top;;) {
    path.push_back(c);
    const Cut& p = parent_of.at(c);
    if (p == c) break;
    c = p;
  }
  std::reverse(path.begin(), path.end());
  Cut witness = path.front();
  if (const auto min_sat = comp.first_wcp_cut()) {
    const auto leq = [&](const Cut& a) {
      for (std::size_t s = 0; s < n; ++s)
        if (a[s] > (*min_sat)[s]) return false;
      return true;
    };
    for (const Cut& c : path)
      if (!leq(c)) {
        witness = c;
        break;
      }
  }
  return witness;
}

RefDefinitelyResult ref_detect_definitely(const Computation& comp,
                                          std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();
  RefDefinitelyResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  Cut initial(n, 1);
  if (satisfies(initial)) {
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  std::queue<Cut> frontier;
  std::unordered_map<Cut, Cut, CutHash> parent;
  frontier.push(initial);
  parent.emplace(initial, initial);

  res.definitely = true;
  while (!frontier.empty()) {
    Cut cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;
    if (cut == top) {
      res.definitely = false;
      res.witness = ref_reconstruct_witness(comp, n, cut, parent);
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent || satisfies(next)) continue;
      if (parent.emplace(next, cut).second) frontier.push(std::move(next));
    }
  }
  return res;
}

// ---- equivalence sweeps -----------------------------------------------------

Computation random_comp(std::uint64_t seed, std::size_t N, std::size_t n,
                        std::int64_t m, double prob = 0.3) {
  workload::RandomSpec spec;
  spec.num_processes = N;
  spec.num_predicate = n;
  spec.events_per_process = m;
  spec.local_pred_prob = prob;
  spec.seed = seed;
  return workload::make_random(spec);
}

TEST(FlatStorageEquiv, LatticeMatchesReferenceAcrossThreads) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto comp = random_comp(seed, 5, 4, 12);
    const auto ref = ref_detect_lattice(comp, -1);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const auto r = detect_lattice(comp, -1, threads);
      EXPECT_EQ(r.detected, ref.detected) << "seed " << seed;
      EXPECT_EQ(r.cut, ref.cut) << "seed " << seed;
      EXPECT_EQ(r.cuts_explored, ref.cuts_explored) << "seed " << seed;
      EXPECT_EQ(r.max_frontier, ref.max_frontier) << "seed " << seed;
      EXPECT_EQ(r.truncated, ref.truncated) << "seed " << seed;
    }
  }
}

TEST(FlatStorageEquiv, LatticeMatchesReferenceUnderTruncation) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto comp = random_comp(seed, 4, 4, 10, /*prob=*/0.05);
    for (const std::int64_t cap : {1, 7, 50, 400}) {
      const auto ref = ref_detect_lattice(comp, cap);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto r = detect_lattice(comp, cap, threads);
        EXPECT_EQ(r.detected, ref.detected) << seed << "/" << cap;
        EXPECT_EQ(r.cut, ref.cut) << seed << "/" << cap;
        EXPECT_EQ(r.cuts_explored, ref.cuts_explored) << seed << "/" << cap;
        EXPECT_EQ(r.max_frontier, ref.max_frontier) << seed << "/" << cap;
        EXPECT_EQ(r.truncated, ref.truncated) << seed << "/" << cap;
      }
    }
  }
}

TEST(FlatStorageEquiv, DefinitelyMatchesReferenceAcrossThreads) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto comp = random_comp(seed, 4, 3, 10, /*prob=*/0.4);
    const auto ref = ref_detect_definitely(comp, -1);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const auto r = detect_definitely(comp, -1, threads);
      EXPECT_EQ(r.definitely, ref.definitely) << "seed " << seed;
      EXPECT_EQ(r.cuts_explored, ref.cuts_explored) << "seed " << seed;
      EXPECT_EQ(r.truncated, ref.truncated) << "seed " << seed;
      EXPECT_EQ(r.witness, ref.witness) << "seed " << seed;
    }
  }
}

TEST(FlatStorageEquiv, GcpLatticeMatchesReferenceStructure) {
  // detect_gcp_lattice with no channel predicates explores exactly the
  // conjunctive lattice, so the lattice reference doubles as its oracle.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto comp = random_comp(seed, 4, 4, 10);
    const auto ref = ref_detect_lattice(comp, -1);
    const auto r = detect_gcp_lattice(comp, {}, -1);
    EXPECT_EQ(r.detected, ref.detected) << "seed " << seed;
    EXPECT_EQ(r.cut, ref.cut) << "seed " << seed;
    EXPECT_EQ(r.cuts_explored, ref.cuts_explored) << "seed " << seed;
  }
}

TEST(FlatStorageEquiv, GcpLatticeWithChannelsMatchesAdvanceDetector) {
  // With channel predicates the lattice oracle and the advance-candidate
  // detector must keep agreeing on the (unique minimal) satisfying cut.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto comp = random_comp(seed, 3, 3, 8);
    const auto channels = ChannelPredicate::all_channels_empty(3);
    const auto oracle = detect_gcp_lattice(comp, channels, 2'000'000);
    const auto fast = detect_gcp(comp, channels);
    EXPECT_EQ(oracle.detected, fast.detected) << "seed " << seed;
    if (oracle.detected) EXPECT_EQ(oracle.cut, fast.cut) << "seed " << seed;
  }
}

TEST(FlatStorageEquiv, SliceAgreesWithReferenceLattice) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto comp = random_comp(seed, 4, 4, 9);
    const auto ref = ref_detect_lattice(comp, -1);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      slice::SliceBuildCounters ctr;
      const auto s = slice::Slice::build(comp, &ctr, threads);
      EXPECT_EQ(!s.empty(), ref.detected) << "seed " << seed;
      if (ref.detected)
        EXPECT_EQ(s.bottom(), ref.cut) << "seed " << seed;
      // The interning order is serial for every thread count, so even the
      // storage counters are thread-invariant (unlike the detectors').
      EXPECT_GE(ctr.storage.cuts_interned, 0) << "seed " << seed;
    }
  }
}

TEST(FlatStorageEquiv, SliceEnumerationMatchesBruteForceSatisfyingCuts) {
  // Every satisfying consistent cut, by brute force over the full cube.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto comp = random_comp(seed, 3, 3, 6);
    const auto procs = comp.predicate_processes();
    const std::size_t n = procs.size();
    std::vector<Cut> brute;
    Cut c(n, 1);
    for (;;) {
      bool consistent = true, sat = true;
      for (std::size_t s = 0; s < n && consistent; ++s) {
        if (!comp.local_pred(procs[s], c[s])) sat = false;
        for (std::size_t t = 0; t < n && consistent; ++t) {
          if (t == s) continue;
          if (comp.happened_before(procs[s], c[s], procs[t], c[t]))
            consistent = false;
        }
      }
      if (consistent && sat) brute.push_back(c);
      std::size_t s = 0;
      while (s < n && c[s] == comp.num_states(procs[s])) c[s++] = 1;
      if (s == n) break;
      c[s] += 1;
    }

    const auto slice = slice::Slice::build(comp);
    EXPECT_EQ(slice.num_cuts().count,
              static_cast<std::int64_t>(brute.size()))
        << "seed " << seed;
    auto it = slice.cuts();
    std::vector<Cut> enumerated;
    while (const auto cut = it.next()) enumerated.push_back(*cut);
    std::sort(brute.begin(), brute.end());
    std::sort(enumerated.begin(), enumerated.end());
    EXPECT_EQ(enumerated, brute) << "seed " << seed;
  }
}

// ---- concurrent-engine differential oracle ----------------------------------
//
// The barrier-free engine (ALGORITHMS.md §15) promises byte-identical
// observable output at every thread count: the concurrent phase may visit
// cuts in any order, but the serial replay reproduces the reference BFS
// exactly. The sweep below drives lattice / definitely / sliced over 32
// randomized traces — including truncation caps and witness-producing
// traces — at threads 1/2/4/8 and byte-diffs the full JSON run reports
// (which exclude the storage block, the one legitimately thread-variant
// field) against the serial rows.

TEST(FlatStorageEquiv, DifferentialOracleSweepByteIdenticalReports) {
  struct TraceSpec {
    std::uint64_t seed;
    std::size_t N, n;
    std::int64_t m;
    double prob;
    std::int64_t max_cuts;
  };
  std::vector<TraceSpec> specs;
  for (std::uint64_t i = 0; i < 32; ++i) {
    TraceSpec t;
    t.seed = 100 + i;
    t.N = 4 + i % 2;
    t.n = 3 + i % 2;
    t.m = 6 + static_cast<std::int64_t>(i % 6);
    constexpr double kProbs[] = {0.05, 0.2, 0.35, 0.5};
    t.prob = kProbs[i % 4];
    // Every fifth trace gets a tiny cap to exercise the truncation path;
    // low-prob traces among the rest produce definitely=false witnesses.
    t.max_cuts = (i % 5 == 4) ? 25 : 10'000'000;
    specs.push_back(t);
  }

  const std::vector<std::string> algos = {"lattice", "lattice-sliced",
                                          "definitely", "definitely-sliced"};
  bool saw_truncation = false, saw_witness = false, saw_detection = false;
  for (const TraceSpec& ts : specs) {
    const auto comp = random_comp(ts.seed, ts.N, ts.n, ts.m, ts.prob);
    std::vector<SweepJob> jobs;
    for (const std::string& algo : algos) {
      SweepJob j;
      j.algo = algo;
      j.seed = ts.seed;
      j.max_cuts = ts.max_cuts;
      j.threads = 1;
      jobs.push_back(std::move(j));
    }
    const auto base = run_sweep(comp, jobs, /*threads=*/1);
    ASSERT_EQ(base.size(), algos.size());
    for (const SweepRow& row : base) {
      if (row.verdict && row.algo == "lattice") saw_detection = true;
      if (!row.verdict && row.algo == "definitely" && !row.cut.empty())
        saw_witness = true;
      if (row.report.find("\"truncated\":1") != std::string::npos)
        saw_truncation = true;
    }
    for (const std::size_t threads : {2u, 4u, 8u}) {
      auto tj = jobs;
      for (SweepJob& j : tj) j.threads = threads;
      const auto rows = run_sweep(comp, tj, /*threads=*/1);
      ASSERT_EQ(rows.size(), base.size());
      for (std::size_t k = 0; k < rows.size(); ++k) {
        EXPECT_EQ(rows[k].verdict, base[k].verdict)
            << algos[k] << " seed " << ts.seed << " threads " << threads;
        EXPECT_EQ(rows[k].cut, base[k].cut)
            << algos[k] << " seed " << ts.seed << " threads " << threads;
        EXPECT_EQ(rows[k].cost, base[k].cost)
            << algos[k] << " seed " << ts.seed << " threads " << threads;
        EXPECT_EQ(rows[k].report, base[k].report)
            << algos[k] << " seed " << ts.seed << " threads " << threads
            << ": JSON report not byte-identical";
      }
    }
  }
  // The spec mix must actually cover the interesting regimes.
  EXPECT_TRUE(saw_detection);
  EXPECT_TRUE(saw_witness);
  EXPECT_TRUE(saw_truncation);
}

TEST(FlatStorageEquiv, WitnessPathsByteIdenticalAcrossThreads) {
  // witness_path is not part of the sweep report; compare the full result
  // structs directly (everything except the storage block).
  for (std::uint64_t seed = 50; seed < 62; ++seed) {
    const auto comp = random_comp(seed, 4, 4, 10, /*prob=*/0.3);
    const auto bl = detect_lattice(comp, -1, 1);
    const auto bd = detect_definitely(comp, -1, 1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const auto l = detect_lattice(comp, -1, threads);
      EXPECT_EQ(l.detected, bl.detected) << seed << "/" << threads;
      EXPECT_EQ(l.truncated, bl.truncated) << seed << "/" << threads;
      EXPECT_EQ(l.cut, bl.cut) << seed << "/" << threads;
      EXPECT_EQ(l.cuts_explored, bl.cuts_explored) << seed << "/" << threads;
      EXPECT_EQ(l.max_frontier, bl.max_frontier) << seed << "/" << threads;
      EXPECT_EQ(l.witness_path, bl.witness_path) << seed << "/" << threads;
      const auto d = detect_definitely(comp, -1, threads);
      EXPECT_EQ(d.definitely, bd.definitely) << seed << "/" << threads;
      EXPECT_EQ(d.truncated, bd.truncated) << seed << "/" << threads;
      EXPECT_EQ(d.cuts_explored, bd.cuts_explored) << seed << "/" << threads;
      EXPECT_EQ(d.witness, bd.witness) << seed << "/" << threads;
      EXPECT_EQ(d.witness_path, bd.witness_path) << seed << "/" << threads;
    }
  }
}

TEST(FlatStorageEquiv, StorageStatsArePopulated) {
  const auto comp = random_comp(3, 4, 4, 10);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = detect_lattice(comp, -1, threads);
    EXPECT_GT(r.storage.peak_bytes, 0) << "threads " << threads;
    EXPECT_GT(r.storage.cuts_interned, 0) << "threads " << threads;
    EXPECT_GT(r.storage.table_probes, 0) << "threads " << threads;
  }
  // Serial interned count == distinct cuts == visited-set size, which for a
  // completed exploration equals cuts explored.
  const auto serial = detect_lattice(comp, -1, 1);
  if (!serial.detected && !serial.truncated)
    EXPECT_EQ(serial.storage.cuts_interned, serial.cuts_explored);
}

}  // namespace
}  // namespace wcp::detect
