// Columnar trace store: delta-encoded clocks against an eager replay
// oracle, wcp-tracebin round trips, loader validation of malformed
// streams, and the parent-offset witness paths it enables.
#include "trace/trace_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "detect/lattice.h"
#include "detect/offline.h"
#include "trace/trace_io.h"
#include "workload/random_workload.h"

namespace wcp {
namespace {

// Independent oracle: the eager O(N * total_states) clock matrix the store
// replaced, computed the textbook way (Fig. 2 rules, full-width merges).
std::vector<std::vector<VectorClock>> eager_clocks(const Computation& c) {
  const std::size_t N = c.num_processes();
  std::vector<std::vector<VectorClock>> clocks(N);
  std::vector<std::size_t> next(N, 0);
  std::vector<VectorClock> msg_clock(c.messages().size());
  std::vector<bool> sent(c.messages().size(), false);
  std::size_t remaining = 0;
  for (std::size_t p = 0; p < N; ++p) {
    clocks[p].push_back(VectorClock::initial(N, ProcessId(static_cast<int>(p))));
    remaining += c.events(ProcessId(static_cast<int>(p))).size();
  }
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t p = 0; p < N; ++p) {
      const ProcessId pid(static_cast<int>(p));
      const auto events = c.events(pid);
      while (next[p] < events.size()) {
        const Event& ev = events[next[p]];
        const auto mi = static_cast<std::size_t>(ev.msg);
        VectorClock cur = clocks[p].back();
        if (ev.kind == EventKind::kSend) {
          // A message carries the clock of the state it was sent *from*
          // (the pre-tick state): the send itself is not causally visible
          // to the receiver, matching MessageRecord::send_state.
          msg_clock[mi] = cur;
          sent[mi] = true;
          cur.tick(pid);
        } else {
          if (!sent[mi]) break;
          cur.merge(msg_clock[mi]);
          cur.tick(pid);
        }
        clocks[p].push_back(std::move(cur));
        ++next[p];
        --remaining;
        progressed = true;
      }
    }
    EXPECT_TRUE(progressed) << "oracle replay deadlocked";
    if (!progressed) break;
  }
  return clocks;
}

Computation random_comp(std::uint64_t seed, std::size_t N = 6,
                        std::size_t n = 3, double drain = 1.0) {
  workload::RandomSpec spec;
  spec.num_processes = N;
  spec.num_predicate = n;
  spec.events_per_process = 14;
  spec.local_pred_prob = 0.4;
  spec.drain_prob = drain;
  spec.seed = seed;
  return workload::make_random(spec);
}

TEST(TraceStore, ClocksMatchEagerReplayOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = random_comp(seed, 5, 3, seed % 2 ? 1.0 : 0.6);
    const auto oracle = eager_clocks(c);
    const TraceStore s = TraceStore::build(c);
    for (std::size_t p = 0; p < c.num_processes(); ++p) {
      const ProcessId pid(static_cast<int>(p));
      ASSERT_EQ(s.num_states(pid), c.num_states(pid));
      for (StateIndex k = 1; k <= c.num_states(pid); ++k) {
        const VectorClock& want = oracle[p][static_cast<std::size_t>(k - 1)];
        EXPECT_EQ(s.clock(pid, k), want) << "p=" << p << " k=" << k;
        EXPECT_EQ(c.ground_truth_clock(pid, k), want);
        for (std::size_t j = 0; j < c.num_processes(); ++j)
          EXPECT_EQ(s.clock_component(pid, k, ProcessId(static_cast<int>(j))),
                    want[j]);
      }
    }
  }
}

TEST(TraceStore, HappenedBeforeMatchesClockDominance) {
  const auto c = random_comp(11, 4, 4);
  const auto oracle = eager_clocks(c);
  for (std::size_t i = 0; i < 4; ++i)
    for (StateIndex a = 1; a <= c.num_states(ProcessId(static_cast<int>(i)));
         ++a)
      for (std::size_t j = 0; j < 4; ++j)
        for (StateIndex b = 1;
             b <= c.num_states(ProcessId(static_cast<int>(j))); ++b) {
          const bool want =
              i == j ? a < b
                     : oracle[j][static_cast<std::size_t>(b - 1)][i] >= a;
          EXPECT_EQ(c.happened_before(ProcessId(static_cast<int>(i)), a,
                                      ProcessId(static_cast<int>(j)), b),
                    want)
              << "(" << i << "," << a << ") vs (" << j << "," << b << ")";
        }
}

TEST(TraceStore, StatsAreSaneAndThreadInvariant) {
  const auto c = random_comp(3);
  const auto r1 = detect::detect_lattice(c, -1, 1);
  const auto r8 = detect::detect_lattice(c, -1, 8);
  ASSERT_TRUE(r1.trace_store.materialized());
  EXPECT_EQ(r1.trace_store.peak_bytes, r8.trace_store.peak_bytes);
  EXPECT_EQ(r1.trace_store.clocks_interned, r8.trace_store.clocks_interned);
  EXPECT_EQ(r1.trace_store.delta_entries, r8.trace_store.delta_entries);
  EXPECT_EQ(r1.trace_store.clocks_interned, c.total_states());
  EXPECT_GT(r1.trace_store.peak_bytes, 0);
  EXPECT_GE(r1.trace_store.delta_ratio, 1.0);
}

TEST(TraceStore, BinaryRoundTripPreservesEverything) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto original = random_comp(seed, 6, 3, 0.7);
    std::ostringstream os;
    save_tracebin(os, original);
    std::istringstream is(os.str());
    const auto reread = load_tracebin(is);

    ASSERT_EQ(reread.num_processes(), original.num_processes());
    ASSERT_EQ(reread.messages().size(), original.messages().size());
    std::size_t in_flight_orig = 0, in_flight_reread = 0;
    for (const auto& m : original.messages())
      if (!m.delivered()) ++in_flight_orig;
    for (const auto& m : reread.messages())
      if (!m.delivered()) ++in_flight_reread;
    EXPECT_EQ(in_flight_orig, in_flight_reread);
    for (std::size_t p = 0; p < original.num_processes(); ++p) {
      const ProcessId pid(static_cast<int>(p));
      ASSERT_EQ(reread.num_states(pid), original.num_states(pid));
      for (StateIndex k = 1; k <= original.num_states(pid); ++k) {
        EXPECT_EQ(reread.local_pred(pid, k), original.local_pred(pid, k));
        EXPECT_EQ(reread.ground_truth_clock(pid, k),
                  original.ground_truth_clock(pid, k));
      }
    }
    EXPECT_EQ(reread.first_wcp_cut(), original.first_wcp_cut());

    // Verdicts are computation properties; numbering differences introduced
    // by replay must not leak into them.
    const auto l0 = detect::detect_lattice(original);
    const auto l1 = detect::detect_lattice(reread);
    EXPECT_EQ(l0.detected, l1.detected);
    EXPECT_EQ(l0.cut, l1.cut);
    EXPECT_EQ(l0.cuts_explored, l1.cuts_explored);
    EXPECT_EQ(l0.witness_path, l1.witness_path);
    const auto d0 = detect::detect_definitely(original);
    const auto d1 = detect::detect_definitely(reread);
    EXPECT_EQ(d0.definitely, d1.definitely);
    EXPECT_EQ(d0.witness, d1.witness);
  }
}

TEST(TraceStore, BinaryFileRoundTripAndSniffingLoader) {
  const auto original = random_comp(9);
  const std::string bin = ::testing::TempDir() + "/wcp_store_test.tracebin";
  const std::string txt = ::testing::TempDir() + "/wcp_store_test.trace";
  save_tracebin_file(bin, original);
  save_trace_file(txt, original);
  const auto from_bin = load_any_trace_file(bin);
  const auto from_txt = load_any_trace_file(txt);
  EXPECT_EQ(from_bin.first_wcp_cut(), original.first_wcp_cut());
  EXPECT_EQ(from_txt.first_wcp_cut(), original.first_wcp_cut());
  EXPECT_EQ(from_bin.total_states(), original.total_states());
  std::remove(bin.c_str());
  std::remove(txt.c_str());
}

TEST(TraceStore, LoadedStoreIsAdoptedWithoutRebuild) {
  const auto original = random_comp(21);
  std::ostringstream os;
  save_tracebin(os, original);
  std::istringstream is(os.str());
  const auto reread = load_tracebin(is);
  // The loader attaches the verified store; reading a clock must not change
  // the stats it reports (nothing is rebuilt).
  const auto before = reread.trace_store_stats();
  ASSERT_TRUE(before.materialized());
  (void)reread.ground_truth_clock(ProcessId(0), 1);
  const auto after = reread.trace_store_stats();
  EXPECT_EQ(before.peak_bytes, after.peak_bytes);
  EXPECT_EQ(before.delta_entries, after.delta_entries);
}

TEST(TraceStore, AdoptRejectsMismatchedShape) {
  const auto a = random_comp(1, 4, 2);
  const auto b = random_comp(2, 5, 2);
  auto store_b =
      std::make_shared<const TraceStore>(TraceStore::build(b));
  Computation copy = a;  // different N than b
  EXPECT_THROW(copy.adopt_trace_store(store_b), std::invalid_argument);
}

// Corrupting any structural byte of a wcp-tracebin stream must produce a
// descriptive parse error, never a crash or a silently-wrong computation.
class TracebinCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    std::ostringstream os;
    save_tracebin(os, random_comp(5, 5, 3, 0.7));
    bytes_ = os.str();
    ASSERT_GT(bytes_.size(), 136u);
  }

  void expect_parse_error(const std::string& data) {
    std::istringstream is(data);
    try {
      (void)TraceStore::load(is);
      FAIL() << "expected parse error";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("wcp-tracebin"), std::string::npos)
          << e.what();
    }
  }

  std::string bytes_;
};

TEST_F(TracebinCorruption, RejectsEmptyAndTruncatedStreams) {
  expect_parse_error("");
  expect_parse_error(bytes_.substr(0, 8));
  expect_parse_error(bytes_.substr(0, 135));   // header cut short
  expect_parse_error(bytes_.substr(0, bytes_.size() / 2));
  expect_parse_error(bytes_ + std::string(8, '\0'));  // trailing garbage
}

TEST_F(TracebinCorruption, RejectsBadMagicVersionAndSize) {
  auto bad = bytes_;
  bad[0] = 'X';
  expect_parse_error(bad);

  bad = bytes_;
  bad[8] = 2;  // version
  expect_parse_error(bad);

  bad = bytes_;
  bad[12] = 1;  // reserved must be zero
  expect_parse_error(bad);

  bad = bytes_;
  bad[128] ^= 0x01;  // recorded file_size
  expect_parse_error(bad);
}

TEST_F(TracebinCorruption, RejectsCorruptedColumns) {
  // Flip one byte in every 64-byte window past the header: each lands in
  // some section (counts, offsets, events, messages, clock entries) and
  // must be caught by structural or semantic validation.
  for (std::size_t pos = 136; pos < bytes_.size(); pos += 64) {
    auto bad = bytes_;
    bad[pos] ^= 0x3f;
    std::istringstream is(bad);
    try {
      const TraceStore s = TraceStore::load(is);
      // A flip inside the predicate-bit column changes data, not structure,
      // and legitimately loads; everything else must throw.
      (void)s.to_computation();
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("wcp-tracebin"), std::string::npos)
          << "pos " << pos << ": " << e.what();
    }
  }
}

// ---- zero-copy mapped loading ---------------------------------------------

// Exercises the mmap fast path end to end: files are loaded through
// load_tracebin_file / load_any_trace_file, which map the bytes and point
// the store's columns straight into the mapping.
class MappedTracebin : public ::testing::Test {
 protected:
  void SetUp() override {
    comp_ = random_comp(7, 5, 3, 0.7);
    std::ostringstream os;
    save_tracebin(os, comp_);
    bytes_ = os.str();
    path_ = ::testing::TempDir() + "/wcp_mapped_test.tracebin";
    write_file(bytes_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_file(const std::string& data) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(f.good());
  }

  static std::uint64_t rd_u64(const std::string& b, std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[off + i]))
           << (8 * i);
    return v;
  }
  static void wr_u64(std::string& b, std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      b[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }

  /// Both the verifying and the trusted loader must reject `data` with a
  /// parse error — structural validation is not opt-out — and must never
  /// fault while doing so.
  void expect_mapped_parse_error(const std::string& data) {
    write_file(data);
    for (const bool trusted : {false, true}) {
      TraceLoadOptions opts;
      opts.verify_replay = !trusted;
      try {
        (void)load_tracebin_file(path_, opts);
        FAIL() << "expected parse error (trusted=" << trusted << ")";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("wcp-tracebin parse error:"),
                  std::string::npos)
            << e.what();
      }
    }
  }

  Computation comp_;
  std::string bytes_;
  std::string path_;
};

TEST_F(MappedTracebin, MappedLoadMatchesHeapLoadExactly) {
  const auto mapped = load_any_trace_file(path_);
  std::istringstream is(bytes_);
  const auto heap = load_tracebin(is);

  ASSERT_TRUE(mapped.store_backed());
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_TRUE(mapped.trace_store().mapped());
  }
  EXPECT_FALSE(heap.trace_store().mapped());

  for (std::size_t p = 0; p < comp_.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    ASSERT_EQ(mapped.num_states(pid), comp_.num_states(pid));
    for (StateIndex k = 1; k <= comp_.num_states(pid); ++k) {
      ASSERT_EQ(mapped.local_pred(pid, k), comp_.local_pred(pid, k));
      ASSERT_EQ(mapped.ground_truth_clock(pid, k),
                comp_.ground_truth_clock(pid, k));
    }
  }
  EXPECT_EQ(mapped.first_wcp_cut(), comp_.first_wcp_cut());

  // Saving the mapped store must reproduce the file byte for byte, and the
  // heap-loaded store must agree (same bytes through a different backing).
  std::ostringstream saved_mapped, saved_heap;
  mapped.trace_store().save(saved_mapped);
  heap.trace_store().save(saved_heap);
  EXPECT_EQ(saved_mapped.str(), bytes_);
  EXPECT_EQ(saved_heap.str(), bytes_);
}

TEST_F(MappedTracebin, TrustedLoadSkipsOnlyTheReplayCheck) {
  TraceLoadOptions trusted;
  trusted.verify_replay = false;

  // A trusted load must stay cheap: its reported peak is the O(N) owned
  // metadata, not the rebuild's O(file) replay scratch.
  const auto verified = load_tracebin_file(path_);
  const auto fast = load_tracebin_file(path_, trusted);
  EXPECT_EQ(verified.first_wcp_cut(), fast.first_wcp_cut());
  EXPECT_LT(fast.trace_store_stats().peak_bytes,
            verified.trace_store_stats().peak_bytes);

  // Now make the clock section structurally pristine but semantically a
  // lie: lower the value of some change-list entry (monotonicity and range
  // checks still pass). Only the replay verification can catch that, so
  // the verifying loader must throw and the trusted loader must not.
  const std::uint64_t N = rd_u64(bytes_, 16);
  const std::uint64_t off_clock_offsets = rd_u64(bytes_, 112);
  const std::uint64_t off_clock_entries = rd_u64(bytes_, 120);
  std::size_t victim = 0;
  bool found = false;
  for (std::uint64_t i = 0; i < N * N && !found; ++i) {
    const std::uint64_t lo = rd_u64(bytes_, off_clock_offsets + i * 8);
    const std::uint64_t hi = rd_u64(bytes_, off_clock_offsets + (i + 1) * 8);
    if (lo >= hi) continue;
    const std::uint64_t first = rd_u64(bytes_, off_clock_entries + lo * 8);
    if ((first & 0xffff'ffffull) >= 2) {
      victim = static_cast<std::size_t>(off_clock_entries + lo * 8);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no change-list entry with value >= 2 in this trace";
  auto lying = bytes_;
  wr_u64(lying, victim, rd_u64(lying, victim) - 1);  // value -= 1
  write_file(lying);

  EXPECT_THROW((void)load_tracebin_file(path_), std::invalid_argument);
  const auto unchecked = load_tracebin_file(path_, trusted);
  EXPECT_EQ(unchecked.total_states(), comp_.total_states());
}

TEST_F(MappedTracebin, CorruptionCorpusNeverFaults) {
  // Truncated mid-section (events column).
  const std::uint64_t off_events = rd_u64(bytes_, 88);
  expect_mapped_parse_error(
      bytes_.substr(0, static_cast<std::size_t>(off_events) + 4));

  // Section offset pointing past EOF.
  auto bad = bytes_;
  wr_u64(bad, 120, bytes_.size() + 4096);  // clock_entries offset
  expect_mapped_parse_error(bad);

  // Misaligned section offset.
  bad = bytes_;
  wr_u64(bad, 80, rd_u64(bad, 80) + 4);  // state_counts offset
  expect_mapped_parse_error(bad);

  // Header length lying about the file size (both directions).
  bad = bytes_;
  wr_u64(bad, 128, bytes_.size() + 4096);
  expect_mapped_parse_error(bad);
  bad = bytes_;
  wr_u64(bad, 128, 136);
  expect_mapped_parse_error(bad);

  // Counts inflated so sections would extend past the mapping.
  bad = bytes_;
  wr_u64(bad, 64, rd_u64(bad, 64) + (1u << 20));  // total clock entries
  expect_mapped_parse_error(bad);
}

TEST_F(MappedTracebin, TrustedCliPathStillValidatesStructure) {
  // The exact bytes the --trusted CLI path would map: flip one event word
  // to a huge message id. Structural validation must still reject it.
  const std::uint64_t off_events = rd_u64(bytes_, 88);
  auto bad = bytes_;
  bad[static_cast<std::size_t>(off_events)] = '\x7f';
  bad[static_cast<std::size_t>(off_events) + 3] = '\x07';
  expect_mapped_parse_error(bad);
}

// Satellite regression: save_tracebin_file must not report success when the
// bytes never reached the disk.
TEST(TraceStoreWrite, StreamFailureIsNotSilent) {
  const auto c = random_comp(2, 3, 2);
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  EXPECT_THROW(save_tracebin(os, c), std::invalid_argument);
}

TEST(TraceStoreWrite, FullDeviceFailureNamesThePath) {
  // /dev/full accepts the open and swallows buffered writes; only the
  // flush-and-check in save_tracebin_file can see the ENOSPC.
  if (::access("/dev/full", W_OK) != 0) GTEST_SKIP() << "no /dev/full here";
  const auto c = random_comp(2, 3, 2);
  try {
    save_tracebin_file("/dev/full", c);
    FAIL() << "expected a write failure on /dev/full";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << e.what();
  }
}

TEST(WitnessPath, MaterializesToDetectedCut) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto c = random_comp(seed, 5, 3);
    const auto r = detect::detect_lattice(c);
    if (!r.detected) {
      EXPECT_TRUE(r.witness_path.empty());
      continue;
    }
    const auto cuts = detect::materialize_witness_path(
        c.predicate_processes().size(), r.witness_path);
    ASSERT_EQ(cuts.size(), r.witness_path.size() + 1);
    EXPECT_EQ(cuts.front(),
              std::vector<StateIndex>(c.predicate_processes().size(), 1));
    EXPECT_EQ(cuts.back(), r.cut);
  }
}

TEST(WitnessPath, DefinitelyWitnessLiesOnPath) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto c = random_comp(seed, 4, 3);
    const auto r = detect::detect_definitely(c);
    if (r.definitely || r.truncated) continue;
    ASSERT_FALSE(r.witness_path.empty());
    const auto cuts = detect::materialize_witness_path(
        c.predicate_processes().size(), r.witness_path);
    EXPECT_NE(std::find(cuts.begin(), cuts.end(), r.witness), cuts.end())
        << "witness cut must appear on the avoiding observation";
  }
}

}  // namespace
}  // namespace wcp
