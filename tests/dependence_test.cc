#include "clock/dependence.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wcp {
namespace {

TEST(DependenceList, StartsEmpty) {
  DependenceList dl;
  EXPECT_TRUE(dl.empty());
  EXPECT_EQ(dl.size(), 0u);
  EXPECT_EQ(dl.bits(), 0);
}

TEST(DependenceList, AddPreservesArrivalOrder) {
  DependenceList dl;
  dl.add(ProcessId(3), 7);
  dl.add(ProcessId(1), 2);
  ASSERT_EQ(dl.size(), 2u);
  EXPECT_EQ(dl.items()[0], (Dependence{ProcessId(3), 7}));
  EXPECT_EQ(dl.items()[1], (Dependence{ProcessId(1), 2}));
}

TEST(DependenceList, AppendConcatenates) {
  DependenceList a, b;
  a.add(ProcessId(0), 1);
  b.add(ProcessId(1), 2);
  b.add(ProcessId(2), 3);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.items()[2], (Dependence{ProcessId(2), 3}));
}

TEST(DependenceList, ClearEmpties) {
  DependenceList dl;
  dl.add(ProcessId(0), 1);
  dl.clear();
  EXPECT_TRUE(dl.empty());
}

TEST(DependenceList, BitsIsPairOfIntegersPerDependence) {
  DependenceList dl;
  dl.add(ProcessId(0), 1);
  dl.add(ProcessId(1), 2);
  EXPECT_EQ(dl.bits(), 2 * 2 * 64);  // §4.4: a dependence is two integers
}

TEST(DependenceList, StreamFormat) {
  DependenceList dl;
  dl.add(ProcessId(0), 1);
  dl.add(ProcessId(2), 5);
  std::ostringstream oss;
  oss << dl;
  EXPECT_EQ(oss.str(), "{(P0,1) (P2,5)}");
}

TEST(Dependence, Ordering) {
  EXPECT_LT((Dependence{ProcessId(0), 5}), (Dependence{ProcessId(1), 2}));
  EXPECT_LT((Dependence{ProcessId(1), 2}), (Dependence{ProcessId(1), 3}));
}

}  // namespace
}  // namespace wcp
