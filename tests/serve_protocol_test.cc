// Wire-format tests for `wcp-stream 1` (src/serve/protocol.h): encode/decode
// round-trips for every frame type, the malformed-frame corpus (every entry
// must fail with a "wcp-stream parse error:"-prefixed std::invalid_argument,
// never parse as zeros), and FrameAssembler reassembly under pathological
// byte fragmentation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace wcp::serve {
namespace {

std::string error_of(const std::vector<std::uint8_t>& bytes,
                     std::uint32_t snapshot_slots = 0) {
  try {
    (void)decode_frame(bytes, snapshot_slots);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

void expect_parse_error(const std::vector<std::uint8_t>& bytes,
                        const std::string& needle,
                        std::uint32_t snapshot_slots = 0) {
  const std::string msg = error_of(bytes, snapshot_slots);
  ASSERT_FALSE(msg.empty()) << "expected a parse error containing: " << needle;
  EXPECT_EQ(msg.rfind("wcp-stream parse error: ", 0), 0u) << msg;
  EXPECT_NE(msg.find(needle), std::string::npos) << msg;
}

TEST(ServeProtocol, HelloRoundTrip) {
  const auto bytes = encode_frame(make_hello(6, 3), 42);
  const Frame f = decode_frame(bytes);
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(f.seq, 42u);
  EXPECT_EQ(f.hello.version, kStreamVersion);
  EXPECT_EQ(f.hello.slots, 6u);
  EXPECT_EQ(f.hello.num_predicates, 3u);
}

TEST(ServeProtocol, SubscribeRoundTrip) {
  const auto bytes =
      encode_frame(make_subscribe(7, StreamAlgo::kLatticeOnline, 2, 12345), 1);
  const Frame f = decode_frame(bytes);
  EXPECT_EQ(f.type, FrameType::kSubscribe);
  EXPECT_EQ(f.subscribe.sub_id, 7u);
  EXPECT_EQ(f.subscribe.algo, StreamAlgo::kLatticeOnline);
  EXPECT_EQ(f.subscribe.pred_index, 2u);
  EXPECT_EQ(f.subscribe.max_cuts, 12345);
  const Frame g =
      decode_frame(encode_frame(make_subscribe(0, StreamAlgo::kSlicer, 0), 2));
  EXPECT_EQ(g.subscribe.max_cuts, -1);
}

TEST(ServeProtocol, SnapshotRoundTrip) {
  const std::vector<StateIndex> clock = {3, 1, 4};
  const auto bytes = encode_frame(make_snapshot(1, 0b101, clock), 9);
  const Frame f = decode_frame(bytes, /*snapshot_slots=*/3);
  EXPECT_EQ(f.type, FrameType::kSnapshot);
  EXPECT_EQ(f.snapshot.slot, 1u);
  EXPECT_EQ(f.snapshot.pred_mask, 0b101u);
  EXPECT_EQ(f.snapshot.clock, clock);
}

TEST(ServeProtocol, EosFinishAckRoundTrip) {
  EXPECT_EQ(decode_frame(encode_frame(make_eos(5), 0)).eos.slot, 5u);
  EXPECT_EQ(decode_frame(encode_frame(make_eos(), 0)).eos.slot, kAllSlots);
  EXPECT_EQ(decode_frame(encode_frame(make_finish(), 3)).type,
            FrameType::kFinish);
  EXPECT_EQ(decode_frame(encode_frame(make_ack(99), 0)).ack.next_seq, 99u);
}

TEST(ServeProtocol, VerdictRoundTrip) {
  const Frame f =
      decode_frame(encode_frame(make_verdict(3, true, false, {1, 4, 5}), 8));
  EXPECT_EQ(f.verdict.sub_id, 3u);
  EXPECT_TRUE(f.verdict.detected);
  EXPECT_FALSE(f.verdict.truncated);
  EXPECT_EQ(f.verdict.cut, (std::vector<StateIndex>{1, 4, 5}));
  const Frame g =
      decode_frame(encode_frame(make_verdict(0, false, true, {}), 9));
  EXPECT_FALSE(g.verdict.detected);
  EXPECT_TRUE(g.verdict.truncated);
  EXPECT_TRUE(g.verdict.cut.empty());
}

TEST(ServeProtocol, StatsRoundTrip) {
  ServeStats s;
  s.frames_in = 10;
  s.snapshots_in = 7;
  s.gc_rounds = 2;
  s.states_retired = 5;
  s.checker_peak_bytes = 4096;
  const Frame f = decode_frame(encode_frame(make_stats(s), 0));
  EXPECT_EQ(f.stats.stats.frames_in, 10);
  EXPECT_EQ(f.stats.stats.snapshots_in, 7);
  EXPECT_EQ(f.stats.stats.gc_rounds, 2);
  EXPECT_EQ(f.stats.stats.states_retired, 5);
  EXPECT_EQ(f.stats.stats.checker_peak_bytes, 4096);
}

TEST(ServeProtocol, ErrorRoundTrip) {
  const Frame f =
      decode_frame(encode_frame(make_error("wcp-stream parse error: x"), 0));
  EXPECT_EQ(f.error.message, "wcp-stream parse error: x");
}

// ---- malformed corpus --------------------------------------------------

TEST(ServeProtocol, TruncatedHeader) {
  expect_parse_error({}, "truncated frame header");
  expect_parse_error({0x01, 0x02}, "truncated frame header");
}

TEST(ServeProtocol, TruncatedBody) {
  auto bytes = encode_frame(make_hello(4, 1), 0);
  bytes.resize(bytes.size() - 3);  // length field promises more
  expect_parse_error(bytes, "length field promises");
}

TEST(ServeProtocol, LengthOutOfRange) {
  // length = 2 (< kFrameOverhead) followed by two bytes.
  expect_parse_error({2, 0, 0, 0, 0xAA, 0xBB}, "out of range");
}

TEST(ServeProtocol, BadMagic) {
  auto bytes = encode_frame(make_hello(4, 1), 0);
  bytes[4 + 9] ^= 0xFF;  // first magic byte
  expect_parse_error(bytes, "magic");
}

TEST(ServeProtocol, BadVersion) {
  auto bytes = encode_frame(make_hello(4, 1), 0);
  bytes[4 + 9 + 8] = 2;  // version u32 after magic
  expect_parse_error(bytes, "unsupported version 2");
}

TEST(ServeProtocol, UnknownFrameType) {
  auto bytes = encode_frame(make_finish(), 5);
  bytes[4 + 8] = 0x7E;  // type byte
  expect_parse_error(bytes, "unknown frame type 126");
}

TEST(ServeProtocol, SnapshotWidthMismatch) {
  const auto bytes = encode_frame(make_snapshot(0, 1, {1, 1, 1}), 0);
  expect_parse_error(bytes, "session has 4 slots", /*snapshot_slots=*/4);
}

TEST(ServeProtocol, SnapshotRaggedClockBytes) {
  auto bytes = encode_frame(make_snapshot(0, 1, {1, 1, 1}), 0);
  bytes.pop_back();
  // Now the trailing clock array is not a multiple of 8 bytes: the length
  // field disagrees with the payload, caught before any clock is read.
  expect_parse_error(bytes, "length field promises");
}

TEST(ServeProtocol, TrailingGarbage) {
  auto bytes = encode_frame(make_ack(1), 0);
  // Grow both the buffer and the length field by one byte.
  bytes.push_back(0xCC);
  bytes[0] += 1;
  expect_parse_error(bytes, "trailing");
}

TEST(ServeProtocol, ErrorNeverSilentlyZero) {
  // A frame of all-zero payload bytes must not decode as a harmless
  // default: type 0 is not a valid FrameType.
  std::vector<std::uint8_t> bytes(4 + 9, 0);
  bytes[0] = 9;  // length = kFrameOverhead, seq = 0, type = 0
  expect_parse_error(bytes, "unknown frame type 0");
}

TEST(ServeProtocol, PeekHeaderMatchesDecode) {
  const auto bytes = encode_frame(make_eos(2), 77);
  const FrameHeader h = peek_header(bytes);
  EXPECT_EQ(h.seq, 77u);
  EXPECT_EQ(h.type, FrameType::kEos);
  EXPECT_EQ(h.length + 4u, bytes.size());
}

TEST(ServeProtocol, AssemblerReassemblesByteByByte) {
  std::vector<std::uint8_t> stream;
  const auto a = encode_frame(make_hello(4, 2), 0);
  const auto b = encode_frame(make_snapshot(0, 1, {1, 0, 0, 0}), 1);
  const auto c = encode_frame(make_finish(), 2);
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());

  FrameAssembler asm_;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : stream) {
    asm_.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto f = asm_.next()) frames.push_back(*f);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(frames[2], c);
  EXPECT_EQ(asm_.buffered(), 0u);
}

TEST(ServeProtocol, AssemblerRejectsCorruptLength) {
  FrameAssembler asm_;
  const std::vector<std::uint8_t> corrupt = {0xFF, 0xFF, 0xFF, 0xFF, 0};
  asm_.feed(corrupt);
  EXPECT_THROW((void)asm_.next(), std::invalid_argument);
}

TEST(ServeProtocol, AlgoNames) {
  EXPECT_EQ(stream_algo_from_string("token"), StreamAlgo::kToken);
  EXPECT_EQ(stream_algo_from_string("checker"), StreamAlgo::kChecker);
  EXPECT_EQ(stream_algo_from_string("lattice-online"),
            StreamAlgo::kLatticeOnline);
  EXPECT_EQ(stream_algo_from_string("slicer"), StreamAlgo::kSlicer);
  EXPECT_THROW((void)stream_algo_from_string("dd"), std::invalid_argument);
  EXPECT_STREQ(to_string(StreamAlgo::kChecker), "checker");
  EXPECT_STREQ(to_string(FrameType::kSnapshot), "snapshot");
}

}  // namespace
}  // namespace wcp::serve
