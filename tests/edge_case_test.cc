// Structural edge cases across detectors: unsorted predicate orders,
// width-1 predicates, processes with no events, self-contained cliques,
// detection at the very first and very last possible cut.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/multi_token.h"
#include "detect/offline.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 5);
  return o;
}

TEST(EdgeCases, PredicateOrderNeedNotFollowProcessIds) {
  // Slots in reverse process order: cut component s refers to
  // predicate_processes()[s], not to P_s.
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(2), ProcessId(0)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(2));
  b.mark_pred(ProcessId(2), true);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  const auto oracle = comp.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());
  // Slot 0 = P2 at state 2, slot 1 = P0 at state 2.
  EXPECT_EQ(*oracle, (std::vector<StateIndex>{2, 2}));

  const auto tok = run_token_vc(comp, opts());
  ASSERT_TRUE(tok.detected);
  EXPECT_EQ(tok.cut, *oracle);
  const auto dd = run_direct_dep(comp, opts());
  ASSERT_TRUE(dd.detected);
  EXPECT_EQ(dd.cut, *oracle);
  const auto chk = run_centralized(comp, opts());
  ASSERT_TRUE(chk.detected);
  EXPECT_EQ(chk.cut, *oracle);
}

TEST(EdgeCases, RandomUnsortedPredicateOrders) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    // Build a random computation, then re-express it with a scrambled
    // predicate order through the trace-io round trip... simpler: builder
    // directly with scrambled order.
    Rng rng(seed + 5000);
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 5;
    spec.events_per_process = 12;
    spec.local_pred_prob = 0.35;
    spec.seed = seed;
    const auto base = workload::make_random(spec);

    // Same events, scrambled slot order.
    std::vector<ProcessId> order(base.predicate_processes().begin(),
                                 base.predicate_processes().end());
    rng.shuffle(order);

    ComputationBuilder b(base.num_processes());
    b.set_predicate_processes(order);
    // Replay events of `base` in a causally valid order.
    std::vector<std::size_t> next(base.num_processes(), 0);
    std::vector<MessageId> remap(base.messages().size(), -1);
    for (std::size_t p = 0; p < base.num_processes(); ++p)
      if (base.local_pred(ProcessId(static_cast<int>(p)), 1))
        b.mark_pred(ProcessId(static_cast<int>(p)), true);
    std::size_t remaining = 0;
    for (std::size_t p = 0; p < base.num_processes(); ++p)
      remaining += base.events(ProcessId(static_cast<int>(p))).size();
    while (remaining > 0) {
      for (std::size_t p = 0; p < base.num_processes(); ++p) {
        const ProcessId pid(static_cast<int>(p));
        const auto events = base.events(pid);
        while (next[p] < events.size()) {
          const Event& ev = events[next[p]];
          if (ev.kind == EventKind::kSend) {
            remap[static_cast<std::size_t>(ev.msg)] =
                b.send(pid, base.message(ev.msg).to);
          } else {
            if (remap[static_cast<std::size_t>(ev.msg)] < 0) break;
            b.receive(remap[static_cast<std::size_t>(ev.msg)]);
          }
          const StateIndex ns = static_cast<StateIndex>(next[p]) + 2;
          if (base.local_pred(pid, ns)) b.mark_pred(pid, true);
          ++next[p];
          --remaining;
        }
      }
    }
    const auto comp = b.build();
    const auto oracle = comp.first_wcp_cut();
    const auto tok = detect_token_vc_offline(comp);
    ASSERT_EQ(tok.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) EXPECT_EQ(tok.cut, *oracle) << "seed " << seed;
    const auto online = run_token_vc(comp, opts(seed + 1));
    EXPECT_EQ(online.detected, tok.detected) << "seed " << seed;
    EXPECT_EQ(online.cut, tok.cut) << "seed " << seed;
  }
}

TEST(EdgeCases, ProcessWithNoEvents) {
  // P1 has a single state and never communicates.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(1), true);
  b.send(ProcessId(0), ProcessId(1));  // undelivered
  b.mark_pred(ProcessId(0), true);     // P0 state 2
  const auto comp = b.build();
  const auto oracle = comp.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(*oracle, (std::vector<StateIndex>{2, 1}));
  EXPECT_EQ(run_token_vc(comp, opts()).cut, *oracle);
  EXPECT_EQ(run_direct_dep(comp, opts()).cut, *oracle);
}

TEST(EdgeCases, DetectionAtTheVeryLastStates) {
  // True only in the final states of a long exchange.
  ComputationBuilder b(2);
  for (int i = 0; i < 20; ++i) {
    b.transfer(ProcessId(0), ProcessId(1));
    b.transfer(ProcessId(1), ProcessId(0));
  }
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto oracle = comp.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());
  for (auto [algo, r] :
       {std::pair{"token", run_token_vc(comp, opts())},
        std::pair{"dd", run_direct_dep(comp, opts())},
        std::pair{"checker", run_centralized(comp, opts())}}) {
    ASSERT_TRUE(r.detected) << algo;
    EXPECT_EQ(r.cut, *oracle) << algo;
  }
}

TEST(EdgeCases, FullyConnectedChatter) {
  // Dense all-pairs communication: lots of eliminations everywhere.
  ComputationBuilder b(4);
  for (int round = 0; round < 4; ++round)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        if (i != j) b.transfer(ProcessId(i), ProcessId(j));
  for (int i = 0; i < 4; ++i) b.mark_pred(ProcessId(i), true);
  const auto comp = b.build();
  const auto oracle = comp.first_wcp_cut();
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(run_token_vc(comp, opts()).cut, *oracle);
  EXPECT_EQ(run_direct_dep(comp, opts()).cut, *oracle);
  MultiTokenOptions mt;
  mt.num_groups = 2;
  EXPECT_EQ(run_multi_token(comp, opts(), mt).cut, *oracle);
}

TEST(EdgeCases, WidthOnePredicateAllAlgorithms) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(1)});
  b.transfer(ProcessId(0), ProcessId(1));
  b.transfer(ProcessId(1), ProcessId(2));
  b.mark_pred(ProcessId(1), true);  // state 3
  const auto comp = b.build();
  const std::vector<StateIndex> expect{3};
  EXPECT_EQ(run_token_vc(comp, opts()).cut, expect);
  EXPECT_EQ(run_centralized(comp, opts()).cut, expect);
  EXPECT_EQ(run_direct_dep(comp, opts()).cut, expect);
  EXPECT_EQ(detect_token_vc_offline(comp).cut, expect);
  EXPECT_EQ(detect_direct_dep_offline(comp).cut, expect);
}

}  // namespace
}  // namespace wcp::detect
