#include "common/cut_storage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/cut_hash.h"
#include "common/rng.h"

namespace wcp {
namespace {

using Cut = std::vector<StateIndex>;

TEST(CutArena, PushGetMaterializeRoundtrip) {
  CutArena a(3);
  const Cut c0{1, 2, 3};
  const Cut c1{4, 5, 6};
  const CutHandle h0 = a.push(c0);
  const CutHandle h1 = a.push(c1);
  EXPECT_EQ(h0, 0u);
  EXPECT_EQ(h1, 1u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.materialize(h0), c0);
  EXPECT_EQ(a.materialize(h1), c1);
  const auto s = a.get(h1);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 4u);
  EXPECT_EQ(s[2], 6u);
}

TEST(CutArena, HandlesStayValidAcrossGrowth) {
  CutArena a(4);
  std::vector<CutHandle> handles;
  for (StateIndex i = 0; i < 500; ++i)
    handles.push_back(a.push(Cut{i, i + 1, i + 2, i + 3}));
  ASSERT_GT(a.growths(), 1);  // forced several reallocations
  for (StateIndex i = 0; i < 500; ++i)
    EXPECT_EQ(a.materialize(handles[static_cast<std::size_t>(i)]),
              (Cut{i, i + 1, i + 2, i + 3}));
}

TEST(CutArena, ClearKeepsCapacityAndPeak) {
  CutArena a(2);
  for (StateIndex i = 0; i < 100; ++i) a.push(Cut{i, i});
  const std::int64_t peak = a.peak_bytes();
  const std::int64_t growths = a.growths();
  ASSERT_GT(peak, 0);
  a.clear();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.bytes_in_use(), 0);
  EXPECT_EQ(a.peak_bytes(), peak);
  // Refilling to the same size must not reallocate.
  for (StateIndex i = 0; i < 100; ++i) a.push(Cut{i, i});
  EXPECT_EQ(a.growths(), growths);
  EXPECT_EQ(a.peak_bytes(), peak);
}

TEST(CutArena, ResizeZeroFillsAndSlotsAreWritable) {
  CutArena a(3);
  a.resize(4);
  EXPECT_EQ(a.size(), 4u);
  for (CutHandle h = 0; h < 4; ++h)
    for (const std::uint32_t v : a.get(h)) EXPECT_EQ(v, 0u);
  auto s = a.slot(2);
  s[0] = 7;
  s[1] = 8;
  s[2] = 9;
  EXPECT_EQ(a.materialize(2), (Cut{7, 8, 9}));
  // Repeated resize reuses the buffer.
  const std::int64_t growths = a.growths();
  a.resize(2);
  a.resize(4);
  EXPECT_EQ(a.growths(), growths);
}

TEST(CutArena, PushPackedMatchesPush) {
  CutArena a(2), b(2);
  const Cut c{123456, 789};
  a.push(c);
  b.push_packed(a.get(0));
  EXPECT_EQ(b.materialize(0), c);
}

TEST(CutArena, CopyToReusesBuffer) {
  CutArena a(3);
  a.push(Cut{1, 2, 3});
  a.push(Cut{4, 5, 6});
  Cut out;
  a.copy_to(0, out);
  EXPECT_EQ(out, (Cut{1, 2, 3}));
  a.copy_to(1, out);
  EXPECT_EQ(out, (Cut{4, 5, 6}));
}

TEST(CutArena, StatsAccumulate) {
  CutArena a(2);
  for (StateIndex i = 0; i < 50; ++i) a.push(Cut{i, i});
  CutStorageStats s;
  a.add_stats(s);
  EXPECT_EQ(s.cuts_interned, 50);
  EXPECT_GE(s.peak_bytes, a.bytes_in_use());
  EXPECT_EQ(s.heap_allocs, a.growths());
}

TEST(CutTable, InternDeduplicates) {
  CutArena a(3);
  CutTable t;
  const CutHash h;
  const Cut c{3, 1, 4};
  const auto r1 = t.intern(a, c, h(c));
  EXPECT_TRUE(r1.inserted);
  const auto r2 = t.intern(a, c, h(c));
  EXPECT_FALSE(r2.inserted);
  EXPECT_EQ(r1.handle, r2.handle);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CutTable, FindHitAndMiss) {
  CutArena a(2);
  CutTable t;
  const CutHash h;
  const Cut in{1, 2}, out{2, 1};
  EXPECT_EQ(t.find(a, in, h(in)), kNoCut);  // empty table
  const CutHandle stored = t.intern(a, in, h(in)).handle;
  EXPECT_EQ(t.find(a, in, h(in)), stored);
  EXPECT_EQ(t.find(a, out, h(out)), kNoCut);
}

TEST(CutTable, GrowthPreservesMembership) {
  CutArena a(2);
  CutTable t;
  const CutHash h;
  std::vector<CutHandle> handles;
  for (StateIndex i = 0; i < 1000; ++i) {
    const Cut c{i, i * 7 % 101};
    handles.push_back(t.intern(a, c, h(c)).handle);
  }
  ASSERT_GT(t.growths(), 1);
  for (StateIndex i = 0; i < 1000; ++i) {
    const Cut c{i, i * 7 % 101};
    EXPECT_EQ(t.find(a, c, h(c)), handles[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(t.intern(a, c, h(c)).inserted);
  }
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(a.size(), 1000u);
}

TEST(CutTable, ForcedCollisionsResolveByLinearProbing) {
  // The caller supplies the hash, so the test can lie: everything collides.
  CutArena a(2);
  CutTable t;
  constexpr std::size_t kSameHash = 42;
  std::vector<CutHandle> handles;
  for (StateIndex i = 0; i < 64; ++i)
    handles.push_back(t.intern(a, Cut{i, i}, kSameHash).handle);
  for (StateIndex i = 0; i < 64; ++i) {
    EXPECT_EQ(t.find(a, Cut{i, i}, kSameHash),
              handles[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(t.intern(a, Cut{i, i}, kSameHash).inserted);
  }
  EXPECT_EQ(t.size(), 64u);
}

TEST(CutTable, ProbeCounterAdvances) {
  CutArena a(1);
  CutTable t;
  t.intern(a, Cut{1}, 0);
  const std::int64_t before = t.probes();
  t.intern(a, Cut{1}, 0);  // duplicate: at least one slot inspected
  EXPECT_GT(t.probes(), before);
  CutStorageStats s;
  t.add_stats(s);
  EXPECT_EQ(s.table_probes, t.probes());
  EXPECT_GT(s.peak_bytes, 0);
}

// ---- hash/shard agreement ---------------------------------------------------
//
// The parallel detectors partition cuts across shards by CutHash value, once
// over the logical int64 components and once over the packed 32-bit arena
// representation. The two must agree, or the flat rewrite would change the
// shard assignment (and with it the deterministic dedup order).

// ---- incremental Zobrist hashing --------------------------------------------
//
// The concurrent engine maintains each cut's hash incrementally: advancing
// one slot XORs out the old component key and XORs in the new one. The
// invariant the engine lives on is that this incrementally-maintained value
// equals the from-scratch hash of the current cut after ANY walk — the
// property test below drives 10k randomized advance/undo steps and checks
// the agreement at every single step.

TEST(ZobristCutHash, IncrementalAdvanceMatchesFromScratch) {
  const ZobristCutHash z;
  Rng rng(0xc0ffee);
  for (const std::size_t n : {1u, 3u, 8u}) {
    std::vector<std::uint32_t> cut(n, 1);
    std::uint64_t h = z(std::span<const std::uint32_t>(cut));
    for (int step = 0; step < 10'000; ++step) {
      const std::size_t s = rng.index(n);
      const std::uint32_t from = cut[s];
      // Random walk over component values; undo (to - 1 < from) is the
      // same advance() call with the roles swapped, exercising the
      // self-inverse property on the same trajectory.
      const std::uint32_t to =
          (from > 1 && rng.bernoulli(0.4)) ? from - 1 : from + 1;
      h = ZobristCutHash::advance(h, s, from, to);
      cut[s] = to;
      ASSERT_EQ(h, z(std::span<const std::uint32_t>(cut)))
          << "n=" << n << " step=" << step;
    }
  }
}

TEST(ZobristCutHash, AdvanceIsSelfInverse) {
  const ZobristCutHash z;
  const std::vector<std::uint32_t> cut{5, 9, 2, 14};
  const std::uint64_t h = z(std::span<const std::uint32_t>(cut));
  const std::uint64_t fwd = ZobristCutHash::advance(h, 2, 2, 3);
  EXPECT_NE(fwd, h);
  EXPECT_EQ(ZobristCutHash::advance(fwd, 2, 3, 2), h);
}

TEST(ZobristCutHash, AgreesAcrossComponentRepresentations) {
  const ZobristCutHash z;
  const std::vector<StateIndex> logical{7, 1, 300};
  CutArena a(3);
  const CutHandle hd = a.push(logical);
  EXPECT_EQ(z(std::span<const StateIndex>(logical)), z(a.get(hd)));
}

// ---- SegmentedCutStore ------------------------------------------------------

TEST(SegmentedCutStore, StagePublishRoundtrip) {
  SegmentedCutStore store(3, 2);
  const ZobristCutHash z;
  const std::vector<std::uint32_t> c0{1, 2, 3};
  const std::vector<std::uint32_t> c1{4, 1, 1};
  const CutHandle h0 = store.stage(0, c0, z(std::span<const std::uint32_t>(c0)),
                                   /*level=*/3, /*false_count=*/0);
  store.publish(0);
  const CutHandle h1 = store.stage(1, c1, z(std::span<const std::uint32_t>(c1)),
                                   /*level=*/3, /*false_count=*/2);
  store.publish(1);
  EXPECT_NE(h0, h1);  // distinct lanes, distinct handle spaces
  EXPECT_TRUE(std::equal(c0.begin(), c0.end(), store.cut(h0).begin()));
  EXPECT_TRUE(std::equal(c1.begin(), c1.end(), store.cut(h1).begin()));
  EXPECT_EQ(store.level(h0), 3u);
  EXPECT_EQ(store.false_count(h1), 2);
  EXPECT_TRUE(store.satisfying(h0));
  EXPECT_FALSE(store.satisfying(h1));
  EXPECT_EQ(store.lane_count(0), 1u);
  EXPECT_EQ(store.lane_count(1), 1u);
  EXPECT_EQ(store.total_cuts(), 2u);
  EXPECT_EQ(store.materialize(h0), (Cut{1, 2, 3}));
}

TEST(SegmentedCutStore, UnpublishedStageIsOverwrittenByNextStage) {
  SegmentedCutStore store(2, 1);
  const std::vector<std::uint32_t> lost{9, 9};
  const std::vector<std::uint32_t> won{5, 6};
  const CutHandle hl = store.stage(0, lost, 111, 16, 1);
  store.unstage(0);  // CAS lost: same local index is reused
  const CutHandle hw = store.stage(0, won, 222, 9, 0);
  store.publish(0);
  EXPECT_EQ(hl, hw);
  EXPECT_TRUE(std::equal(won.begin(), won.end(), store.cut(hw).begin()));
  EXPECT_EQ(store.hash(hw), 222u);
  EXPECT_EQ(store.total_cuts(), 1u);
}

TEST(SegmentedCutStore, HandlesStableAcrossBlockGrowth) {
  // Push past several geometric block boundaries on one lane; every
  // previously returned handle must still read back its own cut (blocks
  // never move).
  SegmentedCutStore store(2, 1);
  constexpr std::uint32_t kCount = 5000;  // spans blocks of 512/1024/2048/...
  std::vector<CutHandle> handles;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const std::vector<std::uint32_t> c{i, i ^ 0x55u};
    handles.push_back(store.stage(0, c, i, i, 0));
    store.publish(0);
  }
  EXPECT_EQ(store.total_cuts(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto got = store.cut(handles[i]);
    EXPECT_EQ(got[0], i);
    EXPECT_EQ(got[1], i ^ 0x55u);
    EXPECT_EQ(store.hash(handles[i]), i);
  }
}

TEST(SegmentedCutStore, SuccessorArrayAndExpandedFlag) {
  SegmentedCutStore store(2, 1);
  const std::vector<std::uint32_t> c{1, 1};
  const CutHandle h = store.stage(0, c, 7, 0, 1);
  store.publish(0);
  EXPECT_FALSE(store.expanded(h));
  auto succ = store.succ(h);
  ASSERT_EQ(succ.size(), 2u);
  succ[0] = 42;
  succ[1] = kNoCut;
  store.mark_expanded(h);
  EXPECT_TRUE(store.expanded(h));
  const auto& cstore = store;
  EXPECT_EQ(cstore.succ(h)[0], 42u);
  EXPECT_EQ(cstore.succ(h)[1], kNoCut);
}

TEST(CutHashAgreement, SpanVectorAndPackedAgree) {
  const CutHash h;
  CutArena a(4);
  for (StateIndex i = 0; i < 200; ++i) {
    const Cut c{i, i * 31 % 97, i * i % 1000, 4'000'000'000LL % (i + 1)};
    const std::size_t logical = h(c);
    EXPECT_EQ(h(std::span<const StateIndex>(c)), logical);
    const CutHandle hd = a.push(c);
    EXPECT_EQ(h(a.get(hd)), logical);
    for (const std::size_t shards : {2u, 3u, 8u})
      EXPECT_EQ(h(a.get(hd)) % shards, logical % shards);
  }
}

}  // namespace
}  // namespace wcp
