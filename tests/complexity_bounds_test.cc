// Measured-complexity tests: the §3.4 and §4.4 cost claims, checked with
// explicit constants against the counters the simulator collects. These are
// the test-sized versions of benches E1-E4; EXPERIMENTS.md records the
// full sweeps.
#include <gtest/gtest.h>

#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 5);
  return o;
}

Computation random_comp(std::size_t N, std::size_t n, std::int64_t events,
                        std::uint64_t seed) {
  workload::RandomSpec spec;
  spec.num_processes = N;
  spec.num_predicate = n;
  spec.events_per_process = events;
  spec.local_pred_prob = 0.3;
  spec.seed = seed;
  return workload::make_random(spec);
}

// Max number of local states over the predicate processes (the paper's m
// counts messages; states per process <= m + 1).
StateIndex max_pred_states(const Computation& comp) {
  StateIndex mx = 0;
  for (ProcessId p : comp.predicate_processes())
    mx = std::max(mx, comp.num_states(p));
  return mx;
}

struct Shape {
  std::size_t N, n;
  std::int64_t events;
};

class TokenVcBounds : public ::testing::TestWithParam<Shape> {};

TEST_P(TokenVcBounds, WorkMessagesSpaceWithinPaperBounds) {
  const auto [N, n, events] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto comp = random_comp(N, n, events, seed * 31 + N);
    const auto r = run_token_vc(comp, opts(seed + 1));
    const auto S = max_pred_states(comp);  // ~ m + 1
    const auto ni = static_cast<std::int64_t>(n);

    // §3.4 time: O(n) per eliminated state, <= nS states in total; each
    // monitor handles <= S of its own states => O(nS) work per process.
    EXPECT_LE(r.monitor_metrics.max_work_per_process(), 2 * ni * S)
        << "N=" << N << " n=" << n << " seed=" << seed;
    EXPECT_LE(r.monitor_metrics.total_work(), 2 * ni * ni * S);

    // §3.4 messages: token moves <= nS, snapshots <= nS; total <= 2nS.
    const auto tokens = r.monitor_metrics.total_messages(MsgKind::kToken);
    const auto snaps = r.app_metrics.total_messages(MsgKind::kSnapshot);
    EXPECT_LE(tokens, ni * S);
    EXPECT_LE(snaps, ni * S);

    // §3.4 bits: both token and snapshots are O(n) words => O(n^2 S) bits.
    EXPECT_LE(r.monitor_metrics.total_bits(MsgKind::kToken),
              tokens * (ni * 64 + ni));
    EXPECT_LE(r.app_metrics.total_bits(MsgKind::kSnapshot),
              snaps * (ni * 64 + 1));

    // §3.4 space: each monitor buffers at most its own S snapshots of n
    // words each => O(nS) bytes per monitor.
    EXPECT_LE(r.monitor_metrics.max_peak_buffered_bytes(), S * ni * 8);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TokenVcBounds,
                         ::testing::Values(Shape{4, 4, 12}, Shape{6, 4, 16},
                                           Shape{8, 8, 20}, Shape{8, 3, 20}));

class DirectDepBounds : public ::testing::TestWithParam<Shape> {};

TEST_P(DirectDepBounds, WorkMessagesSpaceWithinPaperBounds) {
  const auto [N, n, events] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto comp = random_comp(N, n, events, seed * 17 + N);
    const auto r = run_direct_dep(comp, opts(seed + 1));
    // m+1 ~ states per process; every per-process quantity is O(m).
    StateIndex S = 0;
    for (std::size_t p = 0; p < N; ++p)
      S = std::max(S, comp.num_states(ProcessId(static_cast<int>(p))));
    const auto Ni = static_cast<std::int64_t>(N);

    // §4.4 per-process work: constant per dependence + per candidate.
    EXPECT_LE(r.monitor_metrics.max_work_per_process(), 6 * S)
        << "N=" << N << " seed=" << seed;
    EXPECT_LE(r.monitor_metrics.total_work(), 6 * Ni * S);

    // §4.4 messages: <= S*N token moves, <= m*N polls and replies each.
    EXPECT_LE(r.monitor_metrics.total_messages(MsgKind::kToken), Ni * S);
    EXPECT_LE(r.monitor_metrics.total_messages(MsgKind::kPoll), Ni * S);
    EXPECT_EQ(r.monitor_metrics.total_messages(MsgKind::kPoll),
              r.monitor_metrics.total_messages(MsgKind::kPollReply));
    EXPECT_LE(r.app_metrics.total_messages(MsgKind::kSnapshot), Ni * S);

    // §4.4 bits: everything constant-size; snapshots carry <= m deps total.
    EXPECT_LE(r.monitor_metrics.total_bits(MsgKind::kPoll),
              r.monitor_metrics.total_messages(MsgKind::kPoll) * 2 * 64);

    // §4.4 space: O(m) per process (own snapshots only).
    EXPECT_LE(r.monitor_metrics.max_peak_buffered_bytes(),
              S * 8 + 2 * S * 16);  // clock words + dependence pairs
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DirectDepBounds,
                         ::testing::Values(Shape{4, 4, 12}, Shape{6, 3, 16},
                                           Shape{8, 8, 20}, Shape{10, 2, 14}));

TEST(WorkDistribution, TokenAlgorithmSpreadsWorkCheckerConcentratesIt) {
  // §1/§3.4: same total order of work, but the checker does all of it in
  // one process while the token algorithm spreads it across monitors.
  const auto comp = random_comp(8, 8, 30, 99);
  const auto token = run_token_vc(comp, opts());
  const auto checker = run_centralized(comp, opts());

  const auto coord = ProcessId(8);
  // All checker work sits in the coordinator slot.
  EXPECT_EQ(checker.monitor_metrics.total_work(),
            checker.monitor_metrics.at(coord).work_units);
  // The token algorithm's maximum per-process share is well below the
  // checker's single-process load on an 8-slot predicate.
  EXPECT_LT(token.monitor_metrics.max_work_per_process(),
            checker.monitor_metrics.at(coord).work_units);
}

TEST(SpaceDistribution, CheckerBuffersMoreThanAnySingleMonitor) {
  // §3.4 space: O(n^2 m) at the checker vs O(nm) per monitor. Hand-built
  // undetectable run: P0's predicate never holds, so nothing is ever
  // eliminated — the checker accumulates every other process's snapshots
  // while each token monitor only buffers its own.
  const std::size_t n = 6;
  ComputationBuilder b(n);
  for (std::size_t p = 1; p < n; ++p)
    b.set_default_pred(ProcessId(static_cast<int>(p)), true);
  for (int round = 0; round < 10; ++round)
    for (std::size_t p = 1; p < n; ++p)
      b.transfer(ProcessId(static_cast<int>(p)), ProcessId(0));
  const auto comp = b.build();
  ASSERT_FALSE(comp.first_wcp_cut().has_value());

  const auto token = run_token_vc(comp, opts());
  const auto checker = run_centralized(comp, opts());
  EXPECT_FALSE(token.detected);
  EXPECT_FALSE(checker.detected);
  const auto coord = ProcessId(static_cast<int>(n));
  // The checker holds roughly (n-1)x the per-monitor buffer.
  EXPECT_GE(checker.monitor_metrics.at(coord).peak_buffered_bytes,
            3 * token.monitor_metrics.max_peak_buffered_bytes());
}

}  // namespace
}  // namespace wcp::detect
