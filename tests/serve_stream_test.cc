// End-to-end equivalence: a trace streamed through the full
// client -> wire -> session path must produce, for every algorithm, exactly
// the verdict of offline detection on the same trace — on random
// computations and on every committed example trace. Also exercises the
// real TCP loopback transport against an in-process server thread.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/replay.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"
#include "workload/random_workload.h"

namespace wcp::serve {
namespace {

const std::vector<StreamAlgo> kAllAlgos = {
    StreamAlgo::kToken, StreamAlgo::kChecker, StreamAlgo::kLatticeOnline,
    StreamAlgo::kSlicer};

ReplayOptions all_algo_options() {
  ReplayOptions opts;
  for (const StreamAlgo algo : kAllAlgos) opts.subs.push_back({algo, 0, -1});
  return opts;
}

/// Every algorithm must agree with the offline oracle: detection iff a
/// satisfying cut exists, and then the unique pointwise-minimal one.
void expect_verdicts_match_oracle(const Computation& comp,
                                  const ReplayResult& r) {
  const std::optional<std::vector<StateIndex>> oracle = comp.first_wcp_cut();
  ASSERT_EQ(r.verdicts.size(), kAllAlgos.size());
  for (const VerdictBody& v : r.verdicts) {
    EXPECT_FALSE(v.truncated);
    EXPECT_EQ(v.detected, oracle.has_value())
        << "sub " << v.sub_id << " (" << to_string(kAllAlgos[v.sub_id])
        << ") disagrees with the oracle";
    if (v.detected && oracle) EXPECT_EQ(v.cut, *oracle);
  }
}

TEST(ServeStream, MatchesOracleOnRandomTraces) {
  for (const std::uint64_t seed : {3u, 17u, 29u, 41u, 53u}) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 3;
    spec.events_per_process = 16;
    spec.seed = seed;
    spec.ensure_detectable = (seed % 2) != 0;
    spec.local_pred_prob = (seed % 3 == 0) ? 0.1 : 0.35;
    const auto comp = workload::make_random(spec);
    const ReplayResult r = replay_stream(comp, all_algo_options());
    expect_verdicts_match_oracle(comp, r);
  }
}

TEST(ServeStream, MatchesOracleOnCommittedTraces) {
  const std::filesystem::path dir = WCP_EXAMPLE_TRACES;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  int traces = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++traces;
    const auto comp = load_any_trace_file(entry.path().string());
    const ReplayResult r = replay_stream(comp, all_algo_options());
    expect_verdicts_match_oracle(comp, r);
  }
  EXPECT_GE(traces, 4) << "committed example traces went missing";
}

TEST(ServeStream, GcOnDoesNotChangeVerdicts) {
  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 3;
  spec.events_per_process = 20;
  spec.seed = 61;
  spec.ensure_detectable = true;
  const auto comp = workload::make_random(spec);

  ReplayOptions no_gc = all_algo_options();
  no_gc.serve.gc_every = 0;
  ReplayOptions aggressive = all_algo_options();
  aggressive.serve.gc_every = 1;

  const ReplayResult a = replay_stream(comp, no_gc);
  const ReplayResult b = replay_stream(comp, aggressive);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].detected, b.verdicts[i].detected);
    EXPECT_EQ(a.verdicts[i].cut, b.verdicts[i].cut);
  }
  EXPECT_EQ(b.stats.gc_rounds, b.stats.snapshots_in);
  EXPECT_GT(b.stats.states_retired, 0);
  EXPECT_EQ(a.stats.states_retired, 0);
}

TEST(ServeStream, MultiplePredicatesOneStream) {
  // Two predicates multiplexed over one snapshot stream: bit 0 = the
  // trace's local predicate, bit 1 = always true (detects the minimal
  // consistent cut [1,1,...,1] -- initial states are pairwise concurrent).
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 3;
  spec.seed = 71;
  spec.events_per_process = 12;
  const auto comp = workload::make_random(spec);

  ReplayOptions opts;
  opts.num_predicates = 2;
  opts.subs.push_back({StreamAlgo::kChecker, 0, -1});
  opts.subs.push_back({StreamAlgo::kChecker, 1, -1});
  opts.subs.push_back({StreamAlgo::kToken, 1, -1});
  const auto preds = comp.predicate_processes();
  opts.pred_mask = [&comp, preds](std::size_t slot, StateIndex k) {
    return (comp.local_pred(preds[slot], k) ? 1u : 0u) | 2u;
  };
  const ReplayResult r = replay_stream(comp, opts);
  ASSERT_EQ(r.verdicts.size(), 3u);
  const std::optional<std::vector<StateIndex>> oracle = comp.first_wcp_cut();
  const std::vector<StateIndex> ones(preds.size(), 1);
  for (const VerdictBody& v : r.verdicts) {
    if (v.sub_id == 0) {
      EXPECT_EQ(v.detected, oracle.has_value());
      if (oracle) EXPECT_EQ(v.cut, *oracle);
    } else {
      EXPECT_TRUE(v.detected);
      EXPECT_EQ(v.cut, ones);
    }
  }
}

TEST(ServeStream, TcpLoopbackRoundTrip) {
  std::unique_ptr<TcpListener> listener;
  try {
    listener = std::make_unique<TcpListener>(0);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "loopback bind unavailable: " << e.what();
  }

  ConnectionResult server_result;
  std::thread server([&] {
    const auto conn = listener->accept();
    server_result = serve_connection(*conn, ServeOptions{});
  });

  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 3;
  spec.events_per_process = 12;
  spec.seed = 83;
  spec.ensure_detectable = true;
  const auto comp = workload::make_random(spec);

  const auto transport = tcp_connect("127.0.0.1", listener->port());
  const ReplayResult r =
      replay_stream_over(comp, all_algo_options(), *transport);
  server.join();

  EXPECT_TRUE(server_result.clean) << server_result.error;
  expect_verdicts_match_oracle(comp, r);
  // The client saw exactly the stats the server computed.
  EXPECT_EQ(r.stats.values(), server_result.stats.values());
}

}  // namespace
}  // namespace wcp::serve
