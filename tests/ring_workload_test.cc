#include "workload/ring_workload.h"

#include <gtest/gtest.h>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"

namespace wcp::workload {
namespace {

detect::RunOptions opts(std::uint64_t seed = 1) {
  detect::RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 5);
  return o;
}

TEST(RingWorkload, CleanRunsNeverViolate) {
  for (std::size_t N : {2u, 3u, 5u, 8u}) {
    RingSpec spec;
    spec.num_processes = N;
    spec.laps = 4;
    const auto ring = make_ring(spec);
    EXPECT_FALSE(ring.violation_injected);
    EXPECT_FALSE(ring.computation.first_wcp_cut().has_value()) << "N=" << N;
  }
}

TEST(RingWorkload, DuplicatedPrivilegeIsDetected) {
  for (std::int64_t hop : {0, 1, 3, 7, 11}) {
    RingSpec spec;
    spec.num_processes = 4;
    spec.laps = 3;
    spec.duplicate_at_hop = hop;
    const auto ring = make_ring(spec);
    ASSERT_TRUE(ring.violation_injected);
    const auto cut = ring.computation.first_wcp_cut();
    ASSERT_TRUE(cut.has_value()) << "hop " << hop;
    EXPECT_TRUE(ring.computation.is_consistent_cut(
        ring.computation.predicate_processes(), *cut))
        << "hop " << hop;
  }
}

TEST(RingWorkload, OnlineDetectorsAgreeWithOracle) {
  for (std::int64_t hop : {-1, 2, 6}) {
    RingSpec spec;
    spec.num_processes = 5;
    spec.laps = 3;
    spec.duplicate_at_hop = hop;
    const auto ring = make_ring(spec);
    const auto oracle = ring.computation.first_wcp_cut();
    const auto tok = detect::run_token_vc(ring.computation, opts());
    const auto dd = detect::run_direct_dep(ring.computation, opts());
    EXPECT_EQ(tok.detected, oracle.has_value()) << "hop " << hop;
    EXPECT_EQ(dd.detected, oracle.has_value()) << "hop " << hop;
    if (oracle) {
      EXPECT_EQ(tok.cut, *oracle) << "hop " << hop;
      EXPECT_EQ(dd.cut, *oracle) << "hop " << hop;
    }
  }
}

TEST(RingWorkload, PredicatePairFollowsDuplicationHop) {
  RingSpec spec;
  spec.num_processes = 5;
  spec.laps = 2;
  spec.duplicate_at_hop = 7;  // forwarder P2 -> receiver P3
  const auto ring = make_ring(spec);
  const auto preds = ring.computation.predicate_processes();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], ProcessId(2));
  EXPECT_EQ(preds[1], ProcessId(3));
}

TEST(RingWorkload, RejectsBadSpecs) {
  RingSpec spec;
  spec.num_processes = 1;
  EXPECT_THROW(make_ring(spec), std::invalid_argument);
  spec.num_processes = 4;
  spec.laps = 2;
  spec.duplicate_at_hop = 8;  // == hops: out of range
  EXPECT_THROW(make_ring(spec), std::invalid_argument);
}

}  // namespace
}  // namespace wcp::workload
