// Exhaustive differential testing over a small universe: EVERY two-process
// computation with up to 3 messages (in every causally valid delivery
// arrangement) crossed with EVERY local-predicate assignment, checked
// against the brute-force oracle with every detector. Thousands of distinct
// cases — if any algorithm mishandles an edge structure, this finds it.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/multi_token.h"
#include "detect/offline.h"
#include "detect/token_vc.h"

namespace wcp::detect {
namespace {

// A message plan: sender (0/1) and whether it is delivered. Receives happen
// in plan order interleaved as late as possible... we enumerate explicit
// schedules instead: each schedule is a sequence of actions:
//   0 = P0 sends to P1, 1 = P1 sends to P0,
//   2 = P1 receives oldest pending from P0, 3 = P0 receives oldest from P1.
// A schedule is valid if receives have matching pending sends.
void enumerate_schedules(std::size_t max_len, std::vector<int>& cur,
                         int pending01, int pending10,
                         std::vector<std::vector<int>>& out) {
  out.push_back(cur);
  if (cur.size() >= max_len) return;
  for (int action = 0; action < 4; ++action) {
    if (action == 2 && pending01 == 0) continue;
    if (action == 3 && pending10 == 0) continue;
    cur.push_back(action);
    enumerate_schedules(max_len, cur,
                        pending01 + (action == 0 ? 1 : action == 2 ? -1 : 0),
                        pending10 + (action == 1 ? 1 : action == 3 ? -1 : 0),
                        out);
    cur.pop_back();
  }
}

Computation build_case(const std::vector<int>& schedule, unsigned pred_bits,
                       std::size_t total_states) {
  (void)total_states;
  ComputationBuilder b2(2);
  std::vector<MessageId> r01, r10;
  std::size_t g01 = 0, g10 = 0;
  std::size_t bit = 0;
  // Predicate truth per state from the bitmask; bit order: the two initial
  // states, then one state per scheduled event.
  auto mark = [&](ProcessId p) {
    b2.mark_pred(p, ((pred_bits >> bit++) & 1u) != 0);
  };
  mark(ProcessId(0));  // initial state P0
  mark(ProcessId(1));  // initial state P1
  for (int action : schedule) {
    switch (action) {
      case 0:
        r01.push_back(b2.send(ProcessId(0), ProcessId(1)));
        mark(ProcessId(0));
        break;
      case 1:
        r10.push_back(b2.send(ProcessId(1), ProcessId(0)));
        mark(ProcessId(1));
        break;
      case 2:
        b2.receive(r01[g01++]);
        mark(ProcessId(1));
        break;
      case 3:
        b2.receive(r10[g10++]);
        mark(ProcessId(0));
        break;
    }
  }
  return b2.build();
}

TEST(ExhaustiveSmall, AllDetectorsMatchOracleOnEveryTinyCase) {
  std::vector<std::vector<int>> schedules;
  std::vector<int> cur;
  enumerate_schedules(/*max_len=*/4, cur, 0, 0, schedules);

  std::int64_t cases = 0, detected_cases = 0;
  for (const auto& schedule : schedules) {
    const std::size_t total_states = 2 + schedule.size();
    const unsigned combos = 1u << total_states;
    for (unsigned bits = 0; bits < combos; ++bits) {
      const Computation comp = build_case(schedule, bits, total_states);
      const auto oracle = comp.first_wcp_cut();
      ++cases;
      if (oracle) ++detected_cases;

      const auto lat = detect_lattice(comp);
      ASSERT_EQ(lat.detected, oracle.has_value()) << "case " << cases;
      if (oracle) ASSERT_EQ(lat.cut, *oracle) << "case " << cases;

      const auto tok = detect_token_vc_offline(comp);
      ASSERT_EQ(tok.detected, oracle.has_value()) << "case " << cases;
      if (oracle) ASSERT_EQ(tok.cut, *oracle) << "case " << cases;

      const auto dd = detect_direct_dep_offline(comp);
      ASSERT_EQ(dd.detected, oracle.has_value()) << "case " << cases;
      if (oracle) ASSERT_EQ(dd.cut, *oracle) << "case " << cases;
    }
  }
  // Sanity on the universe size: both outcomes occur, in bulk.
  EXPECT_GT(cases, 3000);
  EXPECT_GT(detected_cases, 800);
  EXPECT_GT(cases - detected_cases, 800);
}

TEST(ExhaustiveSmall, OnlineDetectorsMatchOnSampledTinyCases) {
  // Online runs are slower; sample the same universe (every 7th predicate
  // assignment) across all schedules.
  std::vector<std::vector<int>> schedules;
  std::vector<int> cur;
  enumerate_schedules(/*max_len=*/4, cur, 0, 0, schedules);

  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 4);

  int cases = 0;
  for (const auto& schedule : schedules) {
    const std::size_t total_states = 2 + schedule.size();
    const unsigned combos = 1u << total_states;
    for (unsigned bits = 0; bits < combos; bits += 7) {
      const Computation comp = build_case(schedule, bits, total_states);
      const auto oracle = comp.first_wcp_cut();
      ++cases;

      const auto tok = run_token_vc(comp, o);
      ASSERT_EQ(tok.detected, oracle.has_value())
          << "case " << cases << " bits " << bits;
      if (oracle) ASSERT_EQ(tok.cut, *oracle) << "case " << cases;

      const auto dd = run_direct_dep(comp, o);
      ASSERT_EQ(dd.detected, oracle.has_value()) << "case " << cases;
      if (oracle) ASSERT_EQ(dd.cut, *oracle) << "case " << cases;

      const auto chk = run_centralized(comp, o);
      ASSERT_EQ(chk.detected, oracle.has_value()) << "case " << cases;
      if (oracle) ASSERT_EQ(chk.cut, *oracle) << "case " << cases;
    }
  }
  EXPECT_GT(cases, 400);
}

TEST(ExhaustiveSmall, EverySingleWireDropIsSurvived) {
  // Single-drop schedule exploration on sampled tiny cases: drop EVERY
  // individual wire transmission in turn — data frames, retransmits, and
  // acks alike, addressed by exact raw-send index — and check the token
  // detector still reaches the fault-free verdict and cut. The fault Rng is
  // untouched until the indexed transmission, so run k is bit-identical to
  // the baseline up to the drop; the reliable transport must recover the
  // rest.
  std::vector<std::vector<int>> schedules;
  std::vector<int> cur;
  enumerate_schedules(/*max_len=*/4, cur, 0, 0, schedules);

  RunOptions o;
  o.seed = 3;
  o.latency = sim::LatencyModel::uniform(1, 4);

  int cases = 0;
  std::int64_t drop_runs = 0, retransmits_total = 0;
  for (std::size_t si = 0; si < schedules.size(); si += 7) {
    const auto& schedule = schedules[si];
    const std::size_t total_states = 2 + schedule.size();
    const unsigned combos = 1u << total_states;
    for (unsigned bits = 0; bits < combos; bits += 5) {
      const Computation comp = build_case(schedule, bits, total_states);
      const auto oracle = comp.first_wcp_cut();
      ++cases;

      // Baseline with the transport framed in but an unreachable drop
      // index: its message total IS the raw transmission count, the index
      // space the per-run drops below address.
      RunOptions base = o;
      base.faults.drop_exact = {std::numeric_limits<std::int64_t>::max()};
      const auto r0 = run_token_vc(comp, base);
      ASSERT_EQ(r0.detected, oracle.has_value()) << "case " << cases;
      const std::int64_t sends = r0.app_metrics.total_messages() +
                                 r0.monitor_metrics.total_messages();

      for (std::int64_t k = 0; k < sends; ++k) {
        RunOptions faulty = o;
        faulty.faults.drop_exact = {k};
        const auto r = run_token_vc(comp, faulty);
        ++drop_runs;
        ASSERT_EQ(r.detected, oracle.has_value())
            << "case " << cases << " drop index " << k;
        if (oracle) {
          ASSERT_EQ(r.cut, *oracle) << "case " << cases << " drop index " << k;
        }
        // The indexed transmission really exists and was really dropped.
        // (Retransmission only fires when the loss mattered: a frame
        // dropped after the verdict stops the simulator is never resent.)
        ASSERT_EQ(r.faults.drops_random, 1)
            << "case " << cases << " drop index " << k;
        retransmits_total += r.faults.retransmits;
      }
    }
  }
  EXPECT_GT(cases, 30);
  EXPECT_GT(drop_runs, 1000);
  EXPECT_GT(retransmits_total, drop_runs / 2);
}

}  // namespace
}  // namespace wcp::detect
