#include "detect/offline.h"

#include <gtest/gtest.h>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  return o;
}

TEST(OfflineTokenVc, MatchesOracleAndOnlineRun) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 4;
    spec.events_per_process = 15;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto oracle = comp.first_wcp_cut();
    const auto off = detect_token_vc_offline(comp);
    ASSERT_EQ(off.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) EXPECT_EQ(off.cut, *oracle) << "seed " << seed;

    const auto on = run_token_vc(comp, opts(seed + 1));
    EXPECT_EQ(off.detected, on.detected) << "seed " << seed;
    EXPECT_EQ(off.cut, on.cut) << "seed " << seed;
    // Identical work accounting: the offline run IS the serial schedule.
    EXPECT_EQ(off.monitor_metrics.total_work(),
              on.monitor_metrics.total_work())
        << "seed " << seed;
    EXPECT_EQ(off.token_hops, on.token_hops) << "seed " << seed;
  }
}

TEST(OfflineDirectDep, MatchesOracleAndOnlineRun) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 3;
    spec.events_per_process = 14;
    spec.local_pred_prob = 0.35;
    spec.seed = seed + 300;
    const auto comp = workload::make_random(spec);
    const auto oracle = comp.first_wcp_cut_all_processes();
    const auto off = detect_direct_dep_offline(comp);
    ASSERT_EQ(off.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) EXPECT_EQ(off.full_cut, *oracle) << "seed " << seed;

    const auto on = run_direct_dep(comp, opts(seed + 1));
    EXPECT_EQ(off.detected, on.detected) << "seed " << seed;
    EXPECT_EQ(off.full_cut, on.full_cut) << "seed " << seed;
    EXPECT_EQ(off.monitor_metrics.total_work(),
              on.monitor_metrics.total_work())
        << "seed " << seed;
  }
}

TEST(Offline, LargeScaleDifferentialSweep) {
  // Scales the online harness can't reach in test time: the two offline
  // algorithms and the oracle must agree on wide, long runs.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 40;
    spec.num_predicate = 40;
    spec.events_per_process = 60;
    spec.local_pred_prob = 0.2;
    spec.seed = seed * 7 + 1;
    const auto comp = workload::make_random(spec);
    const auto oracle = comp.first_wcp_cut();
    const auto tok = detect_token_vc_offline(comp);
    const auto dd = detect_direct_dep_offline(comp);
    ASSERT_EQ(tok.detected, oracle.has_value()) << "seed " << seed;
    ASSERT_EQ(dd.detected, oracle.has_value()) << "seed " << seed;
    if (oracle) {
      EXPECT_EQ(tok.cut, *oracle) << "seed " << seed;
      EXPECT_EQ(dd.cut, *oracle) << "seed " << seed;
    }
  }
}

TEST(Offline, WorstCaseMutexWorkScalesAsClaimed) {
  // Work on the forced-final-violation workload grows linearly in rounds
  // (~m) for fixed n: ratio between consecutive sizes ~2.
  workload::MutexSpec base;
  base.num_clients = 6;
  base.force_final_violation = true;
  base.seed = 9;

  std::int64_t prev = 0;
  for (std::int64_t rounds : {10, 20, 40}) {
    auto spec = base;
    spec.rounds_per_client = rounds;
    const auto mc = workload::make_mutex(spec);
    const auto r = detect_token_vc_offline(mc.computation);
    ASSERT_TRUE(r.detected);
    const auto work = r.monitor_metrics.total_work();
    if (prev > 0) {
      EXPECT_GT(work, prev * 3 / 2);
      EXPECT_LT(work, prev * 3);
    }
    prev = work;
  }
}

TEST(Offline, NotDetectedWhenStarved) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  const auto comp = b.build();
  EXPECT_FALSE(detect_token_vc_offline(comp).detected);
  EXPECT_FALSE(detect_direct_dep_offline(comp).detected);
}

}  // namespace
}  // namespace wcp::detect
