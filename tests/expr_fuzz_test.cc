// Property-based fuzzing of the predicate expression language: random
// expression trees must print, reparse, and evaluate identically; random
// junk must be rejected without crashing.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "predicate/expr.h"

namespace wcp::pred {
namespace {

Expr random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.3)) {
    if (rng.bernoulli(0.5)) return Expr::lit(rng.uniform_int(0, 9));
    const char* names[] = {"x", "y", "z", "count", "in_cs_1"};
    return Expr::var(names[rng.index(5)]);
  }
  switch (rng.uniform_int(0, 12)) {
    case 0: return random_expr(rng, depth - 1) + random_expr(rng, depth - 1);
    case 1: return random_expr(rng, depth - 1) - random_expr(rng, depth - 1);
    case 2: return random_expr(rng, depth - 1) * random_expr(rng, depth - 1);
    case 3: return random_expr(rng, depth - 1) < random_expr(rng, depth - 1);
    case 4: return random_expr(rng, depth - 1) <= random_expr(rng, depth - 1);
    case 5: return random_expr(rng, depth - 1) > random_expr(rng, depth - 1);
    case 6: return random_expr(rng, depth - 1) >= random_expr(rng, depth - 1);
    case 7: return random_expr(rng, depth - 1) == random_expr(rng, depth - 1);
    case 8: return random_expr(rng, depth - 1) != random_expr(rng, depth - 1);
    case 9:
      return random_expr(rng, depth - 1) && random_expr(rng, depth - 1);
    case 10:
      return random_expr(rng, depth - 1) || random_expr(rng, depth - 1);
    case 11: return !random_expr(rng, depth - 1);
    default: return -random_expr(rng, depth - 1);
  }
}

Env random_env(Rng& rng) {
  Env e;
  for (const char* name : {"x", "y", "z", "count", "in_cs_1"})
    if (rng.bernoulli(0.8)) e.set(name, rng.uniform_int(-5, 5));
  return e;
}

TEST(ExprFuzz, PrintParseEvalRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const Expr original = random_expr(rng, 4);
    const std::string text = original.to_string();
    Expr reparsed = Expr::parse(text);
    for (int j = 0; j < 5; ++j) {
      const Env env = random_env(rng);
      ASSERT_EQ(original.eval(env), reparsed.eval(env))
          << "expr: " << text << " (iteration " << i << ")";
    }
  }
}

TEST(ExprFuzz, RandomJunkNeverCrashes) {
  Rng rng(7);
  const std::string alphabet = "xy01+-*<>=!&|() \t";
  int rejected = 0, accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string s;
    const auto len = rng.uniform_int(0, 12);
    for (int k = 0; k < len; ++k) s += alphabet[rng.index(alphabet.size())];
    try {
      const Expr e = Expr::parse(s);
      ++accepted;
      // Whatever parsed must evaluate and round-trip.
      const Env env = random_env(rng);
      const Expr again = Expr::parse(e.to_string());
      ASSERT_EQ(e.eval(env), again.eval(env)) << "input: '" << s << "'";
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  // The fuzzer generates both kinds in bulk.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(accepted, 50);
}

TEST(ExprFuzz, DeepNestingWithinReason) {
  // 200-deep unary chain: must not overflow or misparse.
  std::string text(200, '!');
  text += "1";
  const Expr e = Expr::parse(text);
  EXPECT_EQ(e.eval(Env{}), 1);  // even number of negations
}

}  // namespace
}  // namespace wcp::pred
