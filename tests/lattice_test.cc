#include "detect/lattice.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "common/json.h"
#include "detect/report.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

TEST(Lattice, DetectsTrivialInitialCut) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
  EXPECT_EQ(r.cuts_explored, 1);
}

TEST(Lattice, FindsTheMinimalWcpCut) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 4;
    spec.events_per_process = 10;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    const auto r = detect_lattice(comp);
    ASSERT_EQ(r.detected, expect.has_value()) << "seed " << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "seed " << seed;
  }
}

TEST(Lattice, NotDetectedExploresWholeLattice) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  b.transfer(ProcessId(0), ProcessId(1));
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.truncated);
  // P0 has 2 states, P1 has 2 states; consistent cuts: (1,1),(2,1),(2,2)
  // — (1,2) is inconsistent because (0,1) -> (1,2).
  EXPECT_EQ(r.cuts_explored, 3);
}

TEST(Lattice, ExplorationBlowupOnIndependentProcesses) {
  // No communication: every cut is consistent, lattice size = (m+1)^n.
  // With the predicate true only in the last states, BFS must visit the
  // whole lattice below the top.
  ComputationBuilder b2(3);
  // Each process gets 4 states via sends that are never received (sends
  // create causality only when delivered), so all states stay concurrent.
  for (int p = 0; p < 3; ++p)
    for (int k = 0; k < 3; ++k)
      b2.send(ProcessId(p), ProcessId((p + 1) % 3));  // never received
  for (int p = 0; p < 3; ++p) b2.mark_pred(ProcessId(p), true);  // state 4
  const auto comp = b2.build();
  const auto r = detect_lattice(comp);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{4, 4, 4}));
  // 4^3 = 64 cuts; BFS in level order visits every cut of level < 12 plus
  // the top: all 64.
  EXPECT_EQ(r.cuts_explored, 64);
}

TEST(Lattice, TruncationCapRespected) {
  ComputationBuilder b(2);
  for (int k = 0; k < 6; ++k) b.send(ProcessId(0), ProcessId(1));
  const auto comp = b.build();  // predicate never true: full exploration
  const auto r = detect_lattice(comp, /*max_cuts=*/5);
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.cuts_explored, 5);
}

TEST(Lattice, FrontierTracked) {
  ComputationBuilder b(2);
  b.send(ProcessId(0), ProcessId(1));
  b.send(ProcessId(1), ProcessId(0));
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  EXPECT_GE(r.max_frontier, 1);
}

// ---- parallel-vs-serial equivalence ----------------------------------------
//
// The level-parallel explorer must be indistinguishable from the serial
// baseline for every thread count: same verdict, same cut, same counters —
// down to the byte in the JSON run report.

std::string lattice_record(const Computation& comp, const LatticeResult& r) {
  std::ostringstream oss;
  json::Writer w(oss, 0);
  ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(comp.predicate_processes().size());
  rp.m = comp.max_messages_per_process();
  write_run_report(w, "test:lattice", rp,
                   {{"detected", r.detected ? 1 : 0},
                    {"cuts_explored", r.cuts_explored},
                    {"max_frontier", r.max_frontier},
                    {"truncated", r.truncated ? 1 : 0}},
                   std::nullopt, std::nullopt);
  return oss.str();
}

TEST(Lattice, ParallelMatchesSerialOnRandomSweep) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 12;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto serial = detect_lattice(comp, /*max_cuts=*/-1, /*threads=*/1);
    const std::string serial_rec = lattice_record(comp, serial);
    for (std::size_t threads : {2u, 8u}) {
      const auto par = detect_lattice(comp, /*max_cuts=*/-1, threads);
      EXPECT_EQ(par.detected, serial.detected) << "seed " << seed;
      EXPECT_EQ(par.cut, serial.cut) << "seed " << seed;
      EXPECT_EQ(par.cuts_explored, serial.cuts_explored) << "seed " << seed;
      EXPECT_EQ(par.max_frontier, serial.max_frontier) << "seed " << seed;
      EXPECT_EQ(par.truncated, serial.truncated) << "seed " << seed;
      EXPECT_EQ(lattice_record(comp, par), serial_rec) << "seed " << seed;
    }
  }
}

TEST(Lattice, ParallelMatchesSerialWhenNeverDetected) {
  // Predicate never true on P1: full exploration, counters must replay the
  // serial pop/push interleaving exactly.
  ComputationBuilder b(3);
  for (int k = 0; k < 4; ++k) b.send(ProcessId(0), ProcessId(1));
  for (int k = 0; k < 3; ++k) b.send(ProcessId(2), ProcessId(0));
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(2), true);
  const auto comp = b.build();
  const auto serial = detect_lattice(comp, -1, 1);
  ASSERT_FALSE(serial.detected);
  for (std::size_t threads : {2u, 8u}) {
    const auto par = detect_lattice(comp, -1, threads);
    EXPECT_FALSE(par.detected);
    EXPECT_EQ(par.cuts_explored, serial.cuts_explored);
    EXPECT_EQ(par.max_frontier, serial.max_frontier);
  }
}

TEST(Lattice, ParallelMatchesSerialUnderTruncation) {
  ComputationBuilder b(2);
  for (int k = 0; k < 8; ++k) b.send(ProcessId(0), ProcessId(1));
  const auto comp = b.build();  // predicate never true
  for (std::int64_t cap : {1, 3, 5, 7}) {
    const auto serial = detect_lattice(comp, cap, 1);
    ASSERT_TRUE(serial.truncated);
    for (std::size_t threads : {2u, 8u}) {
      const auto par = detect_lattice(comp, cap, threads);
      EXPECT_TRUE(par.truncated) << "cap " << cap;
      EXPECT_EQ(par.cuts_explored, serial.cuts_explored) << "cap " << cap;
      EXPECT_EQ(par.max_frontier, serial.max_frontier) << "cap " << cap;
    }
  }
}

TEST(Lattice, DefinitelyParallelMatchesSerialOnRandomSweep) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 3;
    spec.events_per_process = 10;
    spec.local_pred_prob = 0.4;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto serial = detect_definitely(comp, /*max_cuts=*/-1, /*threads=*/1);
    for (std::size_t threads : {2u, 8u}) {
      const auto par = detect_definitely(comp, /*max_cuts=*/-1, threads);
      EXPECT_EQ(par.definitely, serial.definitely) << "seed " << seed;
      EXPECT_EQ(par.cuts_explored, serial.cuts_explored) << "seed " << seed;
      EXPECT_EQ(par.truncated, serial.truncated) << "seed " << seed;
      EXPECT_EQ(par.witness, serial.witness) << "seed " << seed;
    }
  }
}

TEST(Lattice, ThreadsZeroResolvesToDefault) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = detect_lattice(comp, -1, /*threads=*/0);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
}

}  // namespace
}  // namespace wcp::detect
