#include "detect/lattice.h"

#include <gtest/gtest.h>

#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

TEST(Lattice, DetectsTrivialInitialCut) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{1, 1}));
  EXPECT_EQ(r.cuts_explored, 1);
}

TEST(Lattice, FindsTheMinimalWcpCut) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 4;
    spec.events_per_process = 10;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto expect = comp.first_wcp_cut();
    const auto r = detect_lattice(comp);
    ASSERT_EQ(r.detected, expect.has_value()) << "seed " << seed;
    if (expect) EXPECT_EQ(r.cut, *expect) << "seed " << seed;
  }
}

TEST(Lattice, NotDetectedExploresWholeLattice) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  b.transfer(ProcessId(0), ProcessId(1));
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.truncated);
  // P0 has 2 states, P1 has 2 states; consistent cuts: (1,1),(2,1),(2,2)
  // — (1,2) is inconsistent because (0,1) -> (1,2).
  EXPECT_EQ(r.cuts_explored, 3);
}

TEST(Lattice, ExplorationBlowupOnIndependentProcesses) {
  // No communication: every cut is consistent, lattice size = (m+1)^n.
  // With the predicate true only in the last states, BFS must visit the
  // whole lattice below the top.
  ComputationBuilder b2(3);
  // Each process gets 4 states via sends that are never received (sends
  // create causality only when delivered), so all states stay concurrent.
  for (int p = 0; p < 3; ++p)
    for (int k = 0; k < 3; ++k)
      b2.send(ProcessId(p), ProcessId((p + 1) % 3));  // never received
  for (int p = 0; p < 3; ++p) b2.mark_pred(ProcessId(p), true);  // state 4
  const auto comp = b2.build();
  const auto r = detect_lattice(comp);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{4, 4, 4}));
  // 4^3 = 64 cuts; BFS in level order visits every cut of level < 12 plus
  // the top: all 64.
  EXPECT_EQ(r.cuts_explored, 64);
}

TEST(Lattice, TruncationCapRespected) {
  ComputationBuilder b(2);
  for (int k = 0; k < 6; ++k) b.send(ProcessId(0), ProcessId(1));
  const auto comp = b.build();  // predicate never true: full exploration
  const auto r = detect_lattice(comp, /*max_cuts=*/5);
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.cuts_explored, 5);
}

TEST(Lattice, FrontierTracked) {
  ComputationBuilder b(2);
  b.send(ProcessId(0), ProcessId(1));
  b.send(ProcessId(1), ProcessId(0));
  const auto comp = b.build();
  const auto r = detect_lattice(comp);
  EXPECT_GE(r.max_frontier, 1);
}

}  // namespace
}  // namespace wcp::detect
