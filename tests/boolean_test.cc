#include "detect/boolean.h"

#include <gtest/gtest.h>

#include "detect/lattice.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

// P0 true at states {1,2}, P1 true only at state 2 with (0,1) -> (1,2).
Computation base_comp() {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(0), true);
  b.mark_pred(ProcessId(1), true);
  return b.build();
}

TEST(DetectDnf, SingleConjunctEqualsWcp) {
  const auto c = base_comp();
  const Conjunct conj{{0, false}, {1, false}};
  const auto r = detect_dnf(c, std::span(&conj, 1));
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.disjunct, 0);
  EXPECT_EQ(r.cut, *c.first_wcp_cut());
}

TEST(DetectDnf, NegatedLiterals) {
  // ¬l_0 ∧ l_1: P0's false states are {}, wait — P0 true at 1,2 so ¬l_0
  // never holds... build a run where it does.
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);   // state 1 true
  b.transfer(ProcessId(0), ProcessId(1));  // state 2 false (default)
  b.mark_pred(ProcessId(1), true);   // P1 state 2 true
  const auto c = b.build();
  const Conjunct conj{{0, true}, {1, false}};
  const auto r = detect_dnf(c, std::span(&conj, 1));
  ASSERT_TRUE(r.detected);
  // (0,2) is ¬l_0 and concurrent with (1,2).
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2, 2}));
}

TEST(DetectDnf, DisjunctionPicksFirstSatisfiable) {
  const auto c = base_comp();
  const Conjunct impossible{{0, true}};        // ¬l_0 never holds
  const Conjunct possible{{0, false}, {1, false}};
  const Conjunct disjuncts[] = {impossible, possible};
  const auto r = detect_dnf(c, disjuncts);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.disjunct, 1);
  EXPECT_FALSE(r.satisfiable[0]);
  EXPECT_TRUE(r.satisfiable[1]);
}

TEST(DetectDnf, AllDisjunctsUnsatisfiable) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.mark_pred(ProcessId(1), true);  // (0,1) -> (1,2), P0 never true again
  const auto c = b.build();
  const Conjunct conj{{0, false}, {1, false}};
  const auto r = detect_dnf(c, std::span(&conj, 1));
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.disjunct, -1);
}

TEST(DetectDnf, PartialConjunctsUseSubsetsOfSlots) {
  const auto c = base_comp();
  const Conjunct only_p1{{1, false}};
  const auto r = detect_dnf(c, std::span(&only_p1, 1));
  ASSERT_TRUE(r.detected);
  ASSERT_EQ(r.procs.size(), 1u);
  EXPECT_EQ(r.procs[0], ProcessId(1));
  EXPECT_EQ(r.cut, (std::vector<StateIndex>{2}));
}

TEST(DetectDnf, ValidatesInput) {
  const auto c = base_comp();
  const Conjunct empty{};
  EXPECT_THROW(detect_dnf(c, std::span(&empty, 1)), std::invalid_argument);
  const Conjunct repeated{{0, false}, {0, true}};
  EXPECT_THROW(detect_dnf(c, std::span(&repeated, 1)), std::invalid_argument);
  const Conjunct bad_slot{{7, false}};
  EXPECT_THROW(detect_dnf(c, std::span(&bad_slot, 1)), std::invalid_argument);
}

TEST(DetectDnf, XorOfTwoLocals) {
  // possibly(l_0 XOR l_1) = possibly((l_0 ∧ ¬l_1) ∨ (¬l_0 ∧ l_1)).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 2;
    spec.num_predicate = 2;
    spec.events_per_process = 10;
    spec.local_pred_prob = 0.5;
    spec.seed = seed;
    const auto c = workload::make_random(spec);
    const Conjunct a{{0, false}, {1, true}};
    const Conjunct b{{0, true}, {1, false}};
    const Conjunct disjuncts[] = {a, b};
    const auto r = detect_dnf(c, disjuncts);

    // Brute-force ground truth over all consistent cuts.
    bool expect = false;
    for (StateIndex i = 1; i <= c.num_states(ProcessId(0)); ++i)
      for (StateIndex j = 1; j <= c.num_states(ProcessId(1)); ++j) {
        if (!c.concurrent(ProcessId(0), i, ProcessId(1), j)) continue;
        if (c.local_pred(ProcessId(0), i) != c.local_pred(ProcessId(1), j))
          expect = true;
      }
    EXPECT_EQ(r.detected, expect) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wcp::detect
