// The ground-truth causality oracle (vector-clock based) underpins every
// correctness test in this repository, so it gets its own independent
// check: happened-before recomputed from first principles as graph
// reachability over program-order and message edges must agree with the
// clock-based Computation::happened_before on EVERY state pair of many
// randomized computations.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp {
namespace {

// Dense state numbering for the reachability graph.
struct Index {
  explicit Index(const Computation& c) {
    offset.resize(c.num_processes());
    std::size_t next = 0;
    for (std::size_t p = 0; p < c.num_processes(); ++p) {
      offset[p] = next;
      next += static_cast<std::size_t>(
          c.num_states(ProcessId(static_cast<int>(p))));
    }
    total = next;
  }
  [[nodiscard]] std::size_t of(ProcessId p, StateIndex k) const {
    return offset[p.idx()] + static_cast<std::size_t>(k - 1);
  }
  std::vector<std::size_t> offset;
  std::size_t total = 0;
};

// Adjacency straight from the definition in §2: program order, plus "the
// action following α is a send and the action preceding β is the receive".
std::vector<std::vector<std::size_t>> adjacency(const Computation& c,
                                                const Index& ix) {
  std::vector<std::vector<std::size_t>> adj(ix.total);
  for (std::size_t p = 0; p < c.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    for (StateIndex k = 1; k + 1 <= c.num_states(pid); ++k)
      adj[ix.of(pid, k)].push_back(ix.of(pid, k + 1));
  }
  for (const MessageRecord& m : c.messages()) {
    if (!m.delivered()) continue;
    adj[ix.of(m.from, m.send_state)].push_back(ix.of(m.to, m.recv_state));
  }
  return adj;
}

void check_all_pairs(const Computation& c) {
  const Index ix(c);
  const auto adj = adjacency(c, ix);

  // Reachability from every state (BFS; sizes are test-small).
  std::vector<std::vector<bool>> reach(ix.total,
                                       std::vector<bool>(ix.total, false));
  for (std::size_t v = 0; v < ix.total; ++v) {
    std::queue<std::size_t> q;
    q.push(v);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t w : adj[u])
        if (!reach[v][w]) {
          reach[v][w] = true;
          q.push(w);
        }
    }
  }

  for (std::size_t p = 0; p < c.num_processes(); ++p) {
    const ProcessId pi(static_cast<int>(p));
    for (StateIndex a = 1; a <= c.num_states(pi); ++a) {
      for (std::size_t q2 = 0; q2 < c.num_processes(); ++q2) {
        const ProcessId pj(static_cast<int>(q2));
        for (StateIndex b = 1; b <= c.num_states(pj); ++b) {
          if (p == q2 && a == b) continue;
          ASSERT_EQ(c.happened_before(pi, a, pj, b),
                    reach[ix.of(pi, a)][ix.of(pj, b)])
              << "(" << p << "," << a << ") vs (" << q2 << "," << b << ")";
        }
      }
    }
  }
}

TEST(CausalityOracle, MatchesFirstPrinciplesReachabilityOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 4;
    spec.num_predicate = 4;
    spec.events_per_process = 8;
    spec.drain_prob = seed % 2 ? 1.0 : 0.6;  // with and without in-flight
    spec.seed = seed;
    check_all_pairs(workload::make_random(spec));
  }
}

TEST(CausalityOracle, MatchesOnDomainWorkload) {
  workload::MutexSpec spec;
  spec.num_clients = 2;
  spec.rounds_per_client = 3;
  spec.violation_prob = 0.5;
  spec.seed = 4;
  check_all_pairs(workload::make_mutex(spec).computation);
}

TEST(CausalityOracle, StrictPartialOrderProperties) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 10;
  spec.seed = 31;
  const auto c = workload::make_random(spec);
  // Irreflexivity + asymmetry on sampled pairs.
  for (std::size_t p = 0; p < c.num_processes(); ++p) {
    const ProcessId pi(static_cast<int>(p));
    for (StateIndex a = 1; a <= c.num_states(pi); ++a) {
      EXPECT_FALSE(c.happened_before(pi, a, pi, a));
      for (std::size_t q = 0; q < c.num_processes(); ++q) {
        const ProcessId pj(static_cast<int>(q));
        const StateIndex b = std::min<StateIndex>(a, c.num_states(pj));
        if (pi == pj && a == b) continue;
        EXPECT_FALSE(c.happened_before(pi, a, pj, b) &&
                     c.happened_before(pj, b, pi, a));
      }
    }
  }
}

}  // namespace
}  // namespace wcp
