// Distributed breakpoints (the Miller-Choi [11] use case from §1): on
// detection the monitors freeze the application with Halt messages instead
// of stopping the simulation. The frozen global state trails the detected
// cut (halting is asynchronous — the classic observation), but never
// precedes it, and the application performs no further events.
#include <gtest/gtest.h>

#include "detect/direct_dep.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"

namespace wcp::detect {
namespace {

RunOptions halt_opts(std::uint64_t seed = 1) {
  RunOptions o;
  o.seed = seed;
  o.latency = sim::LatencyModel::uniform(1, 6);
  o.halt_on_detect = true;
  return o;
}

TEST(Breakpoint, TokenVcFreezesAtOrAfterTheDetectedCut) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 5;
    spec.num_predicate = 4;
    spec.events_per_process = 15;
    spec.local_pred_prob = 0.3;
    spec.ensure_detectable = true;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);
    const auto r = run_token_vc(comp, halt_opts(seed + 1));
    ASSERT_TRUE(r.detected) << "seed " << seed;
    ASSERT_EQ(r.frozen_cut.size(), comp.num_processes());
    // The frozen state of each predicate process is at or after its cut
    // component (never before: the cut was already reached when detected).
    const auto preds = comp.predicate_processes();
    for (std::size_t s = 0; s < preds.size(); ++s)
      EXPECT_GE(r.frozen_cut[preds[s].idx()], r.cut[s])
          << "seed " << seed << " slot " << s;
    // Frozen states are within the run.
    for (std::size_t p = 0; p < comp.num_processes(); ++p)
      EXPECT_LE(r.frozen_cut[p],
                comp.num_states(ProcessId(static_cast<int>(p))));
    // The detection cut is unchanged by halting.
    EXPECT_EQ(r.cut, *comp.first_wcp_cut()) << "seed " << seed;
  }
}

TEST(Breakpoint, DirectDepFreezesToo) {
  workload::MutexSpec spec;
  spec.num_clients = 3;
  spec.rounds_per_client = 6;
  spec.violation_prob = 0.5;
  spec.seed = 3;
  const auto mc = workload::make_mutex(spec);
  ASSERT_TRUE(mc.violation_injected);
  const auto r = run_direct_dep(mc.computation, halt_opts());
  ASSERT_TRUE(r.detected);
  ASSERT_EQ(r.frozen_cut.size(), mc.computation.num_processes());
  for (std::size_t p = 0; p < r.full_cut.size(); ++p)
    EXPECT_GE(r.frozen_cut[p], r.full_cut[p]) << "P" << p;
}

TEST(Breakpoint, HaltedRunStopsShortOfTheFullScript) {
  // A long run with an early cut: freezing must prevent the application
  // from replaying to the end (at least one process is stopped early).
  workload::MutexSpec spec;
  spec.num_clients = 3;
  spec.rounds_per_client = 30;
  spec.violation_prob = 0.0;
  spec.force_final_violation = false;
  spec.seed = 2;
  auto mcspec = spec;
  mcspec.violation_prob = 1.0;  // violate in (nearly) every round
  const auto mc = workload::make_mutex(mcspec);
  const auto r = run_token_vc(mc.computation, halt_opts());
  ASSERT_TRUE(r.detected);
  bool some_frozen_early = false;
  for (std::size_t p = 0; p < r.frozen_cut.size(); ++p)
    if (r.frozen_cut[p] <
        mc.computation.num_states(ProcessId(static_cast<int>(p))))
      some_frozen_early = true;
  EXPECT_TRUE(some_frozen_early);
}

TEST(Breakpoint, MultiTokenLeaderFreezesToo) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 12;
  spec.local_pred_prob = 0.3;
  spec.ensure_detectable = true;
  spec.seed = 9;
  const auto comp = workload::make_random(spec);
  MultiTokenOptions mt;
  mt.num_groups = 2;
  const auto r = run_multi_token(comp, halt_opts(), mt);
  ASSERT_TRUE(r.detected);
  ASSERT_EQ(r.frozen_cut.size(), comp.num_processes());
  const auto preds = comp.predicate_processes();
  for (std::size_t s = 0; s < preds.size(); ++s)
    EXPECT_GE(r.frozen_cut[preds[s].idx()], r.cut[s]);
}

TEST(Breakpoint, NoHaltWithoutDetection) {
  ComputationBuilder b(2);
  b.mark_pred(ProcessId(0), true);  // P1 never true
  const auto comp = b.build();
  const auto r = run_token_vc(comp, halt_opts());
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.frozen_cut.empty());
}

}  // namespace
}  // namespace wcp::detect
