#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/random_workload.h"

namespace wcp {
namespace {

bool same_computation(const Computation& a, const Computation& b) {
  if (a.num_processes() != b.num_processes()) return false;
  if (a.messages().size() != b.messages().size()) return false;
  if (!std::equal(a.predicate_processes().begin(),
                  a.predicate_processes().end(),
                  b.predicate_processes().begin(),
                  b.predicate_processes().end()))
    return false;
  for (std::size_t p = 0; p < a.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    if (a.num_states(pid) != b.num_states(pid)) return false;
    for (StateIndex k = 1; k <= a.num_states(pid); ++k) {
      if (a.local_pred(pid, k) != b.local_pred(pid, k)) return false;
      if (a.ground_truth_clock(pid, k) != b.ground_truth_clock(pid, k))
        return false;
    }
  }
  return true;
}

TEST(TraceIo, RoundTripsSmallHandBuiltTrace) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(2)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.transfer(ProcessId(1), ProcessId(2));
  b.mark_pred(ProcessId(2), true);
  const auto original = b.build();

  const auto text = trace_to_string(original);
  const auto reread = trace_from_string(text);
  EXPECT_TRUE(same_computation(original, reread));
}

TEST(TraceIo, RoundTripsRandomComputations) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 3;
    spec.events_per_process = 15;
    spec.seed = seed;
    spec.drain_prob = 0.7;  // leave some messages in flight
    const auto original = workload::make_random(spec);
    const auto reread = trace_from_string(trace_to_string(original));
    EXPECT_TRUE(same_computation(original, reread)) << "seed " << seed;
  }
}

TEST(TraceIo, PreservesFirstWcpCut) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.3;
  spec.seed = 17;
  const auto original = workload::make_random(spec);
  const auto reread = trace_from_string(trace_to_string(original));
  EXPECT_EQ(original.first_wcp_cut(), reread.first_wcp_cut());
}

TEST(TraceIo, RejectsGarbageHeader) {
  EXPECT_THROW(trace_from_string("not-a-trace\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_string(""), std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 99\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsEventsBeforeProcesses) {
  EXPECT_THROW(trace_from_string("wcp-trace 1\nsend 0 1\n"),
               std::invalid_argument);
}

TEST(TraceIo, RejectsUnknownDirective) {
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nfrobnicate\n"),
               std::invalid_argument);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const auto c = trace_from_string(
      "wcp-trace 1\n"
      "# a comment\n"
      "\n"
      "processes 2   # trailing comment\n"
      "predicate 0 1\n"
      "send 0 1\n"
      "recv 0\n"
      "end\n");
  EXPECT_EQ(c.num_processes(), 2u);
  EXPECT_EQ(c.messages().size(), 1u);
}

TEST(TraceIo, RoundTripsUndeliveredInFlightMessages) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(1), ProcessId(2)});
  const MessageId delivered = b.send(ProcessId(0), ProcessId(1));
  const MessageId in_flight = b.send(ProcessId(0), ProcessId(2));
  b.receive(delivered);
  b.mark_pred(ProcessId(1), true);
  const auto original = b.build();
  ASSERT_FALSE(original.message(in_flight).delivered());

  const auto reread = trace_from_string(trace_to_string(original));
  EXPECT_TRUE(same_computation(original, reread));
  std::size_t undelivered = 0;
  for (const MessageRecord& m : reread.messages())
    if (!m.delivered()) ++undelivered;
  EXPECT_EQ(undelivered, 1u);
}

TEST(TraceIo, RejectsDuplicateProcessesDirective) {
  try {
    trace_from_string(
        "wcp-trace 1\nprocesses 2\nprocesses 3\nsend 0 1\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, RejectsOutOfRangeProcessIds) {
  // pid >= N used to read as a silent out-of-bounds builder call.
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nsend 0 2\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nmark -1 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace_from_string("wcp-trace 1\nprocesses 2\npredicate 0 5\nend\n"),
      std::invalid_argument);
}

TEST(TraceIo, RejectsBadReceives) {
  // Receive of a message that was never sent.
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nrecv 0\nend\n"),
               std::invalid_argument);
  // Double delivery of the same message.
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nsend 0 1\n"
                                 "recv 0\nrecv 0\nend\n"),
               std::invalid_argument);
}

TEST(TraceIo, RejectsUnparseableIntegers) {
  // These all silently read as 0 before the reader validated tokens.
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses two\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nsend 0 1x\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace_from_string("wcp-trace 1\nprocesses 2\nmark 0 yes\nend\n"),
      std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedStructure) {
  // Self-send, non-binary mark, trailing tokens, missing/duplicated end.
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nsend 1 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nmark 0 2\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace_from_string("wcp-trace 1\nprocesses 2\nsend 0 1 9\nend\n"),
      std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nsend 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nend\nsend 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace_from_string(
          "wcp-trace 1\nprocesses 2\npredicate 0\npredicate 1\nend\n"),
      std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 2;
  spec.seed = 3;
  const auto original = workload::make_random(spec);
  const std::string path = ::testing::TempDir() + "/wcp_trace_test.trace";
  save_trace_file(path, original);
  const auto reread = load_trace_file(path);
  EXPECT_TRUE(same_computation(original, reread));
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/dir/x.trace"),
               std::invalid_argument);
}

}  // namespace
}  // namespace wcp
