#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/random_workload.h"

namespace wcp {
namespace {

bool same_computation(const Computation& a, const Computation& b) {
  if (a.num_processes() != b.num_processes()) return false;
  if (a.messages().size() != b.messages().size()) return false;
  if (!std::equal(a.predicate_processes().begin(),
                  a.predicate_processes().end(),
                  b.predicate_processes().begin(),
                  b.predicate_processes().end()))
    return false;
  for (std::size_t p = 0; p < a.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    if (a.num_states(pid) != b.num_states(pid)) return false;
    for (StateIndex k = 1; k <= a.num_states(pid); ++k) {
      if (a.local_pred(pid, k) != b.local_pred(pid, k)) return false;
      if (a.ground_truth_clock(pid, k) != b.ground_truth_clock(pid, k))
        return false;
    }
  }
  return true;
}

TEST(TraceIo, RoundTripsSmallHandBuiltTrace) {
  ComputationBuilder b(3);
  b.set_predicate_processes({ProcessId(0), ProcessId(2)});
  b.mark_pred(ProcessId(0), true);
  b.transfer(ProcessId(0), ProcessId(1));
  b.transfer(ProcessId(1), ProcessId(2));
  b.mark_pred(ProcessId(2), true);
  const auto original = b.build();

  const auto text = trace_to_string(original);
  const auto reread = trace_from_string(text);
  EXPECT_TRUE(same_computation(original, reread));
}

TEST(TraceIo, RoundTripsRandomComputations) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::RandomSpec spec;
    spec.num_processes = 6;
    spec.num_predicate = 3;
    spec.events_per_process = 15;
    spec.seed = seed;
    spec.drain_prob = 0.7;  // leave some messages in flight
    const auto original = workload::make_random(spec);
    const auto reread = trace_from_string(trace_to_string(original));
    EXPECT_TRUE(same_computation(original, reread)) << "seed " << seed;
  }
}

TEST(TraceIo, PreservesFirstWcpCut) {
  workload::RandomSpec spec;
  spec.num_processes = 5;
  spec.num_predicate = 5;
  spec.events_per_process = 20;
  spec.local_pred_prob = 0.3;
  spec.seed = 17;
  const auto original = workload::make_random(spec);
  const auto reread = trace_from_string(trace_to_string(original));
  EXPECT_EQ(original.first_wcp_cut(), reread.first_wcp_cut());
}

TEST(TraceIo, RejectsGarbageHeader) {
  EXPECT_THROW(trace_from_string("not-a-trace\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_string(""), std::invalid_argument);
  EXPECT_THROW(trace_from_string("wcp-trace 99\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsEventsBeforeProcesses) {
  EXPECT_THROW(trace_from_string("wcp-trace 1\nsend 0 1\n"),
               std::invalid_argument);
}

TEST(TraceIo, RejectsUnknownDirective) {
  EXPECT_THROW(trace_from_string("wcp-trace 1\nprocesses 2\nfrobnicate\n"),
               std::invalid_argument);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const auto c = trace_from_string(
      "wcp-trace 1\n"
      "# a comment\n"
      "\n"
      "processes 2   # trailing comment\n"
      "predicate 0 1\n"
      "send 0 1\n"
      "recv 0\n"
      "end\n");
  EXPECT_EQ(c.num_processes(), 2u);
  EXPECT_EQ(c.messages().size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  workload::RandomSpec spec;
  spec.num_processes = 4;
  spec.num_predicate = 2;
  spec.seed = 3;
  const auto original = workload::make_random(spec);
  const std::string path = ::testing::TempDir() + "/wcp_trace_test.trace";
  save_trace_file(path, original);
  const auto reread = load_trace_file(path);
  EXPECT_TRUE(same_computation(original, reread));
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/dir/x.trace"),
               std::invalid_argument);
}

}  // namespace
}  // namespace wcp
