#include "clock/vector_clock.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wcp {
namespace {

TEST(VectorClock, InitialClockHasOwnComponentOne) {
  const auto vc = VectorClock::initial(4, ProcessId(2));
  EXPECT_EQ(vc.width(), 4u);
  EXPECT_EQ(vc[0], 0);
  EXPECT_EQ(vc[1], 0);
  EXPECT_EQ(vc[2], 1);
  EXPECT_EQ(vc[3], 0);
}

TEST(VectorClock, InitialClockRejectsBadOwner) {
  EXPECT_THROW(VectorClock::initial(3, ProcessId(3)), std::invalid_argument);
  EXPECT_THROW(VectorClock::initial(3, ProcessId::invalid()),
               std::invalid_argument);
}

TEST(VectorClock, TickIncrementsOwnComponentOnly) {
  auto vc = VectorClock::initial(3, ProcessId(0));
  vc.tick(ProcessId(0));
  vc.tick(ProcessId(0));
  EXPECT_EQ(vc[0], 3);
  EXPECT_EQ(vc[1], 0);
  EXPECT_EQ(vc[2], 0);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(std::vector<StateIndex>{3, 1, 5});
  const VectorClock b(std::vector<StateIndex>{2, 4, 5});
  a.merge(b);
  EXPECT_EQ(a, VectorClock(std::vector<StateIndex>{3, 4, 5}));
}

TEST(VectorClock, MergeRejectsWidthMismatch) {
  VectorClock a(3);
  const VectorClock b(2);
  EXPECT_THROW(a.merge(b), InvariantViolation);
}

TEST(VectorClock, HappenedBeforeIsStrictDominance) {
  const VectorClock a(std::vector<StateIndex>{1, 2, 3});
  const VectorClock b(std::vector<StateIndex>{1, 2, 4});
  const VectorClock c(std::vector<StateIndex>{2, 2, 3});
  EXPECT_TRUE(a.happened_before(b));
  EXPECT_FALSE(b.happened_before(a));
  EXPECT_FALSE(a.happened_before(a));  // irreflexive
  EXPECT_TRUE(b.concurrent_with(c));
  EXPECT_TRUE(c.concurrent_with(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VectorClock, ConcurrentWithSelfIsFalse) {
  const VectorClock a(std::vector<StateIndex>{1, 2});
  EXPECT_FALSE(a.concurrent_with(a));
}

TEST(VectorClock, StreamFormat) {
  const VectorClock a(std::vector<StateIndex>{1, 0, 7});
  std::ostringstream oss;
  oss << a;
  EXPECT_EQ(oss.str(), "[1,0,7]");
}

TEST(VectorClock, BitsAccounting) {
  EXPECT_EQ(VectorClock(5).bits(), 5 * 64);
  EXPECT_EQ(VectorClock().bits(), 0);
}

// The two vector-clock properties of §3.1, checked on a hand-built exchange:
// P0 sends to P1; P1's post-receive clock dominates P0's send-state clock.
TEST(VectorClock, PaperPropertiesOnHandBuiltExchange) {
  auto p0 = VectorClock::initial(2, ProcessId(0));  // P0 state 1: [1,0]
  auto p1 = VectorClock::initial(2, ProcessId(1));  // P1 state 1: [0,1]
  // P0 sends (message carries [1,0]); P0 moves to state 2.
  const VectorClock msg = p0;
  p0.tick(ProcessId(0));  // [2,0]
  // P1 receives: merge + tick -> state 2: [1,2].
  p1.merge(msg);
  p1.tick(ProcessId(1));
  EXPECT_EQ(p1, VectorClock(std::vector<StateIndex>{1, 2}));

  // Property 1: (P0 state 1) -> (P1 state 2) iff clock dominance.
  EXPECT_TRUE(msg.happened_before(p1));
  // Property 2: for v = p1's clock, (0, v[0]) -> (1, v[1]) — the state
  // numbered v[0]=1 on P0 is exactly the msg state, which precedes p1.
  EXPECT_EQ(p1[0], 1);
  // P0's state 2 is concurrent with P1's state 2.
  EXPECT_TRUE(p0.concurrent_with(p1));
}

}  // namespace
}  // namespace wcp
