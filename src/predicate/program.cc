#include "predicate/program.h"

#include "common/error.h"

namespace wcp::pred {

ProgramBuilder::ProgramBuilder(std::size_t num_processes)
    : b_(num_processes),
      envs_(num_processes),
      exprs_(num_processes),
      has_expr_(num_processes, false),
      history_(num_processes) {}

void ProgramBuilder::close_state(ProcessId p) {
  history_[p.idx()].push_back(envs_[p.idx()]);
}

void ProgramBuilder::local_predicate(ProcessId p, Expr expr) {
  WCP_REQUIRE(p.valid() && p.idx() < envs_.size(), "bad process id " << p);
  WCP_REQUIRE(!has_expr_[p.idx()],
              "process " << p << " already has a local predicate");
  exprs_[p.idx()] = std::move(expr);
  has_expr_[p.idx()] = true;
  predicate_order_.push_back(p);
  reevaluate(p);
}

void ProgramBuilder::reevaluate(ProcessId p) {
  // Sticky within a state: once true, the state keeps its mark (the
  // snapshot for it has conceptually been sent).
  if (has_expr_[p.idx()] && exprs_[p.idx()].holds(envs_[p.idx()]))
    b_.mark_pred(p, true);
}

void ProgramBuilder::enter_state(ProcessId p) {
  // A fresh state starts with the predicate evaluated on the carried-over
  // variable values.
  reevaluate(p);
}

void ProgramBuilder::set(ProcessId p, const std::string& name,
                         std::int64_t value) {
  WCP_REQUIRE(p.valid() && p.idx() < envs_.size(), "bad process id " << p);
  envs_[p.idx()].set(name, value);
  reevaluate(p);
}

std::int64_t ProgramBuilder::get(ProcessId p, const std::string& name) const {
  WCP_REQUIRE(p.valid() && p.idx() < envs_.size(), "bad process id " << p);
  return envs_[p.idx()].get(name);
}

MessageId ProgramBuilder::send(ProcessId from, ProcessId to) {
  close_state(from);
  const MessageId id = b_.send(from, to);
  enter_state(from);
  return id;
}

void ProgramBuilder::receive(MessageId msg) {
  const ProcessId to = b_.message_destination(msg);
  close_state(to);
  b_.receive(msg);
  enter_state(to);
}

MessageId ProgramBuilder::transfer(ProcessId from, ProcessId to) {
  const MessageId id = send(from, to);
  receive(id);
  return id;
}

Computation ProgramBuilder::build() {
  if (!predicate_order_.empty())
    b_.set_predicate_processes(predicate_order_);
  return b_.build();
}

VarComputation ProgramBuilder::build_with_vars() {
  VarComputation out;
  // Close the final (still-open) state of every process.
  for (std::size_t p = 0; p < envs_.size(); ++p)
    close_state(ProcessId(static_cast<int>(p)));
  out.state_envs = std::move(history_);
  out.computation = build();
  return out;
}

}  // namespace wcp::pred
