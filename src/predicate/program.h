// ProgramBuilder: the variable-level view of §2's model.
//
// A local state is "the value of all program variables" — ProgramBuilder
// lets workloads and applications express exactly that: assign integer
// variables per process, communicate, and attach one local-predicate
// expression per predicate process. It wraps ComputationBuilder, keeps an
// Env per process, and derives the per-state predicate flags from the
// expressions, with snapshot-compatible semantics: a state satisfies its
// local predicate iff the expression held at some point during the state
// (Fig. 2's "local predicate becomes true").
#pragma once

#include <string>
#include <vector>

#include "predicate/expr.h"
#include "trace/computation.h"

namespace wcp::pred {

/// A computation together with the variable bindings of every local state
/// (the §2 "value of all program variables"). Enables detection of general
/// — including relational — global predicates over the variables
/// (detect::detect_possibly_general).
struct VarComputation {
  Computation computation;
  /// state_envs[p][k-1] = bindings at the end of state (p, k).
  std::vector<std::vector<Env>> state_envs;

  [[nodiscard]] const Env& env(ProcessId p, StateIndex k) const {
    return state_envs.at(p.idx()).at(static_cast<std::size_t>(k - 1));
  }
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::size_t num_processes);

  /// Attach the local predicate of process p. Call order defines the cut
  /// slot order. Processes without a predicate are relays.
  void local_predicate(ProcessId p, Expr expr);

  /// Assign a variable in p's current state; re-evaluates p's predicate.
  void set(ProcessId p, const std::string& name, std::int64_t value);

  [[nodiscard]] std::int64_t get(ProcessId p, const std::string& name) const;

  MessageId send(ProcessId from, ProcessId to);
  void receive(MessageId msg);
  MessageId transfer(ProcessId from, ProcessId to);

  [[nodiscard]] StateIndex current_state(ProcessId p) const {
    return b_.current_state(p);
  }

  Computation build();

  /// Like build(), but also returns the per-state variable bindings.
  VarComputation build_with_vars();

 private:
  void reevaluate(ProcessId p);
  void enter_state(ProcessId p);
  void close_state(ProcessId p);

  ComputationBuilder b_;
  std::vector<Env> envs_;
  std::vector<Expr> exprs_;
  std::vector<bool> has_expr_;
  std::vector<ProcessId> predicate_order_;
  std::vector<std::vector<Env>> history_;
};

}  // namespace wcp::pred
