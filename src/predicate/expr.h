// A small expression language for local predicates.
//
// §2 of the paper defines a local predicate as "any boolean-valued formula
// on a local state", where a local state is the value of the program
// variables. This module makes that concrete: integer-valued named
// variables per local state, and boolean/arithmetic expressions over them,
// buildable either programmatically (operator overloading) or by parsing
// the textual form ("x > 0 && y == 2"), which the CLI tooling uses.
//
// Expressions are immutable value types; evaluation takes an Env mapping
// variable names to values (missing variables default to 0, matching an
// uninitialized program variable).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace wcp::pred {

/// Variable bindings of one local state.
class Env {
 public:
  void set(const std::string& name, std::int64_t value) {
    vars_[name] = value;
  }
  [[nodiscard]] std::int64_t get(const std::string& name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? 0 : it->second;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return vars_.contains(name);
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& vars() const {
    return vars_;
  }

 private:
  std::map<std::string, std::int64_t> vars_;
};

enum class Op : std::uint8_t {
  kConst, kVar,
  kNeg, kNot,
  kAdd, kSub, kMul,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

/// An immutable expression tree with value semantics (shared immutable
/// nodes, cheap to copy).
class Expr {
 public:
  Expr() : Expr(lit(0)) {}

  static Expr lit(std::int64_t v);
  static Expr var(std::string name);

  /// Parses "x + 1 >= 2*y && !(z == 0)". Throws std::invalid_argument with
  /// a position-annotated message on syntax errors.
  static Expr parse(std::string_view text);

  /// Integer evaluation (booleans are 0/1).
  [[nodiscard]] std::int64_t eval(const Env& env) const;
  /// Boolean view of eval().
  [[nodiscard]] bool holds(const Env& env) const { return eval(env) != 0; }

  [[nodiscard]] std::string to_string() const;

  // Builder operators.
  friend Expr operator-(Expr e);
  friend Expr operator!(Expr e);
  friend Expr operator+(Expr a, Expr b);
  friend Expr operator-(Expr a, Expr b);
  friend Expr operator*(Expr a, Expr b);
  friend Expr operator<(Expr a, Expr b);
  friend Expr operator<=(Expr a, Expr b);
  friend Expr operator>(Expr a, Expr b);
  friend Expr operator>=(Expr a, Expr b);
  friend Expr operator==(Expr a, Expr b);
  friend Expr operator!=(Expr a, Expr b);
  friend Expr operator&&(Expr a, Expr b);
  friend Expr operator||(Expr a, Expr b);
  friend std::ostream& operator<<(std::ostream& os, const Expr& e);

 private:
  struct Node {
    Op op;
    std::int64_t value = 0;   // kConst
    std::string name;         // kVar
    std::shared_ptr<const Node> lhs, rhs;
  };

  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Expr unary(Op op, Expr e);
  static Expr binary(Op op, Expr a, Expr b);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const Expr& e);

}  // namespace wcp::pred
