#include "predicate/expr.h"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/error.h"

namespace wcp::pred {

Expr Expr::lit(std::int64_t v) {
  auto n = std::make_shared<Node>();
  n->op = Op::kConst;
  n->value = v;
  return Expr(std::move(n));
}

Expr Expr::var(std::string name) {
  WCP_REQUIRE(!name.empty(), "variable name must be non-empty");
  auto n = std::make_shared<Node>();
  n->op = Op::kVar;
  n->name = std::move(name);
  return Expr(std::move(n));
}

Expr Expr::unary(Op op, Expr e) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(e.node_);
  return Expr(std::move(n));
}

Expr Expr::binary(Op op, Expr a, Expr b) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(a.node_);
  n->rhs = std::move(b.node_);
  return Expr(std::move(n));
}

Expr operator-(Expr e) { return Expr::unary(Op::kNeg, std::move(e)); }
Expr operator!(Expr e) { return Expr::unary(Op::kNot, std::move(e)); }
#define WCP_EXPR_BINOP(sym, op)                          \
  Expr operator sym(Expr a, Expr b) {                    \
    return Expr::binary(op, std::move(a), std::move(b)); \
  }
WCP_EXPR_BINOP(+, Op::kAdd)
WCP_EXPR_BINOP(-, Op::kSub)
WCP_EXPR_BINOP(*, Op::kMul)
WCP_EXPR_BINOP(<, Op::kLt)
WCP_EXPR_BINOP(<=, Op::kLe)
WCP_EXPR_BINOP(>, Op::kGt)
WCP_EXPR_BINOP(>=, Op::kGe)
WCP_EXPR_BINOP(==, Op::kEq)
WCP_EXPR_BINOP(!=, Op::kNe)
WCP_EXPR_BINOP(&&, Op::kAnd)
WCP_EXPR_BINOP(||, Op::kOr)
#undef WCP_EXPR_BINOP

std::int64_t Expr::eval(const Env& env) const {
  const Node& n = *node_;
  auto lhs = [&] { return Expr(n.lhs).eval(env); };
  auto rhs = [&] { return Expr(n.rhs).eval(env); };
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kVar: return env.get(n.name);
    case Op::kNeg: return -lhs();
    case Op::kNot: return lhs() == 0 ? 1 : 0;
    case Op::kAdd: return lhs() + rhs();
    case Op::kSub: return lhs() - rhs();
    case Op::kMul: return lhs() * rhs();
    case Op::kLt: return lhs() < rhs() ? 1 : 0;
    case Op::kLe: return lhs() <= rhs() ? 1 : 0;
    case Op::kGt: return lhs() > rhs() ? 1 : 0;
    case Op::kGe: return lhs() >= rhs() ? 1 : 0;
    case Op::kEq: return lhs() == rhs() ? 1 : 0;
    case Op::kNe: return lhs() != rhs() ? 1 : 0;
    // Both operands are always evaluated; expressions are side-effect-free
    // so short-circuiting is unobservable.
    case Op::kAnd: return (lhs() != 0) && (rhs() != 0) ? 1 : 0;
    case Op::kOr: return (lhs() != 0) || (rhs() != 0) ? 1 : 0;
  }
  WCP_CHECK_MSG(false, "corrupt expression node");
}

namespace {

const char* op_symbol(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    default: return "?";
  }
}

// Recursive-descent parser. Grammar (usual precedence):
//   or    := and ('||' and)*
//   and   := cmp ('&&' cmp)*
//   cmp   := sum (('<'|'<='|'>'|'>='|'=='|'!=') sum)?
//   sum   := term (('+'|'-') term)*
//   term  := factor ('*' factor)*
//   factor:= INT | IDENT | '(' or ')' | '!' factor | '-' factor
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expr parse() {
    Expr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream oss;
    oss << "predicate parse error at position " << pos_ << ": " << what
        << " in '" << std::string(text_) << "'";
    throw std::invalid_argument(oss.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])))
      ++pos_;
  }

  bool eat(std::string_view token) {
    skip_ws();
    if (text_.substr(pos_, token.size()) != token) return false;
    // Don't let '<' eat the prefix of '<=' etc.
    if ((token == "<" || token == ">") && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] == '=')
      return false;
    if (token == "!" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=')
      return false;
    pos_ += token.size();
    return true;
  }

  Expr parse_or() {
    Expr e = parse_and();
    while (eat("||")) e = std::move(e) || parse_and();
    return e;
  }

  Expr parse_and() {
    Expr e = parse_cmp();
    while (eat("&&")) e = std::move(e) && parse_cmp();
    return e;
  }

  Expr parse_cmp() {
    Expr e = parse_sum();
    if (eat("<=")) return std::move(e) <= parse_sum();
    if (eat(">=")) return std::move(e) >= parse_sum();
    if (eat("==")) return std::move(e) == parse_sum();
    if (eat("!=")) return std::move(e) != parse_sum();
    if (eat("<")) return std::move(e) < parse_sum();
    if (eat(">")) return std::move(e) > parse_sum();
    return e;
  }

  Expr parse_sum() {
    Expr e = parse_term();
    while (true) {
      if (eat("+")) {
        e = std::move(e) + parse_term();
      } else if (eat("-")) {
        e = std::move(e) - parse_term();
      } else {
        return e;
      }
    }
  }

  Expr parse_term() {
    Expr e = parse_factor();
    while (eat("*")) e = std::move(e) * parse_factor();
    return e;
  }

  Expr parse_factor() {
    skip_ws();
    if (eat("(")) {
      Expr e = parse_or();
      if (!eat(")")) fail("expected ')'");
      return e;
    }
    if (eat("!")) return !parse_factor();
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
      return -parse_factor();
    }
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        v = v * 10 + (text_[pos_++] - '0');
      return Expr::lit(v);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      return Expr::var(std::string(text_.substr(start, pos_ - start)));
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void print(std::ostream& os, const Expr& e);

}  // namespace

Expr Expr::parse(std::string_view text) { return Parser(text).parse(); }

std::string Expr::to_string() const {
  std::ostringstream oss;
  oss << *this;
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Expr& e) {
  // Fully parenthesized form (round-trips through parse()).
  struct Printer {
    static void print(std::ostream& os, const Expr& e) {
      const auto& n = *e.node_;
      switch (n.op) {
        case Op::kConst: os << n.value; return;
        case Op::kVar: os << n.name; return;
        case Op::kNeg:
          os << "(-";
          print(os, Expr(n.lhs));
          os << ')';
          return;
        case Op::kNot:
          os << "(!";
          print(os, Expr(n.lhs));
          os << ')';
          return;
        default:
          os << '(';
          print(os, Expr(n.lhs));
          os << ' ' << op_symbol(n.op) << ' ';
          print(os, Expr(n.rhs));
          os << ')';
          return;
      }
    }
  };
  Printer::print(os, e);
  return os;
}

}  // namespace wcp::pred
