// Deterministic random number generation.
//
// All randomized workloads and latency models in this library draw from Rng
// so that every simulation run is reproducible from a single 64-bit seed.
// The engine is xoshiro256** (public-domain algorithm by Blackman & Vigna),
// chosen over std::mt19937_64 because its output sequence is identical
// across standard libraries, keeping recorded experiment outputs portable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace wcp {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Geometric-ish: number of failures before first success, capped.
  std::int64_t geometric(double p, std::int64_t cap);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Uniformly selects an index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-process streams).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace wcp
