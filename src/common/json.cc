#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace wcp::json {

// ---- Writer ---------------------------------------------------------------

void Writer::before_value() {
  if (stack_.empty()) {
    WCP_CHECK_MSG(!wrote_root_, "json::Writer: second root value");
    return;
  }
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    // Inside an object a bare value is only legal right after key().
    WCP_CHECK_MSG(key_pending_, "json::Writer: object member without a key");
    key_pending_ = false;
    return;
  }
  if (top.count++ > 0) os_ << ',';
  if (indent_ > 0) {
    os_ << '\n';
    for (std::size_t i = 0; i < depth() * static_cast<std::size_t>(indent_); ++i)
      os_ << ' ';
  }
}

Writer& Writer::key(std::string_view k) {
  WCP_CHECK_MSG(!stack_.empty() && stack_.back().scope == Scope::kObject,
                "json::Writer: key() outside an object");
  WCP_CHECK_MSG(!key_pending_, "json::Writer: two keys in a row");
  Frame& top = stack_.back();
  if (top.count++ > 0) os_ << ',';
  if (indent_ > 0) {
    os_ << '\n';
    for (std::size_t i = 0; i < depth() * static_cast<std::size_t>(indent_); ++i)
      os_ << ' ';
  }
  write_escaped(k);
  os_ << (indent_ > 0 ? ": " : ":");
  key_pending_ = true;
  return *this;
}

void Writer::open(Scope s, char c) {
  before_value();
  os_ << c;
  stack_.push_back(Frame{s});
}

void Writer::close(Scope s, char c) {
  WCP_CHECK_MSG(!stack_.empty() && stack_.back().scope == s,
                "json::Writer: mismatched container close");
  WCP_CHECK_MSG(!key_pending_, "json::Writer: dangling key at close");
  const std::size_t members = stack_.back().count;
  stack_.pop_back();
  if (indent_ > 0 && members > 0) {
    os_ << '\n';
    for (std::size_t i = 0; i < depth() * static_cast<std::size_t>(indent_); ++i)
      os_ << ' ';
  }
  os_ << c;
  if (stack_.empty()) wrote_root_ = true;
}

Writer& Writer::begin_object() { open(Scope::kObject, '{'); return *this; }
Writer& Writer::end_object() { close(Scope::kObject, '}'); return *this; }
Writer& Writer::begin_array() { open(Scope::kArray, '['); return *this; }
Writer& Writer::end_array() { close(Scope::kArray, ']'); return *this; }

Writer& Writer::value(std::nullptr_t) {
  before_value();
  os_ << "null";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  WCP_CHECK(ec == std::errc());
  os_.write(buf, end - buf);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  WCP_CHECK(ec == std::errc());
  os_.write(buf, end - buf);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    ++nonfinite_clamped_;
  } else if (v == std::floor(v) && std::abs(v) <= 9007199254740992.0) {
    // Exactly representable integer: print without exponent notation so
    // counters that passed through double (1e5 cuts, ...) stay grep-able
    // and re-parse as kInt. 2^53 bounds the exactly-representable range.
    char buf[24];
    auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<std::int64_t>(v));
    WCP_CHECK(ec == std::errc());
    os_.write(buf, end - buf);
  } else {
    // Shortest round-trip representation: deterministic across runs, exact
    // on re-parse — the property the byte-identical-report guarantee needs.
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    WCP_CHECK(ec == std::errc());
    os_.write(buf, end - buf);
  }
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  before_value();
  write_escaped(v);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

Writer& Writer::raw(std::string_view rendered) {
  before_value();
  os_ << rendered;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

void Writer::write_escaped(std::string_view s) {
  os_ << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\b': os_ << "\\b"; break;
      case '\f': os_ << "\\f"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << static_cast<char>(c);  // UTF-8 passes through
        }
    }
  }
  os_ << '"';
}

// ---- Value ----------------------------------------------------------------

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::as_number() const {
  if (kind == Kind::kInt) return static_cast<double>(integer);
  if (kind == Kind::kDouble) return number;
  return 0.0;
}

bool Value::erase(std::string_view key) {
  if (kind != Kind::kObject) return false;
  for (auto it = object.begin(); it != object.end(); ++it) {
    if (it->first == key) {
      object.erase(it);
      return true;
    }
  }
  return false;
}

void Value::write(Writer& w) const {
  switch (kind) {
    case Kind::kNull: w.value(nullptr); break;
    case Kind::kBool: w.value(boolean); break;
    case Kind::kInt: w.value(integer); break;
    case Kind::kDouble: w.value(number); break;
    case Kind::kString: w.value(std::string_view(string)); break;
    case Kind::kArray:
      w.begin_array();
      for (const Value& v : array) v.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : object) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

std::string Value::dump(int indent) const {
  std::ostringstream oss;
  Writer w(oss, indent);
  write(w);
  return oss.str();
}

// ---- parse ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_lit(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.string);
      case 't': out.kind = Value::Kind::kBool; out.boolean = true;
                return consume_lit("true");
      case 'f': out.kind = Value::Kind::kBool; out.boolean = false;
                return consume_lit("false");
      case 'n': out.kind = Value::Kind::kNull; return consume_lit("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (eof()) return false;
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return false;
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported:
          // the reports this parser consumes never emit them).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9'))) ++pos_;
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return false;
    if (integral) {
      auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), out.integer);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out.kind = Value::Kind::kInt;
        return true;
      }
      // Out-of-range integer: fall through to double.
    }
    auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out.number);
    if (ec != std::errc() || p != tok.data() + tok.size()) return false;
    out.kind = Value::Kind::kDouble;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace wcp::json
