#include "common/logging.h"

#include <iostream>

namespace wcp {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  const char* tag = "";
  switch (level) {
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kTrace: tag = "T"; break;
    case LogLevel::kOff: return;
  }
  std::cerr << "[wcp:" << tag << "] " << msg << '\n';
}

}  // namespace wcp
