// Fixed-size work-stealing thread pool — the parallel execution substrate
// for the offline detectors (level-parallel lattice BFS, parallel slice
// construction, batch sweeps).
//
// Design goals, in order:
//   1. Determinism: every collective operation merges results in submission
//      order, regardless of completion order, so parallel detectors can be
//      bit-identical to their serial counterparts.
//   2. No deadlock under nesting: the calling thread always participates in
//      its own parallel_for, so a collective completes even when every
//      worker is busy with outer-level work (help-first scheduling).
//   3. threads == 1 degenerates to plain serial execution on the calling
//      thread — the serial path IS the one-thread special case.
//
// Each worker owns a deque; submit() round-robins tasks across them, the
// owner pops from the back (LIFO, cache-friendly), and idle workers steal
// from the fronts of other queues. parallel_for additionally distributes
// chunks through a shared atomic cursor, which is itself a form of
// work stealing at chunk granularity.
//
// Pool size resolution: an explicit constructor argument wins; 0 defers to
// default_threads(), which honors the WCP_THREADS environment variable and
// falls back to std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace wcp::common {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Pool-wide parallelism including the calling thread: `threads` lanes
  /// total, i.e. `threads - 1` spawned workers. 0 = default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (spawned workers + the calling thread); >= 1.
  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// WCP_THREADS env var if set, else hardware_concurrency() (else 1). The
  /// process-wide default for `threads = 0` everywhere. A set-but-invalid
  /// WCP_THREADS (non-numeric, trailing garbage, or < 1) throws
  /// std::invalid_argument instead of silently falling back — a typo in
  /// the variable must not quietly change the thread count.
  static std::size_t default_threads();

  /// Fire-and-forget task; runs on some worker (or inline when the pool
  /// has no workers). Safe to call from inside pool tasks (nested
  /// submission): the task is queued, never run synchronously on the
  /// submitting thread.
  void submit(Task task);

  /// Runs body(begin, end) over disjoint chunks covering [0, n), blocking
  /// until every chunk completed. The calling thread participates, so this
  /// never deadlocks even when nested inside another parallel_for. The
  /// first exception (by chunk order) is rethrown after all chunks finish.
  /// `grain` = max chunk width; 0 picks n / (8 * lanes), clamped to >= 1.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 0);

  /// Element-wise map with deterministic output: out[i] = fn(i), computed
  /// in parallel, returned in index (submission) order. T must be default-
  /// constructible and movable.
  template <typename T>
  std::vector<T> parallel_map(std::size_t n,
                              const std::function<T(std::size_t)>& fn,
                              std::size_t grain = 0) {
    std::vector<T> out(n);
    parallel_for(
        n,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
        },
        grain);
    return out;
  }

  /// Chunked reduction with deterministic merge order: each chunk folds its
  /// indices into a chunk-local accumulator (seeded from `init`), and the
  /// partials are merged left-to-right in chunk order — so the result is
  /// independent of which thread ran which chunk.
  template <typename T>
  T parallel_reduce(std::size_t n, T init,
                    const std::function<void(T&, std::size_t)>& fold,
                    const std::function<void(T&, T&)>& merge,
                    std::size_t grain = 0) {
    if (n == 0) return init;
    const std::size_t g = resolve_grain(n, grain);
    const std::size_t chunks = (n + g - 1) / g;
    std::vector<T> partial(chunks, init);
    parallel_for(
        n,
        [&](std::size_t b, std::size_t e) {
          T& acc = partial[b / g];
          for (std::size_t i = b; i < e; ++i) fold(acc, i);
        },
        g);
    T out = std::move(partial[0]);
    for (std::size_t c = 1; c < chunks; ++c) merge(out, partial[c]);
    return out;
  }

 private:
  [[nodiscard]] std::size_t resolve_grain(std::size_t n,
                                          std::size_t grain) const;
  void worker_loop(std::size_t self);
  /// Pops a task: own queue back first, then steal from other fronts.
  bool try_pop(std::size_t self, Task& out);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Task>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  bool stop_ = false;
};

/// Work-stealing frontier for the barrier-free lattice exploration engine
/// (detect/lattice.cc): per-lane deques of 32-bit work items (cut handles),
/// steal-half load balancing, and idle-detection termination — the lb.c
/// scheme from ltsmin, layered on the ThreadPool (each lane is one
/// parallel_for chunk driving run_lane).
///
/// Item accounting: a global in-flight counter is incremented *before* an
/// item becomes visible in any deque and decremented only *after* its
/// processing completed (including any items it pushed). A lane that finds
/// every deque empty exits only when the counter reads zero — at which
/// point no item exists and none can appear, because only processing
/// creates items. There is no barrier anywhere on the hot path: lanes push,
/// pop, and steal fully independently.
///
/// Quiesce rendezvous: a lane that needs a globally-exclusive operation
/// (growing the lock-free table) calls quiesce(fn) from inside its
/// process() callback. Every active lane parks at the rendezvous between
/// items; the last arriver runs fn and releases the round. Concurrent
/// requests coalesce into one round (fn runs once; callers re-check their
/// condition after). Termination cannot race the rendezvous: the
/// requester's in-flight item is not yet decremented, so the counter stays
/// positive and no lane can exit mid-round.
class WorkFrontier {
 public:
  explicit WorkFrontier(std::size_t lanes);

  WorkFrontier(const WorkFrontier&) = delete;
  WorkFrontier& operator=(const WorkFrontier&) = delete;

  [[nodiscard]] std::size_t lanes() const { return deques_.size(); }

  /// Pre-run seeding (single-threaded): enqueue `item` on lane 0.
  void seed(std::uint32_t item);

  /// Publishes a batch of new items to the lane's own deque. Called from
  /// inside process(); one lock round-trip amortized over the whole batch.
  void push_batch(std::size_t lane, std::span<const std::uint32_t> items);

  /// Lane main loop: pops (own back, LIFO) or steals (front half of a
  /// victim), runs process(item), until global quiescence. Call once per
  /// lane, one lane per thread (a ThreadPool::parallel_for over lanes with
  /// grain 1).
  void run_lane(std::size_t lane,
                const std::function<void(std::uint32_t)>& process);

  /// Globally-exclusive section, callable only from inside process(): all
  /// active lanes rendezvous, exactly one runs `fn`, all resume. Multiple
  /// concurrent requests coalesce — the caller must re-check whether its
  /// reason for quiescing still holds and, if so, call again.
  void quiesce(const std::function<void()>& fn);

  /// Successful steal operations (quiescent read).
  [[nodiscard]] std::int64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Deque {
    std::mutex m;
    std::vector<std::uint32_t> q;          // guarded by m
    std::vector<std::uint32_t> steal_buf;  // scratch of the OWNER as thief
  };

  bool try_pop(std::size_t lane, std::uint32_t& out);
  bool try_steal(std::size_t lane, std::uint32_t& out);
  /// Arrive at an open rendezvous round (or return if none); the last
  /// arriver runs the round's fn. Called with the flag observed set.
  void park();
  /// Runs the round (caller holds qm_ and was the last arriver).
  void complete();

  std::vector<Deque> deques_;
  std::atomic<std::int64_t> pending_{0};  // items visible or in processing
  std::atomic<std::int64_t> steals_{0};

  // Rendezvous state, guarded by qm_. quiesce_flag_ is the lock-free hint
  // lanes poll between items.
  std::atomic<bool> quiesce_flag_{false};
  std::mutex qm_;
  std::condition_variable qcv_;
  const std::function<void()>* round_fn_ = nullptr;
  bool round_open_ = false;
  std::size_t active_ = 0;   // lanes currently inside run_lane
  std::size_t arrived_ = 0;  // lanes parked at the current round
  std::uint64_t round_gen_ = 0;
};

}  // namespace wcp::common
