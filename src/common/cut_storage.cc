#include "common/cut_storage.h"

#include <algorithm>

#include "common/error.h"

namespace wcp {

// ---- CutArena --------------------------------------------------------------

void CutArena::note_capacity() {
  if (data_.capacity() != last_capacity_) {
    if (data_.capacity() > 0) ++growths_;
    last_capacity_ = data_.capacity();
    peak_bytes_ = std::max(
        peak_bytes_,
        static_cast<std::int64_t>(last_capacity_ * sizeof(std::uint32_t)));
  }
}

void CutArena::grow_for_push() {
  if (data_.size() + width_ <= data_.capacity()) return;
  std::size_t cap = data_.capacity() + data_.capacity() / 2;
  cap = std::max({cap, data_.size() + width_, std::size_t{64}});
  data_.reserve(cap);
}

CutHandle CutArena::push(std::span<const StateIndex> cut) {
  WCP_REQUIRE(cut.size() == width_, "cut width mismatch");
  const std::size_t h = size();
  WCP_REQUIRE(h < kNoCut, "cut arena handle space exhausted");
  grow_for_push();
  for (StateIndex k : cut) {
    WCP_REQUIRE(k >= 0 && k < static_cast<StateIndex>(kNoCut),
                "cut component does not pack to 32 bits");
    data_.push_back(static_cast<std::uint32_t>(k));
  }
  note_capacity();
  return static_cast<CutHandle>(h);
}

CutHandle CutArena::push_packed(std::span<const std::uint32_t> cut) {
  WCP_REQUIRE(cut.size() == width_, "cut width mismatch");
  const std::size_t h = size();
  WCP_REQUIRE(h < kNoCut, "cut arena handle space exhausted");
  grow_for_push();
  data_.insert(data_.end(), cut.begin(), cut.end());
  note_capacity();
  return static_cast<CutHandle>(h);
}

void CutArena::resize(std::size_t cuts) {
  data_.assign(cuts * width_, 0);
  note_capacity();
}

void CutArena::reserve(std::size_t cuts) {
  data_.reserve(cuts * width_);
  note_capacity();
}

void CutArena::copy_to(CutHandle h, std::vector<StateIndex>& out) const {
  const auto c = get(h);
  out.resize(width_);
  for (std::size_t i = 0; i < width_; ++i)
    out[i] = static_cast<StateIndex>(c[i]);
}

std::vector<StateIndex> CutArena::materialize(CutHandle h) const {
  std::vector<StateIndex> out;
  copy_to(h, out);
  return out;
}

// ---- CutTable --------------------------------------------------------------

namespace {

constexpr std::size_t kMinSlots = 16;

bool equal_logical(std::span<const std::uint32_t> stored,
                   std::span<const StateIndex> cut) {
  for (std::size_t i = 0; i < stored.size(); ++i)
    if (static_cast<StateIndex>(stored[i]) != cut[i]) return false;
  return true;
}

bool equal_packed(std::span<const std::uint32_t> stored,
                  std::span<const std::uint32_t> cut) {
  return std::equal(stored.begin(), stored.end(), cut.begin());
}

}  // namespace

template <typename Eq>
std::size_t CutTable::probe(std::size_t hash, const Eq& equals) const {
  const std::size_t mask = slots_.size() - 1;
  const auto lo = static_cast<std::uint32_t>(hash);
  std::size_t idx = hash & mask;
  for (;;) {
    ++probes_;
    const Slot& s = slots_[idx];
    if (s.handle == kNoCut) return idx;                     // empty: absent
    if (s.hash == lo && equals(s.handle)) return idx;       // found
    idx = (idx + 1) & mask;
  }
}

void CutTable::grow() {
  const std::size_t cap = slots_.empty() ? kMinSlots : slots_.size() * 2;
  // Placement below is computed from the stored low-32 hash bits; that
  // equals full-hash placement only while the mask fits in 32 bits. The
  // arena's 32-bit handle space runs out in the same decade, so this is a
  // capacity bound, not a practical limit.
  WCP_REQUIRE(cap <= (std::size_t{1} << 32),
              "cut table slot space exhausted");
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{0, kNoCut});
  ++growths_;
  peak_bytes_ =
      std::max(peak_bytes_, static_cast<std::int64_t>(cap * sizeof(Slot)));
  const std::size_t mask = cap - 1;
  for (const Slot& s : old) {
    if (s.handle == kNoCut) continue;
    std::size_t idx = s.hash & mask;
    while (slots_[idx].handle != kNoCut) idx = (idx + 1) & mask;
    slots_[idx] = s;
  }
}

CutTable::Result CutTable::intern(CutArena& arena,
                                  std::span<const StateIndex> cut,
                                  std::size_t hash) {
  if ((count_ + 1) * 10 >= slots_.size() * 7) grow();
  const std::size_t idx = probe(
      hash, [&](CutHandle h) { return equal_logical(arena.get(h), cut); });
  if (slots_[idx].handle != kNoCut) return {slots_[idx].handle, false};
  const CutHandle h = arena.push(cut);
  slots_[idx] = Slot{static_cast<std::uint32_t>(hash), h};
  ++count_;
  return {h, true};
}

CutTable::Result CutTable::intern_packed(CutArena& arena,
                                         std::span<const std::uint32_t> cut,
                                         std::size_t hash) {
  if ((count_ + 1) * 10 >= slots_.size() * 7) grow();
  const std::size_t idx = probe(
      hash, [&](CutHandle h) { return equal_packed(arena.get(h), cut); });
  if (slots_[idx].handle != kNoCut) return {slots_[idx].handle, false};
  const CutHandle h = arena.push_packed(cut);
  slots_[idx] = Slot{static_cast<std::uint32_t>(hash), h};
  ++count_;
  return {h, true};
}

CutHandle CutTable::find(const CutArena& arena,
                         std::span<const StateIndex> cut,
                         std::size_t hash) const {
  if (slots_.empty()) return kNoCut;
  const std::size_t idx = probe(
      hash, [&](CutHandle h) { return equal_logical(arena.get(h), cut); });
  return slots_[idx].handle;
}

// ---- SegmentedCutStore ------------------------------------------------------

SegmentedCutStore::Block::Block(std::size_t width, std::size_t cap)
    : cuts(width),
      hash(cap),
      level(cap),
      false_count(cap),
      expanded(cap, 0),
      succ(cap * width) {
  // Fixed-capacity arena: all cap slots exist up front and are written in
  // place via slot(), so the backing buffer never reallocates — the
  // no-moved-cuts guarantee the acquire/release block publication needs.
  cuts.resize(cap);
}

SegmentedCutStore::SegmentedCutStore(std::size_t width, std::size_t lanes)
    : width_(width), lanes_(lanes) {
  WCP_REQUIRE(width >= 1, "segmented cut store needs width >= 1");
  WCP_REQUIRE(lanes >= 1 && lanes <= kMaxLanes,
              "segmented cut store lanes out of range: " << lanes);
}

SegmentedCutStore::~SegmentedCutStore() {
  for (Lane& lane : lanes_)
    for (auto& b : lane.blocks)
      delete b.load(std::memory_order_relaxed);
}

SegmentedCutStore::Block& SegmentedCutStore::ensure_block(std::size_t lane,
                                                          std::size_t blk) {
  auto& slot = lanes_[lane].blocks[blk];
  Block* b = slot.load(std::memory_order_acquire);
  if (b != nullptr) return *b;
  // Only the owner lane stages into its segment, so block creation is
  // single-threaded per slot; the release store publishes the fully
  // constructed block to readers.
  const std::size_t cap = block_cap(blk);
  b = new Block(width_, cap);
  // Per cut: packed components + successor array (width u32 each), 8-byte
  // hash, 4-byte level, 1-byte false_count, 1-byte expanded flag.
  const std::size_t per_cut = 2 * width_ * sizeof(std::uint32_t) +
                              sizeof(std::uint64_t) + sizeof(std::uint32_t) + 2;
  bytes_.fetch_add(static_cast<std::int64_t>(cap * per_cut),
                   std::memory_order_relaxed);
  block_allocs_.fetch_add(1, std::memory_order_relaxed);
  slot.store(b, std::memory_order_release);
  return *b;
}

CutHandle SegmentedCutStore::stage(std::size_t lane,
                                   std::span<const std::uint32_t> cut,
                                   std::uint64_t hash, std::uint32_t level,
                                   std::uint8_t false_count) {
  Lane& L = lanes_[lane];
  const std::size_t local = L.count;
  // Strict < so the packed handle can never equal kNoCut, even at lane 63.
  WCP_REQUIRE(local < (std::size_t{1} << kLocalBits) - 1,
              "segmented cut store lane segment exhausted");
  const std::size_t blk = block_of(local);
  Block& b = ensure_block(lane, blk);
  const std::size_t off = local - block_first(blk);
  const auto dst = b.cuts.slot(static_cast<CutHandle>(off));
  std::copy(cut.begin(), cut.end(), dst.begin());
  b.hash[off] = hash;
  b.level[off] = level;
  b.false_count[off] = false_count;
  return static_cast<CutHandle>((lane << kLocalBits) | local);
}

std::size_t SegmentedCutStore::total_cuts() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.count;
  return total;
}

void SegmentedCutStore::add_stats(CutStorageStats& s) const {
  // Blocks are never freed during a run, so allocated == peak.
  s.peak_bytes += bytes_.load(std::memory_order_relaxed);
  s.cuts_interned += static_cast<std::int64_t>(total_cuts());
  s.heap_allocs += block_allocs_.load(std::memory_order_relaxed);
}

std::vector<StateIndex> SegmentedCutStore::materialize(CutHandle h) const {
  const auto c = cut(h);
  std::vector<StateIndex> out(width_);
  for (std::size_t i = 0; i < width_; ++i)
    out[i] = static_cast<StateIndex>(c[i]);
  return out;
}

}  // namespace wcp
