#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/error.h"

namespace wcp::common {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("WCP_THREADS"); env && *env) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    WCP_REQUIRE(end != env && *end == '\0' && errno == 0 && v >= 1,
                "WCP_THREADS must be a positive integer, got \"" << env
                                                                 << "\"");
    return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  const std::size_t spawned = threads - 1;
  queues_.resize(spawned);
  workers_.reserve(spawned);
  for (std::size_t w = 0; w < spawned; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(Task task) {
  WCP_CHECK_MSG(task != nullptr, "ThreadPool::submit: empty task");
  if (workers_.empty()) {
    // Serial pool: run inline. Collectives never reach this path (they only
    // enqueue helpers when workers exist), so inline execution here cannot
    // recurse into a blocking wait.
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Caller holds mu_. Own queue back (LIFO) first, then steal the front of
  // the first non-empty victim, scanning from the next queue over.
  auto& own = queues_[self];
  if (!own.empty()) {
    out = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    auto& victim = queues_[(self + d) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return try_pop(self, task) || stop_; });
      if (!task) return;  // stop_ with every queue drained
    }
    task();  // exceptions are the collective's job to capture; a bare
             // submit() task must not throw (enforced by callers)
  }
}

std::size_t ThreadPool::resolve_grain(std::size_t n, std::size_t grain) const {
  if (grain > 0) return grain;
  // ~8 chunks per lane: coarse enough to amortize dispatch, fine enough
  // that one slow chunk cannot serialize the tail.
  const std::size_t g = n / (8 * num_threads());
  return std::max<std::size_t>(g, 1);
}

namespace {

/// Shared state of one parallel_for collective. Heap-allocated and held by
/// shared_ptr so helper tasks that dequeue after the collective already
/// completed (their chunks were claimed by faster lanes) find it alive.
struct ForJob {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t chunks_done = 0;  // guarded by m
  std::exception_ptr error;     // guarded by m; smallest-chunk exception wins
  std::size_t error_chunk = 0;  // guarded by m

  /// Claims and runs chunks until the cursor runs dry.
  void run_chunks() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t b = c * grain;
      const std::size_t e = std::min(n, b + grain);
      std::exception_ptr err;
      try {
        (*body)(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(m);
      if (err && (!error || c < error_chunk)) {
        error = err;
        error_chunk = c;
      }
      if (++chunks_done == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t g = resolve_grain(n, grain);
  const std::size_t chunks = (n + g - 1) / g;

  if (workers_.empty() || chunks == 1) {
    // Serial special case: identical iteration order, no pool involvement.
    for (std::size_t b = 0; b < n; b += g) body(b, std::min(n, b + g));
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->n = n;
  job->grain = g;
  job->num_chunks = chunks;
  job->body = &body;

  // One helper per lane that could usefully join; the calling thread is the
  // final participant and guarantees progress even if no helper ever runs.
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    submit([job] { job->run_chunks(); });
  job->run_chunks();

  std::unique_lock lock(job->m);
  job->done_cv.wait(lock, [&] { return job->chunks_done == job->num_chunks; });
  if (job->error) std::rethrow_exception(job->error);
}

// ---- WorkFrontier ----------------------------------------------------------

WorkFrontier::WorkFrontier(std::size_t lanes) : deques_(lanes) {
  WCP_CHECK_MSG(lanes >= 1, "WorkFrontier needs >= 1 lane");
}

void WorkFrontier::seed(std::uint32_t item) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lk(deques_[0].m);
  deques_[0].q.push_back(item);
}

void WorkFrontier::push_batch(std::size_t lane,
                              std::span<const std::uint32_t> items) {
  if (items.empty()) return;
  // The counter rises before the items become visible: a lane can only
  // observe pending_ == 0 after every pushed item was fully processed.
  pending_.fetch_add(static_cast<std::int64_t>(items.size()),
                     std::memory_order_relaxed);
  std::lock_guard lk(deques_[lane].m);
  deques_[lane].q.insert(deques_[lane].q.end(), items.begin(), items.end());
}

bool WorkFrontier::try_pop(std::size_t lane, std::uint32_t& out) {
  Deque& d = deques_[lane];
  std::lock_guard lk(d.m);
  if (d.q.empty()) return false;
  out = d.q.back();
  d.q.pop_back();
  return true;
}

bool WorkFrontier::try_steal(std::size_t lane, std::uint32_t& out) {
  const std::size_t count = deques_.size();
  auto& buf = deques_[lane].steal_buf;  // thief-owned scratch, no lock
  for (std::size_t d = 1; d < count; ++d) {
    Deque& victim = deques_[(lane + d) % count];
    {
      std::unique_lock lk(victim.m, std::try_to_lock);
      if (!lk.owns_lock() || victim.q.empty()) continue;
      // Steal the front half: the oldest items, i.e. the shallowest lattice
      // levels — the widest subtrees, so one steal amortizes many pops.
      const std::size_t k = (victim.q.size() + 1) / 2;
      buf.assign(victim.q.begin(),
                 victim.q.begin() + static_cast<std::ptrdiff_t>(k));
      victim.q.erase(victim.q.begin(),
                     victim.q.begin() + static_cast<std::ptrdiff_t>(k));
    }
    out = buf.front();
    if (buf.size() > 1) {
      std::lock_guard ok(deques_[lane].m);
      deques_[lane].q.insert(deques_[lane].q.end(), buf.begin() + 1,
                             buf.end());
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkFrontier::complete() {
  // Caller holds qm_ and is the round's last arriver: every other
  // registered lane is parked in qcv_.wait or blocked on qm_ itself, so fn
  // runs globally exclusive.
  (*round_fn_)();
  round_fn_ = nullptr;
  round_open_ = false;
  quiesce_flag_.store(false, std::memory_order_relaxed);
  arrived_ = 0;
  ++round_gen_;
  qcv_.notify_all();
}

void WorkFrontier::park() {
  std::unique_lock lk(qm_);
  if (!round_open_) return;  // round completed before we got here
  const std::uint64_t gen = round_gen_;
  if (++arrived_ == active_)
    complete();
  else
    qcv_.wait(lk, [&] { return round_gen_ != gen; });
}

void WorkFrontier::quiesce(const std::function<void()>& fn) {
  std::unique_lock lk(qm_);
  if (!round_open_) {
    round_open_ = true;
    round_fn_ = &fn;
    quiesce_flag_.store(true, std::memory_order_relaxed);
  }
  // else: coalesce into the in-flight round — its fn runs, ours does not;
  // the caller re-checks its condition and quiesces again if still needed.
  const std::uint64_t gen = round_gen_;
  if (++arrived_ == active_)
    complete();
  else
    qcv_.wait(lk, [&] { return round_gen_ != gen; });
}

void WorkFrontier::run_lane(
    std::size_t lane, const std::function<void(std::uint32_t)>& process) {
  {
    std::lock_guard lk(qm_);
    ++active_;
  }
  std::uint32_t item = 0;
  for (;;) {
    if (quiesce_flag_.load(std::memory_order_relaxed)) park();
    if (try_pop(lane, item) || try_steal(lane, item)) {
      process(item);
      pending_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::yield();
  }
  // Exit can never race an open round: a round implies some lane is inside
  // process() with its item still counted, so pending_ was nonzero above.
  std::lock_guard lk(qm_);
  --active_;
}

}  // namespace wcp::common
