#include "common/types.h"

#include <ostream>

namespace wcp {

std::ostream& operator<<(std::ostream& os, ProcessId id) {
  return os << 'P' << id.value();
}

std::ostream& operator<<(std::ostream& os, Color c) {
  return os << (c == Color::kRed ? "red" : "green");
}

}  // namespace wcp
