#include "common/rng.h"

#include <cmath>

namespace wcp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used to expand the single seed into engine state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur from splitmix64 in practice, but
  // cheap to guarantee).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WCP_REQUIRE(lo <= hi, "uniform_int(" << lo << ", " << hi << ")");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::int64_t Rng::geometric(double p, std::int64_t cap) {
  WCP_REQUIRE(p > 0.0 && p <= 1.0, "geometric(p=" << p << ")");
  std::int64_t count = 0;
  while (count < cap && !bernoulli(p)) ++count;
  return count;
}

double Rng::exponential(double mean) {
  WCP_REQUIRE(mean > 0.0, "exponential(mean=" << mean << ")");
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t size) {
  WCP_REQUIRE(size > 0, "index of empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::split() {
  Rng child(next() ^ 0xd1b54a32d192ed03ULL);
  return child;
}

}  // namespace wcp
