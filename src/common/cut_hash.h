// FNV-1a hash over the components of a global-state cut.
//
// The one shared definition of the cut hash used by every detector that
// keys hash containers on cuts (lattice BFS visited sets, slice quotient
// interning, sharded parallel frontiers, the flat CutTable). Sharing one
// definition matters for the parallel detectors: the visited shards are
// partitioned by this hash, and the serial/parallel equivalence argument
// leans on every layer agreeing on it.
//
// All overloads hash the *logical* component values, so a cut stored as
// packed 32-bit components (common/cut_storage.h) hashes identically to
// the same cut held in a std::vector<StateIndex> — shard assignment is
// representation-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace wcp {

/// Zobrist-style incremental cut hash: h(cut) = XOR over slots of a mixed
/// per-(slot, value) key, so advancing one component updates the hash in
/// O(1) (XOR out the old key, XOR in the new one) instead of rehashing all
/// N components. The keys are computed on the fly with a splitmix64-style
/// finalizer rather than looked up in a pre-filled table — the mix is a few
/// cycles and keeps the hash a pure function of the cut (no shared table to
/// initialize or share across threads).
///
/// This is the hash of the lock-free concurrent engine (detect/lattice.cc,
/// common/lockfree_table.h). It deliberately differs from CutHash below:
/// the concurrent table is not shard-partitioned, so nothing requires the
/// two definitions to agree — the serial-replay oracle compares *results*,
/// not hash values.
struct ZobristCutHash {
  /// Mixed 64-bit key of (slot, value). Values are packed 32-bit cut
  /// components, slots are < 2^32, so the pair packs injectively into the
  /// finalizer input.
  [[nodiscard]] static std::uint64_t entry(std::size_t slot,
                                           std::uint32_t value) noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(slot) << 32) | value;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::uint64_t operator()(
      std::span<const std::uint32_t> cut) const noexcept {
    std::uint64_t h = 0;
    for (std::size_t s = 0; s < cut.size(); ++s) h ^= entry(s, cut[s]);
    return h;
  }
  [[nodiscard]] std::uint64_t operator()(
      std::span<const StateIndex> cut) const noexcept {
    std::uint64_t h = 0;
    for (std::size_t s = 0; s < cut.size(); ++s)
      h ^= entry(s, static_cast<std::uint32_t>(cut[s]));
    return h;
  }

  /// Hash of the cut that differs from one hashing `h` only at `slot`,
  /// where component `from` became `to`. O(1); XOR self-inverse makes
  /// advance(advance(h, s, a, b), s, b, a) == h (undo).
  [[nodiscard]] static std::uint64_t advance(std::uint64_t h, std::size_t slot,
                                             std::uint32_t from,
                                             std::uint32_t to) noexcept {
    return h ^ entry(slot, from) ^ entry(slot, to);
  }
};

struct CutHash {
  std::size_t operator()(std::span<const StateIndex> cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (StateIndex k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  /// Packed cuts (CutArena storage): component values are non-negative and
  /// < 2^32, so the widening cast reproduces the StateIndex hash exactly.
  std::size_t operator()(std::span<const std::uint32_t> cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  std::size_t operator()(const std::vector<StateIndex>& cut) const noexcept {
    return (*this)(std::span<const StateIndex>(cut));
  }
};

}  // namespace wcp
