// FNV-1a hash over the components of a global-state cut.
//
// The one shared definition of the cut hash used by every detector that
// keys hash containers on cuts (lattice BFS visited sets, slice quotient
// interning, sharded parallel frontiers, the flat CutTable). Sharing one
// definition matters for the parallel detectors: the visited shards are
// partitioned by this hash, and the serial/parallel equivalence argument
// leans on every layer agreeing on it.
//
// All overloads hash the *logical* component values, so a cut stored as
// packed 32-bit components (common/cut_storage.h) hashes identically to
// the same cut held in a std::vector<StateIndex> — shard assignment is
// representation-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace wcp {

struct CutHash {
  std::size_t operator()(std::span<const StateIndex> cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (StateIndex k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  /// Packed cuts (CutArena storage): component values are non-negative and
  /// < 2^32, so the widening cast reproduces the StateIndex hash exactly.
  std::size_t operator()(std::span<const std::uint32_t> cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
  std::size_t operator()(const std::vector<StateIndex>& cut) const noexcept {
    return (*this)(std::span<const StateIndex>(cut));
  }
};

}  // namespace wcp
