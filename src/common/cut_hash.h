// FNV-1a hash over the components of a global-state cut.
//
// The one shared definition of the cut hash used by every detector that
// keys hash containers on cuts (lattice BFS visited sets, slice quotient
// interning, sharded parallel frontiers). Sharing one definition matters
// for the parallel detectors: the visited shards are partitioned by this
// hash, and the serial/parallel equivalence argument leans on every layer
// agreeing on it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace wcp {

struct CutHash {
  std::size_t operator()(const std::vector<StateIndex>& cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (StateIndex k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace wcp
