// Minimal leveled logging used by examples and debugging runs.
//
// Off by default; tests and benches keep it silent. Not thread-safe by
// design: the simulator is single-threaded and deterministic.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace wcp {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level <= level_; }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
};

}  // namespace wcp

#define WCP_LOG(level, stream_expr)                                     \
  do {                                                                  \
    if (::wcp::Logger::instance().enabled(level)) {                     \
      std::ostringstream wcp_log_oss__;                                 \
      wcp_log_oss__ << stream_expr;                                     \
      ::wcp::Logger::instance().write(level, wcp_log_oss__.str());      \
    }                                                                   \
  } while (0)

#define WCP_INFO(stream_expr) WCP_LOG(::wcp::LogLevel::kInfo, stream_expr)
#define WCP_DEBUG(stream_expr) WCP_LOG(::wcp::LogLevel::kDebug, stream_expr)
#define WCP_TRACE(stream_expr) WCP_LOG(::wcp::LogLevel::kTrace, stream_expr)
