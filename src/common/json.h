// Minimal dependency-free JSON support for run reports.
//
// The observability layer (metrics export, bench summaries, `wcp_cli
// --json`) needs machine-readable output without pulling in an external
// JSON library. Two pieces:
//   - json::Writer: streaming serializer with deterministic formatting
//     (shortest round-trip doubles via std::to_chars), so identical runs
//     produce byte-identical reports;
//   - json::Value + json::parse: a small recursive-descent parser used by
//     the bench reporter to merge BENCH_summary.json across binaries and by
//     tests to validate emitted reports.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wcp::json {

/// Streaming JSON serializer. Commas, key/value alternation and nesting are
/// managed internally; misuse (e.g. a bare value inside an object without a
/// preceding key) throws via WCP_CHECK. `indent > 0` pretty-prints; 0 emits
/// a single compact line.
class Writer {
 public:
  explicit Writer(std::ostream& os, int indent = 2) : os_(os), indent_(indent) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by exactly one value/container.
  Writer& key(std::string_view k);

  Writer& value(std::nullptr_t);
  Writer& value(bool v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(double v);
  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }

  /// Splice pre-rendered JSON as one value (caller guarantees validity).
  Writer& raw(std::string_view rendered);

  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once every opened container has been closed.
  [[nodiscard]] bool complete() const { return depth() == 0 && wrote_root_; }

  /// Number of non-finite doubles (NaN/±Inf) clamped to `null` so far.
  /// JSON has no representation for them, so value(double) substitutes
  /// null rather than emitting an unparseable token; a nonzero count
  /// means some metric upstream produced garbage worth investigating.
  [[nodiscard]] std::int64_t nonfinite_clamped() const {
    return nonfinite_clamped_;
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    std::size_t count = 0;
  };

  [[nodiscard]] std::size_t depth() const { return stack_.size(); }
  void before_value();   // comma / newline / indent bookkeeping
  void open(Scope s, char c);
  void close(Scope s, char c);
  void write_escaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
  bool wrote_root_ = false;
  std::int64_t nonfinite_clamped_ = 0;
};

/// Parsed JSON document. Integers that fit std::int64_t stay exact
/// (kind == kInt); all other numbers are doubles.
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Members in document order (reports rely on stable ordering).
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }

  /// Member lookup (objects only); nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Numeric value as double (kInt or kDouble; 0 otherwise).
  [[nodiscard]] double as_number() const;

  /// Remove a member (objects only); returns true if it was present.
  bool erase(std::string_view key);

  /// Re-serialize with the same deterministic formatting as Writer.
  void write(Writer& w) const;
  [[nodiscard]] std::string dump(int indent = 2) const;
};

/// Parses a complete JSON document; std::nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace wcp::json
