#include "common/lockfree_table.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace wcp {

LockFreeCutTable::LockFreeCutTable(std::size_t lanes,
                                   std::size_t initial_slots)
    : slots_(std::bit_ceil(std::max<std::size_t>(initial_slots, 16))),
      lane_counters_(lanes) {
  WCP_REQUIRE(lanes >= 1, "lock-free cut table needs >= 1 lane");
  for (auto& s : slots_) s.store(kEmptySlot, std::memory_order_relaxed);
  peak_bytes_ = static_cast<std::int64_t>(slots_.size() * sizeof(slots_[0]));
}

LockFreeCutTable::Result LockFreeCutTable::intern(
    std::size_t lane, SegmentedCutStore& store,
    std::span<const std::uint32_t> cut, std::uint64_t hash,
    std::uint32_t level, std::uint8_t false_count) {
  if (needs_grow()) return {kNoCut, Outcome::kTableFull};

  const std::size_t mask = slots_.size() - 1;
  const auto tag = static_cast<std::uint32_t>(hash);
  std::size_t idx = hash & mask;
  CutHandle staged = kNoCut;
  std::int64_t probes = 0;
  // The load-factor gate keeps chains short; a full sweep of the table is
  // the pathological-clustering safety net, not an expected path.
  const std::size_t probe_limit = slots_.size();

  for (std::size_t step = 0; step <= probe_limit; ++step) {
    ++probes;
    std::uint64_t cur = slots_[idx].load(std::memory_order_acquire);
    if (cur == kEmptySlot) {
      if (staged == kNoCut)
        staged = store.stage(lane, cut, hash, level, false_count);
      if (slots_[idx].compare_exchange_strong(cur, pack(hash, staged),
                                              std::memory_order_release,
                                              std::memory_order_acquire)) {
        store.publish(lane);
        count_.fetch_add(1, std::memory_order_relaxed);
        lane_counters_[lane].probes += probes;
        return {staged, Outcome::kInserted};
      }
      // Lost the claim; `cur` now holds the winner — fall through to the
      // match check, exactly as if the load had seen it occupied.
    }
    const auto other = static_cast<CutHandle>(cur);
    if (static_cast<std::uint32_t>(cur >> 32) == tag &&
        store.hash(other) == hash &&
        std::equal(cut.begin(), cut.end(), store.cut(other).begin())) {
      if (staged != kNoCut) store.unstage(lane);
      lane_counters_[lane].probes += probes;
      return {other, Outcome::kFound};
    }
    idx = (idx + 1) & mask;
  }
  if (staged != kNoCut) store.unstage(lane);
  lane_counters_[lane].probes += probes;
  return {kNoCut, Outcome::kTableFull};
}

void LockFreeCutTable::grow(const SegmentedCutStore& store) {
  const std::size_t cap = slots_.size() * 2;
  WCP_REQUIRE(cap <= (std::size_t{1} << 32),
              "lock-free cut table slot space exhausted");
  std::vector<std::atomic<std::uint64_t>> fresh(cap);
  for (auto& s : fresh) s.store(kEmptySlot, std::memory_order_relaxed);
  const std::size_t mask = cap - 1;
  for (auto& s : slots_) {
    const std::uint64_t v = s.load(std::memory_order_relaxed);
    if (v == kEmptySlot) continue;
    // Placement by the full per-cut hash, not the 32-bit tag: the doubled
    // mask may consume bits the tag dropped.
    std::size_t idx = store.hash(static_cast<CutHandle>(v)) & mask;
    while (fresh[idx].load(std::memory_order_relaxed) != kEmptySlot)
      idx = (idx + 1) & mask;
    fresh[idx].store(v, std::memory_order_relaxed);
  }
  slots_ = std::move(fresh);
  ++growths_;
  peak_bytes_ = std::max(
      peak_bytes_, static_cast<std::int64_t>(cap * sizeof(slots_[0])));
}

std::int64_t LockFreeCutTable::probes() const {
  std::int64_t total = 0;
  for (const LaneCounters& c : lane_counters_) total += c.probes;
  return total;
}

}  // namespace wcp
