#include "common/byte_source.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define WCP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WCP_HAVE_MMAP 0
#endif

namespace wcp {

namespace {

constexpr std::size_t kWordBytes = sizeof(std::uint64_t);

std::size_t words_for(std::size_t byte_size) {
  return (byte_size + kWordBytes - 1) / kWordBytes;
}

}  // namespace

OwnedBytes::OwnedBytes(std::vector<std::uint64_t> words, std::size_t byte_size,
                       std::string name)
    : words_(std::move(words)) {
  WCP_CHECK_MSG(byte_size <= words_.size() * kWordBytes,
                "OwnedBytes size " << byte_size << " exceeds buffer of "
                                   << words_.size() << " words");
  bytes_ = std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(words_.data()), byte_size);
  name_ = std::move(name);
}

MappedFile::MappedFile(void* addr, std::size_t len, std::string name)
    : addr_(addr), len_(len) {
  bytes_ = std::span<const std::byte>(static_cast<const std::byte*>(addr_),
                                      len_);
  name_ = std::move(name);
}

MappedFile::~MappedFile() {
#if WCP_HAVE_MMAP
  if (addr_ != nullptr) ::munmap(addr_, len_);
#endif
}

#if WCP_HAVE_MMAP
void MappedFile::advise_sequential() const {
  ::madvise(addr_, len_, MADV_SEQUENTIAL);
}

void MappedFile::advise_random() const { ::madvise(addr_, len_, MADV_RANDOM); }

void MappedFile::drop_resident() const {
  ::madvise(addr_, len_, MADV_DONTNEED);
}
#else
void MappedFile::advise_sequential() const {}
void MappedFile::advise_random() const {}
void MappedFile::drop_resident() const {}
#endif

std::shared_ptr<const MappedFile> MappedFile::try_map(const std::string& path) {
#if WCP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  WCP_REQUIRE(fd >= 0, "cannot open '" << path << "' for reading");
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return nullptr;  // pipe, device, directory, or empty: not mappable
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (addr == MAP_FAILED) return nullptr;
  return std::shared_ptr<const MappedFile>(new MappedFile(addr, len, path));
#else
  (void)path;
  return nullptr;
#endif
}

std::shared_ptr<const ByteSource> ByteSource::map_file(
    const std::string& path) {
#if WCP_HAVE_MMAP
  if (auto mapped = MappedFile::try_map(path)) return mapped;
#endif
  std::ifstream f(path, std::ios::binary);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for reading");
  return read_stream(f, path);
}

std::shared_ptr<const ByteSource> ByteSource::read_stream(std::istream& is,
                                                          std::string name) {
  std::vector<std::uint64_t> words;
  std::size_t byte_size = 0;
  constexpr std::size_t kChunkBytes = 1 << 20;
  for (;;) {
    if (words.size() * kWordBytes < byte_size + kChunkBytes) {
      words.resize(words_for(byte_size + kChunkBytes));
    }
    is.read(reinterpret_cast<char*>(words.data()) + byte_size,
            static_cast<std::streamsize>(kChunkBytes));
    byte_size += static_cast<std::size_t>(is.gcount());
    if (is.gcount() == 0 || !is.good()) break;
  }
  return std::make_shared<const OwnedBytes>(std::move(words), byte_size,
                                            std::move(name));
}

std::shared_ptr<const ByteSource> ByteSource::from_bytes(std::string_view data,
                                                         std::string name) {
  std::vector<std::uint64_t> words(words_for(data.size()), 0);
  if (!data.empty()) std::memcpy(words.data(), data.data(), data.size());
  return std::make_shared<const OwnedBytes>(std::move(words), data.size(),
                                            std::move(name));
}

ByteSourceStream::Buf::Buf(std::span<const std::byte> bytes) {
  // The stream is read-only; std::streambuf's get-area API regrettably
  // wants non-const pointers, but we never expose a put area.
  auto* begin =
      const_cast<char*>(reinterpret_cast<const char*>(bytes.data()));
  setg(begin, begin, begin + bytes.size());
}

ByteSourceStream::ByteSourceStream(const ByteSource& src)
    : std::istream(nullptr), buf_(src.bytes()) {
  rdbuf(&buf_);
}

}  // namespace wcp
