// Lockless open-addressing cut-interning table — the dedup half of the
// lock-free exploration engine (the storage half is SegmentedCutStore in
// common/cut_storage.h).
//
// ltsmin-style (dbs-ll) design: a flat power-of-two array of 8-byte slots,
// each an atomic {low-32 hash tag, CutHandle} pair, linear probing, and a
// single CAS as the publication point. The interning lane first *stages*
// the cut into its own store segment (plain writes, invisible to others),
// then CASes {tag, staged handle} into the first empty slot:
//   - CAS success (release) publishes the staged bytes — any lane that
//     acquires the slot value afterwards reads a fully written cut;
//   - CAS failure means another lane claimed the slot first; the failed
//     CAS re-reads the winner, and the loser either recognizes its own cut
//     (duplicate race: return the winner's handle, unstage) or probes on.
// Probing stops at the first empty slot, so the canonical position of a
// cut is serialized by the CAS — two lanes interning the same cut always
// contend on the same slot, and exactly one inserts.
//
// The table does not resize itself: when the load factor crosses the grow
// threshold (or a probe chain degenerates), intern() returns kTableFull
// and the caller is expected to rendezvous all lanes (WorkFrontier::
// quiesce) and call grow() from exactly one of them. Growth rehashes from
// the full 64-bit hashes stored per cut in the SegmentedCutStore, so the
// low-32 tags lose no placement information.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/cut_storage.h"

namespace wcp {

class LockFreeCutTable {
 public:
  enum class Outcome : std::uint8_t {
    kInserted,   ///< the cut was new; handle is the staged (now published) one
    kFound,      ///< an equal cut was already interned; handle is its handle
    kTableFull,  ///< no insert attempted: quiesce all lanes and call grow()
  };
  struct Result {
    CutHandle handle;
    Outcome outcome;
  };

  /// `lanes` sizes the per-lane probe counters; `initial_slots` is rounded
  /// up to a power of two.
  explicit LockFreeCutTable(std::size_t lanes,
                            std::size_t initial_slots = std::size_t{1} << 12);

  LockFreeCutTable(const LockFreeCutTable&) = delete;
  LockFreeCutTable& operator=(const LockFreeCutTable&) = delete;

  /// Interns `cut` (stage → CAS → publish against `store`, see file
  /// comment). Safe to call from any number of lanes concurrently; each
  /// lane must pass its own `lane` id.
  Result intern(std::size_t lane, SegmentedCutStore& store,
                std::span<const std::uint32_t> cut, std::uint64_t hash,
                std::uint32_t level, std::uint8_t false_count);

  /// True when the next intern() would report kTableFull on load factor.
  /// Lets a quiesce round skip the grow if a coalesced earlier round
  /// already performed it.
  [[nodiscard]] bool needs_grow() const {
    return (count_.load(std::memory_order_relaxed) + 1) * 10 >=
           slots_.size() * 7;
  }

  /// Doubles the slot array, re-placing entries by their full stored hash.
  /// MUST run single-threaded while every lane is quiesced (the caller's
  /// rendezvous provides the ordering that makes the relaxed rebuild safe).
  void grow(const SegmentedCutStore& store);

  /// Interned cuts. Exact at quiescence; a relaxed snapshot mid-run.
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  /// Total slot inspections across lanes (quiescent read).
  [[nodiscard]] std::int64_t probes() const;
  [[nodiscard]] std::int64_t growths() const { return growths_; }

  void add_stats(CutStorageStats& s) const {
    s.peak_bytes += peak_bytes_;
    s.table_probes += probes();
    s.heap_allocs += growths_;
  }

 private:
  /// Empty sentinel: a published slot's low 32 bits are a CutHandle, and
  /// SegmentedCutStore::stage guarantees handles never equal kNoCut, so
  /// all-ones is unambiguous.
  static constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

  static std::uint64_t pack(std::uint64_t hash, CutHandle h) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hash))
            << 32) |
           h;
  }

  struct alignas(64) LaneCounters {
    std::int64_t probes = 0;
  };

  std::vector<std::atomic<std::uint64_t>> slots_;
  std::atomic<std::size_t> count_{0};
  std::vector<LaneCounters> lane_counters_;
  std::int64_t peak_bytes_ = 0;  // updated at construction + grow (quiescent)
  std::int64_t growths_ = 0;
};

}  // namespace wcp
