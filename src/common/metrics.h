// Measurement counters for detection experiments.
//
// Every online detector runs on the simulator and accounts its costs here,
// so the complexity claims of §3.4 / §4.4 of the paper are *measured*:
//   - messages & bits sent, split by kind (snapshot / token / poll / reply),
//   - abstract "work units" (one unit per state comparison or list op),
//   - token hops,
//   - peak buffered snapshot bytes per monitor (space claim).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace wcp {

namespace json {
class Writer;
}  // namespace json

/// Classification of monitor-layer traffic, mirroring the paper's counting
/// argument (snapshots from application processes; token; polls; replies).
enum class MsgKind : std::uint8_t {
  kSnapshot = 0,
  kToken = 1,
  kPoll = 2,
  kPollReply = 3,
  kApplication = 4,
  kControl = 5,  // end-of-stream markers and other bookkeeping (extension)
};

inline constexpr std::size_t kNumMsgKinds = 6;

const char* to_string(MsgKind kind);

/// Per-process cost counters.
struct ProcessMetrics {
  std::int64_t messages_sent[kNumMsgKinds] = {};
  std::int64_t bits_sent[kNumMsgKinds] = {};
  std::int64_t work_units = 0;          ///< state comparisons + list ops
  std::int64_t snapshots_buffered = 0;  ///< currently queued snapshots
  std::int64_t peak_buffered_bytes = 0; ///< high-water mark of queue bytes
  std::int64_t buffered_bytes = 0;

  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] std::int64_t total_bits() const;

  /// One JSON object: per-kind message/bit counts plus work and buffering.
  void write_json(json::Writer& w) const;
};

/// Execution statistics of one simulator run (observability layer): event
/// loop totals, scheduler pressure, and delivered traffic per kind.
/// `wall_ms` is host wall-clock and therefore the ONE field excluded from
/// the determinism guarantee; everything else is a pure function of
/// (computation, seed, latency model).
struct RunStats {
  std::int64_t events_processed = 0;
  std::int64_t peak_queue_depth = 0;  ///< event-queue high-water mark
  std::int64_t packets_delivered[kNumMsgKinds] = {};
  double wall_ms = 0.0;               ///< host time inside the event loop

  [[nodiscard]] std::int64_t total_packets() const;

  void write_json(json::Writer& w, bool include_wall_clock = true) const;
};

/// Counters for the fault-injection layer and the reliable transport that
/// compensates for it (sim/fault.h, sim/reliable.h). All-zero on fault-free
/// runs; fully deterministic per (seed, fault plan) otherwise — wall-clock
/// is not involved anywhere.
struct FaultCounters {
  // Injected faults.
  std::int64_t drops_random = 0;     ///< Bernoulli per-transmission loss
  std::int64_t drops_burst = 0;      ///< lost inside a burst-loss window
  std::int64_t drops_partition = 0;  ///< lost across a partition
  std::int64_t drops_crash = 0;      ///< destination was down at delivery
  std::int64_t dups = 0;             ///< duplicated transmissions injected
  std::int64_t crashes = 0;          ///< crash events fired
  std::int64_t restarts = 0;         ///< restart events fired
  // Reliable-transport reactions.
  std::int64_t retransmits = 0;      ///< timeout-driven re-sends
  std::int64_t acks = 0;             ///< cumulative acks sent
  std::int64_t dup_suppressed = 0;   ///< duplicate frames discarded
  std::int64_t resequenced = 0;      ///< frames buffered out of order
  // Token recovery (detect/token_vc, detect/multi_token).
  std::int64_t token_regenerations = 0;  ///< tokens rebuilt after a lease expiry
  std::int64_t heartbeats = 0;           ///< holder heartbeats sent

  [[nodiscard]] std::int64_t total_drops() const {
    return drops_random + drops_burst + drops_partition + drops_crash;
  }
  [[nodiscard]] bool any() const;

  void merge(const FaultCounters& other);

  /// One flat JSON object (the `faults` block of wcp-run-report/1).
  void write_json(json::Writer& w) const;
};

/// Aggregated metrics for one detection run.
class Metrics {
 public:
  Metrics() = default;
  explicit Metrics(std::size_t num_processes) : per_process_(num_processes) {}

  void resize(std::size_t num_processes) { per_process_.resize(num_processes); }

  [[nodiscard]] std::size_t num_processes() const { return per_process_.size(); }

  ProcessMetrics& at(ProcessId p) { return per_process_.at(p.idx()); }
  const ProcessMetrics& at(ProcessId p) const { return per_process_.at(p.idx()); }

  void record_send(ProcessId from, MsgKind kind, std::int64_t bits);
  void add_work(ProcessId p, std::int64_t units);
  void buffer_change(ProcessId p, std::int64_t delta_bytes, std::int64_t delta_count);

  void bump_token_hops() { ++token_hops_; }
  [[nodiscard]] std::int64_t token_hops() const { return token_hops_; }

  [[nodiscard]] std::int64_t total_messages(MsgKind kind) const;
  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] std::int64_t total_bits(MsgKind kind) const;
  [[nodiscard]] std::int64_t total_bits() const;
  [[nodiscard]] std::int64_t total_work() const;
  [[nodiscard]] std::int64_t max_work_per_process() const;
  [[nodiscard]] std::int64_t max_peak_buffered_bytes() const;

  /// Merge another run's counters into this one (used by sweep harnesses).
  void merge(const Metrics& other);

  /// Human-readable one-run summary table.
  [[nodiscard]] std::string summary() const;

  /// One JSON object: totals per kind plus work/space aggregates; with
  /// `per_process`, also the full per-process counter breakdown.
  void write_json(json::Writer& w, bool per_process = false) const;

 private:
  std::vector<ProcessMetrics> per_process_;
  std::int64_t token_hops_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Metrics& m);

}  // namespace wcp
