#include "common/error.h"

namespace wcp::internal {

void fail_check(const char* cond, const char* file, int line,
                const std::string& msg) {
  std::ostringstream oss;
  oss << "invariant violation: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw InvariantViolation(oss.str());
}

void fail_require(const char* cond, const std::string& msg) {
  std::ostringstream oss;
  oss << "requirement failed: (" << cond << ")";
  if (!msg.empty()) oss << " — " << msg;
  throw std::invalid_argument(oss.str());
}

}  // namespace wcp::internal
