#include "common/metrics.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/json.h"

namespace wcp {

namespace {

/// `{"snapshot": c[0], ..., "total": sum}` for one per-kind counter array.
void write_kind_counts(json::Writer& w, const std::int64_t (&counts)[kNumMsgKinds],
                       std::int64_t total) {
  w.begin_object();
  for (std::size_t k = 0; k < kNumMsgKinds; ++k)
    w.field(to_string(static_cast<MsgKind>(k)), counts[k]);
  w.field("total", total);
  w.end_object();
}

}  // namespace

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kSnapshot: return "snapshot";
    case MsgKind::kToken: return "token";
    case MsgKind::kPoll: return "poll";
    case MsgKind::kPollReply: return "poll_reply";
    case MsgKind::kApplication: return "application";
    case MsgKind::kControl: return "control";
  }
  return "?";
}

std::int64_t ProcessMetrics::total_messages() const {
  return std::accumulate(std::begin(messages_sent), std::end(messages_sent),
                         std::int64_t{0});
}

std::int64_t ProcessMetrics::total_bits() const {
  return std::accumulate(std::begin(bits_sent), std::end(bits_sent),
                         std::int64_t{0});
}

void ProcessMetrics::write_json(json::Writer& w) const {
  w.begin_object();
  w.key("messages");
  write_kind_counts(w, messages_sent, total_messages());
  w.key("bits");
  write_kind_counts(w, bits_sent, total_bits());
  w.field("work_units", work_units);
  w.field("peak_buffered_bytes", peak_buffered_bytes);
  w.end_object();
}

std::int64_t RunStats::total_packets() const {
  return std::accumulate(std::begin(packets_delivered),
                         std::end(packets_delivered), std::int64_t{0});
}

void RunStats::write_json(json::Writer& w, bool include_wall_clock) const {
  w.begin_object();
  w.field("events_processed", events_processed);
  w.field("peak_queue_depth", peak_queue_depth);
  w.key("packets_delivered");
  write_kind_counts(w, packets_delivered, total_packets());
  if (include_wall_clock) w.field("wall_ms", wall_ms);
  w.end_object();
}

bool FaultCounters::any() const {
  return total_drops() + dups + crashes + restarts + retransmits + acks +
             dup_suppressed + resequenced + token_regenerations + heartbeats !=
         0;
}

void FaultCounters::merge(const FaultCounters& other) {
  drops_random += other.drops_random;
  drops_burst += other.drops_burst;
  drops_partition += other.drops_partition;
  drops_crash += other.drops_crash;
  dups += other.dups;
  crashes += other.crashes;
  restarts += other.restarts;
  retransmits += other.retransmits;
  acks += other.acks;
  dup_suppressed += other.dup_suppressed;
  resequenced += other.resequenced;
  token_regenerations += other.token_regenerations;
  heartbeats += other.heartbeats;
}

void FaultCounters::write_json(json::Writer& w) const {
  w.begin_object();
  w.field("drops_random", drops_random);
  w.field("drops_burst", drops_burst);
  w.field("drops_partition", drops_partition);
  w.field("drops_crash", drops_crash);
  w.field("drops_total", total_drops());
  w.field("dups", dups);
  w.field("crashes", crashes);
  w.field("restarts", restarts);
  w.field("retransmits", retransmits);
  w.field("acks", acks);
  w.field("dup_suppressed", dup_suppressed);
  w.field("resequenced", resequenced);
  w.field("token_regenerations", token_regenerations);
  w.field("heartbeats", heartbeats);
  w.end_object();
}

void Metrics::record_send(ProcessId from, MsgKind kind, std::int64_t bits) {
  auto& pm = at(from);
  ++pm.messages_sent[static_cast<std::size_t>(kind)];
  pm.bits_sent[static_cast<std::size_t>(kind)] += bits;
}

void Metrics::add_work(ProcessId p, std::int64_t units) {
  at(p).work_units += units;
}

void Metrics::buffer_change(ProcessId p, std::int64_t delta_bytes,
                            std::int64_t delta_count) {
  auto& pm = at(p);
  pm.buffered_bytes += delta_bytes;
  pm.snapshots_buffered += delta_count;
  WCP_CHECK(pm.buffered_bytes >= 0);
  pm.peak_buffered_bytes = std::max(pm.peak_buffered_bytes, pm.buffered_bytes);
}

std::int64_t Metrics::total_messages(MsgKind kind) const {
  std::int64_t sum = 0;
  for (const auto& pm : per_process_)
    sum += pm.messages_sent[static_cast<std::size_t>(kind)];
  return sum;
}

std::int64_t Metrics::total_messages() const {
  std::int64_t sum = 0;
  for (const auto& pm : per_process_) sum += pm.total_messages();
  return sum;
}

std::int64_t Metrics::total_bits(MsgKind kind) const {
  std::int64_t sum = 0;
  for (const auto& pm : per_process_)
    sum += pm.bits_sent[static_cast<std::size_t>(kind)];
  return sum;
}

std::int64_t Metrics::total_bits() const {
  std::int64_t sum = 0;
  for (const auto& pm : per_process_) sum += pm.total_bits();
  return sum;
}

std::int64_t Metrics::total_work() const {
  std::int64_t sum = 0;
  for (const auto& pm : per_process_) sum += pm.work_units;
  return sum;
}

std::int64_t Metrics::max_work_per_process() const {
  std::int64_t mx = 0;
  for (const auto& pm : per_process_) mx = std::max(mx, pm.work_units);
  return mx;
}

std::int64_t Metrics::max_peak_buffered_bytes() const {
  std::int64_t mx = 0;
  for (const auto& pm : per_process_) mx = std::max(mx, pm.peak_buffered_bytes);
  return mx;
}

void Metrics::merge(const Metrics& other) {
  if (per_process_.size() < other.per_process_.size())
    per_process_.resize(other.per_process_.size());
  for (std::size_t i = 0; i < other.per_process_.size(); ++i) {
    auto& dst = per_process_[i];
    const auto& src = other.per_process_[i];
    for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
      dst.messages_sent[k] += src.messages_sent[k];
      dst.bits_sent[k] += src.bits_sent[k];
    }
    dst.work_units += src.work_units;
    dst.peak_buffered_bytes =
        std::max(dst.peak_buffered_bytes, src.peak_buffered_bytes);
  }
  token_hops_ += other.token_hops_;
}

std::string Metrics::summary() const {
  std::ostringstream oss;
  oss << "messages=" << total_messages() << " (snapshot="
      << total_messages(MsgKind::kSnapshot)
      << " token=" << total_messages(MsgKind::kToken)
      << " poll=" << total_messages(MsgKind::kPoll)
      << " reply=" << total_messages(MsgKind::kPollReply) << ")"
      << " bits=" << total_bits() << " work=" << total_work()
      << " max_work/proc=" << max_work_per_process()
      << " token_hops=" << token_hops_
      << " peak_buf_bytes=" << max_peak_buffered_bytes();
  return oss.str();
}

void Metrics::write_json(json::Writer& w, bool per_process) const {
  std::int64_t messages[kNumMsgKinds];
  std::int64_t bits[kNumMsgKinds];
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    messages[k] = total_messages(static_cast<MsgKind>(k));
    bits[k] = total_bits(static_cast<MsgKind>(k));
  }
  w.begin_object();
  w.key("messages");
  write_kind_counts(w, messages, total_messages());
  w.key("bits");
  write_kind_counts(w, bits, total_bits());
  w.field("work_units", total_work());
  w.field("max_work_per_process", max_work_per_process());
  w.field("token_hops", token_hops_);
  w.field("peak_buffered_bytes", max_peak_buffered_bytes());
  if (per_process) {
    w.key("per_process");
    w.begin_array();
    for (const auto& pm : per_process_) pm.write_json(w);
    w.end_array();
  }
  w.end_object();
}

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  return os << m.summary();
}

}  // namespace wcp
