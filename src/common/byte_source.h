// Shared-ownership byte buffers for zero-copy file loading.
//
// A ByteSource is an immutable, contiguous run of bytes whose storage is
// either a live mmap of a regular file (MappedFile) or an owned, 8-byte-
// aligned heap buffer (OwnedBytes). Consumers parse straight out of
// bytes() and keep the shared_ptr alive for as long as any view into the
// buffer exists — the columnar trace store does exactly that, pointing its
// column spans into the mapping so a load never copies the file.
//
// map_file() prefers mmap and degrades gracefully: pipes, sockets, empty
// files, and platforms without mmap all fall back to a buffered read into
// an OwnedBytes. Callers never need to care which one they got, but can
// ask (mapped()) and can pass access-pattern hints (advise_*) that turn
// into madvise on a real mapping and into no-ops everywhere else.
//
// Alignment guarantee: bytes().data() is always at least 8-byte aligned
// (page-aligned for mappings, a std::uint64_t buffer for owned bytes), so
// a file format whose sections are 8-byte aligned can be reinterpreted as
// typed little-endian columns in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace wcp {

class ByteSource {
 public:
  virtual ~ByteSource() = default;
  ByteSource(const ByteSource&) = delete;
  ByteSource& operator=(const ByteSource&) = delete;

  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  /// True when the bytes alias a live file mapping (nothing was copied).
  [[nodiscard]] virtual bool mapped() const = 0;
  /// Where the bytes came from, for error messages ("<stream>" or a path).
  [[nodiscard]] const std::string& name() const { return name_; }

  // Access-pattern hints; madvise on a mapping, no-ops on owned bytes.
  virtual void advise_sequential() const {}
  virtual void advise_random() const {}
  /// Drop the resident pages of a mapping (madvise MADV_DONTNEED). The
  /// bytes stay valid — clean file-backed pages refault from the page
  /// cache on next touch — but the process's resident set shrinks back to
  /// O(1) in the file size. No-op on owned bytes (the heap can't be
  /// un-paid).
  virtual void drop_resident() const {}

  /// Maps `path` read-only; falls back to a buffered read when the file is
  /// not a regular mappable file (pipe, /dev/stdin, zero length) or mmap is
  /// unavailable. Throws std::invalid_argument when the file cannot be
  /// opened at all.
  static std::shared_ptr<const ByteSource> map_file(const std::string& path);

  /// Reads a (possibly non-seekable) stream to exhaustion into an owned
  /// aligned buffer.
  static std::shared_ptr<const ByteSource> read_stream(
      std::istream& is, std::string name = "<stream>");

  /// Copies `data` into an owned aligned buffer (tests, in-memory blobs).
  static std::shared_ptr<const ByteSource> from_bytes(
      std::string_view data, std::string name = "<memory>");

 protected:
  ByteSource() = default;

  std::span<const std::byte> bytes_;
  std::string name_;
};

/// ByteSource backed by an owned heap buffer of std::uint64_t words, so the
/// data pointer is 8-byte aligned like a mapping's.
class OwnedBytes final : public ByteSource {
 public:
  OwnedBytes(std::vector<std::uint64_t> words, std::size_t byte_size,
             std::string name);

  [[nodiscard]] bool mapped() const override { return false; }

 private:
  std::vector<std::uint64_t> words_;
};

/// ByteSource backed by a read-only private mmap of a regular file.
class MappedFile final : public ByteSource {
 public:
  ~MappedFile() override;

  [[nodiscard]] bool mapped() const override { return true; }
  void advise_sequential() const override;
  void advise_random() const override;
  void drop_resident() const override;

  /// nullptr when the path is not a mappable regular file (callers fall
  /// back to a buffered read); throws std::invalid_argument when the file
  /// cannot be opened.
  static std::shared_ptr<const MappedFile> try_map(const std::string& path);

 private:
  MappedFile(void* addr, std::size_t len, std::string name);

  void* addr_ = nullptr;
  std::size_t len_ = 0;
};

/// Read-only std::istream over a ByteSource, so text parsers can consume an
/// already-opened (possibly mapped) file without reopening or copying it.
class ByteSourceStream final : public std::istream {
 public:
  explicit ByteSourceStream(const ByteSource& src);

 private:
  class Buf final : public std::streambuf {
   public:
    explicit Buf(std::span<const std::byte> bytes);
  };

  Buf buf_;
};

}  // namespace wcp
