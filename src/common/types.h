// Core scalar types shared by every wcp module.
//
// Terminology follows Garg & Chase (ICDCS'95):
//   - N   : total number of application processes in the system.
//   - n   : number of processes over which the WCP is defined (n <= N).
//   - m   : maximum number of messages sent or received by any process.
//   - (i,k): the k-th local state on process P_i (k starts at 1; k == 0 is
//            the fictitious pre-initial state used by the token algorithms).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace wcp {

/// Strongly-typed process identifier. Values are dense indices 0..N-1 so a
/// ProcessId can directly index per-process arrays via idx().
class ProcessId {
 public:
  constexpr ProcessId() = default;
  constexpr explicit ProcessId(std::int32_t v) : v_(v) {}

  /// Numeric value; -1 for an invalid/unset id.
  [[nodiscard]] constexpr std::int32_t value() const { return v_; }
  /// Value as a size_t index into per-process containers.
  [[nodiscard]] constexpr std::size_t idx() const {
    return static_cast<std::size_t>(v_);
  }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }

  friend constexpr bool operator==(ProcessId, ProcessId) = default;
  friend constexpr auto operator<=>(ProcessId, ProcessId) = default;

  static constexpr ProcessId invalid() { return ProcessId{-1}; }

 private:
  std::int32_t v_ = -1;
};

std::ostream& operator<<(std::ostream& os, ProcessId id);

/// Index of a local state within one process: 1-based; 0 denotes the
/// pre-initial placeholder used to initialize candidate cuts.
using StateIndex = std::int64_t;

/// Scalar logical (Lamport-style) clock value used by the direct-dependence
/// algorithm. Starts at 1 and is incremented on every send/receive.
using LamportTime = std::int64_t;

/// Color of a candidate state in the token algorithms.
enum class Color : std::uint8_t { kRed, kGreen };

std::ostream& operator<<(std::ostream& os, Color c);

/// Virtual time in the discrete-event simulator (arbitrary units).
using SimTime = std::int64_t;

constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

}  // namespace wcp

template <>
struct std::hash<wcp::ProcessId> {
  std::size_t operator()(wcp::ProcessId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
