// Flat cut storage: a bump-allocated arena of fixed-width cuts plus an
// open-addressing hash set/map over arena handles.
//
// The offline detectors enumerate huge numbers of consistent cuts, and the
// pre-flat representation paid three heap blocks per distinct cut: the
// std::vector<StateIndex> buffer, the unordered_set node wrapping it, and
// (while queued) a second full copy in the BFS frontier. CutArena replaces
// all of that with one contiguous pool — cuts are appended back to back as
// packed 32-bit components and addressed by a dense 32-bit handle — and
// CutTable replaces the node-based sets/maps with a flat open-addressing
// probe array of {precomputed FNV hash, handle} slots. Because handles are
// dense insertion indices, any per-cut payload (BFS parent, slice group id)
// is a plain std::vector keyed by handle rather than a hash map.
//
// Determinism: the table stores the shared wcp::CutHash value (see
// common/cut_hash.h) and hashes the logical component values, so shard
// partitioning and first-insert-wins dedup semantics are exactly those of
// the old std::unordered_set<std::vector<StateIndex>, CutHash> containers.
// Components are packed to 32 bits losslessly (state indices are bounded
// by the per-process event count; push() checks the bound).
//
// Everything here is measured: both structures track a peak-bytes
// high-water mark, the number of capacity growths (heap allocations on the
// hot path), and the table counts slot probes — the counters behind the
// E17 storage bench and the `storage` block of the detector results.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace wcp {

/// Dense index of a cut inside a CutArena. 32 bits bound one arena at ~4.2
/// billion cuts — far past what any bounded exploration materializes.
using CutHandle = std::uint32_t;
inline constexpr CutHandle kNoCut = 0xFFFFFFFFu;

/// Storage accounting for one detector run (summed over every arena and
/// table the run used; sharded parallel runs sum their shards).
struct CutStorageStats {
  std::int64_t peak_bytes = 0;     ///< high-water mark of arena+table bytes
  std::int64_t cuts_interned = 0;  ///< distinct cuts held across all arenas
  std::int64_t table_probes = 0;   ///< open-addressing slot inspections
  std::int64_t heap_allocs = 0;    ///< capacity growths on the hot path

  void merge(const CutStorageStats& o) {
    peak_bytes += o.peak_bytes;
    cuts_interned += o.cuts_interned;
    table_probes += o.table_probes;
    heap_allocs += o.heap_allocs;
  }
};

/// Bump-allocated pool of fixed-width cuts. Handles are indices, so they
/// stay valid across growth; spans into the pool are invalidated by any
/// size-changing call, exactly like std::vector iterators.
class CutArena {
 public:
  CutArena() = default;
  explicit CutArena(std::size_t width) : width_(width) {}

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const {
    return width_ == 0 ? 0 : data_.size() / width_;
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Appends a copy of `cut`, packing components to 32 bits (checked).
  CutHandle push(std::span<const StateIndex> cut);
  /// Appends an already-packed cut (e.g. from another arena's slot).
  CutHandle push_packed(std::span<const std::uint32_t> cut);
  /// Appends `cuts` zero-filled slots (phase-A scratch: threads then write
  /// disjoint slots via slot()).
  void resize(std::size_t cuts);
  /// Grows capacity to `cuts` without changing size.
  void reserve(std::size_t cuts);

  [[nodiscard]] std::span<const std::uint32_t> get(CutHandle h) const {
    return {data_.data() + static_cast<std::size_t>(h) * width_, width_};
  }
  [[nodiscard]] std::span<std::uint32_t> slot(CutHandle h) {
    return {data_.data() + static_cast<std::size_t>(h) * width_, width_};
  }

  /// Widens cut `h` into `out` (resized to width, capacity reused).
  void copy_to(CutHandle h, std::vector<StateIndex>& out) const;
  [[nodiscard]] std::vector<StateIndex> materialize(CutHandle h) const;

  /// Drops every cut but keeps the capacity (per-level reset).
  void clear() { data_.clear(); }

  [[nodiscard]] std::int64_t bytes_in_use() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(std::uint32_t));
  }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::int64_t growths() const { return growths_; }

  void add_stats(CutStorageStats& s) const {
    s.peak_bytes += peak_bytes();
    s.cuts_interned += static_cast<std::int64_t>(size());
    s.heap_allocs += growths();
  }

 private:
  void note_capacity();
  /// Ensures room for one more cut, growing capacity by 1.5x (not the
  /// vector's 2x) — the arena IS the peak-memory number this layer exists
  /// to shrink, so the overshoot band is kept tight.
  void grow_for_push();

  std::size_t width_ = 0;
  std::vector<std::uint32_t> data_;
  std::size_t last_capacity_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t growths_ = 0;
};

/// Open-addressing (linear probing, power-of-two capacity) hash set of
/// arena handles with precomputed hashes. The caller supplies the
/// wcp::CutHash value, so dedup and shard partitioning agree bit-for-bit
/// with the node-based containers this replaces — and the test suite can
/// force collisions by lying about the hash.
class CutTable {
 public:
  struct Result {
    CutHandle handle;
    bool inserted;
  };

  /// Finds `cut`; on miss pushes it into `arena` and records the handle.
  Result intern(CutArena& arena, std::span<const StateIndex> cut,
                std::size_t hash);
  /// Same for an already-packed cut (parallel candidate slots).
  Result intern_packed(CutArena& arena, std::span<const std::uint32_t> cut,
                       std::size_t hash);

  /// Handle of `cut`, or kNoCut.
  [[nodiscard]] CutHandle find(const CutArena& arena,
                               std::span<const StateIndex> cut,
                               std::size_t hash) const;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::int64_t probes() const { return probes_; }
  [[nodiscard]] std::int64_t bytes_in_use() const {
    return static_cast<std::int64_t>(slots_.size() * sizeof(Slot));
  }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::int64_t growths() const { return growths_; }

  void add_stats(CutStorageStats& s) const {
    s.peak_bytes += peak_bytes();
    s.table_probes += probes();
    s.heap_allocs += growths();
  }

 private:
  /// 8 bytes per slot: the low 32 bits of the caller hash are enough both
  /// as the pre-equality filter and for placement on growth — the probe
  /// mask stays below 2^32 until the table would outgrow the 32-bit handle
  /// space anyway (grow() checks).
  struct Slot {
    std::uint32_t hash;
    CutHandle handle;
  };

  /// First slot index whose chain could hold `hash`; advances `idx` with
  /// linear probing. Returns kNoCut-slot index of the first empty slot when
  /// the cut is absent.
  template <typename Eq>
  [[nodiscard]] std::size_t probe(std::size_t hash, const Eq& equals) const;

  void grow();

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
  mutable std::int64_t probes_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t growths_ = 0;
};

/// Concurrently-readable cut store made of per-lane CutArena segments — the
/// storage half of the lock-free exploration engine (the dedup half is
/// common/lockfree_table.h).
///
/// Each lane (worker thread) appends cuts only to its own segment, so
/// writers never contend; any lane may read any published cut. A handle
/// packs (lane, local index); the local index is decomposed into a chain of
/// geometrically-growing blocks so a segment can grow without ever moving a
/// published cut — block pointers are published with a release store and
/// read with an acquire load, and the blocks themselves are fixed-capacity
/// CutArenas (reserved up front, never reallocated). Alongside the packed
/// components, each cut carries the per-cut state of the concurrent engine:
/// its 64-bit Zobrist hash (for table growth), lattice level, count of
/// predicate-false components (0 ⇔ the cut satisfies the WCP), an expanded
/// flag, and a width-sized successor-handle array filled by the lane that
/// expands the cut.
///
/// Publication protocol (one in-flight staged cut per lane):
///   1. stage(lane, ...) writes the cut and its metadata at the lane's next
///      local index WITHOUT advancing the count, and returns the handle the
///      cut will have if it wins;
///   2. the lock-free table CASes {hash, handle} into a slot — the release
///      CAS is what makes the staged bytes visible to other lanes (they
///      reach them only through an acquire read of the slot);
///   3. on CAS success the lane calls publish(lane) (count++); on loss the
///      staged bytes are simply overwritten by the next stage (unstage() is
///      a documentation no-op).
///
/// The successor array and expanded flag are written by the unique lane
/// that pops the cut from the work-stealing frontier (pop/steal hand-off is
/// mutex-protected, which orders those writes) and read only after the pool
/// join — the serial-replay pass runs single-threaded on quiescent data.
class SegmentedCutStore {
 public:
  static constexpr std::size_t kLaneBits = 6;
  static constexpr std::size_t kMaxLanes = std::size_t{1} << kLaneBits;
  static constexpr std::size_t kLocalBits = 32 - kLaneBits;
  static constexpr std::uint32_t kLocalMask =
      (std::uint32_t{1} << kLocalBits) - 1;

  SegmentedCutStore(std::size_t width, std::size_t lanes);
  ~SegmentedCutStore();

  SegmentedCutStore(const SegmentedCutStore&) = delete;
  SegmentedCutStore& operator=(const SegmentedCutStore&) = delete;

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  // -- owner-lane write protocol (stage → table CAS → publish/unstage) --

  /// Writes `cut` + metadata at lane's next local index; the cut is
  /// invisible to other lanes until a table CAS publishes its handle.
  CutHandle stage(std::size_t lane, std::span<const std::uint32_t> cut,
                  std::uint64_t hash, std::uint32_t level,
                  std::uint8_t false_count);
  /// Commits the staged cut (CAS won): the lane's next stage gets a fresh
  /// index.
  void publish(std::size_t lane) { ++lanes_[lane].count; }
  /// CAS lost: the staged bytes were never published; the next stage at
  /// this lane overwrites them. Kept as an explicit call so every stage is
  /// visibly paired with publish or unstage.
  void unstage(std::size_t /*lane*/) {}

  // -- cross-lane reads (handle must come from a published table slot) --

  [[nodiscard]] std::span<const std::uint32_t> cut(CutHandle h) const {
    std::size_t off;
    const Block& b = block_for(h, off);
    return b.cuts.get(static_cast<CutHandle>(off));
  }
  [[nodiscard]] std::uint64_t hash(CutHandle h) const {
    std::size_t off;
    return block_for(h, off).hash[off];
  }
  [[nodiscard]] std::uint32_t level(CutHandle h) const {
    std::size_t off;
    return block_for(h, off).level[off];
  }
  /// Number of components whose local predicate is false; 0 ⇔ satisfying.
  [[nodiscard]] std::uint8_t false_count(CutHandle h) const {
    std::size_t off;
    return block_for(h, off).false_count[off];
  }
  [[nodiscard]] bool satisfying(CutHandle h) const {
    return false_count(h) == 0;
  }

  // -- popper-owned per-cut state (one writer: the expanding lane) --

  /// Successor-handle array of `h`, width() entries in slot order (kNoCut
  /// where no consistent successor was recorded).
  [[nodiscard]] std::span<std::uint32_t> succ(CutHandle h) {
    std::size_t off;
    Block& b = block_for_mut(h, off);
    return {b.succ.data() + off * width_, width_};
  }
  [[nodiscard]] std::span<const std::uint32_t> succ(CutHandle h) const {
    std::size_t off;
    const Block& b = block_for(h, off);
    return {b.succ.data() + off * width_, width_};
  }
  void mark_expanded(CutHandle h) {
    std::size_t off;
    block_for_mut(h, off).expanded[off] = 1;
  }
  [[nodiscard]] bool expanded(CutHandle h) const {
    std::size_t off;
    return block_for(h, off).expanded[off] != 0;
  }

  // -- quiescent accessors (post-join, or pre-run) --

  /// Published cuts in one lane's segment.
  [[nodiscard]] std::size_t lane_count(std::size_t lane) const {
    return lanes_[lane].count;
  }
  [[nodiscard]] std::size_t total_cuts() const;
  [[nodiscard]] std::int64_t bytes_allocated() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  void add_stats(CutStorageStats& s) const;

  /// Widens cut `h` into a fresh vector (replay result materialization).
  [[nodiscard]] std::vector<StateIndex> materialize(CutHandle h) const;

 private:
  /// Geometric block chain: block b holds kSegBase << b cuts, so ~26 blocks
  /// cover the whole 2^26 per-lane handle space and a block pointer, once
  /// published, is immutable — readers never see a moved cut.
  static constexpr std::size_t kSegBase = 512;
  static constexpr std::size_t kMaxBlocks = 20;

  struct Block {
    Block(std::size_t width, std::size_t cap);
    CutArena cuts;                          // cap fixed slots, written via slot()
    std::vector<std::uint64_t> hash;        // full Zobrist hash (table growth)
    std::vector<std::uint32_t> level;       // lattice level (Σ components − n)
    std::vector<std::uint8_t> false_count;  // predicate-false component count
    std::vector<std::uint8_t> expanded;     // set by the expanding lane
    std::vector<std::uint32_t> succ;        // cap × width successor handles
  };

  struct alignas(64) Lane {
    std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
    std::size_t count = 0;  // published cuts; written only by the owner lane
  };

  [[nodiscard]] static std::size_t block_of(std::size_t local) {
    return static_cast<std::size_t>(std::bit_width(local / kSegBase + 1)) - 1;
  }
  [[nodiscard]] static std::size_t block_first(std::size_t b) {
    return kSegBase * ((std::size_t{1} << b) - 1);
  }
  [[nodiscard]] static std::size_t block_cap(std::size_t b) {
    return kSegBase << b;
  }

  [[nodiscard]] const Block& block_for(CutHandle h, std::size_t& off) const {
    const std::size_t local = h & kLocalMask;
    const std::size_t blk = block_of(local);
    off = local - block_first(blk);
    return *lanes_[h >> kLocalBits].blocks[blk].load(
        std::memory_order_acquire);
  }
  [[nodiscard]] Block& block_for_mut(CutHandle h, std::size_t& off) {
    const std::size_t local = h & kLocalMask;
    const std::size_t blk = block_of(local);
    off = local - block_first(blk);
    return *lanes_[h >> kLocalBits].blocks[blk].load(
        std::memory_order_acquire);
  }

  Block& ensure_block(std::size_t lane, std::size_t blk);

  std::size_t width_;
  std::vector<Lane> lanes_;
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> block_allocs_{0};
};

}  // namespace wcp
