// Flat cut storage: a bump-allocated arena of fixed-width cuts plus an
// open-addressing hash set/map over arena handles.
//
// The offline detectors enumerate huge numbers of consistent cuts, and the
// pre-flat representation paid three heap blocks per distinct cut: the
// std::vector<StateIndex> buffer, the unordered_set node wrapping it, and
// (while queued) a second full copy in the BFS frontier. CutArena replaces
// all of that with one contiguous pool — cuts are appended back to back as
// packed 32-bit components and addressed by a dense 32-bit handle — and
// CutTable replaces the node-based sets/maps with a flat open-addressing
// probe array of {precomputed FNV hash, handle} slots. Because handles are
// dense insertion indices, any per-cut payload (BFS parent, slice group id)
// is a plain std::vector keyed by handle rather than a hash map.
//
// Determinism: the table stores the shared wcp::CutHash value (see
// common/cut_hash.h) and hashes the logical component values, so shard
// partitioning and first-insert-wins dedup semantics are exactly those of
// the old std::unordered_set<std::vector<StateIndex>, CutHash> containers.
// Components are packed to 32 bits losslessly (state indices are bounded
// by the per-process event count; push() checks the bound).
//
// Everything here is measured: both structures track a peak-bytes
// high-water mark, the number of capacity growths (heap allocations on the
// hot path), and the table counts slot probes — the counters behind the
// E17 storage bench and the `storage` block of the detector results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace wcp {

/// Dense index of a cut inside a CutArena. 32 bits bound one arena at ~4.2
/// billion cuts — far past what any bounded exploration materializes.
using CutHandle = std::uint32_t;
inline constexpr CutHandle kNoCut = 0xFFFFFFFFu;

/// Storage accounting for one detector run (summed over every arena and
/// table the run used; sharded parallel runs sum their shards).
struct CutStorageStats {
  std::int64_t peak_bytes = 0;     ///< high-water mark of arena+table bytes
  std::int64_t cuts_interned = 0;  ///< distinct cuts held across all arenas
  std::int64_t table_probes = 0;   ///< open-addressing slot inspections
  std::int64_t heap_allocs = 0;    ///< capacity growths on the hot path

  void merge(const CutStorageStats& o) {
    peak_bytes += o.peak_bytes;
    cuts_interned += o.cuts_interned;
    table_probes += o.table_probes;
    heap_allocs += o.heap_allocs;
  }
};

/// Bump-allocated pool of fixed-width cuts. Handles are indices, so they
/// stay valid across growth; spans into the pool are invalidated by any
/// size-changing call, exactly like std::vector iterators.
class CutArena {
 public:
  CutArena() = default;
  explicit CutArena(std::size_t width) : width_(width) {}

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const {
    return width_ == 0 ? 0 : data_.size() / width_;
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Appends a copy of `cut`, packing components to 32 bits (checked).
  CutHandle push(std::span<const StateIndex> cut);
  /// Appends an already-packed cut (e.g. from another arena's slot).
  CutHandle push_packed(std::span<const std::uint32_t> cut);
  /// Appends `cuts` zero-filled slots (phase-A scratch: threads then write
  /// disjoint slots via slot()).
  void resize(std::size_t cuts);
  /// Grows capacity to `cuts` without changing size.
  void reserve(std::size_t cuts);

  [[nodiscard]] std::span<const std::uint32_t> get(CutHandle h) const {
    return {data_.data() + static_cast<std::size_t>(h) * width_, width_};
  }
  [[nodiscard]] std::span<std::uint32_t> slot(CutHandle h) {
    return {data_.data() + static_cast<std::size_t>(h) * width_, width_};
  }

  /// Widens cut `h` into `out` (resized to width, capacity reused).
  void copy_to(CutHandle h, std::vector<StateIndex>& out) const;
  [[nodiscard]] std::vector<StateIndex> materialize(CutHandle h) const;

  /// Drops every cut but keeps the capacity (per-level reset).
  void clear() { data_.clear(); }

  [[nodiscard]] std::int64_t bytes_in_use() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(std::uint32_t));
  }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::int64_t growths() const { return growths_; }

  void add_stats(CutStorageStats& s) const {
    s.peak_bytes += peak_bytes();
    s.cuts_interned += static_cast<std::int64_t>(size());
    s.heap_allocs += growths();
  }

 private:
  void note_capacity();
  /// Ensures room for one more cut, growing capacity by 1.5x (not the
  /// vector's 2x) — the arena IS the peak-memory number this layer exists
  /// to shrink, so the overshoot band is kept tight.
  void grow_for_push();

  std::size_t width_ = 0;
  std::vector<std::uint32_t> data_;
  std::size_t last_capacity_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t growths_ = 0;
};

/// Open-addressing (linear probing, power-of-two capacity) hash set of
/// arena handles with precomputed hashes. The caller supplies the
/// wcp::CutHash value, so dedup and shard partitioning agree bit-for-bit
/// with the node-based containers this replaces — and the test suite can
/// force collisions by lying about the hash.
class CutTable {
 public:
  struct Result {
    CutHandle handle;
    bool inserted;
  };

  /// Finds `cut`; on miss pushes it into `arena` and records the handle.
  Result intern(CutArena& arena, std::span<const StateIndex> cut,
                std::size_t hash);
  /// Same for an already-packed cut (parallel candidate slots).
  Result intern_packed(CutArena& arena, std::span<const std::uint32_t> cut,
                       std::size_t hash);

  /// Handle of `cut`, or kNoCut.
  [[nodiscard]] CutHandle find(const CutArena& arena,
                               std::span<const StateIndex> cut,
                               std::size_t hash) const;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::int64_t probes() const { return probes_; }
  [[nodiscard]] std::int64_t bytes_in_use() const {
    return static_cast<std::int64_t>(slots_.size() * sizeof(Slot));
  }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::int64_t growths() const { return growths_; }

  void add_stats(CutStorageStats& s) const {
    s.peak_bytes += peak_bytes();
    s.table_probes += probes();
    s.heap_allocs += growths();
  }

 private:
  /// 8 bytes per slot: the low 32 bits of the caller hash are enough both
  /// as the pre-equality filter and for placement on growth — the probe
  /// mask stays below 2^32 until the table would outgrow the 32-bit handle
  /// space anyway (grow() checks).
  struct Slot {
    std::uint32_t hash;
    CutHandle handle;
  };

  /// First slot index whose chain could hold `hash`; advances `idx` with
  /// linear probing. Returns kNoCut-slot index of the first empty slot when
  /// the cut is absent.
  template <typename Eq>
  [[nodiscard]] std::size_t probe(std::size_t hash, const Eq& equals) const;

  void grow();

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
  mutable std::int64_t probes_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t growths_ = 0;
};

}  // namespace wcp
