// Error handling helpers.
//
// Library invariants are checked with WCP_CHECK (always on) which throws
// InvariantViolation; user-facing argument validation throws
// std::invalid_argument via WCP_REQUIRE.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wcp {

/// Thrown when an internal invariant of a detection algorithm or substrate
/// is violated. Indicates a bug in this library, never user error.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void fail_check(const char* cond, const char* file, int line,
                             const std::string& msg);
[[noreturn]] void fail_require(const char* cond, const std::string& msg);
}  // namespace internal

}  // namespace wcp

/// Always-on invariant check; throws wcp::InvariantViolation on failure.
#define WCP_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond))                                                      \
      ::wcp::internal::fail_check(#cond, __FILE__, __LINE__, "");     \
  } while (0)

/// Invariant check with a streamed message: WCP_CHECK_MSG(x>0, "x=" << x).
#define WCP_CHECK_MSG(cond, stream_expr)                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream wcp_oss__;                                         \
      wcp_oss__ << stream_expr;                                             \
      ::wcp::internal::fail_check(#cond, __FILE__, __LINE__, wcp_oss__.str()); \
    }                                                                       \
  } while (0)

/// Precondition on user-supplied arguments; throws std::invalid_argument.
#define WCP_REQUIRE(cond, stream_expr)                        \
  do {                                                        \
    if (!(cond)) {                                            \
      std::ostringstream wcp_oss__;                           \
      wcp_oss__ << stream_expr;                               \
      ::wcp::internal::fail_require(#cond, wcp_oss__.str());  \
    }                                                         \
  } while (0)
