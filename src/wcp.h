// Umbrella header: the whole public API of the wcp library.
//
//   #include "wcp.h"
//
// Namespaces:
//   wcp         core model (Computation, VectorClock, ids, traces)
//   wcp::sim    deterministic message-passing simulator
//   wcp::app    application instrumentation (replay drivers, live
//               Instrument, snapshot formats)
//   wcp::pred   local-predicate expression language, variable traces
//   wcp::detect all detectors: token_vc / multi_token / direct_dep /
//               centralized / gcp(_online) / lattice / definitely /
//               boolean DNF / relational / chandy_lamport / offline /
//               lower_bound
//   wcp::workload  synthetic and domain workload generators
#pragma once

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"

#include "trace/computation.h"
#include "trace/diagram.h"
#include "trace/dot_export.h"
#include "trace/trace_io.h"

#include "sim/address.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"

#include "app/app_driver.h"
#include "app/instrument.h"
#include "app/snapshot.h"

#include "predicate/expr.h"
#include "predicate/program.h"

#include "detect/boolean.h"
#include "detect/centralized.h"
#include "detect/chandy_lamport.h"
#include "detect/direct_dep.h"
#include "detect/gcp.h"
#include "detect/gcp_online.h"
#include "detect/lattice.h"
#include "detect/lattice_online.h"
#include "detect/lower_bound.h"
#include "detect/multi_token.h"
#include "detect/offline.h"
#include "detect/relational.h"
#include "detect/result.h"
#include "detect/token_vc.h"

#include "workload/db_workload.h"
#include "workload/mutex_workload.h"
#include "workload/random_workload.h"
#include "workload/ring_workload.h"
#include "workload/termination_workload.h"
