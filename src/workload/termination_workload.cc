#include "workload/termination_workload.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace wcp::workload {

TerminationComputation make_termination(const TerminationSpec& spec) {
  WCP_REQUIRE(spec.num_processes >= 2, "need at least two processes");
  WCP_REQUIRE(spec.initial_work >= 0, "negative initial work");

  Rng rng(spec.seed);
  const std::size_t N = spec.num_processes;
  ComputationBuilder b(N);

  // Everyone is a predicate process; the local predicate is "passive".
  std::vector<ProcessId> procs;
  for (std::size_t p = 0; p < N; ++p) procs.emplace_back(static_cast<int>(p));
  b.set_predicate_processes(procs);

  std::vector<bool> active(N, false);
  TerminationComputation out;

  // All processes start passive...
  for (std::size_t p = 0; p < N; ++p)
    b.mark_pred(ProcessId(static_cast<int>(p)), true);
  // ...except P0, which is active and seeds the initial work.
  active[0] = true;
  b.mark_pred(ProcessId(0), false);
  for (std::int64_t i = 0; i < spec.initial_work; ++i) {
    const auto to = ProcessId(static_cast<int>(1 + rng.index(N - 1)));
    b.send(ProcessId(0), to);
    ++out.work_messages;
    // The post-send state is still active (pred false by default).
  }
  // P0 finishes its own work and goes passive.
  active[0] = false;
  b.mark_pred(ProcessId(0), true);

  // Diffusion loop: as long as anything is active or in flight.
  while (true) {
    // Gather enabled moves: receives (work in flight) and passivations.
    std::vector<std::size_t> receivers;
    for (std::size_t p = 0; p < N; ++p)
      if (b.in_flight_to(ProcessId(static_cast<int>(p))) > 0)
        receivers.push_back(p);
    std::vector<std::size_t> actives;
    for (std::size_t p = 0; p < N; ++p)
      if (active[p]) actives.push_back(p);

    if (receivers.empty() && actives.empty()) break;  // terminated

    // Prefer letting active processes act; otherwise deliver work.
    if (!actives.empty() && (receivers.empty() || rng.bernoulli(0.6))) {
      const auto p = ProcessId(
          static_cast<int>(actives[rng.index(actives.size())]));
      if (out.work_messages < spec.max_messages &&
          rng.bernoulli(spec.spawn_prob)) {
        auto to = ProcessId(static_cast<int>(rng.index(N)));
        if (to == p) to = ProcessId(static_cast<int>((p.idx() + 1) % N));
        b.send(p, to);
        ++out.work_messages;
        // still active in the new state
      } else {
        active[p.idx()] = false;
        b.mark_pred(p, true);  // the current state becomes passive
      }
    } else {
      const auto p = ProcessId(
          static_cast<int>(receivers[rng.index(receivers.size())]));
      const auto msg = b.next_in_flight_to(p);
      WCP_CHECK(msg.has_value());
      b.receive(*msg);          // reactivated: new state is active
      active[p.idx()] = true;   // (pred false by default)
    }
  }

  for (std::size_t p = 0; p < N; ++p)
    out.termination_cut.push_back(
        b.current_state(ProcessId(static_cast<int>(p))));
  out.computation = b.build();
  return out;
}

}  // namespace wcp::workload
