#include "workload/mutex_workload.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace wcp::workload {

MutexComputation make_mutex(const MutexSpec& spec) {
  WCP_REQUIRE(spec.num_clients >= 2, "mutex violation needs >= 2 clients");
  WCP_REQUIRE(spec.rounds_per_client >= 1, "need at least one round");

  Rng rng(spec.seed);
  const std::size_t k = spec.num_clients;
  const auto server = ProcessId(static_cast<int>(k));
  ComputationBuilder b(k + 1);

  std::vector<ProcessId> clients;
  for (std::size_t c = 0; c < k; ++c) clients.emplace_back(static_cast<int>(c));
  b.set_predicate_processes(clients);

  MutexComputation out;

  for (std::int64_t round = 0; round < spec.rounds_per_client; ++round) {
    // Every client requests the lock; the server sees the requests in a
    // random arrival order.
    std::vector<ProcessId> order = clients;
    rng.shuffle(order);
    std::vector<MessageId> requests;
    requests.reserve(k);
    for (ProcessId c : order) requests.push_back(b.send(c, server));
    for (MessageId m : requests) b.receive(m);

    const bool violate = spec.force_final_violation
                             ? round + 1 == spec.rounds_per_client
                             : rng.bernoulli(spec.violation_prob);
    if (violate) {
      out.violation_injected = true;
      // Buggy grant: the server hands the lock to every requester at once.
      // All grants are sent before any release is received, so the clients'
      // critical-section states are pairwise concurrent.
      std::vector<MessageId> grants;
      for (ProcessId c : order) grants.push_back(b.send(server, c));
      for (std::size_t i = 0; i < order.size(); ++i) {
        b.receive(grants[i]);
        b.mark_pred(order[i], true);  // in critical section
      }
      std::vector<MessageId> releases;
      for (ProcessId c : order) releases.push_back(b.send(c, server));
      for (MessageId m : releases) b.receive(m);
    } else {
      // Correct serialization: grant -> CS -> release, one client at a time.
      for (ProcessId c : order) {
        const MessageId grant = b.send(server, c);
        b.receive(grant);
        b.mark_pred(c, true);  // in critical section
        const MessageId release = b.send(c, server);
        b.receive(release);
      }
    }
  }

  out.computation = b.build();
  return out;
}

}  // namespace wcp::workload
