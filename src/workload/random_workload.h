// Synthetic random computations with tunable N, n, m, communication density
// and local-predicate truth probability. These drive the experiment sweeps
// of EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "trace/computation.h"

namespace wcp::workload {

struct RandomSpec {
  std::size_t num_processes = 8;       ///< N
  std::size_t num_predicate = 4;       ///< n (<= N)
  /// If true, the n predicate processes are a random subset; otherwise the
  /// first n processes.
  bool random_predicate_subset = false;
  /// Target number of communication events (sends + receives) per process;
  /// approximately the paper's m.
  std::int64_t events_per_process = 20;
  /// Probability that a freshly entered state satisfies the local predicate
  /// (predicate processes only).
  double local_pred_prob = 0.25;
  /// Probability of preferring a pending receive over a new send.
  double recv_bias = 0.6;
  /// Probability that a message still in flight at the end of generation is
  /// delivered during the final drain (1.0 = deliver everything).
  double drain_prob = 1.0;
  /// Force the WCP to hold at the end of the run: the final state of every
  /// predicate process is marked true (final states are always mutually
  /// concurrent, so the computation is guaranteed detectable).
  bool ensure_detectable = false;
  std::uint64_t seed = 42;
};

Computation make_random(const RandomSpec& spec);

}  // namespace wcp::workload
