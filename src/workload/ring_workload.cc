#include "workload/ring_workload.h"

#include "common/error.h"

namespace wcp::workload {

RingComputation make_ring(const RingSpec& spec) {
  const std::size_t N = spec.num_processes;
  WCP_REQUIRE(N >= 2, "ring needs at least two processes");
  WCP_REQUIRE(spec.laps >= 1, "need at least one lap");
  const std::int64_t hops = spec.laps * static_cast<std::int64_t>(N);
  WCP_REQUIRE(spec.duplicate_at_hop < hops,
              "duplicate_at_hop " << spec.duplicate_at_hop
                                  << " beyond the run's " << hops << " hops");

  ComputationBuilder b(N);

  // The predicate pair: the endpoints of the duplication hop.
  const std::int64_t dup = spec.duplicate_at_hop;
  const auto fwd = ProcessId(
      dup >= 0 ? static_cast<int>(dup % static_cast<std::int64_t>(N)) : 0);
  const auto rcv =
      ProcessId(static_cast<int>((fwd.idx() + 1) % N));
  b.set_predicate_processes({fwd, rcv});

  // P0 starts with the privilege: in its critical section in state 1.
  if (fwd == ProcessId(0) || rcv == ProcessId(0)) b.mark_pred(ProcessId(0));

  int holder = 0;
  for (std::int64_t hop = 0; hop < hops; ++hop) {
    const int next = static_cast<int>((holder + 1) % static_cast<int>(N));
    const MessageId token = b.send(ProcessId(holder), ProcessId(next));
    if (hop == dup) {
      // The bug: the forwarder keeps the privilege for one more critical
      // section after handing the token on.
      b.mark_pred(ProcessId(holder));
    }
    b.receive(token);
    // The receiver is now in its critical section (if it is a predicate
    // process, this marks the post-receive state).
    if (ProcessId(next) == fwd || ProcessId(next) == rcv)
      b.mark_pred(ProcessId(next));
    holder = next;
  }

  RingComputation out;
  out.violation_injected = dup >= 0;
  out.computation = b.build();
  return out;
}

}  // namespace wcp::workload
