// Mutual-exclusion workload — the paper's §2 example 1.
//
// N = num_clients + 1 processes: clients P_0..P_{k-1} and a lock server
// P_k. Clients loop: request -> (grant) -> critical section -> release. The
// local predicate of client i is "P_i is in its critical section", so the
// WCP (CS_0 ∧ CS_1 ∧ ...) detects a mutual-exclusion violation.
//
// The server is deliberately buggy: with probability `violation_prob` per
// grant decision it grants the lock even though it is already held. Runs
// with violation_prob == 0 must never detect the WCP; the detectors' "not
// detected" path is exercised by exactly these runs.
#pragma once

#include <cstdint>

#include "trace/computation.h"

namespace wcp::workload {

struct MutexSpec {
  std::size_t num_clients = 2;        ///< n (predicate processes)
  std::int64_t rounds_per_client = 10;///< CS entries attempted per client
  double violation_prob = 0.1;        ///< per-grant chance of a double grant
  /// Worst-case detection workload: the double grant happens exactly once,
  /// in the final round. Every earlier critical-section candidate is
  /// serialized and must be eliminated, so detection work scales with the
  /// run length (used by the E1/E2/E4 benches).
  bool force_final_violation = false;
  std::uint64_t seed = 7;
};

struct MutexComputation {
  Computation computation;
  bool violation_injected = false;  ///< ground truth: did a double grant occur
};

MutexComputation make_mutex(const MutexSpec& spec);

}  // namespace wcp::workload
