#include "workload/db_workload.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace wcp::workload {

DbComputation make_db(const DbSpec& spec) {
  WCP_REQUIRE(spec.num_readers >= 1 && spec.num_writers >= 1,
              "need at least one reader and one writer");
  WCP_REQUIRE(spec.rounds >= 1, "need at least one round");

  Rng rng(spec.seed);
  const std::size_t R = spec.num_readers;
  const std::size_t W = spec.num_writers;
  const auto manager = ProcessId(static_cast<int>(R + W));
  ComputationBuilder b(R + W + 1);

  std::vector<ProcessId> readers, writers;
  for (std::size_t i = 0; i < R; ++i) readers.emplace_back(static_cast<int>(i));
  for (std::size_t i = 0; i < W; ++i)
    writers.emplace_back(static_cast<int>(R + i));

  const ProcessId tracked_reader = readers.front();
  const ProcessId tracked_writer = writers.front();
  b.set_predicate_processes({tracked_reader, tracked_writer});

  DbComputation out;

  auto lock_cycle = [&](ProcessId client, bool tracked) {
    // REQ -> GRANT (lock held in the post-grant state) -> UNLOCK.
    b.receive(b.send(client, manager));
    b.receive(b.send(manager, client));
    if (tracked) b.mark_pred(client, true);
    return b.send(client, manager);  // unlock, received by caller
  };

  for (std::int64_t round = 0; round < spec.rounds; ++round) {
    const bool violate = rng.bernoulli(spec.violation_prob);

    // Read phase: all readers acquire shared locks concurrently.
    std::vector<MessageId> reqs;
    for (ProcessId r : readers) reqs.push_back(b.send(r, manager));
    for (MessageId m : reqs) b.receive(m);
    std::vector<MessageId> grants;
    for (ProcessId r : readers) grants.push_back(b.send(manager, r));
    for (std::size_t i = 0; i < readers.size(); ++i) {
      b.receive(grants[i]);
      if (readers[i] == tracked_reader) b.mark_pred(readers[i], true);
    }

    std::vector<MessageId> unlocks;
    if (violate) {
      out.violation_injected = true;
      // 2PL bug: grant the tracked writer its exclusive lock while the read
      // locks are still held. The writer's lock state is concurrent with
      // every reader's lock state.
      b.receive(b.send(tracked_writer, manager));   // write request
      b.receive(b.send(manager, tracked_writer));   // bogus grant
      b.mark_pred(tracked_writer, true);
      unlocks.push_back(b.send(tracked_writer, manager));
    }
    for (ProcessId r : readers) unlocks.push_back(b.send(r, manager));
    for (MessageId m : unlocks) b.receive(m);

    // Write phase: writers serialized correctly (after all read unlocks).
    for (ProcessId w : writers) {
      if (violate && w == tracked_writer) continue;  // already served
      const MessageId unlock = lock_cycle(w, w == tracked_writer);
      b.receive(unlock);
    }
  }

  out.computation = b.build();
  return out;
}

}  // namespace wcp::workload
