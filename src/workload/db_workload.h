// Two-phase-locking database workload — the paper's §2 example 2.
//
// A lock manager serves `num_readers` reader clients and `num_writers`
// writer clients contending for one shared item. The WCP is defined over
// two of them: "reader 0 holds a read lock" ∧ "writer 0 holds a write
// lock" — simultaneously true only if the lock manager violates 2PL
// compatibility. A buggy round grants the write lock while read locks are
// still held.
//
// n = 2 while N = num_readers + num_writers + 1, which makes this the
// motivating workload for the n-vs-N crossover (experiment E5): the
// vector-clock algorithm involves only the two predicate processes, the
// direct-dependence algorithm all N.
#pragma once

#include <cstdint>

#include "trace/computation.h"

namespace wcp::workload {

struct DbSpec {
  std::size_t num_readers = 3;
  std::size_t num_writers = 2;
  std::int64_t rounds = 10;
  double violation_prob = 0.1;  ///< per-round chance of the 2PL bug firing
  std::uint64_t seed = 11;
};

struct DbComputation {
  Computation computation;
  bool violation_injected = false;
};

/// Process layout: readers are P_0..P_{R-1}, writers P_R..P_{R+W-1}, the
/// lock manager is the last process. Predicate processes: {P_0, P_R}.
DbComputation make_db(const DbSpec& spec);

}  // namespace wcp::workload
