#include "workload/random_workload.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace wcp::workload {

Computation make_random(const RandomSpec& spec) {
  WCP_REQUIRE(spec.num_processes >= 1, "need at least one process");
  WCP_REQUIRE(spec.num_predicate >= 1 &&
                  spec.num_predicate <= spec.num_processes,
              "need 1 <= n <= N");
  WCP_REQUIRE(spec.local_pred_prob >= 0.0 && spec.local_pred_prob <= 1.0,
              "bad local_pred_prob");

  Rng rng(spec.seed);
  const std::size_t N = spec.num_processes;

  ComputationBuilder b(N);

  // Predicate processes.
  std::vector<ProcessId> preds;
  {
    std::vector<ProcessId> all;
    all.reserve(N);
    for (std::size_t p = 0; p < N; ++p) all.emplace_back(static_cast<int>(p));
    if (spec.random_predicate_subset) rng.shuffle(all);
    preds.assign(all.begin(),
                 all.begin() + static_cast<std::ptrdiff_t>(spec.num_predicate));
    std::sort(preds.begin(), preds.end());
  }
  b.set_predicate_processes(preds);

  std::vector<bool> is_pred(N, false);
  for (ProcessId p : preds) is_pred[p.idx()] = true;

  auto roll_pred = [&](ProcessId p) {
    if (is_pred[p.idx()] && rng.bernoulli(spec.local_pred_prob))
      b.mark_pred(p, true);
  };
  // Initial states.
  for (std::size_t p = 0; p < N; ++p) roll_pred(ProcessId(static_cast<int>(p)));

  std::vector<std::int64_t> events(N, 0);
  std::int64_t remaining =
      N == 1 ? 0  // a single process never communicates
             : static_cast<std::int64_t>(N) * spec.events_per_process;

  while (remaining > 0) {
    const auto p = ProcessId(static_cast<int>(rng.index(N)));
    if (events[p.idx()] >= spec.events_per_process) {
      // This process is done; find another with remaining budget.
      bool any = false;
      for (std::size_t q = 0; q < N; ++q)
        if (events[q] < spec.events_per_process) any = true;
      if (!any) break;
      continue;
    }

    const bool can_recv = b.in_flight_to(p) > 0;
    if (can_recv && rng.bernoulli(spec.recv_bias)) {
      const auto msg = b.next_in_flight_to(p);
      WCP_CHECK(msg.has_value());
      b.receive(*msg);
    } else {
      // Send to a random other process.
      auto to = ProcessId(static_cast<int>(rng.index(N)));
      if (to == p) to = ProcessId(static_cast<int>((p.idx() + 1) % N));
      if (N == 1) continue;  // no one to talk to
      b.send(p, to);
    }
    ++events[p.idx()];
    --remaining;
    roll_pred(p);
  }

  // Drain in-flight messages (receivers exceed their event budget here;
  // that keeps every message deliverable without starving any process).
  for (std::size_t p = 0; p < N; ++p) {
    const auto pid = ProcessId(static_cast<int>(p));
    while (b.in_flight_to(pid) > 0) {
      const auto msg = b.next_in_flight_to(pid);
      if (!msg) break;
      if (rng.bernoulli(spec.drain_prob)) {
        b.receive(*msg);
        roll_pred(pid);
      } else {
        break;  // leave the rest of this process's queue in flight
      }
    }
  }

  if (spec.ensure_detectable)
    for (ProcessId p : preds) b.mark_pred(p, true);

  return b.build();
}

}  // namespace wcp::workload
