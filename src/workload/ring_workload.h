// Token-ring mutual exclusion workload: privilege circulates around a ring
// of processes; a process holding the ring token may enter its critical
// section. The WCP (CS_0 ∧ CS_1 ∧ …) can only hold if the token gets
// duplicated — which the faulty variant injects: at a chosen hop a process
// forwards the token while (erroneously) also keeping it for one more
// critical section.
//
// Complements the client/server mutex workload with decentralized
// communication topology (no coordinator; messages only between ring
// neighbours), which stresses relay-style causality in the detectors.
#pragma once

#include <cstdint>

#include "trace/computation.h"

namespace wcp::workload {

struct RingSpec {
  std::size_t num_processes = 4;  ///< ring size
  std::int64_t laps = 3;          ///< times the token circles the ring
  /// Duplicate the privilege once, at this hop index (-1: never — clean
  /// run). Hop h means the h-th forwarding of the token. The WCP is
  /// defined over the two processes adjacent to that hop (clean runs:
  /// {P0, P1}), i.e. "both endpoints in their critical sections".
  std::int64_t duplicate_at_hop = -1;
};

struct RingComputation {
  Computation computation;
  bool violation_injected = false;
};

RingComputation make_ring(const RingSpec& spec);

}  // namespace wcp::workload
