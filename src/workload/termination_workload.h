// Distributed termination detection workload — the classic instance of
// generalized conjunctive predicates:
//
//     terminated  ⇔  (∀i: passive_i) ∧ (∀ channels: empty)
//
// Work diffuses through the system: an active process may spawn work
// messages to others before going passive; receiving work reactivates a
// process. The run ends when no process is active and no work is in
// flight — the true termination point.
//
// The local-predicates-only WCP (∀i: passive_i) is *not* sufficient: a cut
// where everyone is passive but a work message is still in flight is a
// false termination. Runs from this generator (whenever any work was
// spawned) contain such cuts, which is exactly what the GCP detector's
// channel-empty conjuncts reject — see examples/termination_detection.cpp
// and tests/gcp_test.cc.
#pragma once

#include <cstdint>

#include "trace/computation.h"

namespace wcp::workload {

struct TerminationSpec {
  std::size_t num_processes = 4;
  /// Work messages the initially active process P0 seeds the system with.
  std::int64_t initial_work = 3;
  /// Chance an active process spawns another work message (per decision).
  double spawn_prob = 0.35;
  /// Hard cap on total work messages (keeps runs finite).
  std::int64_t max_messages = 200;
  std::uint64_t seed = 13;
};

struct TerminationComputation {
  Computation computation;
  /// Total work messages exchanged.
  std::int64_t work_messages = 0;
  /// Final state index per process == the true termination cut.
  std::vector<StateIndex> termination_cut;
};

TerminationComputation make_termination(const TerminationSpec& spec);

}  // namespace wcp::workload
