// Join-irreducible lattice elements (JILs) for conjunctive predicates —
// the core primitive of computation slicing (Mittal & Garg, "Techniques
// and Applications of Computation Slicing"; Chauhan et al., "A Distributed
// Abstraction Algorithm for Online Predicate Detection").
//
// For a conjunctive predicate (one local predicate per slot) the set L of
// satisfying consistent cuts is closed under pointwise meet AND join — the
// predicate is *regular* — so L is a distributive lattice. By Birkhoff's
// theorem L is determined by its join-irreducible elements, and for a
// conjunctive predicate those are exactly the cuts
//
//   J_s(k) = the least satisfying consistent cut C with C[s] >= k,
//
// computed by the standard "advance past false states" fixpoint: start every
// component at its lower bound, and repeatedly (a) advance a component
// sitting on a false state to the next true state, and (b) when component
// (s, C[s]) happened before (t, C[t]), advance C[s] past everything (t,C[t])
// has seen of s. Each advance is forced (every satisfying cut above the
// bounds must clear it), so the fixpoint is the unique least cut, or fails
// when a component runs off the end of its process.
//
// The fixpoint runs against an abstract SliceInput so the same code serves
// the offline slicer (ground-truth clocks from trace/computation.h) and the
// online slicer (n-width Fig. 2 clocks from streamed app::VcSnapshots).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "trace/computation.h"

namespace wcp::slice {

/// Abstract view of a computation restricted to the n predicate slots:
/// per-slot state counts, local-predicate truth, and the happened-before
/// information the consistency checks need.
class SliceInput {
 public:
  virtual ~SliceInput() = default;

  [[nodiscard]] virtual std::size_t num_slots() const = 0;
  /// Number of states available on `slot` (>= 1).
  [[nodiscard]] virtual StateIndex num_states(std::size_t slot) const = 0;
  /// Local-predicate truth of state k (1-based) on `slot`.
  [[nodiscard]] virtual bool pred(std::size_t slot, StateIndex k) const = 0;
  /// Highest state of slot t that happened before state (s, k); 0 if none.
  /// Exactly the t-component of (s,k)'s vector clock, so
  /// (t,l) -> (s,k) iff causal_floor(s,k,t) >= l. Requires s != t.
  [[nodiscard]] virtual StateIndex causal_floor(std::size_t s, StateIndex k,
                                                std::size_t t) const = 0;
};

/// SliceInput over a full Computation, answered from the ground-truth
/// happened-before oracle (the correctness reference).
class ComputationInput final : public SliceInput {
 public:
  explicit ComputationInput(const Computation& comp);

  [[nodiscard]] std::size_t num_slots() const override {
    return procs_.size();
  }
  [[nodiscard]] StateIndex num_states(std::size_t slot) const override {
    return comp_.num_states(procs_[slot]);
  }
  [[nodiscard]] bool pred(std::size_t slot, StateIndex k) const override {
    return comp_.local_pred(procs_[slot], k);
  }
  [[nodiscard]] StateIndex causal_floor(std::size_t s, StateIndex k,
                                        std::size_t t) const override {
    // Single-component read straight from the delta-encoded trace store —
    // no full-clock reconstruction on the fixpoint's hot path.
    return comp_.clock_component(procs_[s], k, procs_[t]);
  }

 private:
  const Computation& comp_;
  std::vector<ProcessId> procs_;
};

/// Work counters of the fixpoint, reported as `jil_*` bench metrics. One
/// "advance" eliminates at least one candidate state, so `advances` is the
/// slice-side analogue of the lattice baseline's `cuts_explored`.
struct JilCounters {
  std::int64_t calls = 0;          ///< fixpoint invocations
  std::int64_t advances = 0;       ///< component advances (states eliminated)
  std::int64_t clock_lookups = 0;  ///< causal_floor evaluations
};

/// Least satisfying consistent cut C with C[s] >= lower_bounds[s] for every
/// slot, or nullopt if none exists. O(n^2 m) worst case.
std::optional<std::vector<StateIndex>> least_satisfying_cut(
    const SliceInput& in, std::span<const StateIndex> lower_bounds,
    JilCounters* counters = nullptr);

/// J_s(k): least satisfying consistent cut including state (slot, k).
std::optional<std::vector<StateIndex>> jil(const SliceInput& in,
                                           std::size_t slot, StateIndex k,
                                           JilCounters* counters = nullptr);

/// Least *consistent* cut above the bounds, ignoring local predicates (used
/// to complete a pair of anchor states into a full witness cut).
std::optional<std::vector<StateIndex>> least_consistent_cut(
    const SliceInput& in, std::span<const StateIndex> lower_bounds,
    JilCounters* counters = nullptr);

/// The whole J_slot(·) column: column[k-1] = J_slot(k) for k = 1..m_slot,
/// nullopt for states past the slice top (no satisfying cut includes them).
/// `bottom` must be the slice bottom (== J_slot(1) where it exists); each
/// fixpoint resumes from the previous J, so one column costs amortized
/// O(n^2 m). Columns of distinct slots are independent of one another —
/// the parallel Slice::build computes them concurrently, one task per slot.
std::vector<std::optional<std::vector<StateIndex>>> jil_column(
    const SliceInput& in, std::size_t slot,
    const std::vector<StateIndex>& bottom, JilCounters* counters = nullptr);

}  // namespace wcp::slice
