// Online computation slicing — incremental slice-based detection in the
// style of Chauhan et al.'s distributed abstraction algorithm, hosted on
// the simulator the same way the online Cooper-Marzullo checker is
// (detect/lattice_online.h): every predicate process streams a snapshot of
// EVERY local state (vector clock + predicate value) to one coordinator.
//
// Where the Cooper-Marzullo checker materializes the lattice of consistent
// cuts breadth-first (O(m^n) cuts), the online slicer maintains exactly ONE
// candidate — the least satisfying consistent cut of the states seen so
// far — and advances it past false or causally-dominated states as
// snapshots arrive (the jil.h fixpoint run incrementally, O(n^2 m) total).
// On stabilization the candidate is the same pointwise-minimal cut
// detect_lattice returns. After the run, the slice of the received stream
// is built to report slice-specific counters (JIL groups, quotient-DAG
// edges, satisfying-cut count) next to the baseline's cuts_explored.
//
// The candidate fixpoint lives in slice::SlicerCore so the streaming
// service (src/serve) can run it over wire-fed streams; SlicerCore is the
// cheapest core of the four — O(n) resident state, frontier == candidate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "app/snapshot_stream.h"
#include "app/state_stream.h"
#include "sim/network.h"
#include "slice/slice.h"

namespace wcp::slice {

/// SliceInput over streamed per-slot snapshot arrays (n-width Fig. 2
/// clocks). Component t of a snapshot's clock is the highest state of slot
/// t that happened before it — the same causal_floor contract the
/// ground-truth oracle answers.
class SnapshotInput final : public SliceInput {
 public:
  explicit SnapshotInput(const std::vector<std::vector<app::VcSnapshot>>& s)
      : states_(s) {}

  [[nodiscard]] std::size_t num_slots() const override {
    return states_.size();
  }
  [[nodiscard]] StateIndex num_states(std::size_t slot) const override {
    return static_cast<StateIndex>(states_[slot].size());
  }
  [[nodiscard]] bool pred(std::size_t slot, StateIndex k) const override {
    return states_[slot][static_cast<std::size_t>(k - 1)].pred;
  }
  [[nodiscard]] StateIndex causal_floor(std::size_t s, StateIndex k,
                                        std::size_t t) const override {
    return states_[s][static_cast<std::size_t>(k - 1)].vclock[t];
  }

 private:
  const std::vector<std::vector<app::VcSnapshot>>& states_;
};

/// The incremental candidate fixpoint over a StateStream. Maintains the
/// least consistent cut whose arrived components all satisfy the local
/// predicates; detected when stable and fully arrived, impossible when a
/// stream ends below the candidate.
class SlicerCore final : public app::StreamCore {
 public:
  SlicerCore(const app::StateStream& stream, app::CoreHooks hooks);

  void on_state(std::size_t s) override;
  void on_eos(std::size_t s) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool detected() const override { return detected_; }
  [[nodiscard]] const std::vector<StateIndex>& cut() const override {
    return detected_ ? candidate_ : empty_;
  }
  [[nodiscard]] StateIndex frontier(std::size_t s) const override {
    return done_ ? stream_.last(s) + 1 : candidate_[s];
  }
  [[nodiscard]] std::int64_t resident_bytes() const override {
    return static_cast<std::int64_t>(candidate_.size() * sizeof(StateIndex));
  }

  /// The current least-candidate cut (meaningful even before detection).
  [[nodiscard]] const std::vector<StateIndex>& candidate() const {
    return candidate_;
  }
  /// Some slot's stream ended below the candidate: no satisfying cut.
  [[nodiscard]] bool impossible() const { return done_ && !detected_; }
  [[nodiscard]] std::int64_t jil_advances() const { return jil_advances_; }
  [[nodiscard]] std::int64_t clock_lookups() const { return clock_lookups_; }

 private:
  void advance();
  [[nodiscard]] std::size_t n() const { return candidate_.size(); }

  const app::StateStream& stream_;
  app::CoreHooks hooks_;
  std::vector<StateIndex> candidate_;  // the incremental candidate
  std::vector<StateIndex> empty_;
  bool done_ = false;
  bool detected_ = false;
  std::int64_t jil_advances_ = 0;
  std::int64_t clock_lookups_ = 0;
};

/// Coordinator node running the incremental candidate fixpoint.
class OnlineSlicer final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
  };

  explicit OnlineSlicer(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] bool detected() const {
    return core_->done() && core_->detected();
  }
  [[nodiscard]] const std::vector<StateIndex>& cut() const {
    return core_->candidate();
  }
  [[nodiscard]] SimTime detect_time() const { return detect_time_; }
  /// Some slot's stream ended below the candidate: no satisfying cut.
  [[nodiscard]] bool impossible() const { return core_->impossible(); }

  [[nodiscard]] std::int64_t states_received() const {
    return states_received_;
  }
  [[nodiscard]] std::int64_t jil_advances() const {
    return core_->jil_advances();
  }
  [[nodiscard]] std::int64_t clock_lookups() const {
    return core_->clock_lookups();
  }

  /// The snapshot streams received so far (for post-run slice building).
  [[nodiscard]] const std::vector<std::vector<app::VcSnapshot>>& states()
      const {
    return states_;
  }

 private:
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::vector<app::VcSnapshot>> states_;  // per slot, in order
  std::vector<bool> eos_;
  std::vector<int> slot_of_pid_;
  app::SnapshotStateStream stream_;
  std::unique_ptr<SlicerCore> core_;
  SimTime detect_time_ = 0;
  std::int64_t states_received_ = 0;
};

}  // namespace wcp::slice
