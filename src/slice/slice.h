// The computation slice of a conjunctive predicate (Mittal & Garg).
//
// The slice abstracts a computation into exactly the structure needed to
// answer questions about the *satisfying* consistent cuts: a directed graph
// whose vertices are the join-irreducible cuts J_s(k) (see jil.h), with
// states grouped into strongly connected components — two states (s,k) and
// (t,l) share a group iff J_s(k) == J_t(l), i.e. no satisfying cut can
// include one without the other. The satisfying cuts of the computation are
// exactly the ideals (down-sets) of the quotient DAG:
//
//   C satisfies the WCP  <=>  every J_s(C[s]) exists and J_s(C[s]) <= C.
//
// Building the slice costs O(n^2 m) amortized (per slot, J_s(k) is monotone
// in k, so the fixpoint for J_s(k+1) resumes from J_s(k)); afterwards
// possibly() is slice non-emptiness, the minimal satisfying cut is the
// slice bottom, and enumeration/counting touch only satisfying cuts — the
// exponential sea of non-satisfying cuts the Cooper-Marzullo baseline wades
// through (bench E10) is never visited.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/types.h"
#include "slice/jil.h"

namespace wcp::slice {

/// FNV-1a over cut components — the one shared definition in
/// common/cut_hash.h, also used by the lattice detectors' visited sets and
/// the parallel shard partitioning.
using CutHash = wcp::CutHash;

/// Counters accumulated while building a slice.
struct SliceBuildCounters {
  JilCounters jil;
  /// Footprint of the JIL-group interning (arena + dedup table). Interning
  /// is serial in slot order for every thread count, so these are
  /// deterministic, unlike the detector-side sharded stats.
  CutStorageStats storage;
};

class Slice {
 public:
  /// Builds the slice of `in`'s computation w.r.t. its conjunctive
  /// predicate. O(n^2 m) fixpoint work plus O(n m) grouping. `threads`:
  /// 1 = serial; 0 = common::ThreadPool::default_threads(); otherwise the
  /// independent per-slot J columns are computed concurrently on that many
  /// lanes and interned serially in slot order, so the resulting slice
  /// (group numbering included) and the accumulated counters are identical
  /// to the serial build for every thread count.
  static Slice build(const SliceInput& in,
                     SliceBuildCounters* counters = nullptr,
                     std::size_t threads = 1);
  /// Convenience: slice of a Computation via the ground-truth oracle.
  static Slice build(const Computation& comp,
                     SliceBuildCounters* counters = nullptr,
                     std::size_t threads = 1);

  /// True iff no consistent cut satisfies the predicate.
  [[nodiscard]] bool empty() const { return groups_.empty(); }

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

  /// Least satisfying cut (the slice bottom); empty vector iff empty().
  /// Equals the cut detect_lattice returns.
  [[nodiscard]] const std::vector<StateIndex>& bottom() const {
    return bottom_;
  }
  /// Greatest satisfying cut (the slice top); empty vector iff empty().
  [[nodiscard]] const std::vector<StateIndex>& top() const { return top_; }

  /// Number of join-irreducible groups (SCCs of the constraint graph).
  [[nodiscard]] std::int64_t num_groups() const {
    return static_cast<std::int64_t>(groups_.size());
  }
  /// Edges of the quotient DAG (deduplicated).
  [[nodiscard]] std::int64_t num_edges() const { return num_edges_; }

  /// Group id of state (slot, k), or -1 when the state lies in no
  /// satisfying cut (it was sliced away).
  [[nodiscard]] int group_of(std::size_t slot, StateIndex k) const;

  /// The join-irreducible cut of group `g`, widened out of the group arena.
  [[nodiscard]] std::vector<StateIndex> group_cut(int g) const {
    return groups_.materialize(static_cast<CutHandle>(g));
  }

  /// True iff `cut` is a satisfying consistent cut (an ideal of the slice).
  [[nodiscard]] bool contains(std::span<const StateIndex> cut) const;

  /// Number of ideals of the slice == number of satisfying consistent cuts.
  /// Enumerates at most `cap` cuts; `saturated` reports hitting the cap.
  struct CutCount {
    std::int64_t count = 0;
    bool saturated = false;
  };
  [[nodiscard]] CutCount num_cuts(std::int64_t cap = 1'000'000) const;

  /// Calls `fn` for every satisfying consistent cut in level order (sum of
  /// components, ties by discovery), until `fn` returns false or `cap`
  /// cuts have been visited. Returns the number of cuts visited.
  std::int64_t for_each_cut(
      const std::function<bool(const std::vector<StateIndex>&)>& fn,
      std::int64_t cap = -1) const;

  /// Pull-style enumeration of the slice's consistent cuts in level order.
  class CutIterator {
   public:
    explicit CutIterator(const Slice& slice);
    /// Next satisfying cut, or nullopt when exhausted.
    std::optional<std::vector<StateIndex>> next();

   private:
    // Every generated cut is interned once into the seen arena
    // (common/cut_storage.h); heap entries hold 32-bit handles into it.
    struct Entry {
      StateIndex level;
      std::int64_t seq;
      CutHandle cut;
      bool operator>(const Entry& o) const {
        return level != o.level ? level > o.level : seq > o.seq;
      }
    };
    void push(std::vector<StateIndex> cut);

    const Slice& slice_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready_;
    CutArena seen_arena_;
    CutTable seen_table_;
    std::int64_t seq_ = 0;
  };

  [[nodiscard]] CutIterator cuts() const { return CutIterator(*this); }

 private:
  friend class CutIterator;

  struct PerSlot {
    /// group[k-1] = group id of J_s(k), -1 past the slice top.
    std::vector<int> group;
  };

  /// Successor cuts within the slice: C join J_s(C[s]+1) for each slot s
  /// that can still advance. Every cover of C in the satisfying lattice is
  /// among these, so BFS from bottom() reaches every satisfying cut.
  void successors(const std::vector<StateIndex>& cut,
                  const std::function<void(std::vector<StateIndex>)>& emit)
      const;

  std::vector<PerSlot> slots_;
  CutArena groups_;  // group id == arena handle -> packed JIL cut
  std::vector<StateIndex> bottom_;
  std::vector<StateIndex> top_;
  std::int64_t num_edges_ = 0;
};

}  // namespace wcp::slice
