#include "slice/online_slicer.h"

#include <utility>

#include "common/error.h"

namespace wcp::slice {

OnlineSlicer::OnlineSlicer(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(!cfg_.slot_to_pid.empty(), "empty predicate");
  states_.resize(n());
  eos_.assign(n(), false);
  cut_.assign(n(), 1);
}

void OnlineSlicer::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "online slicer got unexpected " << to_string(p.kind));
  if (detected_ || impossible_) return;

  if (slot_of_pid_.empty()) {
    slot_of_pid_.assign(net().num_processes(), -1);
    for (std::size_t s = 0; s < n(); ++s)
      slot_of_pid_[cfg_.slot_to_pid[s].idx()] = static_cast<int>(s);
  }

  if (p.kind == MsgKind::kControl) {
    if (std::any_cast<app::EndOfStream>(&p.payload) != nullptr) {
      const int slot = slot_of_pid_.at(p.from.pid.idx());
      if (slot >= 0) {
        eos_[static_cast<std::size_t>(slot)] = true;
        advance_candidate();
      }
    }
    return;
  }

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);

  const int slot = slot_of_pid_.at(p.from.pid.idx());
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);
  const auto su = static_cast<std::size_t>(slot);

  // FIFO app->coordinator gives states in order; index == own component.
  const StateIndex k = snap.vclock[su];
  WCP_CHECK_MSG(k == static_cast<StateIndex>(states_[su].size()) + 1,
                "state stream gap at slot " << slot);
  states_[su].push_back(std::move(snap));
  ++states_received_;

  advance_candidate();
}

void OnlineSlicer::advance_candidate() {
  const ProcessId coord(static_cast<int>(net().num_processes()));
  const auto arrived = [&](std::size_t s) {
    return cut_[s] <= static_cast<StateIndex>(states_[s].size());
  };

  // Run the jil.h fixpoint over whatever has arrived. Every advance is
  // forced by arrived data only (a false state, or a state causally
  // dominated by another candidate component), so the candidate is always
  // a lower bound of the true least satisfying cut.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < n() && !changed; ++s) {
      if (!arrived(s)) {
        if (eos_[s]) {
          impossible_ = true;
          net().simulator().stop();
          return;
        }
        continue;
      }
      const auto& snap = states_[s][static_cast<std::size_t>(cut_[s] - 1)];
      if (!snap.pred) {
        ++cut_[s];
        ++jil_advances_;
        changed = true;
        break;
      }
      for (std::size_t t = 0; t < n() && !changed; ++t) {
        if (t == s || !arrived(t)) continue;
        ++clock_lookups_;
        net().add_monitor_work(coord, 1);
        // (s, cut_[s]) -> (t, cut_[t]): advance s past what t has seen.
        const StateIndex floor =
            states_[t][static_cast<std::size_t>(cut_[t] - 1)].vclock[s];
        if (cut_[s] <= floor) {
          jil_advances_ += floor + 1 - cut_[s];
          cut_[s] = floor + 1;
          changed = true;
        }
      }
    }
  }

  // Stable and fully arrived: cut_ is the least satisfying consistent cut.
  for (std::size_t s = 0; s < n(); ++s)
    if (!arrived(s)) return;
  detected_ = true;
  detect_time_ = net().simulator().now();
  net().simulator().stop();
}

}  // namespace wcp::slice
