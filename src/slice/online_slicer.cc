#include "slice/online_slicer.h"

#include <utility>

#include "common/error.h"

namespace wcp::slice {

// ---------------------------------------------------------------------------
// SlicerCore
// ---------------------------------------------------------------------------

SlicerCore::SlicerCore(const app::StateStream& stream, app::CoreHooks hooks)
    : stream_(stream), hooks_(std::move(hooks)) {
  WCP_REQUIRE(stream_.slots() >= 1, "empty predicate");
  candidate_.assign(stream_.slots(), 1);
}

void SlicerCore::on_state(std::size_t s) {
  (void)s;
  if (done_) return;
  advance();
}

void SlicerCore::on_eos(std::size_t s) {
  (void)s;
  if (done_) return;
  advance();
}

void SlicerCore::advance() {
  const auto arrived = [&](std::size_t s) {
    return candidate_[s] <= stream_.last(s);
  };

  // Run the jil.h fixpoint over whatever has arrived. Every advance is
  // forced by arrived data only (a false state, or a state causally
  // dominated by another candidate component), so the candidate is always
  // a lower bound of the true least satisfying cut.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < n() && !changed; ++s) {
      if (!arrived(s)) {
        if (stream_.eos(s)) {
          done_ = true;  // the stream ended below the candidate
          detected_ = false;
          return;
        }
        continue;
      }
      if (!stream_.pred(s, candidate_[s])) {
        ++candidate_[s];
        ++jil_advances_;
        changed = true;
        break;
      }
      for (std::size_t t = 0; t < n() && !changed; ++t) {
        if (t == s || !arrived(t)) continue;
        ++clock_lookups_;
        hooks_.add_work(1);
        // (s, cut[s]) -> (t, cut[t]): advance s past what t has seen.
        const StateIndex floor = stream_.clock(t, candidate_[t], s);
        if (candidate_[s] <= floor) {
          jil_advances_ += floor + 1 - candidate_[s];
          candidate_[s] = floor + 1;
          changed = true;
        }
      }
    }
  }

  // Stable and fully arrived: the candidate is the least satisfying
  // consistent cut.
  for (std::size_t s = 0; s < n(); ++s)
    if (!arrived(s)) return;
  done_ = true;
  detected_ = true;
}

// ---------------------------------------------------------------------------
// OnlineSlicer (sim host)
// ---------------------------------------------------------------------------

OnlineSlicer::OnlineSlicer(Config cfg)
    : cfg_(std::move(cfg)), stream_(states_, &eos_) {
  WCP_REQUIRE(!cfg_.slot_to_pid.empty(), "empty predicate");
  states_.resize(n());
  eos_.assign(n(), false);
  app::CoreHooks hooks;
  hooks.work = [this](std::int64_t units) {
    const ProcessId coord(static_cast<int>(net().num_processes()));
    net().add_monitor_work(coord, units);
  };
  core_ = std::make_unique<SlicerCore>(stream_, std::move(hooks));
}

void OnlineSlicer::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "online slicer got unexpected " << to_string(p.kind));
  if (core_->done()) return;

  if (slot_of_pid_.empty()) {
    slot_of_pid_.assign(net().num_processes(), -1);
    for (std::size_t s = 0; s < n(); ++s)
      slot_of_pid_[cfg_.slot_to_pid[s].idx()] = static_cast<int>(s);
  }

  if (p.kind == MsgKind::kControl) {
    if (std::any_cast<app::EndOfStream>(&p.payload) != nullptr) {
      const int slot = slot_of_pid_.at(p.from.pid.idx());
      if (slot >= 0) {
        eos_[static_cast<std::size_t>(slot)] = true;
        core_->on_eos(static_cast<std::size_t>(slot));
        if (core_->done()) {
          if (core_->detected()) detect_time_ = net().simulator().now();
          net().simulator().stop();
        }
      }
    }
    return;
  }

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);

  const int slot = slot_of_pid_.at(p.from.pid.idx());
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);
  const auto su = static_cast<std::size_t>(slot);

  // FIFO app->coordinator gives states in order; index == own component.
  const StateIndex k = snap.vclock[su];
  WCP_CHECK_MSG(k == static_cast<StateIndex>(states_[su].size()) + 1,
                "state stream gap at slot " << slot);
  states_[su].push_back(std::move(snap));
  ++states_received_;

  core_->on_state(su);
  if (core_->done()) {
    if (core_->detected()) detect_time_ = net().simulator().now();
    net().simulator().stop();
  }
}

}  // namespace wcp::slice
