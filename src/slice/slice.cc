#include "slice/slice.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace wcp::slice {

Slice Slice::build(const SliceInput& in, SliceBuildCounters* counters,
                   std::size_t threads) {
  SliceBuildCounters local;
  SliceBuildCounters& ctr = counters ? *counters : local;
  const std::size_t n = in.num_slots();
  WCP_REQUIRE(n >= 1, "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();

  Slice s;
  s.slots_.resize(n);
  s.groups_ = CutArena(n);

  // The bottom fixpoint runs first and serially; for a lazily materialized
  // input (ComputationInput's ground-truth clocks) it also forces the
  // causality data into existence before any parallel fan-out below.
  const auto bottom = jil(in, 0, 1, &ctr.jil);
  if (!bottom) return s;  // no satisfying cut: empty slice
  s.bottom_ = *bottom;

  // Per slot, compute the J_s(·) column (see jil_column: each fixpoint
  // resumes from the previous J, amortized O(n^2 m) per slot). The columns
  // are mutually independent, so with threads > 1 they are computed
  // concurrently, one per-slot counter each, and both the interning below
  // and the counter accumulation happen serially in slot order — keeping
  // group numbering and counters identical to the serial build.
  using Column = std::vector<std::optional<std::vector<StateIndex>>>;
  std::vector<Column> columns(n);
  if (threads <= 1 || n == 1) {
    for (std::size_t slot = 0; slot < n; ++slot)
      columns[slot] = jil_column(in, slot, s.bottom_, &ctr.jil);
  } else {
    std::vector<JilCounters> per_slot(n);
    common::ThreadPool pool(threads);
    columns = pool.parallel_map<Column>(
        n,
        [&](std::size_t slot) {
          return jil_column(in, slot, s.bottom_, &per_slot[slot]);
        },
        /*grain=*/1);
    for (const JilCounters& c : per_slot) {
      ctr.jil.calls += c.calls;
      ctr.jil.advances += c.advances;
      ctr.jil.clock_lookups += c.clock_lookups;
    }
  }

  // States whose J coincide form one strongly connected component of the
  // constraint graph (mutual inclusion); deduplicate by interning into the
  // group arena via a flat CutTable keyed by the shared CutHash. Group ids
  // are the dense arena handles, so the id sequence is the first-occurrence
  // order — exactly what the old cut -> id map produced.
  CutTable group_table;
  const CutHash hasher;
  auto intern = [&](const std::vector<StateIndex>& cut) {
    return static_cast<int>(
        group_table.intern(s.groups_, cut, hasher(cut)).handle);
  };

  for (std::size_t slot = 0; slot < n; ++slot) {
    auto& per = s.slots_[slot];
    per.group.assign(static_cast<std::size_t>(in.num_states(slot)), -1);
    const Column& col = columns[slot];
    for (std::size_t k0 = 0; k0 < col.size(); ++k0) {
      if (!col[k0]) break;  // column ends at the slice top
      per.group[k0] = intern(*col[k0]);
    }
  }

  // Slice top = join of all JILs == the greatest satisfying cut; since the
  // per-slot J sequences are monotone, that is the pointwise max of the
  // last existing J per slot — equivalently each slot's deepest state that
  // still has a group.
  s.top_.assign(n, 0);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const auto& g = s.slots_[slot].group;
    StateIndex k = static_cast<StateIndex>(g.size());
    while (k >= 1 && g[static_cast<std::size_t>(k - 1)] < 0) --k;
    WCP_CHECK_MSG(k >= 1, "nonempty slice must cover every slot");
    s.top_[slot] = k;
  }

  // Quotient-DAG edges: group of (t, J[t]) -> group holding the state whose
  // J is this cut, for every constraint component. Deduplicate pairs.
  std::set<std::pair<int, int>> edges;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const auto& g = s.slots_[slot].group;
    for (StateIndex k = 1; k <= static_cast<StateIndex>(g.size()); ++k) {
      const int to = g[static_cast<std::size_t>(k - 1)];
      if (to < 0) continue;
      const auto j = s.groups_.get(static_cast<CutHandle>(to));
      for (std::size_t t = 0; t < n; ++t) {
        if (t == slot) continue;
        const int from = s.group_of(t, static_cast<StateIndex>(j[t]));
        if (from >= 0 && from != to) edges.insert({from, to});
      }
    }
  }
  s.num_edges_ = static_cast<std::int64_t>(edges.size());
  s.groups_.add_stats(ctr.storage);
  group_table.add_stats(ctr.storage);
  return s;
}

Slice Slice::build(const Computation& comp, SliceBuildCounters* counters,
                   std::size_t threads) {
  return build(ComputationInput(comp), counters, threads);
}

int Slice::group_of(std::size_t slot, StateIndex k) const {
  const auto& g = slots_.at(slot).group;
  if (k < 1 || k > static_cast<StateIndex>(g.size())) return -1;
  return g[static_cast<std::size_t>(k - 1)];
}

bool Slice::contains(std::span<const StateIndex> cut) const {
  if (empty() || cut.size() != slots_.size()) return false;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const int g = group_of(s, cut[s]);
    if (g < 0) return false;
    const auto j = groups_.get(static_cast<CutHandle>(g));
    for (std::size_t t = 0; t < slots_.size(); ++t)
      if (cut[t] < static_cast<StateIndex>(j[t])) return false;
  }
  return true;
}

void Slice::successors(
    const std::vector<StateIndex>& cut,
    const std::function<void(std::vector<StateIndex>)>& emit) const {
  const std::size_t n = slots_.size();
  for (std::size_t s = 0; s < n; ++s) {
    const int g = group_of(s, cut[s] + 1);
    if (g < 0) continue;  // slot exhausted or state sliced away
    const auto j = groups_.get(static_cast<CutHandle>(g));
    // C join J_s(C[s]+1): the least satisfying cut strictly above C in
    // slot s. Every cover of C in the satisfying lattice has this shape.
    std::vector<StateIndex> next(n);
    for (std::size_t t = 0; t < n; ++t)
      next[t] = std::max(cut[t], static_cast<StateIndex>(j[t]));
    next[s] = std::max(next[s], cut[s] + 1);
    emit(std::move(next));
  }
}

Slice::CutCount Slice::num_cuts(std::int64_t cap) const {
  CutCount out;
  // Enumerate one past the cap so an exact-cap count is not misreported as
  // saturated.
  out.count = for_each_cut(
      [](const std::vector<StateIndex>&) { return true; },
      cap < 0 ? -1 : cap + 1);
  if (cap >= 0 && out.count > cap) {
    out.count = cap;
    out.saturated = true;
  }
  return out;
}

std::int64_t Slice::for_each_cut(
    const std::function<bool(const std::vector<StateIndex>&)>& fn,
    std::int64_t cap) const {
  std::int64_t visited = 0;
  CutIterator it(*this);
  while (cap < 0 || visited < cap) {
    const auto cut = it.next();
    if (!cut) break;
    ++visited;
    if (!fn(*cut)) break;
  }
  return visited;
}

Slice::CutIterator::CutIterator(const Slice& slice)
    : slice_(slice), seen_arena_(slice.slots_.size()) {
  if (!slice_.empty()) push(slice_.bottom_);
}

void Slice::CutIterator::push(std::vector<StateIndex> cut) {
  const auto r = seen_table_.intern(seen_arena_, cut, CutHash{}(cut));
  if (!r.inserted) return;
  StateIndex level = 0;
  for (StateIndex k : cut) level += k;
  ready_.push(Entry{level, seq_++, r.handle});
}

std::optional<std::vector<StateIndex>> Slice::CutIterator::next() {
  if (ready_.empty()) return std::nullopt;
  const CutHandle h = ready_.top().cut;
  ready_.pop();
  std::vector<StateIndex> cut = seen_arena_.materialize(h);
  slice_.successors(cut,
                    [this](std::vector<StateIndex> n) { push(std::move(n)); });
  return cut;
}

}  // namespace wcp::slice
