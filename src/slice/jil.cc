#include "slice/jil.h"

#include <algorithm>

#include "common/error.h"

namespace wcp::slice {

ComputationInput::ComputationInput(const Computation& comp) : comp_(comp) {
  procs_.assign(comp.predicate_processes().begin(),
                comp.predicate_processes().end());
  WCP_REQUIRE(!procs_.empty(), "empty predicate");
}

namespace {

std::optional<std::vector<StateIndex>> advance_fixpoint(
    const SliceInput& in, std::span<const StateIndex> lower_bounds,
    bool require_pred, JilCounters* counters) {
  const std::size_t n = in.num_slots();
  WCP_REQUIRE(lower_bounds.size() == n, "lower-bound width mismatch");
  JilCounters local;
  JilCounters& ctr = counters ? *counters : local;
  ++ctr.calls;

  // Advance C[s] to the first admissible state >= lo; false on overrun.
  // `advances` counts the states eliminated, the slice-side analogue of the
  // lattice baseline's cuts_explored.
  std::vector<StateIndex> cut(n);
  auto advance_to = [&](std::size_t s, StateIndex lo) {
    const StateIndex from = std::max<StateIndex>(cut[s], 1);
    StateIndex k = std::max(from, lo);
    const StateIndex last = in.num_states(s);
    while (k <= last && require_pred && !in.pred(s, k)) ++k;
    if (k > last) {
      ctr.advances += last - from + 1;
      return false;
    }
    ctr.advances += k - from;
    cut[s] = k;
    return true;
  };

  for (std::size_t s = 0; s < n; ++s) {
    cut[s] = 0;
    if (!advance_to(s, lower_bounds[s])) return std::nullopt;
  }

  // Pairwise consistency fixpoint: (s, C[s]) -> (t, C[t]) forces C[s] past
  // everything (t, C[t]) has seen of s. Each pass either stabilizes or
  // advances some component, and components only move up, so the loop
  // terminates after at most sum(num_states) advances.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t t = 0; t < n && !changed; ++t) {
      for (std::size_t s = 0; s < n && !changed; ++s) {
        if (s == t) continue;
        ++ctr.clock_lookups;
        const StateIndex floor = in.causal_floor(t, cut[t], s);
        if (cut[s] <= floor) {
          if (!advance_to(s, floor + 1)) return std::nullopt;
          changed = true;
        }
      }
    }
  }
  return cut;
}

}  // namespace

std::optional<std::vector<StateIndex>> least_satisfying_cut(
    const SliceInput& in, std::span<const StateIndex> lower_bounds,
    JilCounters* counters) {
  return advance_fixpoint(in, lower_bounds, /*require_pred=*/true, counters);
}

std::optional<std::vector<StateIndex>> jil(const SliceInput& in,
                                           std::size_t slot, StateIndex k,
                                           JilCounters* counters) {
  std::vector<StateIndex> lo(in.num_slots(), 1);
  lo.at(slot) = k;
  return least_satisfying_cut(in, lo, counters);
}

std::optional<std::vector<StateIndex>> least_consistent_cut(
    const SliceInput& in, std::span<const StateIndex> lower_bounds,
    JilCounters* counters) {
  return advance_fixpoint(in, lower_bounds, /*require_pred=*/false, counters);
}

std::vector<std::optional<std::vector<StateIndex>>> jil_column(
    const SliceInput& in, std::size_t slot,
    const std::vector<StateIndex>& bottom, JilCounters* counters) {
  const auto m = static_cast<std::size_t>(in.num_states(slot));
  std::vector<std::optional<std::vector<StateIndex>>> column(m);
  // J_slot is pointwise monotone in k, so each fixpoint resumes from the
  // previous J; once a fixpoint fails, every later state fails too.
  std::vector<StateIndex> prev = bottom;  // J_slot(1) == bottom
  std::vector<StateIndex> lo;             // reused across k
  for (StateIndex k = 1; k <= static_cast<StateIndex>(m); ++k) {
    lo = prev;
    lo[slot] = std::max(lo[slot], k);
    auto j = least_satisfying_cut(in, lo, counters);
    if (!j) break;  // no satisfying cut includes (slot, k) or beyond
    prev = *j;
    column[static_cast<std::size_t>(k - 1)] = std::move(j);
  }
  return column;
}

}  // namespace wcp::slice
