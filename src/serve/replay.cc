#include "serve/replay.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace wcp::serve {

void enqueue_replay(StreamClient& client, const Computation& comp,
                    const ReplayOptions& opts) {
  const std::span<const ProcessId> preds = comp.predicate_processes();
  const auto n = preds.size();
  WCP_REQUIRE(n >= 1, "replay needs at least one predicate process");
  WCP_REQUIRE(!opts.subs.empty(), "replay needs at least one subscription");

  client.hello(static_cast<std::uint32_t>(n), opts.num_predicates);
  std::uint32_t next_sub_id = 0;
  for (const ReplaySubscription& s : opts.subs)
    client.subscribe(next_sub_id++, s.algo, s.pred_index, s.max_cuts);

  const auto mask_of = [&](std::size_t slot, StateIndex k) -> std::uint64_t {
    if (opts.pred_mask) return opts.pred_mask(slot, k);
    return comp.local_pred(preds[slot], k) ? 1u : 0u;
  };

  StateIndex max_states = 0;
  for (std::size_t s = 0; s < n; ++s)
    max_states = std::max(max_states, comp.num_states(preds[s]));
  for (StateIndex k = 1; k <= max_states; ++k)
    for (std::size_t s = 0; s < n; ++s) {
      if (k > comp.num_states(preds[s])) continue;
      std::vector<StateIndex> clock(n);
      for (std::size_t t = 0; t < n; ++t)
        clock[t] = comp.clock_component(preds[s], k, preds[t]);
      client.snapshot(static_cast<std::uint32_t>(s), mask_of(s, k),
                      std::move(clock));
    }
  client.eos();
  client.finish();
}

ReplayResult replay_stream(const Computation& comp,
                           const ReplayOptions& opts) {
  auto [client_end, server_end] = make_pipe(opts.faults);

  Session session(opts.serve, [&server = *server_end](
                                  std::vector<std::uint8_t> bytes) {
    server.send(bytes);
  });

  StreamClient client(*client_end, opts.client);
  enqueue_replay(client, comp, opts);

  // Event loop: alternate client pump with server frame processing until
  // the stats frame lands. A stalled round means the pipe dropped frames;
  // the client retransmits its unacked window. The stall bound guards
  // against a wedged protocol (it cannot fire on a fault-free pipe).
  std::int64_t stalls = 0;
  while (!client.done()) {
    bool progressed = client.pump();
    while (std::optional<std::vector<std::uint8_t>> raw =
               server_end->receive(/*block=*/false)) {
      session.on_frame(*raw);
      progressed = true;
    }
    if (progressed) {
      stalls = 0;
      continue;
    }
    client.retransmit();
    WCP_CHECK_MSG(++stalls < 10'000,
                  "replay stalled: transport deadlock after "
                      << client.retransmits() << " retransmits");
  }

  ReplayResult result;
  result.verdicts = client.verdicts();
  result.stats = client.server_stats();
  result.pipe = pipe_fault_counters(*client_end);
  result.retransmits = client.retransmits();
  return result;
}

ReplayResult replay_stream_over(const Computation& comp,
                                const ReplayOptions& opts,
                                Transport& transport) {
  StreamClient client(transport, opts.client);
  enqueue_replay(client, comp, opts);
  while (!client.done()) {
    if (!client.pump(/*block=*/true))
      WCP_CHECK_MSG(!transport.closed(),
                    "replay_stream_over: server closed mid-stream");
  }
  ReplayResult result;
  result.verdicts = client.verdicts();
  result.stats = client.server_stats();
  result.retransmits = client.retransmits();
  return result;
}

}  // namespace wcp::serve
