// In-process replay: drive a recorded Computation through the full
// client -> transport -> session path and return the verdicts the server
// produced. This is the deterministic backbone of `wcp_cli stream`, the
// serve tests, and the E19 bench: the same code path as the TCP daemon,
// minus the sockets.
//
// Snapshots are emitted round-robin by state index (state 1 of every slot,
// then state 2, ...), which is a legal arrival order for any computation
// because vector clocks only reference equal-or-lower state indices. The
// clocks shipped are the n-wide projections onto predicate_processes() —
// exactly what the instrumented processes of §4 would piggyback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/client.h"
#include "serve/session.h"
#include "serve/transport.h"
#include "trace/computation.h"

namespace wcp::serve {

struct ReplaySubscription {
  StreamAlgo algo = StreamAlgo::kToken;
  std::uint32_t pred_index = 0;
  std::int64_t max_cuts = -1;  ///< lattice-online budget; <0 = server default
};

struct ReplayOptions {
  std::vector<ReplaySubscription> subs;
  std::uint32_t num_predicates = 1;
  /// Predicate-mask source for state (slot, k). Default: bit 0 carries the
  /// computation's local predicate.
  std::function<std::uint64_t(std::size_t, StateIndex)> pred_mask;
  PipeFaults faults;
  ServeOptions serve;
  ClientOptions client;
};

struct ReplayResult {
  std::vector<VerdictBody> verdicts;  ///< in decision order
  ServeStats stats;
  PipeFaultCounters pipe;
  std::int64_t retransmits = 0;
};

/// Enqueues `comp`'s whole stream (hello, subscriptions, snapshots in
/// round-robin state order, eos, finish) on a client. The building block
/// of both replay drivers and of external drivers that pump many clients
/// concurrently (the E21 saturation bench).
void enqueue_replay(StreamClient& client, const Computation& comp,
                    const ReplayOptions& opts);

/// Replays `comp` through a fresh session over an in-process pipe with the
/// given faults. Throws on protocol violations (which a clean replay never
/// triggers) and on transport deadlock.
ReplayResult replay_stream(const Computation& comp, const ReplayOptions& opts);

/// Same stream, but over an already-connected reliable transport (TCP to a
/// wcp_served daemon). Faults are ignored; pipe counters stay zero.
ReplayResult replay_stream_over(const Computation& comp,
                                const ReplayOptions& opts,
                                Transport& transport);

}  // namespace wcp::serve
