// Columnar per-session snapshot store with frontier trimming.
//
// One StreamBuffer backs every subscription of a session: snapshots arrive
// once, each core reads them through a SubscriptionView (an app::StateStream
// binding one predicate bit of the shared pred-mask word). Storage is
// columnar per slot — packed 32-bit clock components back to back plus one
// u64 predicate mask per snapshot — the same packing CutArena uses, so a
// retained snapshot costs 4*slots + 8 bytes regardless of width.
//
// trim(s, floor) retires every position below `floor` (the session's
// global-min frontier across subscriptions); base(s) advances so positions
// stay absolute. The retained/peak counters are the evidence the GC tests
// and the E19 bench assert on.
#pragma once

#include <cstdint>
#include <vector>

#include "app/state_stream.h"
#include "common/types.h"

namespace wcp::serve {

class StreamBuffer final : public app::StateStream {
 public:
  explicit StreamBuffer(std::size_t slots);

  // --- app::StateStream (pred() answers predicate bit 0) ---
  [[nodiscard]] std::size_t slots() const override { return cols_.size(); }
  [[nodiscard]] StateIndex last(std::size_t s) const override {
    const Col& c = cols_[s];
    return c.base + static_cast<StateIndex>(c.masks.size()) - 1;
  }
  [[nodiscard]] StateIndex base(std::size_t s) const override {
    return cols_[s].base;
  }
  [[nodiscard]] bool eos(std::size_t s) const override {
    return cols_[s].eos;
  }
  [[nodiscard]] StateIndex clock(std::size_t s, StateIndex pos,
                                 std::size_t t) const override {
    const Col& c = cols_[s];
    return static_cast<StateIndex>(
        c.clocks[static_cast<std::size_t>(pos - c.base) * slots() + t]);
  }
  [[nodiscard]] bool pred(std::size_t s, StateIndex pos) const override {
    return pred_bit(s, pos, 0);
  }

  [[nodiscard]] bool pred_bit(std::size_t s, StateIndex pos,
                              std::size_t bit) const {
    const Col& c = cols_[s];
    return (c.masks[static_cast<std::size_t>(pos - c.base)] >> bit & 1) != 0;
  }

  /// Appends the next snapshot on slot s. The caller (Session) has already
  /// validated width, monotonicity, and the u32 component bound.
  void append(std::size_t s, const std::vector<StateIndex>& clock,
              std::uint64_t pred_mask);
  void set_eos(std::size_t s) { cols_[s].eos = true; }

  /// Retires positions of slot s strictly below `floor` (clamped to
  /// [base, last+1]).
  void trim(std::size_t s, StateIndex floor);

  // --- accounting ---
  [[nodiscard]] std::int64_t appended() const { return appended_; }
  [[nodiscard]] std::int64_t retired() const { return retired_; }
  [[nodiscard]] std::int64_t retained() const { return appended_ - retired_; }
  [[nodiscard]] std::int64_t peak_retained() const { return peak_retained_; }
  [[nodiscard]] std::int64_t bytes_in_use() const;
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }

 private:
  struct Col {
    std::vector<std::uint32_t> clocks;  // width-`slots` rows, packed
    std::vector<std::uint64_t> masks;   // one predicate word per row
    StateIndex base = 1;
    bool eos = false;
  };

  std::vector<Col> cols_;
  std::int64_t appended_ = 0;
  std::int64_t retired_ = 0;
  std::int64_t peak_retained_ = 0;
  std::int64_t peak_bytes_ = 0;
};

/// The view one subscription reads the shared buffer through: identical to
/// the buffer except pred() answers the subscription's predicate bit.
class SubscriptionView final : public app::StateStream {
 public:
  SubscriptionView(const StreamBuffer& buf, std::size_t pred_bit)
      : buf_(buf), bit_(pred_bit) {}

  [[nodiscard]] std::size_t slots() const override { return buf_.slots(); }
  [[nodiscard]] StateIndex last(std::size_t s) const override {
    return buf_.last(s);
  }
  [[nodiscard]] StateIndex base(std::size_t s) const override {
    return buf_.base(s);
  }
  [[nodiscard]] bool eos(std::size_t s) const override {
    return buf_.eos(s);
  }
  [[nodiscard]] StateIndex clock(std::size_t s, StateIndex pos,
                                 std::size_t t) const override {
    return buf_.clock(s, pos, t);
  }
  [[nodiscard]] bool pred(std::size_t s, StateIndex pos) const override {
    return buf_.pred_bit(s, pos, bit_);
  }

 private:
  const StreamBuffer& buf_;
  std::size_t bit_;
};

}  // namespace wcp::serve
