#include "serve/client.h"

#include <stdexcept>
#include <utility>

#include "common/error.h"

namespace wcp::serve {

StreamClient::StreamClient(Transport& transport, ClientOptions opts)
    : transport_(transport), opts_(opts) {
  WCP_REQUIRE(opts_.window >= 1, "client window must be at least 1");
}

void StreamClient::enqueue(const Frame& f) {
  outbox_.push_back(encode_frame(f, next_seq_++));
}

void StreamClient::hello(std::uint32_t slots, std::uint32_t num_predicates) {
  enqueue(make_hello(slots, num_predicates));
}

void StreamClient::subscribe(std::uint32_t sub_id, StreamAlgo algo,
                             std::uint32_t pred_index, std::int64_t max_cuts) {
  enqueue(make_subscribe(sub_id, algo, pred_index, max_cuts));
}

void StreamClient::snapshot(std::uint32_t slot, std::uint64_t pred_mask,
                            std::vector<StateIndex> clock) {
  enqueue(make_snapshot(slot, pred_mask, std::move(clock)));
}

void StreamClient::eos(std::uint32_t slot) { enqueue(make_eos(slot)); }

void StreamClient::finish() { enqueue(make_finish()); }

void StreamClient::handle(const Frame& f) {
  switch (f.type) {
    case FrameType::kAck:
      if (f.ack.next_seq > acked_) {
        acked_ = f.ack.next_seq;
        while (!unacked_.empty() && unacked_.front().first < acked_)
          unacked_.pop_front();
      }
      break;
    case FrameType::kVerdict:
      verdicts_.push_back(f.verdict);
      break;
    case FrameType::kStats:
      server_stats_ = f.stats.stats;
      done_ = true;
      break;
    case FrameType::kError:
      throw std::runtime_error(f.error.message);
    default:
      // A server must only speak ack/verdict/stats/error.
      throw std::runtime_error(
          "wcp-stream parse error: client-bound stream carries frame type " +
          std::string(to_string(f.type)));
  }
}

bool StreamClient::pump(bool block) {
  bool progressed = false;
  while (!outbox_.empty() && unacked_.size() < opts_.window) {
    const std::uint64_t seq = acked_ + unacked_.size();
    transport_.send(outbox_.front());
    unacked_.emplace_back(seq, std::move(outbox_.front()));
    outbox_.pop_front();
    progressed = true;
  }
  while (std::optional<std::vector<std::uint8_t>> raw =
             transport_.receive(/*block=*/false)) {
    progressed = true;
    handle(decode_frame(*raw));
  }
  if (!progressed && block && !done_) {
    if (std::optional<std::vector<std::uint8_t>> raw =
            transport_.receive(/*block=*/true)) {
      progressed = true;
      handle(decode_frame(*raw));
    }
  }
  return progressed;
}

void StreamClient::retransmit() {
  if (unacked_.empty()) return;
  for (const auto& [seq, bytes] : unacked_) {
    (void)seq;
    transport_.send(bytes);
  }
  ++retransmits_;
}

}  // namespace wcp::serve
