#include "serve/protocol.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace wcp::serve {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw std::invalid_argument("wcp-stream parse error: " + why);
}

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + len);
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Positioned little-endian reader over one frame's bytes. `where` names
/// the frame (type + seq) in every error.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, std::string where)
      : bytes_(bytes), where_(std::move(where)) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void raw(void* p, std::size_t len, const char* what) {
    need(len, what);
    std::memcpy(p, bytes_.data() + pos_, len);
    pos_ += len;
  }

  void expect_done() {
    if (pos_ != bytes_.size()) {
      std::ostringstream os;
      os << bytes_.size() - pos_ << " trailing payload bytes in " << where_;
      fail(os.str());
    }
  }

  [[noreturn]] void error(const std::string& why) const {
    std::ostringstream os;
    os << why << " in " << where_ << " at byte " << pos_;
    fail(os.str());
  }

 private:
  void need(std::size_t len, const char* what) const {
    if (remaining() < len) {
      std::ostringstream os;
      os << "truncated " << where_ << ": need " << len << "-byte " << what
         << " at byte " << pos_ << ", have " << remaining();
      fail(os.str());
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::string where_;
  std::size_t pos_ = 0;
};

std::string frame_name(FrameType t, std::uint64_t seq) {
  std::ostringstream os;
  os << to_string(t) << " frame (seq " << seq << ")";
  return os.str();
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kSubscribe: return "subscribe";
    case FrameType::kSnapshot: return "snapshot";
    case FrameType::kEos: return "eos";
    case FrameType::kFinish: return "finish";
    case FrameType::kAck: return "ack";
    case FrameType::kVerdict: return "verdict";
    case FrameType::kStats: return "stats";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

const char* to_string(StreamAlgo a) {
  switch (a) {
    case StreamAlgo::kToken: return "token";
    case StreamAlgo::kChecker: return "checker";
    case StreamAlgo::kLatticeOnline: return "lattice-online";
    case StreamAlgo::kSlicer: return "slicer";
  }
  return "unknown";
}

StreamAlgo stream_algo_from_string(const std::string& name) {
  if (name == "token") return StreamAlgo::kToken;
  if (name == "checker") return StreamAlgo::kChecker;
  if (name == "lattice-online") return StreamAlgo::kLatticeOnline;
  if (name == "slicer") return StreamAlgo::kSlicer;
  throw std::invalid_argument("unknown stream algo '" + name +
                              "' (token|checker|lattice-online|slicer)");
}

Frame make_hello(std::uint32_t slots, std::uint32_t num_predicates) {
  Frame f;
  f.type = FrameType::kHello;
  f.hello = HelloBody{kStreamVersion, slots, num_predicates};
  return f;
}

Frame make_subscribe(std::uint32_t sub_id, StreamAlgo algo,
                     std::uint32_t pred_index, std::int64_t max_cuts) {
  Frame f;
  f.type = FrameType::kSubscribe;
  f.subscribe = SubscribeBody{sub_id, algo, pred_index, max_cuts};
  return f;
}

Frame make_snapshot(std::uint32_t slot, std::uint64_t pred_mask,
                    std::vector<StateIndex> clock) {
  Frame f;
  f.type = FrameType::kSnapshot;
  f.snapshot.slot = slot;
  f.snapshot.pred_mask = pred_mask;
  f.snapshot.clock = std::move(clock);
  return f;
}

Frame make_eos(std::uint32_t slot) {
  Frame f;
  f.type = FrameType::kEos;
  f.eos.slot = slot;
  return f;
}

Frame make_finish() {
  Frame f;
  f.type = FrameType::kFinish;
  return f;
}

Frame make_ack(std::uint64_t next_seq) {
  Frame f;
  f.type = FrameType::kAck;
  f.ack.next_seq = next_seq;
  return f;
}

Frame make_verdict(std::uint32_t sub_id, bool detected, bool truncated,
                   std::vector<StateIndex> cut) {
  Frame f;
  f.type = FrameType::kVerdict;
  f.verdict.sub_id = sub_id;
  f.verdict.detected = detected;
  f.verdict.truncated = truncated;
  f.verdict.cut = std::move(cut);
  return f;
}

Frame make_stats(const ServeStats& stats) {
  Frame f;
  f.type = FrameType::kStats;
  f.stats.stats = stats;
  return f;
}

Frame make_error(std::string message) {
  Frame f;
  f.type = FrameType::kError;
  f.error.message = std::move(message);
  return f;
}

std::vector<std::uint8_t> encode_frame(const Frame& f, std::uint64_t seq) {
  Writer payload;
  switch (f.type) {
    case FrameType::kHello:
      payload.bytes(kStreamMagic, sizeof(kStreamMagic));
      payload.u32(f.hello.version);
      payload.u32(f.hello.slots);
      payload.u32(f.hello.num_predicates);
      break;
    case FrameType::kSubscribe:
      payload.u32(f.subscribe.sub_id);
      payload.u8(static_cast<std::uint8_t>(f.subscribe.algo));
      payload.u32(f.subscribe.pred_index);
      payload.i64(f.subscribe.max_cuts);
      break;
    case FrameType::kSnapshot:
      payload.u32(f.snapshot.slot);
      payload.u64(f.snapshot.pred_mask);
      for (const StateIndex c : f.snapshot.clock)
        payload.u64(static_cast<std::uint64_t>(c));
      break;
    case FrameType::kEos:
      payload.u32(f.eos.slot);
      break;
    case FrameType::kFinish:
      break;
    case FrameType::kAck:
      payload.u64(f.ack.next_seq);
      break;
    case FrameType::kVerdict: {
      payload.u32(f.verdict.sub_id);
      std::uint8_t flags = 0;
      if (f.verdict.detected) flags |= 1;
      if (f.verdict.truncated) flags |= 2;
      payload.u8(flags);
      payload.u32(static_cast<std::uint32_t>(f.verdict.cut.size()));
      for (const StateIndex c : f.verdict.cut)
        payload.u64(static_cast<std::uint64_t>(c));
      break;
    }
    case FrameType::kStats: {
      const auto values = f.stats.stats.values();
      payload.u32(static_cast<std::uint32_t>(values.size()));
      for (const std::int64_t v : values) payload.i64(v);
      break;
    }
    case FrameType::kError:
      payload.u32(static_cast<std::uint32_t>(f.error.message.size()));
      payload.bytes(f.error.message.data(), f.error.message.size());
      break;
  }
  auto body = payload.take();

  Writer w;
  w.u32(static_cast<std::uint32_t>(kFrameOverhead + body.size()));
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(f.type));
  w.bytes(body.data(), body.size());
  return w.take();
}

FrameHeader peek_header(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, "frame header");
  if (bytes.size() < 4) {
    std::ostringstream os;
    os << "truncated frame header: need 4-byte length, have " << bytes.size();
    fail(os.str());
  }
  FrameHeader h;
  h.length = r.u32();
  if (h.length < kFrameOverhead || h.length > kMaxFrameLength) {
    std::ostringstream os;
    os << "frame length " << h.length << " out of range [" << kFrameOverhead
       << ", " << kMaxFrameLength << "]";
    fail(os.str());
  }
  if (bytes.size() < 4u + h.length) {
    std::ostringstream os;
    os << "truncated frame: length field promises " << h.length
       << " bytes, have " << bytes.size() - 4;
    fail(os.str());
  }
  h.seq = r.u64();
  const std::uint8_t t = r.u8();
  if (t < static_cast<std::uint8_t>(FrameType::kHello) ||
      t > static_cast<std::uint8_t>(FrameType::kError)) {
    std::ostringstream os;
    os << "unknown frame type " << int(t) << " (seq " << h.seq << ")";
    fail(os.str());
  }
  h.type = static_cast<FrameType>(t);
  return h;
}

Frame decode_frame(std::span<const std::uint8_t> bytes,
                   std::uint32_t snapshot_slots) {
  const FrameHeader h = peek_header(bytes);
  if (bytes.size() != 4u + h.length) {
    std::ostringstream os;
    os << bytes.size() - 4 - h.length << " trailing bytes after "
       << frame_name(h.type, h.seq);
    fail(os.str());
  }

  Frame f;
  f.seq = h.seq;
  f.type = h.type;
  Reader r(bytes.subspan(4 + kFrameOverhead), frame_name(h.type, h.seq));

  switch (h.type) {
    case FrameType::kHello: {
      char magic[sizeof(kStreamMagic)];
      r.raw(magic, sizeof(magic), "magic");
      if (std::memcmp(magic, kStreamMagic, sizeof(magic)) != 0)
        r.error("bad magic (expected \"wcpstrm1\")");
      f.hello.version = r.u32();
      if (f.hello.version != kStreamVersion) {
        std::ostringstream os;
        os << "unsupported version " << f.hello.version << " (expected "
           << kStreamVersion << ")";
        r.error(os.str());
      }
      f.hello.slots = r.u32();
      if (f.hello.slots < 1 || f.hello.slots > kMaxSlots) {
        std::ostringstream os;
        os << "slot count " << f.hello.slots << " out of range [1, "
           << kMaxSlots << "]";
        r.error(os.str());
      }
      f.hello.num_predicates = r.u32();
      if (f.hello.num_predicates < 1 ||
          f.hello.num_predicates > kMaxPredicates) {
        std::ostringstream os;
        os << "predicate count " << f.hello.num_predicates
           << " out of range [1, " << kMaxPredicates << "]";
        r.error(os.str());
      }
      break;
    }
    case FrameType::kSubscribe: {
      f.subscribe.sub_id = r.u32();
      const std::uint8_t a = r.u8();
      if (a < static_cast<std::uint8_t>(StreamAlgo::kToken) ||
          a > static_cast<std::uint8_t>(StreamAlgo::kSlicer)) {
        std::ostringstream os;
        os << "unknown algo " << int(a);
        r.error(os.str());
      }
      f.subscribe.algo = static_cast<StreamAlgo>(a);
      f.subscribe.pred_index = r.u32();
      f.subscribe.max_cuts = r.i64();
      break;
    }
    case FrameType::kSnapshot: {
      f.snapshot.slot = r.u32();
      f.snapshot.pred_mask = r.u64();
      if (r.remaining() % 8 != 0) {
        std::ostringstream os;
        os << "clock payload of " << r.remaining()
           << " bytes is not a whole number of u64 components";
        r.error(os.str());
      }
      const std::size_t width = r.remaining() / 8;
      if (snapshot_slots > 0 && width != snapshot_slots) {
        std::ostringstream os;
        os << "clock has " << width << " components, session has "
           << snapshot_slots << " slots";
        r.error(os.str());
      }
      f.snapshot.clock.resize(width);
      for (std::size_t t = 0; t < width; ++t) {
        const std::uint64_t c = r.u64();
        if (c > 0x7FFFFFFFFFFFFFFFull) {
          std::ostringstream os;
          os << "clock component " << t << " overflows";
          r.error(os.str());
        }
        f.snapshot.clock[t] = static_cast<StateIndex>(c);
      }
      break;
    }
    case FrameType::kEos:
      f.eos.slot = r.u32();
      break;
    case FrameType::kFinish:
      break;
    case FrameType::kAck:
      f.ack.next_seq = r.u64();
      break;
    case FrameType::kVerdict: {
      f.verdict.sub_id = r.u32();
      const std::uint8_t flags = r.u8();
      if (flags > 3) {
        std::ostringstream os;
        os << "unknown verdict flags " << int(flags);
        r.error(os.str());
      }
      f.verdict.detected = (flags & 1) != 0;
      f.verdict.truncated = (flags & 2) != 0;
      const std::uint32_t len = r.u32();
      if (len > kMaxSlots) {
        std::ostringstream os;
        os << "cut length " << len << " out of range [0, " << kMaxSlots
           << "]";
        r.error(os.str());
      }
      f.verdict.cut.resize(len);
      for (std::uint32_t i = 0; i < len; ++i)
        f.verdict.cut[i] = static_cast<StateIndex>(r.u64());
      break;
    }
    case FrameType::kStats: {
      const std::uint32_t count = r.u32();
      if (count > 1024) {
        std::ostringstream os;
        os << "stats count " << count << " out of range [0, 1024]";
        r.error(os.str());
      }
      std::vector<std::int64_t> values(count);
      for (std::uint32_t i = 0; i < count; ++i) values[i] = r.i64();
      f.stats.stats = ServeStats::from_values(values);
      break;
    }
    case FrameType::kError: {
      const std::uint32_t len = r.u32();
      if (len != r.remaining()) {
        std::ostringstream os;
        os << "message length " << len << " disagrees with payload ("
           << r.remaining() << " bytes left)";
        r.error(os.str());
      }
      f.error.message.resize(len);
      r.raw(f.error.message.data(), len, "message");
      break;
    }
  }
  r.expect_done();
  return f;
}

void FrameAssembler::feed(std::span<const std::uint8_t> bytes) {
  // Compact once the consumed prefix dominates the buffer.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameAssembler::next() {
  const std::size_t avail = buf_.size() - off_;
  if (avail < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= std::uint32_t(buf_[off_ + static_cast<std::size_t>(i)])
              << (8 * i);
  if (length < kFrameOverhead || length > kMaxFrameLength) {
    std::ostringstream os;
    os << "frame length " << length << " out of range [" << kFrameOverhead
       << ", " << kMaxFrameLength << "]";
    fail(os.str());
  }
  if (avail < 4u + length) return std::nullopt;
  std::vector<std::uint8_t> frame(buf_.begin() + static_cast<std::ptrdiff_t>(off_),
                                  buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4 + length));
  off_ += 4u + length;
  return frame;
}

}  // namespace wcp::serve
