#include "serve/server.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace wcp::serve {

ConnectionResult serve_connection(Transport& transport,
                                  const ServeOptions& opts) {
  Session session(opts, [&transport](std::vector<std::uint8_t> bytes) {
    transport.send(bytes);
  });
  ConnectionResult result;
  try {
    while (!session.finished()) {
      std::optional<std::vector<std::uint8_t>> raw =
          transport.receive(/*block=*/true);
      if (!raw) break;  // peer closed mid-stream
      session.on_frame(*raw);
    }
    result.clean = session.finished();
  } catch (const std::invalid_argument& e) {
    result.error = e.what();
    try {
      transport.send(encode_frame(make_error(e.what()), /*seq=*/0));
    } catch (...) {
      // Best effort: the peer may already be gone.
    }
  }
  result.stats = session.stats();
  transport.close();
  return result;
}

}  // namespace wcp::serve
