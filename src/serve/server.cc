#include "serve/server.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace wcp::serve {

ConnectionDriver::ConnectionDriver(Transport& transport,
                                   const ServeOptions& opts)
    : transport_(transport),
      session_(opts, [this](std::vector<std::uint8_t> bytes) {
        transport_.send(std::move(bytes));
      }) {}

bool ConnectionDriver::on_frame(std::span<const std::uint8_t> bytes) {
  if (done_) return false;
  try {
    session_.on_frame(bytes);
  } catch (const std::invalid_argument& e) {
    fail_protocol(e.what());
    return false;
  }
  if (session_.finished()) {
    result_.clean = true;
    finalize();
    return false;
  }
  return true;
}

void ConnectionDriver::on_peer_closed() {
  if (done_) return;
  result_.clean = session_.finished();
  finalize();
}

void ConnectionDriver::fail_protocol(const std::string& what) {
  if (done_) return;
  result_.error = what;
  try {
    transport_.send(encode_frame(make_error(what), /*seq=*/0));
  } catch (...) {
    // Best effort: the peer may already be gone.
  }
  finalize();
}

void ConnectionDriver::on_transport_error(const std::string& what) {
  if (done_) return;
  if (result_.error.empty()) result_.error = what;
  finalize();
}

void ConnectionDriver::finalize() {
  result_.stats = session_.stats();
  done_ = true;
}

ConnectionResult serve_connection(Transport& transport,
                                  const ServeOptions& opts) {
  ConnectionDriver driver(transport, opts);
  try {
    while (!driver.done()) {
      std::optional<std::vector<std::uint8_t>> raw =
          transport.receive(/*block=*/true);
      if (!raw) {
        driver.on_peer_closed();
        break;
      }
      driver.on_frame(*raw);
    }
  } catch (const std::invalid_argument& e) {
    driver.fail_protocol(e.what());
  } catch (const std::exception& e) {
    driver.on_transport_error(e.what());
  }
  transport.close();
  return driver.result();
}

}  // namespace wcp::serve
