// Frame transports for the streaming service.
//
// A Transport moves whole raw frames (length prefix included) in both
// directions. Two backends:
//
//   - PipeTransport (here): an in-process bidirectional queue pair for
//     deterministic tests and the `wcp_cli stream` replay path. The
//     client->server direction can be wired to a sim::FaultPlan — the PR-3
//     fault model reused at the frame layer: per-frame drop (probabilistic
//     and exact-index), duplication, and pipe-specific adjacent reordering,
//     all sampled from a wcp::Rng seeded by the plan. The server's
//     resequencer plus the client's retransmission must reproduce exactly
//     the verdicts of a clean run (tests/serve_session_test.cc).
//
//   - TcpTransport (serve/tcp.h): a socket for the real daemon.
//
// Thread safety: a PipePair may be driven from two threads (one per end);
// every queue operation locks the pair's mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "sim/fault.h"

namespace wcp::serve {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one raw frame for the peer.
  virtual void send(std::vector<std::uint8_t> frame) = 0;
  /// Next raw frame from the peer, or nullopt if none is pending (never
  /// blocks on the pipe backend; the TCP backend blocks only if `block`).
  virtual std::optional<std::vector<std::uint8_t>> receive(bool block) = 0;
  /// The peer closed its end (no more frames will arrive once drained).
  [[nodiscard]] virtual bool closed() const = 0;
  virtual void close() = 0;
};

/// Fault schedule for the client->server direction of a pipe.
struct PipeFaults {
  sim::FaultPlan plan;   // drop / drop_exact / dup honored at frame level
  double reorder = 0.0;  ///< probability a frame swaps with its predecessor

  [[nodiscard]] bool enabled() const {
    return plan.drop > 0 || plan.dup > 0 || !plan.drop_exact.empty() ||
           reorder > 0;
  }
};

/// Counters of what the fault injection actually did (client->server).
struct PipeFaultCounters {
  std::int64_t sent = 0;  ///< send() calls (transmission attempts)
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t reordered = 0;
};

namespace internal {
struct PipeShared;
}  // namespace internal

/// One end of an in-process pipe. The client end's sends traverse the
/// fault injector; the server end's sends (acks, verdicts) are reliable —
/// faults on the return path only delay acks, which the retransmission
/// logic already covers, so the interesting failure modes are all in the
/// forward direction.
class PipeTransport final : public Transport {
 public:
  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive(bool block) override;
  [[nodiscard]] bool closed() const override;
  void close() override;

 private:
  friend std::pair<std::unique_ptr<PipeTransport>,
                   std::unique_ptr<PipeTransport>>
  make_pipe(const PipeFaults&);
  friend PipeFaultCounters pipe_fault_counters(const PipeTransport&);

  std::shared_ptr<internal::PipeShared> shared_;
  bool is_client_ = false;
};

/// Creates a connected (client, server) transport pair. `faults` applies
/// to client->server frames only.
[[nodiscard]] std::pair<std::unique_ptr<PipeTransport>,
                        std::unique_ptr<PipeTransport>>
make_pipe(const PipeFaults& faults = {});

/// What the injector did so far on the pair this end belongs to.
[[nodiscard]] PipeFaultCounters pipe_fault_counters(const PipeTransport& t);

}  // namespace wcp::serve
