#include "serve/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/error.h"

namespace wcp::serve {

namespace {

std::size_t resolve_loop_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 4);
}

}  // namespace

struct EventLoopServer::Conn {
  std::unique_ptr<TcpTransport> transport;
  ConnectionDriver driver;
  std::int64_t id = 0;
  std::uint32_t armed = EPOLLIN;  // events currently registered

  Conn(std::unique_ptr<TcpTransport> t, const ServeOptions& opts,
       std::int64_t conn_id)
      : transport(std::move(t)), driver(*transport, opts), id(conn_id) {}
};

struct EventLoopServer::Loop {
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;
  std::mutex mu;
  std::vector<std::unique_ptr<Conn>> incoming;  // handed off by the acceptor
  std::unordered_map<int, std::unique_ptr<Conn>> conns;  // keyed by fd

  ~Loop() {
    conns.clear();  // transports close their fds before the epfd goes
    if (epfd >= 0) ::close(epfd);
    if (wakefd >= 0) ::close(wakefd);
  }
};

EventLoopServer::EventLoopServer(TcpListener& listener, EventLoopOptions opts,
                                 Report report)
    : listener_(listener), opts_(std::move(opts)), report_(std::move(report)) {
  opts_.loop_threads = resolve_loop_threads(opts_.loop_threads);
}

EventLoopServer::~EventLoopServer() {
  stop();
  for (const auto& loop : loops_)
    if (loop->thread.joinable()) loop->thread.join();
}

std::int64_t EventLoopServer::served() const {
  std::lock_guard lock(done_mu_);
  return served_;
}

void EventLoopServer::wake(Loop& loop) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop.wakefd, &one, sizeof(one));
}

void EventLoopServer::run(std::int64_t once) {
  WCP_REQUIRE(!started_, "EventLoopServer::run may only be called once");
  started_ = true;
  once_ = once;
  listener_.set_nonblocking();

  for (std::size_t i = 0; i < opts_.loop_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epfd = ::epoll_create1(0);
    if (loop->epfd < 0)
      throw std::runtime_error(std::string("epoll_create1: ") +
                               std::strerror(errno));
    loop->wakefd = ::eventfd(0, EFD_NONBLOCK);
    if (loop->wakefd < 0)
      throw std::runtime_error(std::string("eventfd: ") +
                               std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = loop.get();  // wake tag: the loop itself
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakefd, &ev) < 0)
      throw std::runtime_error(std::string("epoll_ctl add wakefd: ") +
                               std::strerror(errno));
    loops_.push_back(std::move(loop));
  }
  {
    // The listener lives on loop 0, tagged with `this`.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = this;
    if (::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, listener_.fd(), &ev) < 0)
      throw std::runtime_error(std::string("epoll_ctl add listener: ") +
                               std::strerror(errno));
  }
  for (std::size_t i = 0; i < loops_.size(); ++i)
    loops_[i]->thread = std::thread([this, i] { loop_main(i); });

  {
    std::unique_lock lock(done_mu_);
    done_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             (once_ > 0 && served_ >= once_);
    });
  }
  stop_.store(true, std::memory_order_release);
  for (const auto& loop : loops_) wake(*loop);
  for (const auto& loop : loops_)
    if (loop->thread.joinable()) loop->thread.join();
}

void EventLoopServer::stop() {
  {
    // The store must happen under done_mu_: run()'s wait predicate reads
    // stop_, and a store between the predicate evaluating false and the
    // waiter blocking would make this notify a lost wakeup — run() would
    // sleep forever once the last connection has been retired.
    std::lock_guard lock(done_mu_);
    stop_.store(true, std::memory_order_release);
  }
  done_cv_.notify_all();
  for (const auto& loop : loops_) wake(*loop);
}

void EventLoopServer::loop_main(std::size_t index) {
  Loop& loop = *loops_[index];
  std::array<epoll_event, 128> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epfd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      if (stop_.load(std::memory_order_acquire)) return;
      void* tag = events[static_cast<std::size_t>(i)].data.ptr;
      if (tag == &loop) {
        // Wakeup: drain the eventfd, adopt handed-off connections.
        std::uint64_t tickets = 0;
        while (::read(loop.wakefd, &tickets, sizeof(tickets)) > 0) {
        }
        adopt_incoming(loop);
        continue;
      }
      if (tag == this) {
        on_accept(loop);
        continue;
      }
      handle_conn(loop, static_cast<Conn*>(tag),
                  events[static_cast<std::size_t>(i)].events);
    }
  }
}

void EventLoopServer::on_accept(Loop& loop) {
  for (;;) {
    if (once_ > 0 && accepted_ >= once_) {
      // Quota reached: deregister the listener, or any connection still
      // parked in the backlog keeps its level-triggered readiness firing
      // and spins loop 0 at 100% CPU until the served quota completes.
      if (!listener_retired_) {
        listener_retired_ = true;
        ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      }
      return;
    }
    bool pressure = false;
    std::unique_ptr<TcpTransport> transport = listener_.try_accept(&pressure);
    if (!transport) {
      if (pressure)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return;
    }
    transport->set_nonblocking();
    if (opts_.so_sndbuf > 0)
      ::setsockopt(transport->fd(), SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                   sizeof(opts_.so_sndbuf));
    auto conn = std::make_unique<Conn>(std::move(transport), opts_.serve,
                                       accepted_++);
    Loop& target = *loops_[static_cast<std::size_t>(conn->id) %
                           loops_.size()];
    if (&target == &loop) {
      add_conn(target, std::move(conn));
    } else {
      {
        std::lock_guard lock(target.mu);
        target.incoming.push_back(std::move(conn));
      }
      wake(target);
    }
  }
}

void EventLoopServer::adopt_incoming(Loop& loop) {
  std::vector<std::unique_ptr<Conn>> batch;
  {
    std::lock_guard lock(loop.mu);
    batch.swap(loop.incoming);
  }
  for (auto& conn : batch) add_conn(loop, std::move(conn));
}

void EventLoopServer::add_conn(Loop& loop, std::unique_ptr<Conn> conn) {
  const int fd = conn->transport->fd();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  conn->armed = EPOLLIN;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    // Registration failed (pathological fd state): fail the connection
    // rather than leak it.
    conn->driver.on_transport_error(std::string("epoll_ctl add: ") +
                                    std::strerror(errno));
    Conn* raw = conn.get();
    loop.conns.emplace(fd, std::move(conn));
    retire(loop, raw);
    return;
  }
  loop.conns.emplace(fd, std::move(conn));
}

void EventLoopServer::handle_conn(Loop& loop, Conn* conn,
                                  std::uint32_t events) {
  TcpTransport& t = *conn->transport;
  // The loop must survive anything a single connection throws — protocol
  // violations become ERROR frames, everything else (transport failures,
  // an exception escaping a detection core) fails just this connection.
  try {
    if (events & EPOLLOUT) t.flush();
    // The drive loop runs on EVERY wakeup, not just readable ones: the
    // nonblocking fill may have parked complete frames in the frame
    // assembler before backpressure paused processing, and buffered
    // frames never re-trigger EPOLLIN (level-triggered readiness is
    // about socket bytes, not assembler contents). The EPOLLOUT flush
    // that brings pending_out() back under the high-water mark must
    // therefore resume the loop itself, or a client that has already
    // sent its whole stream strands forever on an empty socket. The
    // backpressure invariant that keeps this live: leaving frames parked
    // implies pending_out() > write_high_water, which arms EPOLLOUT, so
    // a future wakeup is always scheduled.
    while (!conn->driver.done() &&
           t.pending_out() <= opts_.write_high_water) {
      std::optional<std::vector<std::uint8_t>> raw =
          t.receive(/*block=*/false);
      if (!raw) break;
      conn->driver.on_frame(*raw);
    }
    if (!conn->driver.done() && t.closed()) conn->driver.on_peer_closed();
  } catch (const std::invalid_argument& e) {
    conn->driver.fail_protocol(e.what());
  } catch (const std::exception& e) {
    conn->driver.on_transport_error(e.what());
  }
  finish_or_rearm(loop, conn);
}

void EventLoopServer::finish_or_rearm(Loop& loop, Conn* conn) {
  TcpTransport& t = *conn->transport;
  if (conn->driver.done()) {
    // Drain the remaining output (stats / error frame) before closing;
    // if the kernel will not take it now, wait for EPOLLOUT.
    bool drained = true;
    if (!t.closed() && t.pending_out() > 0) {
      try {
        drained = t.flush();
      } catch (...) {
        drained = true;  // peer gone: nothing left to deliver
      }
    }
    if (drained || t.closed()) {
      retire(loop, conn);
      return;
    }
  }
  std::uint32_t want =
      conn->driver.done() ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  if (t.pending_out() > opts_.write_high_water)
    want &= ~static_cast<std::uint32_t>(EPOLLIN);  // backpressure: stop reading
  if (t.pending_out() > 0) want |= EPOLLOUT;
  if (want != conn->armed) {
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = conn;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, t.fd(), &ev) < 0) {
      // A failed MOD leaves the kernel registration out of sync with
      // `armed` and would silently stall the connection; fail it loudly
      // instead, mirroring the add_conn failure path. (No-op on a driver
      // that already finished but could not drain.)
      conn->driver.on_transport_error(std::string("epoll_ctl mod: ") +
                                      std::strerror(errno));
      retire(loop, conn);
      return;
    }
    conn->armed = want;
  }
}

void EventLoopServer::retire(Loop& loop, Conn* conn) {
  const int fd = conn->transport->fd();
  if (fd >= 0) ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, fd, nullptr);
  {
    // Serialized: concurrent loops never interleave report output.
    std::lock_guard lock(report_mu_);
    if (report_) {
      try {
        report_(conn->id, conn->driver.result());
      } catch (...) {
        // A reporting failure must not take down the loop.
      }
    }
  }
  conn->transport->close();
  loop.conns.erase(fd);  // destroys conn
  {
    std::lock_guard lock(done_mu_);
    ++served_;
  }
  done_cv_.notify_all();
}

}  // namespace wcp::serve
