#include "serve/stream_buffer.h"

#include <algorithm>

#include "common/error.h"

namespace wcp::serve {

StreamBuffer::StreamBuffer(std::size_t slots) {
  WCP_REQUIRE(slots >= 1, "stream buffer needs at least one slot");
  cols_.resize(slots);
}

void StreamBuffer::append(std::size_t s, const std::vector<StateIndex>& clock,
                          std::uint64_t pred_mask) {
  Col& c = cols_[s];
  WCP_CHECK(clock.size() == slots());
  for (const StateIndex v : clock) {
    WCP_CHECK_MSG(v >= 0 && v <= 0xFFFFFFFF,
                  "clock component " << v << " exceeds packed 32-bit range");
    c.clocks.push_back(static_cast<std::uint32_t>(v));
  }
  c.masks.push_back(pred_mask);
  ++appended_;
  peak_retained_ = std::max(peak_retained_, retained());
  peak_bytes_ = std::max(peak_bytes_, bytes_in_use());
}

void StreamBuffer::trim(std::size_t s, StateIndex floor) {
  Col& c = cols_[s];
  const StateIndex hi = c.base + static_cast<StateIndex>(c.masks.size());
  const StateIndex target = std::min(std::max(floor, c.base), hi);
  const auto rows = static_cast<std::size_t>(target - c.base);
  if (rows == 0) return;
  c.clocks.erase(c.clocks.begin(),
                 c.clocks.begin() + static_cast<std::ptrdiff_t>(rows * slots()));
  c.masks.erase(c.masks.begin(),
                c.masks.begin() + static_cast<std::ptrdiff_t>(rows));
  c.base = target;
  retired_ += static_cast<std::int64_t>(rows);
}

std::int64_t StreamBuffer::bytes_in_use() const {
  std::int64_t b = 0;
  for (const Col& c : cols_)
    b += static_cast<std::int64_t>(c.clocks.size() * sizeof(std::uint32_t) +
                                   c.masks.size() * sizeof(std::uint64_t));
  return b;
}

}  // namespace wcp::serve
