// One client connection of the streaming detection service.
//
// A Session is a push-driven state machine: the connection loop hands it
// complete raw frames (in whatever order the transport produced them) and
// it emits encoded response frames through its output callback. Inside:
//
//   1. Resequencer — frames carry per-connection sequence numbers; the
//      session applies them strictly in order, stashing out-of-order
//      arrivals (bounded by ServeOptions::reseq_window — the backpressure
//      bound) and discarding duplicates. Every processed frame is answered
//      with a cumulative ACK, so the client can drop its retransmission
//      buffer and detect losses.
//
//   2. Subscriptions — HELLO declares slots and a predicate count;
//      SUBSCRIBE attaches one detection core (token, centralized,
//      lattice-online, slicer — detect/stream_core.h, slice/online_slicer.h)
//      to one predicate bit. All cores share the session's StreamBuffer;
//      each reads it through its own SubscriptionView. A VERDICT frame is
//      emitted the moment a core's verdict becomes final.
//
//   3. Frontier GC — every gc_every snapshots the session computes the
//      global-min frontier across live subscriptions, trims the shared
//      buffer below it, and tells each core to collect its own sub-frontier
//      state (the lattice core's visited arena). Invariant: for every slot
//      s, base(s) <= min over live cores of core->frontier(s); since a
//      core's frontier is non-decreasing and it never reads below its
//      frontier, no retired snapshot is ever referenced again. See
//      ALGORITHMS.md §14 for the safety argument.
//
// Any protocol violation throws std::invalid_argument with the
// "wcp-stream parse error:" prefix; the connection loop (server.h) turns
// it into an ERROR frame and closes the connection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "app/state_stream.h"
#include "serve/protocol.h"
#include "serve/serve_stats.h"
#include "serve/stream_buffer.h"

namespace wcp::serve {

struct ServeOptions {
  /// Snapshots between frontier-GC rounds (0 disables GC).
  std::size_t gc_every = 64;
  /// Max out-of-order frames stashed before the connection is failed.
  std::size_t reseq_window = 256;
  /// Default cut budget for lattice-online subscriptions that pass
  /// max_cuts < 0 (guards the daemon against O(m^n) blowup; <0: unbounded).
  std::int64_t lattice_max_cuts = 1'000'000;
};

class Session {
 public:
  using Output = std::function<void(std::vector<std::uint8_t>)>;

  Session(ServeOptions opts, Output out);
  ~Session();

  /// Feed one complete raw frame (length prefix included). May emit any
  /// number of output frames. Throws std::invalid_argument on malformed or
  /// out-of-protocol input.
  void on_frame(std::span<const std::uint8_t> bytes);

  /// FINISH processed: stats emitted, no further frames expected.
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  /// Verdicts emitted so far, in subscription order.
  [[nodiscard]] const std::vector<VerdictBody>& verdicts() const {
    return verdicts_;
  }

 private:
  struct Subscription {
    std::uint32_t id = 0;
    StreamAlgo algo = StreamAlgo::kToken;
    std::uint32_t pred_index = 0;
    std::unique_ptr<SubscriptionView> view;
    std::unique_ptr<app::StreamCore> core;
    bool reported = false;
  };

  void apply(const Frame& f);
  void apply_hello(const HelloBody& h, std::uint64_t seq);
  void apply_subscribe(const SubscribeBody& b, std::uint64_t seq);
  void apply_snapshot(const SnapshotBody& b, std::uint64_t seq);
  void apply_eos(std::uint32_t slot, std::uint64_t seq);
  void apply_finish(std::uint64_t seq);
  void eos_slot(std::size_t s);
  void report_new_verdicts();
  void maybe_gc();
  void gc_round();
  void sample_checker_bytes();
  void emit(const Frame& f);

  [[noreturn]] static void violation(const std::string& why,
                                     std::uint64_t seq);

  ServeOptions opts_;
  Output out_;
  ServeStats stats_;

  // Resequencer.
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;
  std::uint64_t out_seq_ = 0;

  // Stream state (established by HELLO).
  bool hello_seen_ = false;
  std::uint32_t num_predicates_ = 0;
  std::unique_ptr<StreamBuffer> buffer_;
  std::vector<Subscription> subs_;
  bool snapshots_started_ = false;
  std::size_t open_slots_ = 0;  // slots without eos
  std::size_t snaps_since_gc_ = 0;
  std::vector<StateIndex> floors_;  // gc scratch

  std::vector<VerdictBody> verdicts_;
  bool finished_ = false;
};

}  // namespace wcp::serve
