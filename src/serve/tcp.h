// TCP backend for the `wcp-stream 1` transport abstraction.
//
// A TcpTransport wraps one connected socket: send() writes a frame's bytes
// whole, receive() reassembles frames from the byte stream with a
// FrameAssembler (TCP has no message boundaries). TcpListener binds a
// loopback listener — port 0 picks an ephemeral port, reported by port(),
// which is how the tests avoid colliding with anything on the host.
//
// Everything here is plain POSIX sockets; no external dependencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace wcp::serve {

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive(bool block) override;
  [[nodiscard]] bool closed() const override;
  void close() override;

 private:
  /// Reads whatever the socket has; returns false on EOF/error.
  bool fill(bool block);

  int fd_;
  FrameAssembler assembler_;
  bool peer_closed_ = false;
};

class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Throws
  /// std::runtime_error if the bind fails (tests treat that as a skip).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  std::unique_ptr<TcpTransport> accept();

 private:
  int fd_;
  std::uint16_t port_;
};

/// Connects to host:port; throws std::runtime_error on failure.
std::unique_ptr<TcpTransport> tcp_connect(const std::string& host,
                                          std::uint16_t port);

}  // namespace wcp::serve
