// TCP backend for the `wcp-stream 1` transport abstraction.
//
// A TcpTransport wraps one connected socket. send() queues a frame's bytes
// and pushes as much as the kernel will take; in blocking mode that is the
// whole frame, in nonblocking mode the unaccepted tail stays in an internal
// write buffer that flush() (or the next send) drains. A socket error on
// the send path is surfaced as std::runtime_error — a frame is delivered
// whole or the caller learns why it was not; it is never silently
// truncated, which would desync the peer's frame assembler. receive()
// reassembles frames from the byte stream with a FrameAssembler (TCP has
// no message boundaries).
//
// TcpListener binds a loopback listener — port 0 picks an ephemeral port,
// reported by port(), which is how the tests avoid colliding with anything
// on the host. For the epoll event loop (serve/event_loop.h) the listener
// can be switched nonblocking; try_accept() then drains the accept queue
// without ever blocking a loop thread and absorbs accept-storm transients
// (aborted handshakes, fd exhaustion) instead of throwing.
//
// Everything here is plain POSIX sockets; no external dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace wcp::serve {

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Queues the frame and flushes as much as the kernel accepts. Blocking
  /// sockets return with the frame fully written. Nonblocking sockets may
  /// leave a tail in the write buffer (pending_out() > 0) — the frame is
  /// still delivered whole once flush() drains it. Throws
  /// std::runtime_error on a socket error (including send on a transport
  /// whose peer is already gone); no partial frame is ever dropped
  /// silently.
  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive(bool block) override;
  [[nodiscard]] bool closed() const override;
  void close() override;

  /// Switches the socket to O_NONBLOCK: send() buffers what the kernel
  /// rejects and receive() never blocks regardless of its `block` flag.
  void set_nonblocking();
  [[nodiscard]] bool nonblocking() const { return nonblocking_; }
  /// The underlying fd (for epoll registration); -1 once closed.
  [[nodiscard]] int fd() const { return fd_; }

  /// Drains the write buffer. Returns true when it is empty, false when
  /// the kernel buffer filled up first (nonblocking only — arm EPOLLOUT
  /// and call again when writable). Throws std::runtime_error on a socket
  /// error; the buffer is discarded then, since the stream is dead.
  bool flush();
  /// Bytes queued but not yet accepted by the kernel.
  [[nodiscard]] std::size_t pending_out() const {
    return out_.size() - out_off_;
  }

 private:
  /// Reads whatever the socket has; returns false on EOF/error/EAGAIN.
  bool fill(bool block);

  int fd_;
  bool nonblocking_ = false;
  FrameAssembler assembler_;
  bool peer_closed_ = false;
  std::vector<std::uint8_t> out_;  // buffered unwritten bytes
  std::size_t out_off_ = 0;        // consumed prefix of out_
};

class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral) with the
  /// given backlog (deep by default: an accept storm parks in the kernel
  /// queue instead of getting connection-refused). Throws
  /// std::runtime_error if the bind fails (tests treat that as a skip).
  explicit TcpListener(std::uint16_t port, int backlog = 512);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The listening fd (for epoll registration).
  [[nodiscard]] int fd() const { return fd_; }

  /// Switches the listener to O_NONBLOCK (for try_accept in an event loop).
  void set_nonblocking();

  /// Blocks until a client connects.
  std::unique_ptr<TcpTransport> accept();

  /// Accepts one pending connection, or returns nullptr when none is
  /// ready (EAGAIN) or the process is out of fds/buffers — in the latter
  /// case *resource_pressure is set so the caller can back off briefly
  /// instead of spinning on a level-triggered epoll. Client-side aborts
  /// during the handshake (ECONNABORTED) are skipped, not errors.
  std::unique_ptr<TcpTransport> try_accept(bool* resource_pressure = nullptr);

 private:
  int fd_;
  std::uint16_t port_;
};

/// Connects to host:port; throws std::runtime_error on failure.
std::unique_ptr<TcpTransport> tcp_connect(const std::string& host,
                                          std::uint16_t port);

}  // namespace wcp::serve
