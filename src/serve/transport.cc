#include "serve/transport.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace wcp::serve {

namespace internal {

struct PipeShared {
  std::mutex mu;
  std::deque<std::vector<std::uint8_t>> to_server;
  std::deque<std::vector<std::uint8_t>> to_client;
  bool client_closed = false;
  bool server_closed = false;

  PipeFaults faults;
  Rng rng{1};
  std::int64_t send_index = 0;  // client->server transmission counter
  PipeFaultCounters counters;
};

}  // namespace internal

void PipeTransport::send(std::vector<std::uint8_t> frame) {
  auto& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.mu);
  if (!is_client_) {
    // Server->client direction is reliable (see header).
    sh.to_client.push_back(std::move(frame));
    return;
  }

  const std::int64_t index = sh.send_index++;
  ++sh.counters.sent;
  const auto& plan = sh.faults.plan;
  bool drop = false;
  if (std::find(plan.drop_exact.begin(), plan.drop_exact.end(), index) !=
      plan.drop_exact.end())
    drop = true;
  if (plan.drop > 0 && sh.rng.bernoulli(plan.drop)) drop = true;
  if (drop) {
    ++sh.counters.dropped;
    return;
  }

  const bool dup = plan.dup > 0 && sh.rng.bernoulli(plan.dup);
  sh.to_server.push_back(std::move(frame));
  if (dup) {
    ++sh.counters.duplicated;
    sh.to_server.push_back(sh.to_server.back());
  }
  if (sh.faults.reorder > 0 && sh.to_server.size() >= 2 &&
      sh.rng.bernoulli(sh.faults.reorder)) {
    ++sh.counters.reordered;
    std::swap(sh.to_server.back(), sh.to_server[sh.to_server.size() - 2]);
  }
}

std::optional<std::vector<std::uint8_t>> PipeTransport::receive(bool block) {
  (void)block;  // the pipe never blocks: both ends live in one process
  auto& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.mu);
  auto& q = is_client_ ? sh.to_client : sh.to_server;
  if (q.empty()) return std::nullopt;
  auto frame = std::move(q.front());
  q.pop_front();
  return frame;
}

bool PipeTransport::closed() const {
  auto& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.mu);
  return is_client_ ? sh.server_closed : sh.client_closed;
}

void PipeTransport::close() {
  auto& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.mu);
  (is_client_ ? sh.client_closed : sh.server_closed) = true;
}

std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
make_pipe(const PipeFaults& faults) {
  WCP_REQUIRE(faults.plan.drop >= 0 && faults.plan.drop < 1,
              "pipe drop probability must be in [0, 1)");
  WCP_REQUIRE(faults.reorder >= 0 && faults.reorder <= 1,
              "pipe reorder probability must be in [0, 1]");
  auto shared = std::make_shared<internal::PipeShared>();
  shared->faults = faults;
  shared->rng.reseed(faults.plan.seed);

  auto client = std::unique_ptr<PipeTransport>(new PipeTransport());
  auto server = std::unique_ptr<PipeTransport>(new PipeTransport());
  client->shared_ = shared;
  client->is_client_ = true;
  server->shared_ = shared;
  server->is_client_ = false;
  return {std::move(client), std::move(server)};
}

PipeFaultCounters pipe_fault_counters(const PipeTransport& t) {
  auto& sh = *t.shared_;
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.counters;
}

}  // namespace wcp::serve
