// Epoll reactor hosting many `wcp-stream 1` connections on a small fixed
// set of loop threads — the replacement for thread-per-connection.
//
// Architecture:
//
//   - k loop threads (EventLoopOptions::loop_threads), each owning a
//     private epoll instance and an eventfd for wakeups. Every connection
//     belongs to exactly one loop for its whole life (round-robin at
//     accept), so connection state needs no locking — only the short
//     handoff queue from the accepting thread is mutex-protected.
//   - The listener is nonblocking and registered on loop 0. On readiness
//     the loop drains the whole accept queue (accept-storm handling:
//     aborted handshakes are skipped; fd exhaustion backs off briefly
//     instead of spinning on level-triggered readiness, with the kernel
//     backlog absorbing the burst).
//   - Each connection is a nonblocking TcpTransport plus a
//     ConnectionDriver (server.h). On EPOLLIN the loop drains complete
//     frames into the driver; the session's responses go through the
//     transport's buffered send, which never blocks a loop thread.
//
// Backpressure invariants (see docs/ALGORITHMS.md §14):
//
//   - EPOLLOUT is armed iff the connection has buffered output, so a slow
//     reader costs nothing while the kernel drains.
//   - A connection whose buffered output exceeds write_high_water stops
//     being read (EPOLLIN disarmed) until the buffer drains. Since the
//     session emits output only in response to input, buffered output is
//     bounded by write_high_water plus the burst one frame can trigger —
//     a slow or stalled client caps its own server-side memory and its
//     TCP window eventually closes, pushing the backpressure to the
//     sender.
//   - The frame-drive loop runs on every wakeup, EPOLLOUT included:
//     complete frames the nonblocking fill already pulled into the frame
//     assembler never re-trigger level-triggered EPOLLIN, so the flush
//     that clears backpressure resumes processing them itself. Frames
//     are left parked only while pending_out() exceeds the high-water
//     mark, which keeps EPOLLOUT armed — a future wakeup is always
//     scheduled, so parked frames can never strand.
//   - A frame is written whole or the connection is failed with the
//     error surfaced; there is no silent tail-drop path.
//
// Per-connection failures (protocol violations, transport errors, even an
// exception escaping a detection core) are caught at the loop boundary:
// the connection is failed and reported, the daemon survives. Completion
// reports are serialized under one mutex, so concurrent connections never
// interleave output lines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/tcp.h"

namespace wcp::serve {

struct EventLoopOptions {
  /// Loop threads multiplexing the connections (0 = auto: up to 4, bounded
  /// by hardware concurrency).
  std::size_t loop_threads = 0;
  /// Buffered-output bytes above which a connection stops being read
  /// until the kernel drains its socket (per-connection memory bound).
  std::size_t write_high_water = 1u << 20;
  /// SO_SNDBUF for accepted sockets (0 = kernel default). Shrinking it
  /// makes backpressure engage sooner; the regression tests use it to
  /// exercise the high-water path deterministically.
  int so_sndbuf = 0;
  ServeOptions serve;
};

class EventLoopServer {
 public:
  /// Called once per completed connection, serialized across loops (safe
  /// to write shared output from). May be empty.
  using Report = std::function<void(std::int64_t id,
                                    const ConnectionResult& result)>;

  /// The listener must outlive the server; it is switched nonblocking.
  EventLoopServer(TcpListener& listener, EventLoopOptions opts,
                  Report report);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Serves until stop(), or — with once > 0 — until that many
  /// connections have completed (no further ones are accepted). Blocks
  /// the calling thread; call at most once.
  void run(std::int64_t once = 0);
  /// Unblocks run() from any thread; in-flight connections are dropped.
  void stop();

  /// Connections completed (and reported) so far.
  [[nodiscard]] std::int64_t served() const;

 private:
  struct Conn;
  struct Loop;

  void loop_main(std::size_t index);
  void on_accept(Loop& loop);
  void adopt_incoming(Loop& loop);
  void add_conn(Loop& loop, std::unique_ptr<Conn> conn);
  void handle_conn(Loop& loop, Conn* conn, std::uint32_t events);
  void finish_or_rearm(Loop& loop, Conn* conn);
  void retire(Loop& loop, Conn* conn);
  static void wake(Loop& loop);

  TcpListener& listener_;
  EventLoopOptions opts_;
  Report report_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> stop_{false};
  std::int64_t once_ = 0;      // set by run() before loops start
  std::int64_t accepted_ = 0;  // touched only on loop 0's thread
  bool listener_retired_ = false;  // --once quota hit; also loop 0 only
  bool started_ = false;

  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::int64_t served_ = 0;

  std::mutex report_mu_;
};

}  // namespace wcp::serve
