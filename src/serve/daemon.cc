#include "serve/daemon.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace wcp::serve {

namespace {

/// strtoll with the full checks the old parser skipped: empty input,
/// trailing garbage ("--port xyz", "--once 4x"), overflow, and range.
std::int64_t parse_flag_int(const std::string& key, const std::string& value,
                            std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno != 0) {
    throw std::invalid_argument("wcp_served: --" + key +
                                " expects an integer, got \"" + value +
                                "\"");
  }
  if (v < lo || v > hi) {
    std::ostringstream os;
    os << "wcp_served: --" << key << " must be in [" << lo << ", " << hi
       << "], got " << v;
    throw std::invalid_argument(os.str());
  }
  return v;
}

bool is_value_flag(const std::string& key) {
  return key == "port" || key == "once" || key == "threads" ||
         key == "gc-every" || key == "window" || key == "high-water";
}

}  // namespace

DaemonOptions parse_daemon_flags(const std::vector<std::string>& args) {
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  DaemonOptions o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& s = args[i];
    if (s.rfind("--", 0) != 0)
      throw std::invalid_argument("wcp_served: unexpected argument \"" + s +
                                  "\"");
    const std::string key = s.substr(2);
    if (key == "json") {
      o.json = true;
      continue;
    }
    if (!is_value_flag(key))
      throw std::invalid_argument("wcp_served: unknown flag --" + key);
    if (i + 1 >= args.size())
      throw std::invalid_argument("wcp_served: --" + key +
                                  " requires a value");
    const std::string& value = args[++i];
    if (value.rfind("--", 0) == 0)
      throw std::invalid_argument("wcp_served: --" + key +
                                  " requires a value, got flag \"" + value +
                                  "\"");
    if (key == "port") {
      o.port = static_cast<std::uint16_t>(parse_flag_int(key, value, 0,
                                                         65535));
    } else if (key == "once") {
      o.once = parse_flag_int(key, value, 0, kI64Max);
    } else if (key == "threads") {
      o.loop.loop_threads = static_cast<std::size_t>(
          parse_flag_int(key, value, 0, 1024));
    } else if (key == "gc-every") {
      o.loop.serve.gc_every = static_cast<std::size_t>(
          parse_flag_int(key, value, 0, kI64Max));
    } else if (key == "window") {
      o.loop.serve.reseq_window = static_cast<std::size_t>(
          parse_flag_int(key, value, 1, kI64Max));
    } else if (key == "high-water") {
      o.loop.write_high_water = static_cast<std::size_t>(
          parse_flag_int(key, value, 4096, kI64Max));
    }
  }
  return o;
}

std::string daemon_usage() {
  return
      "usage: wcp_served [--port p] [--once k] [--threads t] [--gc-every k]\n"
      "                  [--window w] [--high-water bytes] [--json]\n"
      "  --port p        listen port (0 = kernel-assigned ephemeral; "
      "default 7410)\n"
      "  --once k        exit after serving k connections (0 = run forever)\n"
      "  --threads t     epoll loop threads (default 0 = auto)\n"
      "  --gc-every k    snapshots between frontier-GC rounds (0 disables "
      "GC)\n"
      "  --window w      resequencing window (max out-of-order frames "
      "buffered)\n"
      "  --high-water b  per-connection buffered-output bytes before reads "
      "pause\n"
      "  --json          per-connection wcp-run-report/1 lines on stdout\n";
}

void report_connection(std::ostream& out, std::int64_t id,
                       const ConnectionResult& r, bool as_json) {
  std::ostringstream line;
  if (as_json) {
    json::Writer w(line, /*indent=*/0);  // one connection = one line
    w.begin_object();
    w.key("schema").value("wcp-run-report/1");
    w.key("name").value("served:connection");
    w.key("connection").value(id);
    w.key("clean").value(r.clean ? 1 : 0);
    if (!r.error.empty()) w.key("error").value(r.error);
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : r.stats.items()) w.key(name).value(value);
    w.end_object();
    w.end_object();
    line << "\n";
  } else {
    line << "connection " << id << (r.clean ? ": clean" : ": failed")
         << " frames=" << r.stats.frames_in
         << " snapshots=" << r.stats.snapshots_in
         << " subscriptions=" << r.stats.subscriptions
         << " verdicts_detected=" << r.stats.verdicts_detected
         << " gc_rounds=" << r.stats.gc_rounds
         << " states_retired=" << r.stats.states_retired;
    if (!r.error.empty()) line << " error=\"" << r.error << '"';
    line << "\n";
  }
  out << line.str();
  out.flush();
}

int run_daemon(const DaemonOptions& opts, std::ostream& out,
               std::ostream& err) {
  try {
    TcpListener listener(opts.port);
    out << "wcp_served: listening on 127.0.0.1:" << listener.port() << "\n";
    out.flush();

    EventLoopServer server(
        listener, opts.loop,
        [&out, as_json = opts.json](std::int64_t id,
                                    const ConnectionResult& r) {
          report_connection(out, id, r, as_json);
        });
    server.run(opts.once);
    return 0;
  } catch (const std::exception& e) {
    err << "wcp_served: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace wcp::serve
