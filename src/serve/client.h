// Client side of a `wcp-stream 1` connection.
//
// The client enqueues logical frames (hello/subscribe/snapshot/eos/finish),
// stamps sequence numbers, and pump() moves the stream forward: it sends
// while the unacked window has room and drains incoming server frames
// (acks advance the window and release the retransmission buffer; verdicts
// and stats are collected; an ERROR frame raises std::runtime_error with
// the server's message).
//
// Loss recovery mirrors sim/reliable.h at the frame level: everything sent
// but not cumulatively acked is retained, and retransmit() resends it all.
// The driver calls retransmit() whenever a full pump round makes no
// progress — on a faulty pipe that means frames were dropped; the server's
// resequencer makes redelivery idempotent.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace wcp::serve {

struct ClientOptions {
  std::size_t window = 64;  ///< max unacked frames in flight
};

class StreamClient {
 public:
  explicit StreamClient(Transport& transport, ClientOptions opts = {});

  // Frame enqueueing (buffered; sent by pump()).
  void hello(std::uint32_t slots, std::uint32_t num_predicates);
  void subscribe(std::uint32_t sub_id, StreamAlgo algo,
                 std::uint32_t pred_index, std::int64_t max_cuts = -1);
  void snapshot(std::uint32_t slot, std::uint64_t pred_mask,
                std::vector<StateIndex> clock);
  void eos(std::uint32_t slot = kAllSlots);
  void finish();

  /// Sends what the window allows and drains server frames. Returns true
  /// if anything moved (a frame sent or received). With `block`, waits for
  /// one server frame when nothing else can progress (reliable transports
  /// only — a pipe's receive never blocks).
  bool pump(bool block = false);
  /// Resends every unacked frame (call after a stalled pump round).
  void retransmit();

  /// STATS received: the server applied the whole stream.
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool idle() const {
    return outbox_.empty() && unacked_.empty();
  }
  [[nodiscard]] const std::vector<VerdictBody>& verdicts() const {
    return verdicts_;
  }
  [[nodiscard]] const ServeStats& server_stats() const {
    return server_stats_;
  }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }

 private:
  void enqueue(const Frame& f);
  void handle(const Frame& f);

  Transport& transport_;
  ClientOptions opts_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  std::deque<std::vector<std::uint8_t>> outbox_;  // not yet sent
  /// (seq, frame) in flight, ordered by seq.
  std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> unacked_;
  std::vector<VerdictBody> verdicts_;
  ServeStats server_stats_;
  bool done_ = false;
  std::int64_t retransmits_ = 0;
};

}  // namespace wcp::serve
