// `wcp-stream 1` — the versioned length-prefixed wire protocol of the
// streaming detection service.
//
// A connection is a byte stream of frames, every frame:
//
//   u32  length      bytes that FOLLOW the length field (9..1 MiB)
//   u64  seq         per-direction sequence number, starting at 0
//   u8   type        FrameType
//   ...  payload     type-specific, little-endian throughout
//
// Client -> server frame grammar (one session):
//
//   HELLO      magic "wcpstrm1" (8 bytes), u32 version=1, u32 slots,
//              u32 num_predicates (1..64)
//   SUBSCRIBE  u32 sub_id, u8 algo (StreamAlgo), u32 pred_index,
//              i64 max_cuts (<0: server default; lattice only)
//   SNAPSHOT   u32 slot, u64 pred_mask (bit j = predicate j's local value),
//              slots x u64 vector-clock components (own component = the
//              1-based state index)
//   EOS        u32 slot, or kAllSlots
//   FINISH     (empty; implies EOS on every open slot)
//
// Server -> client:
//
//   ACK        u64 next_seq (cumulative: all frames below it were applied)
//   VERDICT    u32 sub_id, u8 flags (bit0 detected, bit1 truncated),
//              u32 len, len x u64 cut components
//   STATS      u32 count, count x i64 (ServeStats::values() order)
//   ERROR      u32 len, len bytes of message
//
// Validation discipline matches `wcp-tracebin`: every malformed or
// out-of-protocol frame fails with an std::invalid_argument whose message
// starts with "wcp-stream parse error:" and names the offending frame —
// malformed input never silently parses as zeros. Structural validation
// (lengths, ranges, magic, version) happens in decode_frame; semantic
// stream validation (slot ranges against HELLO, clock monotonicity) happens
// in the Session, with the same error prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "serve/serve_stats.h"

namespace wcp::serve {

inline constexpr char kStreamMagic[8] = {'w', 'c', 'p', 's',
                                         't', 'r', 'm', '1'};
inline constexpr std::uint32_t kStreamVersion = 1;
/// Hard cap on `length`: bounds a snapshot to ~128k slots, far beyond any
/// real predicate width, and keeps a corrupt length from allocating GiBs.
inline constexpr std::uint32_t kMaxFrameLength = 1u << 20;
/// Frame bytes after the length field before any payload (seq + type).
inline constexpr std::uint32_t kFrameOverhead = 9;
/// EOS slot value meaning "every slot".
inline constexpr std::uint32_t kAllSlots = 0xFFFFFFFFu;
inline constexpr std::uint32_t kMaxSlots = 4096;
inline constexpr std::uint32_t kMaxPredicates = 64;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kSubscribe = 2,
  kSnapshot = 3,
  kEos = 4,
  kFinish = 5,
  kAck = 6,
  kVerdict = 7,
  kStats = 8,
  kError = 9,
};

[[nodiscard]] const char* to_string(FrameType t);

enum class StreamAlgo : std::uint8_t {
  kToken = 1,
  kChecker = 2,
  kLatticeOnline = 3,
  kSlicer = 4,
};

[[nodiscard]] const char* to_string(StreamAlgo a);
/// Parses "token" / "checker" / "lattice-online" / "slicer"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] StreamAlgo stream_algo_from_string(const std::string& name);

struct HelloBody {
  std::uint32_t version = kStreamVersion;
  std::uint32_t slots = 0;
  std::uint32_t num_predicates = 1;
};

struct SubscribeBody {
  std::uint32_t sub_id = 0;
  StreamAlgo algo = StreamAlgo::kToken;
  std::uint32_t pred_index = 0;
  std::int64_t max_cuts = -1;
};

struct SnapshotBody {
  std::uint32_t slot = 0;
  std::uint64_t pred_mask = 0;
  std::vector<StateIndex> clock;
};

struct EosBody {
  std::uint32_t slot = kAllSlots;
};

struct AckBody {
  std::uint64_t next_seq = 0;
};

struct VerdictBody {
  std::uint32_t sub_id = 0;
  bool detected = false;
  bool truncated = false;
  std::vector<StateIndex> cut;
};

struct StatsBody {
  ServeStats stats;
};

struct ErrorBody {
  std::string message;
};

/// One decoded frame. Exactly the member matching `type` is meaningful.
struct Frame {
  std::uint64_t seq = 0;
  FrameType type = FrameType::kFinish;

  HelloBody hello;
  SubscribeBody subscribe;
  SnapshotBody snapshot;
  EosBody eos;
  AckBody ack;
  VerdictBody verdict;
  StatsBody stats;
  ErrorBody error;
};

// Frame constructors (seq is stamped by the sender).
[[nodiscard]] Frame make_hello(std::uint32_t slots,
                               std::uint32_t num_predicates);
[[nodiscard]] Frame make_subscribe(std::uint32_t sub_id, StreamAlgo algo,
                                   std::uint32_t pred_index,
                                   std::int64_t max_cuts = -1);
[[nodiscard]] Frame make_snapshot(std::uint32_t slot, std::uint64_t pred_mask,
                                  std::vector<StateIndex> clock);
[[nodiscard]] Frame make_eos(std::uint32_t slot = kAllSlots);
[[nodiscard]] Frame make_finish();
[[nodiscard]] Frame make_ack(std::uint64_t next_seq);
[[nodiscard]] Frame make_verdict(std::uint32_t sub_id, bool detected,
                                 bool truncated, std::vector<StateIndex> cut);
[[nodiscard]] Frame make_stats(const ServeStats& stats);
[[nodiscard]] Frame make_error(std::string message);

/// Serializes a frame, stamping `seq`, length prefix included.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& f,
                                                     std::uint64_t seq);

/// Parses one complete frame (length prefix included; `bytes` must be
/// exactly one frame). `snapshot_slots` > 0 enforces that width on SNAPSHOT
/// clocks (pass the HELLO value; 0 skips the check, e.g. before HELLO).
/// Throws std::invalid_argument ("wcp-stream parse error: ...") on any
/// structural violation.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes,
                                 std::uint32_t snapshot_slots = 0);

/// Reads only the header of a complete frame — cheap peek used by the
/// resequencer to order raw frames before full decoding.
struct FrameHeader {
  std::uint32_t length = 0;  // bytes after the length field
  std::uint64_t seq = 0;
  FrameType type = FrameType::kFinish;
};
[[nodiscard]] FrameHeader peek_header(std::span<const std::uint8_t> bytes);

/// Reassembles frames from an arbitrary byte stream (the TCP transport):
/// feed() buffers bytes, next() pops one complete frame's raw bytes.
class FrameAssembler {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  /// One complete raw frame (length prefix included), or nullopt if more
  /// bytes are needed. Throws on an over-length or undersized header.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
};

}  // namespace wcp::serve
