// Server side of a `wcp-stream 1` connection: a blocking per-connection
// loop that feeds a Session from a Transport and ships its output back.
//
// Protocol violations (std::invalid_argument from the session or decoder)
// become an ERROR frame on the wire before the connection is closed, so a
// misbehaving client learns exactly which frame broke the stream instead
// of seeing a silent hangup.
#pragma once

#include <cstddef>
#include <string>

#include "serve/session.h"
#include "serve/transport.h"

namespace wcp::serve {

struct ConnectionResult {
  ServeStats stats;
  bool clean = false;        ///< FINISH processed (stats frame sent)
  std::string error;         ///< set when the session was failed
};

/// Serves one connection to completion. Blocks until the client finishes
/// (FINISH applied), the transport closes, or a protocol violation occurs.
ConnectionResult serve_connection(Transport& transport,
                                  const ServeOptions& opts);

}  // namespace wcp::serve
