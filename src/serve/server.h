// Server side of a `wcp-stream 1` connection.
//
// ConnectionDriver is the transport-agnostic frame-at-a-time state machine:
// feed it complete raw frames as they arrive and it pushes the session's
// responses back through the transport, classifying the three ways a
// connection ends — clean FINISH, protocol violation (an ERROR frame is
// sent so a misbehaving client learns exactly which frame broke the stream
// instead of seeing a silent hangup), and transport failure (the peer is
// gone; nothing can be sent). Both connection hosts are built on it:
//
//   - serve_connection(): the blocking loop (one thread per connection) —
//     receive(block=true), feed, repeat. Used by tests and simple embeds.
//   - EventLoopServer (serve/event_loop.h): the epoll reactor feeds each
//     connection's driver only when its socket is readable, multiplexing
//     thousands of connections on a few loop threads.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "serve/session.h"
#include "serve/transport.h"

namespace wcp::serve {

struct ConnectionResult {
  ServeStats stats;
  bool clean = false;        ///< FINISH processed (stats frame sent)
  std::string error;         ///< set when the session was failed
};

/// Drives one server-side connection a frame at a time. Not thread-safe;
/// one driver is owned by exactly one connection host.
class ConnectionDriver {
 public:
  ConnectionDriver(Transport& transport, const ServeOptions& opts);

  /// Feeds one complete raw frame (length prefix included). Returns true
  /// while the connection should keep reading; false once it is done
  /// (clean finish or protocol violation — never throws for those).
  /// Transport errors raised while emitting responses (std::runtime_error
  /// from Transport::send) propagate; route them to on_transport_error().
  bool on_frame(std::span<const std::uint8_t> bytes);

  /// Peer EOF before FINISH: finalizes (clean only if the session had
  /// already finished).
  void on_peer_closed();
  /// Protocol violation raised outside on_frame (e.g. the frame assembler
  /// rejecting a corrupt length prefix): sends a best-effort ERROR frame
  /// and finalizes, exactly like an in-frame violation.
  void fail_protocol(const std::string& what);
  /// Transport-level failure (send/recv error): finalizes with the
  /// message; nothing more can be sent to this peer.
  void on_transport_error(const std::string& what);

  /// No further frames are expected; result() is final.
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const ConnectionResult& result() const { return result_; }

 private:
  void finalize();

  Transport& transport_;
  Session session_;
  ConnectionResult result_;
  bool done_ = false;
};

/// Serves one connection to completion on the calling thread. Blocks until
/// the client finishes (FINISH applied), the transport closes, or a
/// protocol violation occurs. Never throws for per-connection failures —
/// they are reported in the result.
ConnectionResult serve_connection(Transport& transport,
                                  const ServeOptions& opts);

}  // namespace wcp::serve
