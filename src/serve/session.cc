#include "serve/session.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "detect/stream_core.h"
#include "slice/online_slicer.h"

namespace wcp::serve {

Session::Session(ServeOptions opts, Output out)
    : opts_(std::move(opts)), out_(std::move(out)) {
  WCP_REQUIRE(out_ != nullptr, "session needs an output sink");
}

Session::~Session() = default;

void Session::violation(const std::string& why, std::uint64_t seq) {
  std::ostringstream os;
  os << "wcp-stream parse error: " << why << " (frame seq " << seq << ")";
  throw std::invalid_argument(os.str());
}

void Session::emit(const Frame& f) { out_(encode_frame(f, out_seq_++)); }

void Session::on_frame(std::span<const std::uint8_t> bytes) {
  // Counted up front so the STATS frame emitted by a FINISH in this very
  // call already includes the ack that will answer it below.
  ++stats_.acks_sent;
  const FrameHeader h = peek_header(bytes);
  if (h.seq < next_seq_ || pending_.count(h.seq) != 0) {
    ++stats_.duplicates;  // already applied or already stashed
  } else if (h.seq > next_seq_) {
    ++stats_.resequenced;
    pending_.emplace(h.seq,
                     std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    if (pending_.size() > opts_.reseq_window) {
      std::ostringstream os;
      os << "resequence window exceeded: " << pending_.size()
         << " frames buffered waiting for seq " << next_seq_;
      violation(os.str(), h.seq);
    }
  } else {
    apply(decode_frame(bytes, hello_seen_ ? std::uint32_t(buffer_->slots())
                                          : 0));
    ++next_seq_;
    // Drain every stashed successor that is now in order.
    auto it = pending_.find(next_seq_);
    while (it != pending_.end()) {
      apply(decode_frame(it->second, hello_seen_
                                         ? std::uint32_t(buffer_->slots())
                                         : 0));
      pending_.erase(it);
      ++next_seq_;
      it = pending_.find(next_seq_);
    }
  }
  emit(make_ack(next_seq_));
}

void Session::apply(const Frame& f) {
  if (finished_) violation("frame after finish", f.seq);
  ++stats_.frames_in;
  switch (f.type) {
    case FrameType::kHello: return apply_hello(f.hello, f.seq);
    case FrameType::kSubscribe: return apply_subscribe(f.subscribe, f.seq);
    case FrameType::kSnapshot: return apply_snapshot(f.snapshot, f.seq);
    case FrameType::kEos: return apply_eos(f.eos.slot, f.seq);
    case FrameType::kFinish: return apply_finish(f.seq);
    case FrameType::kAck:
    case FrameType::kVerdict:
    case FrameType::kStats:
    case FrameType::kError: {
      std::ostringstream os;
      os << "server-bound stream carries server frame type "
         << to_string(f.type);
      violation(os.str(), f.seq);
    }
  }
}

void Session::apply_hello(const HelloBody& h, std::uint64_t seq) {
  if (hello_seen_) violation("duplicate hello", seq);
  hello_seen_ = true;
  num_predicates_ = h.num_predicates;
  buffer_ = std::make_unique<StreamBuffer>(h.slots);
  floors_.assign(h.slots, 1);
  open_slots_ = h.slots;
}

void Session::apply_subscribe(const SubscribeBody& b, std::uint64_t seq) {
  if (!hello_seen_) violation("subscribe before hello", seq);
  if (snapshots_started_)
    violation("subscribe after the first snapshot", seq);
  if (b.pred_index >= num_predicates_) {
    std::ostringstream os;
    os << "predicate index " << b.pred_index << " out of range [0, "
       << num_predicates_ << ")";
    violation(os.str(), seq);
  }
  for (const Subscription& s : subs_)
    if (s.id == b.sub_id) {
      std::ostringstream os;
      os << "subscription id " << b.sub_id << " reused";
      violation(os.str(), seq);
    }

  Subscription sub;
  sub.id = b.sub_id;
  sub.algo = b.algo;
  sub.pred_index = b.pred_index;
  sub.view = std::make_unique<SubscriptionView>(*buffer_, b.pred_index);
  switch (b.algo) {
    case StreamAlgo::kToken:
      sub.core = std::make_unique<detect::TokenCore>(*sub.view,
                                                     app::CoreHooks{});
      break;
    case StreamAlgo::kChecker:
      sub.core = std::make_unique<detect::CentralizedCore>(*sub.view,
                                                           app::CoreHooks{});
      break;
    case StreamAlgo::kLatticeOnline: {
      const std::int64_t max_cuts =
          b.max_cuts >= 0 ? b.max_cuts : opts_.lattice_max_cuts;
      sub.core = std::make_unique<detect::LatticeOnlineCore>(
          *sub.view, app::CoreHooks{}, max_cuts);
      break;
    }
    case StreamAlgo::kSlicer:
      sub.core = std::make_unique<slice::SlicerCore>(*sub.view,
                                                     app::CoreHooks{});
      break;
  }
  subs_.push_back(std::move(sub));
  ++stats_.subscriptions;
}

void Session::apply_snapshot(const SnapshotBody& b, std::uint64_t seq) {
  if (!hello_seen_) violation("snapshot before hello", seq);
  if (b.slot >= buffer_->slots()) {
    std::ostringstream os;
    os << "process slot " << b.slot << " out of range [0, "
       << buffer_->slots() << ")";
    violation(os.str(), seq);
  }
  const auto s = static_cast<std::size_t>(b.slot);
  if (buffer_->eos(s)) {
    std::ostringstream os;
    os << "snapshot on slot " << b.slot << " after its eos";
    violation(os.str(), seq);
  }
  const StateIndex expected = buffer_->last(s) + 1;
  if (b.clock[s] != expected) {
    std::ostringstream os;
    os << "non-monotone clock on slot " << b.slot << ": own component "
       << b.clock[s] << ", expected " << expected;
    violation(os.str(), seq);
  }
  if (buffer_->last(s) >= buffer_->base(s)) {
    for (std::size_t t = 0; t < buffer_->slots(); ++t)
      if (b.clock[t] < buffer_->clock(s, buffer_->last(s), t)) {
        std::ostringstream os;
        os << "non-monotone clock on slot " << b.slot << ": component " << t
           << " went from " << buffer_->clock(s, buffer_->last(s), t)
           << " to " << b.clock[t];
        violation(os.str(), seq);
      }
  }
  for (std::size_t t = 0; t < buffer_->slots(); ++t)
    if (b.clock[t] > 0xFFFFFFFF) {
      std::ostringstream os;
      os << "clock component " << t << " (" << b.clock[t]
         << ") exceeds the packed 32-bit range";
      violation(os.str(), seq);
    }

  snapshots_started_ = true;
  buffer_->append(s, b.clock, b.pred_mask);
  ++stats_.snapshots_in;
  stats_.peak_retained_states =
      std::max(stats_.peak_retained_states, buffer_->peak_retained());
  for (Subscription& sub : subs_)
    if (!sub.core->done()) sub.core->on_state(s);
  report_new_verdicts();
  maybe_gc();
}

void Session::eos_slot(std::size_t s) {
  buffer_->set_eos(s);
  --open_slots_;
  for (Subscription& sub : subs_)
    if (!sub.core->done()) sub.core->on_eos(s);
}

void Session::apply_eos(std::uint32_t slot, std::uint64_t seq) {
  if (!hello_seen_) violation("eos before hello", seq);
  if (slot == kAllSlots) {
    for (std::size_t s = 0; s < buffer_->slots(); ++s)
      if (!buffer_->eos(s)) eos_slot(s);
  } else {
    if (slot >= buffer_->slots()) {
      std::ostringstream os;
      os << "process slot " << slot << " out of range [0, "
         << buffer_->slots() << ")";
      violation(os.str(), seq);
    }
    if (buffer_->eos(static_cast<std::size_t>(slot))) {
      std::ostringstream os;
      os << "duplicate eos on slot " << slot;
      violation(os.str(), seq);
    }
    eos_slot(static_cast<std::size_t>(slot));
  }
  report_new_verdicts();
}

void Session::apply_finish(std::uint64_t seq) {
  if (!hello_seen_) violation("finish before hello", seq);
  for (std::size_t s = 0; s < buffer_->slots(); ++s)
    if (!buffer_->eos(s)) eos_slot(s);
  report_new_verdicts();
  for (const Subscription& sub : subs_)
    WCP_CHECK_MSG(sub.core->done(),
                  "subscription " << sub.id << " undecided after eos-all");
  (void)seq;
  sample_checker_bytes();
  stats_.store_peak_bytes = buffer_->peak_bytes();
  finished_ = true;
  emit(make_stats(stats_));
}

void Session::report_new_verdicts() {
  for (Subscription& sub : subs_) {
    if (sub.reported || !sub.core->done()) continue;
    sub.reported = true;
    bool truncated = false;
    if (sub.algo == StreamAlgo::kLatticeOnline)
      truncated = static_cast<detect::LatticeOnlineCore*>(sub.core.get())
                      ->truncated();
    VerdictBody v;
    v.sub_id = sub.id;
    v.detected = sub.core->detected();
    v.truncated = truncated;
    v.cut = sub.core->cut();
    if (v.detected) ++stats_.verdicts_detected;
    verdicts_.push_back(v);
    emit(make_verdict(v.sub_id, v.detected, v.truncated, v.cut));
  }
}

void Session::maybe_gc() {
  if (opts_.gc_every == 0) return;
  if (++snaps_since_gc_ < opts_.gc_every) return;
  snaps_since_gc_ = 0;
  gc_round();
}

void Session::gc_round() {
  // Global-min frontier: the lowest position any live subscription may
  // still read, per slot. With no subscriptions everything is retirable.
  for (std::size_t s = 0; s < buffer_->slots(); ++s) {
    StateIndex floor = buffer_->last(s) + 1;
    for (const Subscription& sub : subs_)
      floor = std::min(floor, sub.core->frontier(s));
    floors_[s] = std::max(floor, buffer_->base(s));
  }
  for (std::size_t s = 0; s < buffer_->slots(); ++s)
    buffer_->trim(s, floors_[s]);
  for (Subscription& sub : subs_)
    if (!sub.core->done()) sub.core->collect(floors_);
  ++stats_.gc_rounds;
  stats_.states_retired = buffer_->retired();
  stats_.store_peak_bytes = buffer_->peak_bytes();
  std::int64_t retired_cuts = 0;
  for (const Subscription& sub : subs_)
    if (sub.algo == StreamAlgo::kLatticeOnline)
      retired_cuts +=
          static_cast<const detect::LatticeOnlineCore*>(sub.core.get())
              ->cuts_retired();
  stats_.cuts_retired = retired_cuts;
  sample_checker_bytes();
}

void Session::sample_checker_bytes() {
  std::int64_t bytes = 0;
  for (const Subscription& sub : subs_) bytes += sub.core->resident_bytes();
  stats_.checker_peak_bytes = std::max(stats_.checker_peak_bytes, bytes);
}

}  // namespace wcp::serve
