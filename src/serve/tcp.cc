#include "serve/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace wcp::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void fd_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0)
    fail_errno("fcntl O_NONBLOCK");
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) { set_nodelay(fd_); }

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::set_nonblocking() {
  fd_nonblocking(fd_);
  nonblocking_ = true;
}

void TcpTransport::send(std::vector<std::uint8_t> frame) {
  if (fd_ < 0 || peer_closed_)
    throw std::runtime_error("tcp send: connection is closed");
  if (pending_out() == 0) {
    out_ = std::move(frame);
    out_off_ = 0;
  } else {
    out_.insert(out_.end(), frame.begin(), frame.end());
  }
  flush();
}

bool TcpTransport::flush() {
  while (out_off_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_off_,
                             out_.size() - out_off_, MSG_NOSIGNAL);
    if (n >= 0) {
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full (nonblocking sockets only). Keep the tail
      // buffered — compacted so pending_out() bounds memory, not the sum
      // of everything ever sent — and let the caller retry on EPOLLOUT.
      if (out_off_ > 0) {
        out_.erase(out_.begin(),
                   out_.begin() + static_cast<std::ptrdiff_t>(out_off_));
        out_off_ = 0;
      }
      return false;
    }
    // Real socket error: the stream is dead. Surface it — swallowing it
    // here would silently drop the frame tail and desync the peer's
    // frame assembler.
    const int err = errno;
    peer_closed_ = true;
    out_.clear();
    out_off_ = 0;
    throw std::runtime_error(std::string("tcp send: ") + std::strerror(err));
  }
  out_.clear();
  out_off_ = 0;
  return true;
}

bool TcpTransport::fill(bool block) {
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n =
        ::recv(fd_, buf, sizeof(buf), block ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      assembler_.feed(std::span<const std::uint8_t>(buf,
                                                    static_cast<std::size_t>(n)));
      // Non-blocking: grab everything already queued, then stop.
      if (block) return true;
      block = false;
      continue;
    }
    if (n == 0) {
      peer_closed_ = true;
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    peer_closed_ = true;
    return false;
  }
}

std::optional<std::vector<std::uint8_t>> TcpTransport::receive(bool block) {
  if (fd_ < 0) return std::nullopt;
  if (nonblocking_) block = false;  // an O_NONBLOCK recv never waits
  for (;;) {
    if (std::optional<std::vector<std::uint8_t>> f = assembler_.next())
      return f;
    if (peer_closed_) return std::nullopt;
    if (!fill(block) && !block) {
      // Non-blocking and nothing new: maybe the fill completed a frame.
      if (std::optional<std::vector<std::uint8_t>> f = assembler_.next())
        return f;
      return std::nullopt;
    }
    if (peer_closed_) {
      // Drain what arrived before EOF.
      if (std::optional<std::vector<std::uint8_t>> f = assembler_.next())
        return f;
      return std::nullopt;
    }
  }
}

bool TcpTransport::closed() const { return fd_ < 0 || peer_closed_; }

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog)
    : fd_(-1), port_(0) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno("bind 127.0.0.1");
  }
  if (::listen(fd_, backlog) < 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpListener::set_nonblocking() { fd_nonblocking(fd_); }

std::unique_ptr<TcpTransport> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpTransport>(fd);
    if (errno == EINTR) continue;
    fail_errno("accept");
  }
}

std::unique_ptr<TcpTransport> TcpListener::try_accept(
    bool* resource_pressure) {
  if (resource_pressure) *resource_pressure = false;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpTransport>(fd);
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // client gave up during the handshake: next
#ifdef EPROTO
      case EPROTO:
#endif
        continue;
      case EAGAIN:
#if EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
        return nullptr;
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        // Out of fds/buffers: the connection stays in the backlog; tell
        // the caller to back off instead of spinning on level-triggered
        // readiness.
        if (resource_pressure) *resource_pressure = true;
        return nullptr;
      default:
        fail_errno("accept");
    }
  }
}

std::unique_ptr<TcpTransport> tcp_connect(const std::string& host,
                                          std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp_connect: bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    fail_errno("connect " + host);
  }
  return std::make_unique<TcpTransport>(fd);
}

}  // namespace wcp::serve
