// Per-session counters of the streaming detection service. Surfaced three
// ways: in the STATS frame a session sends its client on FINISH, in the
// `wcp-run-report/1` records `wcp_cli stream --json` emits, and in the E19
// streaming bench rows — the peak/retired numbers are the observable
// evidence that frontier GC bounds server memory.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wcp::serve {

struct ServeStats {
  // Wire / sequencing.
  std::int64_t frames_in = 0;      ///< frames accepted (after resequencing)
  std::int64_t snapshots_in = 0;   ///< SNAPSHOT frames applied
  std::int64_t resequenced = 0;    ///< frames stashed out of order
  std::int64_t duplicates = 0;     ///< duplicate frames discarded
  std::int64_t acks_sent = 0;
  // Subscriptions.
  std::int64_t subscriptions = 0;
  std::int64_t verdicts_detected = 0;
  // Frontier GC.
  std::int64_t gc_rounds = 0;
  std::int64_t states_retired = 0;       ///< snapshots trimmed from the buffer
  std::int64_t peak_retained_states = 0; ///< high-water of buffered snapshots
  std::int64_t store_peak_bytes = 0;     ///< high-water of the stream buffer
  std::int64_t checker_peak_bytes = 0;   ///< high-water of summed core state
  std::int64_t cuts_retired = 0;         ///< lattice visited cuts collected

  /// Fixed serialization/report order; the STATS frame carries exactly this
  /// sequence, count-prefixed, so new counters append compatibly.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> items()
      const {
    return {
        {"frames_in", frames_in},
        {"snapshots_in", snapshots_in},
        {"resequenced", resequenced},
        {"duplicates", duplicates},
        {"acks_sent", acks_sent},
        {"subscriptions", subscriptions},
        {"verdicts_detected", verdicts_detected},
        {"gc_rounds", gc_rounds},
        {"states_retired", states_retired},
        {"peak_retained_states", peak_retained_states},
        {"store_peak_bytes", store_peak_bytes},
        {"checker_peak_bytes", checker_peak_bytes},
        {"cuts_retired", cuts_retired},
    };
  }

  [[nodiscard]] std::vector<std::int64_t> values() const {
    std::vector<std::int64_t> v;
    for (const auto& [name, value] : items()) v.push_back(value);
    return v;
  }

  /// Inverse of values() for the counters a peer can reconstruct; extra
  /// trailing values from a newer peer are ignored.
  static ServeStats from_values(const std::vector<std::int64_t>& v) {
    ServeStats s;
    std::int64_t* fields[] = {
        &s.frames_in,      &s.snapshots_in,        &s.resequenced,
        &s.duplicates,     &s.acks_sent,           &s.subscriptions,
        &s.verdicts_detected, &s.gc_rounds,        &s.states_retired,
        &s.peak_retained_states, &s.store_peak_bytes, &s.checker_peak_bytes,
        &s.cuts_retired,
    };
    const std::size_t n = sizeof(fields) / sizeof(fields[0]);
    for (std::size_t i = 0; i < n && i < v.size(); ++i) *fields[i] = v[i];
    return s;
  }
};

}  // namespace wcp::serve
