// The wcp_served daemon as a library: strict flag parsing, per-connection
// reporting, and the listen/serve loop over the epoll EventLoopServer.
// Living here (instead of inside examples/wcp_served.cpp) makes every
// piece unit-testable: the malformed-flag corpus, the well-formedness of
// concurrent report lines, and the daemon loop itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/event_loop.h"

namespace wcp::serve {

struct DaemonOptions {
  std::uint16_t port = 7410;  ///< 0 = kernel-assigned ephemeral
  std::int64_t once = 0;      ///< exit after serving this many (0 = forever)
  bool json = false;          ///< wcp-run-report/1 lines instead of text
  EventLoopOptions loop;
};

/// Parses wcp_served's argv (without argv[0]). Strict: unknown flags,
/// non-flag arguments, missing values (a value flag followed by another
/// `--flag` or nothing), non-numeric or out-of-range numbers all throw
/// std::invalid_argument with a message naming the offending flag —
/// malformed input never silently parses as a default.
[[nodiscard]] DaemonOptions parse_daemon_flags(
    const std::vector<std::string>& args);

[[nodiscard]] std::string daemon_usage();

/// Writes one complete report line for a finished connection (JSON
/// `wcp-run-report/1` or human-readable) with a single stream insertion,
/// so serialized callers can never interleave partial lines.
void report_connection(std::ostream& out, std::int64_t id,
                       const ConnectionResult& r, bool as_json);

/// Binds the listener, prints the "listening on" line to `out`, and
/// serves on the epoll event loop until `opts.once` connections complete
/// (forever when 0). Returns the process exit code (0, or 1 after a fatal
/// server error printed to `err`). Per-connection failures are reported
/// and survived, never fatal.
int run_daemon(const DaemonOptions& opts, std::ostream& out,
               std::ostream& err);

}  // namespace wcp::serve
