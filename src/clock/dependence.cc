#include "clock/dependence.h"

#include <ostream>

namespace wcp {

std::ostream& operator<<(std::ostream& os, const Dependence& d) {
  return os << '(' << d.source << ',' << d.clock << ')';
}

std::ostream& operator<<(std::ostream& os, const DependenceList& dl) {
  os << '{';
  bool first = true;
  for (const auto& d : dl) {
    if (!first) os << ' ';
    os << d;
    first = false;
  }
  return os << '}';
}

}  // namespace wcp
