// Direct-dependence tracking for the §4 algorithm.
//
// The direct-dependence algorithm replaces O(n)-sized vector clocks with a
// scalar Lamport-style counter plus, per receive, one recorded dependence
// (j, k): "a message sent by P_j at clock k was received here". A local
// snapshot carries the dependences accumulated since the previous snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace wcp {

/// One direct dependence: the local states following the recording receive
/// depend on P_source's state with clock value `clock`.
struct Dependence {
  ProcessId source;
  LamportTime clock = 0;

  friend bool operator==(const Dependence&, const Dependence&) = default;
  friend auto operator<=>(const Dependence&, const Dependence&) = default;
};

std::ostream& operator<<(std::ostream& os, const Dependence& d);

/// The per-snapshot dependence list (§4.1). Order is arrival order; the
/// monitor polls dependences in this order.
class DependenceList {
 public:
  DependenceList() = default;

  void add(ProcessId source, LamportTime clock) {
    deps_.push_back(Dependence{source, clock});
  }

  void clear() { deps_.clear(); }
  [[nodiscard]] bool empty() const { return deps_.empty(); }
  [[nodiscard]] std::size_t size() const { return deps_.size(); }

  [[nodiscard]] auto begin() const { return deps_.begin(); }
  [[nodiscard]] auto end() const { return deps_.end(); }

  void append(const DependenceList& other) {
    deps_.insert(deps_.end(), other.deps_.begin(), other.deps_.end());
  }

  [[nodiscard]] const std::vector<Dependence>& items() const { return deps_; }

  /// Wire size in bits: a dependence is a pair of integers (§4.4).
  [[nodiscard]] std::int64_t bits() const {
    return static_cast<std::int64_t>(deps_.size()) * 2 * 64;
  }

  friend bool operator==(const DependenceList&, const DependenceList&) = default;

 private:
  std::vector<Dependence> deps_;
};

std::ostream& operator<<(std::ostream& os, const DependenceList& dl);

}  // namespace wcp
