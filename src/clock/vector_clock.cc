#include "clock/vector_clock.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace wcp {

VectorClock VectorClock::initial(std::size_t width, ProcessId owner) {
  WCP_REQUIRE(owner.valid() && owner.idx() < width,
              "initial clock owner " << owner << " out of width " << width);
  VectorClock vc(width);
  vc.c_[owner.idx()] = 1;
  return vc;
}

void VectorClock::tick(ProcessId owner) {
  WCP_CHECK(owner.valid() && owner.idx() < c_.size());
  ++c_[owner.idx()];
}

void VectorClock::merge(const VectorClock& other) {
  WCP_CHECK_MSG(other.c_.size() == c_.size(),
                "merging clocks of widths " << c_.size() << " and "
                                            << other.c_.size());
  for (std::size_t j = 0; j < c_.size(); ++j)
    c_[j] = std::max(c_[j], other.c_[j]);
}

bool VectorClock::happened_before(const VectorClock& other) const {
  WCP_CHECK(other.c_.size() == c_.size());
  bool strictly_less = false;
  for (std::size_t j = 0; j < c_.size(); ++j) {
    if (c_[j] > other.c_[j]) return false;
    if (c_[j] < other.c_[j]) strictly_less = true;
  }
  return strictly_less;
}

std::string VectorClock::to_string() const {
  std::ostringstream oss;
  oss << *this;
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '[';
  for (std::size_t j = 0; j < vc.width(); ++j) {
    if (j > 0) os << ',';
    os << vc[j];
  }
  return os << ']';
}

}  // namespace wcp
