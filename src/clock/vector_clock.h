// Fidge/Mattern vector clocks over the n predicate processes (§3.1).
//
// Component semantics follow the paper's application-process algorithm
// (Fig. 2): vclock[i] numbers the local *states* of P_i starting at 1, and
// is incremented after every send and after every receive, so each value of
// vclock[i] names one communication-free state interval. The two vector
// clock properties the correctness proof relies on are exposed directly:
//
//   1. a -> b        iff  a.v < b.v                        (happened_before)
//   2. (j, v[j]) -> (i, v[i]) for any clock v held by P_i  (by construction)
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace wcp {

class VectorClock {
 public:
  VectorClock() = default;

  /// Zero clock of the given width (all components 0).
  explicit VectorClock(std::size_t width) : c_(width, 0) {}

  /// Clock with explicit components.
  explicit VectorClock(std::vector<StateIndex> components)
      : c_(std::move(components)) {}

  /// The clock P_i starts with: own component 1, all others 0 (Fig. 2 init).
  static VectorClock initial(std::size_t width, ProcessId owner);

  [[nodiscard]] std::size_t width() const { return c_.size(); }
  [[nodiscard]] bool empty() const { return c_.empty(); }

  [[nodiscard]] StateIndex operator[](std::size_t j) const { return c_[j]; }
  [[nodiscard]] StateIndex at(ProcessId j) const { return c_.at(j.idx()); }

  [[nodiscard]] std::span<const StateIndex> components() const { return c_; }

  /// Increment the owner component (performed after send/receive in Fig. 2).
  void tick(ProcessId owner);

  /// Component-wise max with a received message's clock (receive rule).
  void merge(const VectorClock& other);

  void set(ProcessId j, StateIndex v) { c_.at(j.idx()) = v; }

  /// True iff the state stamped `*this` happened before the state stamped
  /// `other` (strictly less in every... i.e. <= everywhere and < somewhere).
  [[nodiscard]] bool happened_before(const VectorClock& other) const;

  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return !happened_before(other) && !other.happened_before(*this) &&
           c_ != other.c_;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  /// Wire size in bits (for the §3.4 bit-complexity accounting):
  /// width × 64-bit components.
  [[nodiscard]] std::int64_t bits() const {
    return static_cast<std::int64_t>(c_.size()) * 64;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<StateIndex> c_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

}  // namespace wcp
