// Text (de)serialization of computations.
//
// Format (line-oriented, '#' comments allowed):
//
//   wcp-trace 1
//   processes <N>
//   predicate <p0> <p1> ...
//   default <p> <0|1>            # default local-predicate value on p
//   send <from> <to>             # events, in a causally valid global order
//   recv <msgid>
//   mark <p> <0|1>               # set predicate of p's current state
//   end
//
// The writer emits events in a valid order (receives after their sends), so
// any written trace round-trips through the reader.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/computation.h"

namespace wcp {

void write_trace(std::ostream& os, const Computation& c);
std::string trace_to_string(const Computation& c);

Computation read_trace(std::istream& is);
Computation trace_from_string(const std::string& text);

void save_trace_file(const std::string& path, const Computation& c);
Computation load_trace_file(const std::string& path);

}  // namespace wcp
