// Text (de)serialization of computations.
//
// Format (line-oriented, '#' comments allowed):
//
//   wcp-trace 1
//   processes <N>                # exactly once, before any other directive
//   predicate <p0> <p1> ...      # at most once; pids unique, in [0, N)
//   default <p> <0|1>            # default local-predicate value on p
//   send <from> <to>             # events, in a causally valid global order
//   recv <msgid>                 # a previously sent, undelivered id
//   mark <p> <0|1>               # set predicate of p's current state
//   end                          # mandatory terminator
//
// The writer emits events in a valid order (receives after their sends), so
// any written trace round-trips through the reader — including messages
// still in flight (a send with no matching recv).
//
// The reader validates every token: integers must parse completely, pids
// and message ids are range-checked, duplicate directives and double
// deliveries are rejected, and any violation throws std::invalid_argument
// reading "trace parse error at line <L>: <why> in '<line>'" — malformed
// input never silently parses as zeros. See trace/trace_store.h for the
// binary format and the sniffing load_any_trace_file.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/computation.h"

namespace wcp {

void write_trace(std::ostream& os, const Computation& c);
std::string trace_to_string(const Computation& c);

Computation read_trace(std::istream& is);
Computation trace_from_string(const std::string& text);

void save_trace_file(const std::string& path, const Computation& c);
Computation load_trace_file(const std::string& path);

}  // namespace wcp
