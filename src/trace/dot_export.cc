#include "trace/dot_export.h"

#include <ostream>
#include <sstream>

#include "common/error.h"

namespace wcp {

void export_dot(std::ostream& os, const Computation& comp,
                const DotOptions& opts) {
  WCP_REQUIRE(opts.cut_procs.size() == opts.cut.size(),
              "cut marker width mismatch");

  auto marked = [&](ProcessId p, StateIndex k) {
    for (std::size_t s = 0; s < opts.cut_procs.size(); ++s)
      if (opts.cut_procs[s] == p && opts.cut[s] == k) return true;
    return false;
  };
  auto node = [](ProcessId p, StateIndex k) {
    std::ostringstream oss;
    oss << "s" << p.value() << "_" << k;
    return oss.str();
  };

  os << "digraph " << opts.graph_name << " {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10];\n";

  for (std::size_t pi = 0; pi < comp.num_processes(); ++pi) {
    const ProcessId p(static_cast<int>(pi));
    os << "  subgraph cluster_p" << p.value() << " {\n"
       << "    label=\"P" << p.value() << "\";\n"
       << "    style=dashed;\n";
    for (StateIndex k = 1; k <= comp.num_states(p); ++k) {
      os << "    " << node(p, k) << " [label=\"(" << p.value() << ',' << k
         << ")\"";
      if (comp.predicate_slot(p) >= 0 && comp.local_pred(p, k))
        os << ", style=filled, fillcolor=palegreen";
      if (marked(p, k)) os << ", penwidth=3, color=red";
      os << "];\n";
    }
    // Program order.
    for (StateIndex k = 1; k + 1 <= comp.num_states(p); ++k)
      os << "    " << node(p, k) << " -> " << node(p, k + 1) << ";\n";
    os << "  }\n";
  }

  // Message edges: send transition (from send_state to send_state+1) into
  // the receive-created state.
  for (std::size_t m = 0; m < comp.messages().size(); ++m) {
    const MessageRecord& mr = comp.messages()[m];
    if (!mr.delivered()) continue;
    os << "  " << node(mr.from, mr.send_state) << " -> "
       << node(mr.to, mr.recv_state) << " [style=dotted, label=\"m" << m
       << "\"];\n";
  }
  os << "}\n";
}

std::string dot_to_string(const Computation& comp, const DotOptions& opts) {
  std::ostringstream oss;
  export_dot(oss, comp, opts);
  return oss.str();
}

}  // namespace wcp
