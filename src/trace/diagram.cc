#include "trace/diagram.h"

#include <ostream>
#include <sstream>

#include "common/error.h"

namespace wcp {

void render_diagram(std::ostream& os, const Computation& comp,
                    const DiagramOptions& opts) {
  WCP_REQUIRE(opts.cut_procs.size() == opts.cut.size(),
              "cut marker width mismatch");

  auto cut_state_of = [&](ProcessId p) -> std::optional<StateIndex> {
    for (std::size_t s = 0; s < opts.cut_procs.size(); ++s)
      if (opts.cut_procs[s] == p) return opts.cut[s];
    return std::nullopt;
  };

  for (std::size_t pi = 0; pi < comp.num_processes(); ++pi) {
    const ProcessId p(static_cast<int>(pi));
    const auto marked = cut_state_of(p);
    os << 'P' << p.value() << "  ";

    const StateIndex total = comp.num_states(p);
    const StateIndex limit =
        opts.max_states > 0 ? std::min(total, opts.max_states) : total;
    const auto events = comp.events(p);

    for (StateIndex k = 1; k <= limit; ++k) {
      if (k > 1) {
        const Event& ev = events[static_cast<std::size_t>(k - 2)];
        os << " -" << (ev.kind == EventKind::kSend ? 's' : 'r') << ev.msg
           << "->";
      }
      os << (marked && *marked == k ? '*' : ' ');
      os << '[' << k << ':' << (comp.local_pred(p, k) ? 'T' : '.') << ']';
    }
    if (limit < total) os << " ...(" << (total - limit) << " more)";
    os << '\n';
  }

  if (opts.message_table && !comp.messages().empty()) {
    os << "messages:\n";
    for (std::size_t m = 0; m < comp.messages().size(); ++m) {
      const MessageRecord& mr = comp.messages()[m];
      os << "  m" << m << ": P" << mr.from.value() << '@' << mr.send_state
         << " -> P" << mr.to.value();
      if (mr.delivered()) {
        os << '@' << mr.recv_state;
      } else {
        os << " (in flight)";
      }
      os << '\n';
    }
  }
}

std::string render_diagram(const Computation& comp,
                           const DiagramOptions& opts) {
  std::ostringstream oss;
  render_diagram(oss, comp, opts);
  return oss.str();
}

}  // namespace wcp
