// ASCII space-time diagrams of computations.
//
// Renders one line per process: local states (with their predicate value)
// joined by the events between them, plus an optional cut marker — the
// debugging view the detection examples print.
//
//   P0  [1:T] -s0-> [2:.] -r1->*[3:T]
//   P1  [1:.] -r0->*[2:T] -s1-> [3:.]
//
// `sK`/`rK` are send/receive of message K; `*` marks the cut component.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/computation.h"

namespace wcp {

struct DiagramOptions {
  /// Mark these states (one per process in `cut_procs` order).
  std::vector<ProcessId> cut_procs;
  std::vector<StateIndex> cut;
  /// Cap on rendered states per process (0: unlimited); longer timelines
  /// end with "...".
  StateIndex max_states = 0;
  /// Also print the message table (id: from@state -> to@state).
  bool message_table = false;
};

std::string render_diagram(const Computation& comp,
                           const DiagramOptions& opts = {});

void render_diagram(std::ostream& os, const Computation& comp,
                    const DiagramOptions& opts = {});

}  // namespace wcp
