// Graphviz (DOT) export of computations: states as nodes (predicate-true
// states highlighted, cut states outlined), program order and message
// edges. Render with `dot -Tsvg run.dot -o run.svg`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/computation.h"

namespace wcp {

struct DotOptions {
  std::vector<ProcessId> cut_procs;
  std::vector<StateIndex> cut;
  std::string graph_name = "computation";
};

void export_dot(std::ostream& os, const Computation& comp,
                const DotOptions& opts = {});

std::string dot_to_string(const Computation& comp,
                          const DotOptions& opts = {});

}  // namespace wcp
