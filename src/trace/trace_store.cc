#include "trace/trace_store.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "common/byte_source.h"
#include "common/error.h"
#include "trace/trace_io.h"

namespace wcp {

namespace {

constexpr std::uint32_t kReceiveBit = kPackedEventReceiveBit;
constexpr std::uint64_t kStateCap = 1ull << 32;   // states per process
constexpr std::uint64_t kMessageCap = 1ull << 31; // ids share the event word
constexpr std::size_t kHeaderBytes = 136;
constexpr std::uint32_t kTracebinVersion = 1;

// ---- little-endian packing (explicit, so files are portable) ---------------

void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(std::span<const std::byte> b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<unsigned>(b[off + i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<unsigned>(b[off + i]))
         << (8 * i);
  return v;
}

void pad8(std::string& b) {
  while (b.size() % 8 != 0) b.push_back('\0');
}

/// Last change-list value with key <= k, or 0 if the component has not moved
/// by state k. Entries are (k' << 32) | value with k' strictly increasing and
/// value < 2^32, so the packed words themselves are ordered by k'.
std::uint64_t lookup_packed(const std::uint64_t* first, const std::uint64_t* last,
                            std::uint64_t k) {
  const auto* it = std::upper_bound(first, last, (k << 32) | 0xffff'ffffull);
  if (it == first) return 0;
  return *(it - 1) & 0xffff'ffffull;
}

}  // namespace

// ---------------------------------------------------------------------------
// Build: one greedy causal replay, recording only clock change points.

TraceStore TraceStore::build(const Computation& c) {
  const std::size_t N = c.num_processes();
  TraceStore s;
  auto& state_counts = s.state_counts_own_;
  auto& pred_procs = s.pred_procs_own_;
  auto& events = s.events_own_;
  auto& pred_bits = s.pred_bits_own_;
  auto& messages = s.messages_own_;
  auto& clock_offsets = s.clock_offsets_own_;
  auto& clock_entries = s.clock_entries_own_;

  state_counts.resize(N);
  s.event_offsets_.assign(N + 1, 0);
  s.pred_word_offsets_.assign(N + 1, 0);
  for (std::size_t p = 0; p < N; ++p) {
    const ProcessId pid(static_cast<int>(p));
    const auto states = static_cast<std::uint64_t>(c.num_states(pid));
    WCP_REQUIRE(states < kStateCap,
                "process " << pid << " has " << states
                           << " states, beyond the trace store's 2^32 cap");
    state_counts[p] = states;
    s.event_offsets_[p + 1] = s.event_offsets_[p] + (states - 1);
    s.pred_word_offsets_[p + 1] = s.pred_word_offsets_[p] + (states + 63) / 64;
  }
  WCP_REQUIRE(c.messages().size() < kMessageCap,
              "computation has " << c.messages().size()
                                 << " messages, beyond the trace store's 2^31 cap");

  events.reserve(s.event_offsets_[N]);
  for (std::size_t p = 0; p < N; ++p)
    for (const Event& ev : c.events(ProcessId(static_cast<int>(p))))
      events.push_back((ev.kind == EventKind::kReceive ? kReceiveBit : 0u) |
                       static_cast<std::uint32_t>(ev.msg));

  pred_bits.assign(s.pred_word_offsets_[N], 0);
  for (std::size_t p = 0; p < N; ++p) {
    const ProcessId pid(static_cast<int>(p));
    for (StateIndex k = 1; k <= c.num_states(pid); ++k)
      if (c.local_pred(pid, k)) {
        const auto bit = static_cast<std::uint64_t>(k - 1);
        pred_bits[s.pred_word_offsets_[p] + bit / 64] |= 1ull << (bit % 64);
      }
  }

  pred_procs.reserve(c.predicate_processes().size());
  for (ProcessId p : c.predicate_processes())
    pred_procs.push_back(static_cast<std::uint32_t>(p.value()));

  messages.reserve(c.messages().size() * 4);
  for (const MessageRecord& mr : c.messages()) {
    messages.push_back(static_cast<std::uint32_t>(mr.from.value()));
    messages.push_back(static_cast<std::uint32_t>(mr.send_state));
    messages.push_back(static_cast<std::uint32_t>(mr.to.value()));
    messages.push_back(static_cast<std::uint32_t>(mr.recv_state));
  }

  // Clock change lists. Replay events in a causally valid global order (the
  // same greedy scan ensure_ground_truth used), but never materialize a
  // message clock: when P_p receives a message sent from (from, send_state),
  // each component j of the sender's clock is read back out of the sender's
  // own (already final up to send_state) change list.
  std::vector<std::vector<std::uint64_t>> cols(N * N);
  std::vector<std::uint64_t> cur(N * N, 0);  // cur[p*N+j], j != p; own implicit
  std::vector<std::size_t> next(N, 0);
  std::vector<char> sent(c.messages().size(), 0);

  std::size_t remaining = events.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t p = 0; p < N; ++p) {
      const auto evs = c.events(ProcessId(static_cast<int>(p)));
      while (next[p] < evs.size()) {
        const Event ev = evs[next[p]];
        const auto mi = static_cast<std::size_t>(ev.msg);
        if (ev.kind == EventKind::kSend) {
          sent[mi] = 1;
        } else {
          if (!sent[mi]) break;  // wait for the sender's replay
          const MessageRecord mr = c.message(ev.msg);
          const auto from = static_cast<std::size_t>(mr.from.idx());
          const auto bound = static_cast<std::uint64_t>(mr.send_state);
          const auto k = static_cast<std::uint64_t>(next[p]) + 2;
          for (std::size_t j = 0; j < N; ++j) {
            if (j == p) continue;  // own component is k by construction
            std::uint64_t v;
            if (j == from) {
              v = bound;
            } else {
              const auto& col = cols[from * N + j];
              v = lookup_packed(col.data(), col.data() + col.size(), bound);
            }
            if (v > cur[p * N + j]) {
              cur[p * N + j] = v;
              cols[p * N + j].push_back((k << 32) | v);
            }
          }
        }
        ++next[p];
        --remaining;
        progressed = true;
      }
    }
    WCP_CHECK_MSG(progressed || remaining == 0,
                  "computation event order is causally inconsistent");
  }

  // Flatten into the interval index. The replay scratch still exists here,
  // so this is the build's memory high-water point.
  std::int64_t scratch = static_cast<std::int64_t>(
      cur.size() * sizeof(std::uint64_t) + next.size() * sizeof(std::size_t) +
      sent.size());
  for (const auto& col : cols)
    scratch += static_cast<std::int64_t>(sizeof(col) +
                                         col.capacity() * sizeof(std::uint64_t));

  clock_offsets.assign(N * N + 1, 0);
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < N * N; ++i) {
    total_entries += cols[i].size();
    clock_offsets[i + 1] = total_entries;
  }
  clock_entries.reserve(total_entries);
  for (const auto& col : cols)
    clock_entries.insert(clock_entries.end(), col.begin(), col.end());

  s.bind_owned();
  s.stats_.clocks_interned = s.total_states();
  s.stats_.delta_entries = static_cast<std::int64_t>(clock_entries.size());
  s.stats_.peak_bytes = s.resident_bytes() + scratch;
  s.stats_.delta_ratio =
      static_cast<double>(static_cast<std::int64_t>(N) * s.total_states()) /
      static_cast<double>(std::max<std::int64_t>(1, s.stats_.delta_entries));
  return s;
}

void TraceStore::bind_owned() {
  state_counts_ = state_counts_own_;
  pred_procs_ = pred_procs_own_;
  events_ = events_own_;
  pred_bits_ = pred_bits_own_;
  messages_ = messages_own_;
  clock_offsets_ = clock_offsets_own_;
  clock_entries_ = clock_entries_own_;
}

std::int64_t TraceStore::resident_bytes() const {
  // Owned storage only: a mapped store's columns live in the page cache and
  // are not charged to this process's heap.
  const auto vec_bytes = [](const auto& v) {
    return static_cast<std::int64_t>(v.size() *
                                     sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  return static_cast<std::int64_t>(sizeof(*this)) + vec_bytes(event_offsets_) +
         vec_bytes(pred_word_offsets_) + vec_bytes(state_counts_own_) +
         vec_bytes(pred_procs_own_) + vec_bytes(events_own_) +
         vec_bytes(pred_bits_own_) + vec_bytes(messages_own_) +
         vec_bytes(clock_offsets_own_) + vec_bytes(clock_entries_own_);
}

std::int64_t TraceStore::total_states() const {
  std::int64_t sum = 0;
  for (std::uint64_t s : state_counts_) sum += static_cast<std::int64_t>(s);
  return sum;
}

// ---------------------------------------------------------------------------
// Column accessors.

Event TraceStore::event(ProcessId p, std::size_t t) const {
  WCP_REQUIRE(p.valid() && p.idx() < num_processes(), "bad process id " << p);
  WCP_REQUIRE(t < num_events(p),
              "event (" << p << "," << t << ") out of range");
  const std::uint32_t w = events_[event_offsets_[p.idx()] + t];
  return Event{(w & kReceiveBit) != 0 ? EventKind::kReceive : EventKind::kSend,
               static_cast<MessageId>(w & ~kReceiveBit)};
}

std::span<const std::uint32_t> TraceStore::packed_events(ProcessId p) const {
  WCP_REQUIRE(p.valid() && p.idx() < num_processes(), "bad process id " << p);
  return events_.subspan(event_offsets_[p.idx()],
                         event_offsets_[p.idx() + 1] - event_offsets_[p.idx()]);
}

bool TraceStore::local_pred(ProcessId p, StateIndex k) const {
  WCP_REQUIRE(p.valid() && p.idx() < num_processes(), "bad process id " << p);
  WCP_REQUIRE(k >= 1 && k <= num_states(p),
              "state (" << p << "," << k << ") out of range");
  const auto bit = static_cast<std::uint64_t>(k - 1);
  return (pred_bits_[pred_word_offsets_[p.idx()] + bit / 64] >>
          (bit % 64)) & 1;
}

MessageRecord TraceStore::message(MessageId id) const {
  WCP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < num_messages(),
              "unknown message " << id);
  const std::size_t b = static_cast<std::size_t>(id) * 4;
  return MessageRecord{ProcessId(static_cast<int>(messages_[b])),
                       static_cast<StateIndex>(messages_[b + 1]),
                       ProcessId(static_cast<int>(messages_[b + 2])),
                       static_cast<StateIndex>(messages_[b + 3])};
}

StateIndex TraceStore::clock_component(ProcessId p, StateIndex k,
                                       ProcessId j) const {
  const std::size_t N = num_processes();
  WCP_REQUIRE(p.valid() && p.idx() < N, "bad process id " << p);
  WCP_REQUIRE(j.valid() && j.idx() < N, "bad process id " << j);
  WCP_REQUIRE(k >= 1 && k <= num_states(p),
              "state (" << p << "," << k << ") out of range");
  if (p == j) return k;  // own component counts local states directly
  const std::uint64_t lo = clock_offsets_[p.idx() * N + j.idx()];
  const std::uint64_t hi = clock_offsets_[p.idx() * N + j.idx() + 1];
  return static_cast<StateIndex>(lookup_packed(
      clock_entries_.data() + lo, clock_entries_.data() + hi,
      static_cast<std::uint64_t>(k)));
}

VectorClock TraceStore::clock(ProcessId p, StateIndex k) const {
  const std::size_t N = num_processes();
  WCP_REQUIRE(p.valid() && p.idx() < N, "bad process id " << p);
  WCP_REQUIRE(k >= 1 && k <= num_states(p),
              "state (" << p << "," << k << ") out of range");
  std::vector<StateIndex> comps(N, 0);
  comps[p.idx()] = k;
  for (std::size_t j = 0; j < N; ++j) {
    if (j == p.idx()) continue;
    const std::uint64_t lo = clock_offsets_[p.idx() * N + j];
    const std::uint64_t hi = clock_offsets_[p.idx() * N + j + 1];
    comps[j] = static_cast<StateIndex>(lookup_packed(
        clock_entries_.data() + lo, clock_entries_.data() + hi,
        static_cast<std::uint64_t>(k)));
  }
  return VectorClock(std::move(comps));
}

// ---------------------------------------------------------------------------
// Binary format.

void TraceStore::save(std::ostream& os) const {
  const std::size_t N = num_processes();
  std::string body;

  const std::uint64_t off_pred_procs = kHeaderBytes + body.size();
  for (std::uint32_t v : pred_procs_) put_u32(body, v);
  pad8(body);
  const std::uint64_t off_state_counts = kHeaderBytes + body.size();
  for (std::uint64_t v : state_counts_) put_u64(body, v);
  const std::uint64_t off_events = kHeaderBytes + body.size();
  for (std::uint32_t v : events_) put_u32(body, v);
  pad8(body);
  const std::uint64_t off_pred_bits = kHeaderBytes + body.size();
  for (std::uint64_t v : pred_bits_) put_u64(body, v);
  const std::uint64_t off_messages = kHeaderBytes + body.size();
  for (std::uint32_t v : messages_) put_u32(body, v);
  pad8(body);
  const std::uint64_t off_clock_offsets = kHeaderBytes + body.size();
  for (std::uint64_t v : clock_offsets_) put_u64(body, v);
  const std::uint64_t off_clock_entries = kHeaderBytes + body.size();
  for (std::uint64_t v : clock_entries_) put_u64(body, v);

  std::string hdr;
  hdr.append(kTracebinMagic);
  put_u32(hdr, kTracebinVersion);
  put_u32(hdr, 0);  // reserved
  put_u64(hdr, N);
  put_u64(hdr, pred_procs_.size());
  put_u64(hdr, num_messages());
  put_u64(hdr, events_.size());
  put_u64(hdr, static_cast<std::uint64_t>(total_states()));
  put_u64(hdr, pred_bits_.size());
  put_u64(hdr, clock_entries_.size());
  put_u64(hdr, off_pred_procs);
  put_u64(hdr, off_state_counts);
  put_u64(hdr, off_events);
  put_u64(hdr, off_pred_bits);
  put_u64(hdr, off_messages);
  put_u64(hdr, off_clock_offsets);
  put_u64(hdr, off_clock_entries);
  put_u64(hdr, kHeaderBytes + body.size());  // file size
  WCP_CHECK(hdr.size() == kHeaderBytes);

  os.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  WCP_REQUIRE(os.good(), "trace store write failed");
}

TraceStore TraceStore::load(std::istream& is, const TraceLoadOptions& opts) {
  return from_source(ByteSource::read_stream(is), opts);
}

TraceStore TraceStore::from_source(std::shared_ptr<const ByteSource> src,
                                   const TraceLoadOptions& opts) {
  WCP_REQUIRE(src != nullptr, "cannot load a trace from a null byte source");
  const std::span<const std::byte> buf = src->bytes();
  src->advise_sequential();  // validation below scans front to back

  WCP_REQUIRE(buf.size() >= kHeaderBytes,
              "wcp-tracebin parse error: stream shorter than the "
                  << kHeaderBytes << "-byte header (" << buf.size()
                  << " bytes)");
  WCP_REQUIRE(std::memcmp(buf.data(), kTracebinMagic.data(),
                          kTracebinMagic.size()) == 0,
              "wcp-tracebin parse error: bad magic (not a wcp-tracebin file)");
  const std::uint32_t version = get_u32(buf, 8);
  WCP_REQUIRE(version == kTracebinVersion,
              "wcp-tracebin parse error: unsupported version " << version);
  WCP_REQUIRE(get_u32(buf, 12) == 0,
              "wcp-tracebin parse error: nonzero reserved header field");

  const std::uint64_t N = get_u64(buf, 16);
  const std::uint64_t num_preds = get_u64(buf, 24);
  const std::uint64_t num_msgs = get_u64(buf, 32);
  const std::uint64_t total_events = get_u64(buf, 40);
  const std::uint64_t total_states = get_u64(buf, 48);
  const std::uint64_t total_pred_words = get_u64(buf, 56);
  const std::uint64_t total_entries = get_u64(buf, 64);
  const std::uint64_t file_size = get_u64(buf, 128);

  WCP_REQUIRE(file_size == buf.size(),
              "wcp-tracebin parse error: header file size "
                  << file_size << " != actual stream size " << buf.size());
  WCP_REQUIRE(N >= 1 && N <= 0x7fffffffull,
              "wcp-tracebin parse error: bad process count " << N);
  WCP_REQUIRE(num_msgs < kMessageCap,
              "wcp-tracebin parse error: message count " << num_msgs
                                                         << " beyond 2^31 cap");
  // Every count below is multiplied by at most 8; bounding them by the
  // (already verified) file size keeps those products far from overflow.
  WCP_REQUIRE(N <= file_size && num_preds <= file_size &&
                  num_msgs <= file_size && total_events <= file_size &&
                  total_states <= file_size &&
                  total_pred_words <= file_size && total_entries <= file_size,
              "wcp-tracebin parse error: section count exceeds file size");
  WCP_REQUIRE(total_events + N == total_states,
              "wcp-tracebin parse error: total events " << total_events
                  << " + N " << N << " != total states " << total_states);

  // Sections are laid out sequentially, 8-byte aligned, exactly as the
  // writer emits them; anything else is rejected. This is the offsets-
  // within-file check that makes the mapped views below memory-safe: once
  // every section provably lies inside [0, file_size), no accessor can
  // touch a page past the mapping.
  const std::uint64_t offs[7] = {get_u64(buf, 72),  get_u64(buf, 80),
                                 get_u64(buf, 88),  get_u64(buf, 96),
                                 get_u64(buf, 104), get_u64(buf, 112),
                                 get_u64(buf, 120)};
  const auto padded = [](std::uint64_t bytes) { return (bytes + 7) & ~7ull; };
  const std::uint64_t sizes[7] = {padded(num_preds * 4),
                                  N * 8,
                                  padded(total_events * 4),
                                  total_pred_words * 8,
                                  padded(num_msgs * 16),
                                  (N * N + 1) * 8,
                                  total_entries * 8};
  static const char* const kSectionNames[7] = {
      "pred_procs", "state_counts", "events",       "pred_bits",
      "messages",   "clock_offsets", "clock_entries"};
  std::uint64_t expect = kHeaderBytes;
  for (int i = 0; i < 7; ++i) {
    WCP_REQUIRE(offs[i] == expect,
                "wcp-tracebin parse error: section " << kSectionNames[i]
                    << " at offset " << offs[i] << ", expected " << expect);
    WCP_REQUIRE(offs[i] % 8 == 0,
                "wcp-tracebin parse error: section " << kSectionNames[i]
                    << " offset " << offs[i] << " not 8-byte aligned");
    expect += sizes[i];
    WCP_REQUIRE(expect <= file_size,
                "wcp-tracebin parse error: section " << kSectionNames[i]
                    << " extends past end of file");
  }
  WCP_REQUIRE(expect == file_size,
              "wcp-tracebin parse error: " << (file_size - expect)
                                           << " trailing bytes after sections");

  TraceStore s;

  // Bind the columns. On a little-endian host with an aligned buffer (mmap
  // is page-aligned; OwnedBytes is word-aligned) the views point straight
  // into the source: zero copies, columns served from the page cache. Any
  // other host decodes element-wise into owned vectors.
  const bool zero_copy =
      std::endian::native == std::endian::little &&
      reinterpret_cast<std::uintptr_t>(buf.data()) % 8 == 0;
  if (zero_copy) {
    s.backing_ = src;
    s.pred_procs_ = {reinterpret_cast<const std::uint32_t*>(buf.data() + offs[0]),
                     num_preds};
    s.state_counts_ = {reinterpret_cast<const std::uint64_t*>(buf.data() + offs[1]),
                       N};
    s.events_ = {reinterpret_cast<const std::uint32_t*>(buf.data() + offs[2]),
                 total_events};
    s.pred_bits_ = {reinterpret_cast<const std::uint64_t*>(buf.data() + offs[3]),
                    total_pred_words};
    s.messages_ = {reinterpret_cast<const std::uint32_t*>(buf.data() + offs[4]),
                   num_msgs * 4};
    s.clock_offsets_ = {
        reinterpret_cast<const std::uint64_t*>(buf.data() + offs[5]), N * N + 1};
    s.clock_entries_ = {
        reinterpret_cast<const std::uint64_t*>(buf.data() + offs[6]),
        total_entries};
  } else {
    s.pred_procs_own_.resize(num_preds);
    for (std::uint64_t i = 0; i < num_preds; ++i)
      s.pred_procs_own_[i] = get_u32(buf, offs[0] + i * 4);
    s.state_counts_own_.resize(N);
    for (std::uint64_t p = 0; p < N; ++p)
      s.state_counts_own_[p] = get_u64(buf, offs[1] + p * 8);
    s.events_own_.resize(total_events);
    for (std::uint64_t i = 0; i < total_events; ++i)
      s.events_own_[i] = get_u32(buf, offs[2] + i * 4);
    s.pred_bits_own_.resize(total_pred_words);
    for (std::uint64_t i = 0; i < total_pred_words; ++i)
      s.pred_bits_own_[i] = get_u64(buf, offs[3] + i * 8);
    s.messages_own_.resize(num_msgs * 4);
    for (std::uint64_t i = 0; i < num_msgs * 4; ++i)
      s.messages_own_[i] = get_u32(buf, offs[4] + i * 4);
    s.clock_offsets_own_.resize(N * N + 1);
    for (std::uint64_t i = 0; i < N * N + 1; ++i)
      s.clock_offsets_own_[i] = get_u64(buf, offs[5] + i * 8);
    s.clock_entries_own_.resize(total_entries);
    for (std::uint64_t i = 0; i < total_entries; ++i)
      s.clock_entries_own_[i] = get_u64(buf, offs[6] + i * 8);
    s.bind_owned();
  }

  // Per-process shape: derive event/predicate offsets and re-check the
  // header totals against the state counts.
  s.event_offsets_.assign(N + 1, 0);
  s.pred_word_offsets_.assign(N + 1, 0);
  std::uint64_t state_sum = 0;
  for (std::uint64_t p = 0; p < N; ++p) {
    const std::uint64_t states = s.state_counts_[p];
    WCP_REQUIRE(states >= 1 && states < kStateCap,
                "wcp-tracebin parse error: process " << p
                    << " has invalid state count " << states);
    state_sum += states;
    s.event_offsets_[p + 1] = s.event_offsets_[p] + (states - 1);
    s.pred_word_offsets_[p + 1] = s.pred_word_offsets_[p] + (states + 63) / 64;
  }
  WCP_REQUIRE(state_sum == total_states,
              "wcp-tracebin parse error: state counts sum to "
                  << state_sum << ", header says " << total_states);
  WCP_REQUIRE(s.pred_word_offsets_[N] == total_pred_words,
              "wcp-tracebin parse error: predicate column needs "
                  << s.pred_word_offsets_[N] << " words, header says "
                  << total_pred_words);

  // Predicate bits past each process's last state must be zero (canonical
  // encoding; also what save() emits).
  for (std::uint64_t p = 0; p < N; ++p) {
    const std::uint64_t tail = s.state_counts_[p] % 64;
    if (tail != 0) {
      const std::uint64_t w = s.pred_bits_[s.pred_word_offsets_[p + 1] - 1];
      WCP_REQUIRE((w >> tail) == 0,
                  "wcp-tracebin parse error: nonzero predicate padding bits "
                  "on process " << p);
    }
  }

  WCP_REQUIRE(num_preds >= 1 && num_preds <= N,
              "wcp-tracebin parse error: predicate covers " << num_preds
                                                            << " processes");
  {
    std::vector<char> seen(N, 0);
    for (std::uint32_t v : s.pred_procs_) {
      WCP_REQUIRE(v < N, "wcp-tracebin parse error: predicate process " << v
                             << " out of range [0," << N << ")");
      WCP_REQUIRE(!seen[v], "wcp-tracebin parse error: predicate process "
                                << v << " listed twice");
      seen[v] = 1;
    }
  }

  // Message table: endpoints and states in range.
  for (std::uint64_t m = 0; m < num_msgs; ++m) {
    const std::uint32_t from = s.messages_[m * 4];
    const std::uint64_t send_state = s.messages_[m * 4 + 1];
    const std::uint32_t to = s.messages_[m * 4 + 2];
    const std::uint64_t recv_state = s.messages_[m * 4 + 3];
    WCP_REQUIRE(from < N && to < N && from != to,
                "wcp-tracebin parse error: message " << m << " endpoints "
                    << from << "->" << to << " invalid for N=" << N);
    WCP_REQUIRE(send_state >= 1 && send_state <= s.state_counts_[from],
                "wcp-tracebin parse error: message " << m << " send state "
                    << send_state << " out of range on process " << from);
    WCP_REQUIRE(recv_state == 0 ||
                    (recv_state >= 2 && recv_state <= s.state_counts_[to]),
                "wcp-tracebin parse error: message " << m << " recv state "
                    << recv_state << " out of range on process " << to);
  }

  // Event columns: every event word must name a real message whose recorded
  // endpoint/state matches the event's position, each message must be sent
  // exactly once and received exactly when delivered.
  {
    std::vector<char> send_seen(num_msgs, 0);
    std::vector<char> recv_seen(num_msgs, 0);
    for (std::uint64_t p = 0; p < N; ++p) {
      const std::uint64_t count = s.state_counts_[p] - 1;
      for (std::uint64_t t = 0; t < count; ++t) {
        const std::uint32_t w = s.events_[s.event_offsets_[p] + t];
        const std::uint64_t id = w & ~kReceiveBit;
        WCP_REQUIRE(id < num_msgs,
                    "wcp-tracebin parse error: event " << t << " on process "
                        << p << " names unknown message " << id);
        if ((w & kReceiveBit) == 0) {
          WCP_REQUIRE(!send_seen[id],
                      "wcp-tracebin parse error: message " << id
                          << " sent twice");
          send_seen[id] = 1;
          WCP_REQUIRE(s.messages_[id * 4] == p &&
                          s.messages_[id * 4 + 1] == t + 1,
                      "wcp-tracebin parse error: send of message " << id
                          << " at (" << p << "," << t + 1
                          << ") contradicts the message table");
        } else {
          WCP_REQUIRE(!recv_seen[id],
                      "wcp-tracebin parse error: message " << id
                          << " received twice");
          recv_seen[id] = 1;
          WCP_REQUIRE(s.messages_[id * 4 + 2] == p &&
                          s.messages_[id * 4 + 3] == t + 2,
                      "wcp-tracebin parse error: receive of message " << id
                          << " into (" << p << "," << t + 2
                          << ") contradicts the message table");
        }
      }
    }
    for (std::uint64_t m = 0; m < num_msgs; ++m) {
      WCP_REQUIRE(send_seen[m],
                  "wcp-tracebin parse error: message " << m
                      << " is in the table but never sent");
      const bool delivered = s.messages_[m * 4 + 3] != 0;
      WCP_REQUIRE(recv_seen[m] == (delivered ? 1 : 0),
                  "wcp-tracebin parse error: message " << m
                      << " delivery flag contradicts the event columns");
    }
  }

  // Clock interval index: offsets monotone and exhaustive, diagonals empty,
  // each change list strictly increasing in both state and value.
  WCP_REQUIRE(s.clock_offsets_[0] == 0 && s.clock_offsets_[N * N] == total_entries,
              "wcp-tracebin parse error: clock offsets do not span the entry "
              "section");
  for (std::uint64_t i = 0; i < N * N; ++i) {
    WCP_REQUIRE(s.clock_offsets_[i] <= s.clock_offsets_[i + 1],
                "wcp-tracebin parse error: clock offsets not monotone at "
                    << i);
    const std::uint64_t p = i / N, j = i % N;
    if (p == j) {
      WCP_REQUIRE(s.clock_offsets_[i] == s.clock_offsets_[i + 1],
                  "wcp-tracebin parse error: diagonal clock component ("
                      << p << "," << j << ") must be implicit, not stored");
      continue;
    }
    std::uint64_t prev_k = 1, prev_v = 0;
    for (std::uint64_t e = s.clock_offsets_[i]; e < s.clock_offsets_[i + 1];
         ++e) {
      const std::uint64_t k = s.clock_entries_[e] >> 32;
      const std::uint64_t v = s.clock_entries_[e] & 0xffff'ffffull;
      WCP_REQUIRE(k > prev_k && k <= s.state_counts_[p],
                  "wcp-tracebin parse error: clock change list (" << p << ","
                      << j << ") has non-increasing or out-of-range state "
                      << k);
      WCP_REQUIRE(v > prev_v && v <= s.state_counts_[j],
                  "wcp-tracebin parse error: clock change list (" << p << ","
                      << j << ") has non-increasing or out-of-range value "
                      << v);
      prev_k = k;
      prev_v = v;
    }
  }

  s.stats_.clocks_interned = s.total_states();
  s.stats_.delta_entries = static_cast<std::int64_t>(s.clock_entries_.size());
  s.stats_.delta_ratio =
      static_cast<double>(static_cast<std::int64_t>(N) * s.total_states()) /
      static_cast<double>(std::max<std::int64_t>(1, s.stats_.delta_entries));

  if (opts.verify_replay) {
    // Semantic verification: replay the event columns into a Computation and
    // rebuild the clock deltas from scratch. The change lists are a
    // canonical function of the causal structure (independent of message
    // numbering), so any disagreement means the stored clock section lies
    // about the events. Report the rebuild's peak (build scratch included)
    // so a verified binary load and a from-scratch build of the same
    // computation expose identical storage counters.
    const Computation replayed = s.to_computation();
    const TraceStore rebuilt = TraceStore::build(replayed);
    WCP_REQUIRE(
        std::ranges::equal(rebuilt.clock_offsets_, s.clock_offsets_) &&
            std::ranges::equal(rebuilt.clock_entries_, s.clock_entries_),
        "wcp-tracebin parse error: clock section is inconsistent with "
        "the event structure");
    s.stats_.peak_bytes = rebuilt.stats_.peak_bytes;
  } else {
    s.stats_.peak_bytes = s.resident_bytes();
  }

  // Validation scanned everything once; from here on access is random
  // (binary searches into the clock index, per-process column walks).
  src->advise_random();
  return s;
}

Computation TraceStore::to_computation() const {
  const std::size_t N = num_processes();
  ComputationBuilder b(N);
  {
    std::vector<ProcessId> preds;
    preds.reserve(pred_procs_.size());
    for (std::uint32_t v : pred_procs_)
      preds.emplace_back(static_cast<int>(v));
    b.set_predicate_processes(std::move(preds));
  }
  for (std::size_t p = 0; p < N; ++p) {
    const ProcessId pid(static_cast<int>(p));
    b.mark_pred(pid, local_pred(pid, 1));
  }

  // Greedy causal replay of the event columns; builder message ids are
  // assigned in replay order, so map the file's ids as sends are emitted.
  std::vector<std::size_t> next(N, 0);
  std::vector<MessageId> new_id(num_messages(), -1);
  std::size_t remaining = events_.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t p = 0; p < N; ++p) {
      const ProcessId pid(static_cast<int>(p));
      const std::size_t count = num_events(pid);
      while (next[p] < count) {
        const std::uint32_t w = events_[event_offsets_[p] + next[p]];
        const auto id = static_cast<std::size_t>(w & ~kReceiveBit);
        if ((w & kReceiveBit) == 0) {
          new_id[id] = b.send(pid, message(static_cast<MessageId>(id)).to);
        } else {
          if (new_id[id] < 0) break;  // wait for the sender's replay
          b.receive(new_id[id]);
        }
        b.mark_pred(pid, local_pred(pid, static_cast<StateIndex>(next[p]) + 2));
        ++next[p];
        --remaining;
        progressed = true;
      }
    }
    WCP_REQUIRE(progressed || remaining == 0,
                "wcp-tracebin parse error: event columns deadlock under "
                "causal replay (a receive precedes its send)");
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// File-level helpers.

void save_tracebin(std::ostream& os, const Computation& c) {
  c.trace_store().save(os);
}

void save_tracebin_file(const std::string& path, const Computation& c) {
  std::ofstream f(path, std::ios::binary);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  save_tracebin(f, c);
  // A short write (ENOSPC, quota, dying disk) can sit in the stream buffer
  // and "succeed" silently; force it out and check before reporting success.
  f.flush();
  WCP_REQUIRE(f.good(),
              "write to '" << path << "' failed (disk full or I/O error)");
}

Computation load_tracebin(std::istream& is, const TraceLoadOptions& opts) {
  return Computation::from_store(std::make_shared<const TraceStore>(
      TraceStore::from_source(ByteSource::read_stream(is), opts)));
}

Computation load_tracebin_file(const std::string& path,
                               const TraceLoadOptions& opts) {
  return Computation::from_store(std::make_shared<const TraceStore>(
      TraceStore::from_source(ByteSource::map_file(path), opts)));
}

Computation load_any_trace_file(const std::string& path,
                                const TraceLoadOptions& opts) {
  // One open, one inspection: sniff the magic straight from the (usually
  // mapped) bytes; the binary path parses them in place and the text path
  // streams them through a zero-copy streambuf.
  const auto src = ByteSource::map_file(path);
  const auto bytes = src->bytes();
  const bool binary =
      bytes.size() >= kTracebinMagic.size() &&
      std::memcmp(bytes.data(), kTracebinMagic.data(),
                  kTracebinMagic.size()) == 0;
  if (binary) {
    return Computation::from_store(std::make_shared<const TraceStore>(
        TraceStore::from_source(src, opts)));
  }
  ByteSourceStream s(*src);
  return read_trace(s);
}

}  // namespace wcp
