#include "trace/trace_io.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace wcp {

namespace {

// Per-process default predicate value = the majority value of its states,
// to keep traces small.
std::vector<bool> majority_defaults(const Computation& c) {
  std::vector<bool> def(c.num_processes());
  for (std::size_t p = 0; p < c.num_processes(); ++p) {
    ProcessId pid(static_cast<int>(p));
    std::int64_t trues = 0;
    const StateIndex total = c.num_states(pid);
    for (StateIndex k = 1; k <= total; ++k)
      if (c.local_pred(pid, k)) ++trues;
    def[p] = trues * 2 > total;
  }
  return def;
}

}  // namespace

void write_trace(std::ostream& os, const Computation& c) {
  const std::size_t N = c.num_processes();
  os << "wcp-trace 1\n";
  os << "processes " << N << "\n";
  os << "predicate";
  for (ProcessId p : c.predicate_processes()) os << ' ' << p.value();
  os << "\n";

  const auto def = majority_defaults(c);
  for (std::size_t p = 0; p < N; ++p)
    os << "default " << p << ' ' << (def[p] ? 1 : 0) << "\n";

  // Initial-state marks.
  for (std::size_t p = 0; p < N; ++p) {
    ProcessId pid(static_cast<int>(p));
    if (c.local_pred(pid, 1) != def[p])
      os << "mark " << p << ' ' << (c.local_pred(pid, 1) ? 1 : 0) << "\n";
  }

  // Greedy causal replay (receives after their sends), identical in spirit
  // to Computation::ensure_ground_truth.
  std::vector<std::size_t> next(N, 0);
  // Sends are renumbered in emission order; map original ids to new ones so
  // 'recv' lines reference the reader's ids.
  std::vector<MessageId> new_id(c.messages().size(), -1);
  MessageId next_new_id = 0;
  std::size_t remaining = 0;
  for (std::size_t p = 0; p < N; ++p)
    remaining += c.events(ProcessId(static_cast<int>(p))).size();

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t p = 0; p < N; ++p) {
      ProcessId pid(static_cast<int>(p));
      const auto events = c.events(pid);
      while (next[p] < events.size()) {
        const Event& ev = events[next[p]];
        const auto mi = static_cast<std::size_t>(ev.msg);
        if (ev.kind == EventKind::kSend) {
          const MessageRecord& mr = c.message(ev.msg);
          os << "send " << mr.from.value() << ' ' << mr.to.value() << "\n";
          new_id[mi] = next_new_id++;
        } else {
          if (new_id[mi] < 0) break;
          os << "recv " << new_id[mi] << "\n";
        }
        const StateIndex new_state = static_cast<StateIndex>(next[p]) + 2;
        if (c.local_pred(pid, new_state) != def[p])
          os << "mark " << p << ' ' << (c.local_pred(pid, new_state) ? 1 : 0)
             << "\n";
        ++next[p];
        --remaining;
        progressed = true;
      }
    }
    WCP_CHECK_MSG(progressed || remaining == 0,
                  "trace writer: inconsistent computation");
  }
  os << "end\n";
}

std::string trace_to_string(const Computation& c) {
  std::ostringstream oss;
  write_trace(oss, c);
  return oss.str();
}

Computation read_trace(std::istream& is) {
  std::string line;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      const auto pos = line.find('#');
      if (pos != std::string::npos) line.erase(pos);
      // Skip blank lines.
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };

  WCP_REQUIRE(next_line(), "empty trace");
  {
    std::istringstream hdr(line);
    std::string magic;
    int version = 0;
    hdr >> magic >> version;
    WCP_REQUIRE(magic == "wcp-trace" && version == 1,
                "bad trace header: '" << line << "'");
  }

  std::size_t N = 0;
  std::vector<ProcessId> preds;
  std::unique_ptr<ComputationBuilder> b;

  while (next_line()) {
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd == "processes") {
      ls >> N;
      WCP_REQUIRE(N >= 1, "bad process count in trace");
      b = std::make_unique<ComputationBuilder>(N);
    } else if (cmd == "predicate") {
      int v;
      while (ls >> v) preds.emplace_back(v);
    } else if (cmd == "default") {
      WCP_REQUIRE(b != nullptr, "'default' before 'processes'");
      int p, v;
      ls >> p >> v;
      b->set_default_pred(ProcessId(p), v != 0);
    } else if (cmd == "send") {
      WCP_REQUIRE(b != nullptr, "'send' before 'processes'");
      int from, to;
      ls >> from >> to;
      b->send(ProcessId(from), ProcessId(to));
    } else if (cmd == "recv") {
      WCP_REQUIRE(b != nullptr, "'recv' before 'processes'");
      MessageId id;
      ls >> id;
      b->receive(id);
    } else if (cmd == "mark") {
      WCP_REQUIRE(b != nullptr, "'mark' before 'processes'");
      int p, v;
      ls >> p >> v;
      b->mark_pred(ProcessId(p), v != 0);
    } else if (cmd == "end") {
      break;
    } else {
      WCP_REQUIRE(false, "unknown trace directive '" << cmd << "'");
    }
  }
  WCP_REQUIRE(b != nullptr, "trace missing 'processes'");
  if (!preds.empty()) b->set_predicate_processes(std::move(preds));
  return b->build();
}

Computation trace_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_trace(iss);
}

void save_trace_file(const std::string& path, const Computation& c) {
  std::ofstream f(path);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  write_trace(f, c);
}

Computation load_trace_file(const std::string& path) {
  std::ifstream f(path);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for reading");
  return read_trace(f);
}

}  // namespace wcp
