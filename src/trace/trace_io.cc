#include "trace/trace_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace wcp {

namespace {

// Per-process default predicate value = the majority value of its states,
// to keep traces small.
std::vector<bool> majority_defaults(const Computation& c) {
  std::vector<bool> def(c.num_processes());
  for (std::size_t p = 0; p < c.num_processes(); ++p) {
    ProcessId pid(static_cast<int>(p));
    std::int64_t trues = 0;
    const StateIndex total = c.num_states(pid);
    for (StateIndex k = 1; k <= total; ++k)
      if (c.local_pred(pid, k)) ++trues;
    def[p] = trues * 2 > total;
  }
  return def;
}

}  // namespace

void write_trace(std::ostream& os, const Computation& c) {
  const std::size_t N = c.num_processes();
  os << "wcp-trace 1\n";
  os << "processes " << N << "\n";
  os << "predicate";
  for (ProcessId p : c.predicate_processes()) os << ' ' << p.value();
  os << "\n";

  const auto def = majority_defaults(c);
  for (std::size_t p = 0; p < N; ++p)
    os << "default " << p << ' ' << (def[p] ? 1 : 0) << "\n";

  // Initial-state marks.
  for (std::size_t p = 0; p < N; ++p) {
    ProcessId pid(static_cast<int>(p));
    if (c.local_pred(pid, 1) != def[p])
      os << "mark " << p << ' ' << (c.local_pred(pid, 1) ? 1 : 0) << "\n";
  }

  // Greedy causal replay (receives after their sends), identical in spirit
  // to Computation::ensure_ground_truth.
  std::vector<std::size_t> next(N, 0);
  // Sends are renumbered in emission order; map original ids to new ones so
  // 'recv' lines reference the reader's ids.
  std::vector<MessageId> new_id(c.messages().size(), -1);
  MessageId next_new_id = 0;
  std::size_t remaining = 0;
  for (std::size_t p = 0; p < N; ++p)
    remaining += c.events(ProcessId(static_cast<int>(p))).size();

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t p = 0; p < N; ++p) {
      ProcessId pid(static_cast<int>(p));
      const auto events = c.events(pid);
      while (next[p] < events.size()) {
        const Event& ev = events[next[p]];
        const auto mi = static_cast<std::size_t>(ev.msg);
        if (ev.kind == EventKind::kSend) {
          const MessageRecord& mr = c.message(ev.msg);
          os << "send " << mr.from.value() << ' ' << mr.to.value() << "\n";
          new_id[mi] = next_new_id++;
        } else {
          if (new_id[mi] < 0) break;
          os << "recv " << new_id[mi] << "\n";
        }
        const StateIndex new_state = static_cast<StateIndex>(next[p]) + 2;
        if (c.local_pred(pid, new_state) != def[p])
          os << "mark " << p << ' ' << (c.local_pred(pid, new_state) ? 1 : 0)
             << "\n";
        ++next[p];
        --remaining;
        progressed = true;
      }
    }
    WCP_CHECK_MSG(progressed || remaining == 0,
                  "trace writer: inconsistent computation");
  }
  os << "end\n";
}

std::string trace_to_string(const Computation& c) {
  std::ostringstream oss;
  write_trace(oss, c);
  return oss.str();
}

Computation read_trace(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto pos = line.find('#');
      if (pos != std::string::npos) line.erase(pos);
      // Skip blank lines.
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };

  // Every rejection names the offending line; nothing parses silently.
  auto fail = [&](const std::string& why) {
    WCP_REQUIRE(false, "trace parse error at line " << line_no << ": " << why
                                                    << " in '" << line << "'");
  };
  auto parse_int = [&](std::istringstream& ls,
                       const char* what) -> std::int64_t {
    std::string tok;
    if (!(ls >> tok)) fail(std::string("missing ") + what);
    std::int64_t v = 0;
    std::size_t used = 0;
    try {
      v = std::stoll(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size())
      fail(std::string("unparseable ") + what + " '" + tok + "'");
    return v;
  };
  auto expect_eol = [&](std::istringstream& ls) {
    std::string extra;
    if (ls >> extra) fail("unexpected trailing token '" + extra + "'");
  };

  WCP_REQUIRE(next_line(), "trace parse error: empty input (missing header)");
  {
    std::istringstream hdr(line);
    std::string magic;
    hdr >> magic;
    if (magic != "wcp-trace") fail("bad magic (expected 'wcp-trace')");
    if (parse_int(hdr, "format version") != 1) fail("unsupported version");
    expect_eol(hdr);
  }

  std::size_t N = 0;
  std::vector<ProcessId> preds;
  bool saw_predicate = false;
  bool saw_end = false;
  std::unique_ptr<ComputationBuilder> b;
  MessageId num_sent = 0;
  std::vector<bool> delivered;

  auto parse_pid = [&](std::istringstream& ls, const char* what) -> int {
    const std::int64_t p = parse_int(ls, what);
    if (p < 0 || static_cast<std::size_t>(p) >= N)
      fail(std::string(what) + " " + std::to_string(p) + " out of range [0, " +
           std::to_string(N) + ")");
    return static_cast<int>(p);
  };
  auto parse_bit = [&](std::istringstream& ls, const char* what) -> bool {
    const std::int64_t v = parse_int(ls, what);
    if (v != 0 && v != 1)
      fail(std::string(what) + " " + std::to_string(v) + " not in {0, 1}");
    return v != 0;
  };

  while (next_line()) {
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd == "processes") {
      if (b) fail("duplicate 'processes' directive");
      const std::int64_t n = parse_int(ls, "process count");
      if (n < 1 || n > std::numeric_limits<int>::max())
        fail("process count " + std::to_string(n) + " out of range");
      expect_eol(ls);
      N = static_cast<std::size_t>(n);
      b = std::make_unique<ComputationBuilder>(N);
    } else if (cmd == "predicate") {
      if (!b) fail("'predicate' before 'processes'");
      if (saw_predicate) fail("duplicate 'predicate' directive");
      saw_predicate = true;
      std::vector<bool> seen(N, false);
      std::string tok;
      while (ls >> tok) {
        std::istringstream one(tok);
        const int p = parse_pid(one, "predicate process");
        if (seen[static_cast<std::size_t>(p)])
          fail("duplicate predicate process " + std::to_string(p));
        seen[static_cast<std::size_t>(p)] = true;
        preds.emplace_back(p);
      }
    } else if (cmd == "default") {
      if (!b) fail("'default' before 'processes'");
      const int p = parse_pid(ls, "process id");
      const bool v = parse_bit(ls, "default value");
      expect_eol(ls);
      b->set_default_pred(ProcessId(p), v);
    } else if (cmd == "send") {
      if (!b) fail("'send' before 'processes'");
      const int from = parse_pid(ls, "sender");
      const int to = parse_pid(ls, "receiver");
      expect_eol(ls);
      if (from == to) fail("self-send on process " + std::to_string(from));
      const MessageId id = b->send(ProcessId(from), ProcessId(to));
      WCP_CHECK(id == num_sent);
      ++num_sent;
      delivered.push_back(false);
    } else if (cmd == "recv") {
      if (!b) fail("'recv' before 'processes'");
      const std::int64_t id = parse_int(ls, "message id");
      expect_eol(ls);
      if (id < 0 || id >= num_sent)
        fail("message id " + std::to_string(id) + " not sent yet (" +
             std::to_string(num_sent) + " sends so far)");
      if (delivered[static_cast<std::size_t>(id)])
        fail("message " + std::to_string(id) + " already received");
      delivered[static_cast<std::size_t>(id)] = true;
      b->receive(id);
    } else if (cmd == "mark") {
      if (!b) fail("'mark' before 'processes'");
      const int p = parse_pid(ls, "process id");
      const bool v = parse_bit(ls, "mark value");
      expect_eol(ls);
      b->mark_pred(ProcessId(p), v);
    } else if (cmd == "end") {
      expect_eol(ls);
      saw_end = true;
      break;
    } else {
      fail("unknown directive '" + cmd + "'");
    }
  }
  if (!saw_end) {
    WCP_REQUIRE(false, "trace parse error at line "
                           << line_no << ": missing 'end' directive");
  }
  if (next_line()) fail("content after 'end'");
  WCP_CHECK(b != nullptr);
  if (!preds.empty()) b->set_predicate_processes(std::move(preds));
  return b->build();
}

Computation trace_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_trace(iss);
}

void save_trace_file(const std::string& path, const Computation& c) {
  std::ofstream f(path);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for writing");
  write_trace(f, c);
}

Computation load_trace_file(const std::string& path) {
  std::ifstream f(path);
  WCP_REQUIRE(f.good(), "cannot open '" << path << "' for reading");
  return read_trace(f);
}

}  // namespace wcp
