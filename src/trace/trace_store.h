// Columnar trace storage: the at-rest counterpart of common/cut_storage.h.
//
// A Computation's ground-truth causality used to be an eager clock matrix —
// one heap-backed N-wide VectorClock per local state, O(N * total_states)
// bytes — which caps lattice/slice runs long before the exploration itself
// does. TraceStore replaces that matrix with flat, fixed-width columns:
//
//   - per-process event columns: one packed 32-bit word per event (high bit
//     = receive, low 31 bits = message id), concatenated back to back;
//   - per-process predicate columns: one bit per local state;
//   - a packed message table: four 32-bit words per message;
//   - delta-encoded vector clocks: the Singhal-Kshemkalyani differential
//     idea applied at rest. The own component of state (p, k) is k by
//     construction (Fig. 2 ticks once per event), so it is never stored.
//     Every other component (p, j) is a non-decreasing step function of k
//     that only moves on receives, so the store keeps just its change
//     points — a sorted (k, value) list per (process, component) pair,
//     addressed through a flat interval index of N*N+1 offsets. Reading a
//     component is one binary search; reconstructing a full clock is N of
//     them, on demand, instead of N words held resident per state.
//
// The same columns define the versioned on-disk format "wcp-tracebin 1":
// every section is fixed-width little-endian, the header carries the column
// offsets, and all sections are 8-byte aligned. The loader exploits exactly
// that: columns are std::span views that either point into owned vectors
// (stores built in memory) or straight into a live ByteSource — an mmap of
// the file on disk — so opening a tracebin is O(header) copies and the
// columns are served from the page cache (docs/ALGORITHMS.md §13).
//
// Validation is layered. Structural validation (magic, version, section
// offsets within the file, alignment, id ranges, event/message cross-links,
// clock-offset and change-list monotonicity) ALWAYS runs: after it, no
// accessor can read outside the mapping, so a truncated or hostile file
// fails with "wcp-tracebin parse error:" instead of faulting. The O(file)
// *semantic* check — replaying the events and rebuilding the clock deltas
// to confirm the stored clocks describe this computation — is opt-out via
// TraceLoadOptions::verify_replay for files we wrote ourselves.
//
// Everything is measured: TraceStoreStats reports the store's resident
// high-water mark (build scratch included), the number of clocks it
// represents, and the delta-compression ratio against the full-matrix
// representation it replaced — the counters behind bench E18.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clock/vector_clock.h"
#include "common/byte_source.h"
#include "common/error.h"
#include "common/types.h"
#include "trace/computation.h"
#include "trace/trace_store_stats.h"

namespace wcp {

/// Knobs for the wcp-tracebin loaders. Structural validation is not a knob:
/// it always runs, because it is what makes the mapped accessors memory-safe.
struct TraceLoadOptions {
  /// Replay the event columns and rebuild the clock deltas to verify the
  /// stored clocks semantically (O(file) time and heap). Turn off for files
  /// this process (or a trusted pipeline) wrote: the `--trusted` fast path,
  /// which keeps open time O(header + scan) and resident bytes O(N).
  bool verify_replay = true;
};

/// Flat, immutable, columnar snapshot of one Computation.
///
/// Move-only: the column spans may point into the owned vectors, and a
/// member-wise copy would leave the copy's spans aliasing the original.
class TraceStore {
 public:
  TraceStore() = default;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;
  TraceStore(TraceStore&&) = default;
  TraceStore& operator=(TraceStore&&) = default;

  /// Builds the columns by one causal replay of `c` (receives are processed
  /// after their sends, exactly the order ComputationBuilder guarantees).
  static TraceStore build(const Computation& c);

  // ---- shape ---------------------------------------------------------------

  [[nodiscard]] std::size_t num_processes() const {
    return state_counts_.size();
  }
  [[nodiscard]] StateIndex num_states(ProcessId p) const {
    return static_cast<StateIndex>(span_at(state_counts_, p.idx()));
  }
  [[nodiscard]] std::size_t num_events(ProcessId p) const {
    return span_at(state_counts_, p.idx()) - 1;
  }
  [[nodiscard]] std::size_t num_messages() const {
    return messages_.size() / 4;
  }
  [[nodiscard]] std::span<const std::uint32_t> predicate_processes() const {
    return pred_procs_;
  }
  [[nodiscard]] std::int64_t total_states() const;

  // ---- columns -------------------------------------------------------------

  /// Event t (0-based) on process p's timeline.
  [[nodiscard]] Event event(ProcessId p, std::size_t t) const;
  /// Packed event column of process p (kPackedEventReceiveBit | message id
  /// per word) — the zero-copy view Computation serves events from.
  [[nodiscard]] std::span<const std::uint32_t> packed_events(
      ProcessId p) const;
  /// Truth of p's local predicate in state k (1-based).
  [[nodiscard]] bool local_pred(ProcessId p, StateIndex k) const;
  [[nodiscard]] MessageRecord message(MessageId id) const;
  /// Packed message table, {from, send_state, to, recv_state} per record.
  [[nodiscard]] std::span<const std::uint32_t> packed_messages() const {
    return messages_;
  }

  // ---- ground-truth clocks -------------------------------------------------

  /// Component j of the clock of state (p, k): O(1) for the own component,
  /// one interval-index binary search otherwise.
  [[nodiscard]] StateIndex clock_component(ProcessId p, StateIndex k,
                                           ProcessId j) const;
  /// Full N-wide clock of state (p, k), reconstructed on demand.
  [[nodiscard]] VectorClock clock(ProcessId p, StateIndex k) const;

  [[nodiscard]] const TraceStoreStats& stats() const { return stats_; }

  /// True when the columns alias a live file mapping rather than heap
  /// vectors.
  [[nodiscard]] bool mapped() const {
    return backing_ != nullptr && backing_->mapped();
  }

  /// Drop the resident pages of a mapped store back to the page cache
  /// (no-op for heap-backed stores). Columns stay valid and refault on
  /// demand.
  void release_resident() const {
    if (backing_ != nullptr) backing_->drop_resident();
  }

  // ---- binary format (wcp-tracebin 1) --------------------------------------

  /// Serializes every column in the fixed-width little-endian layout
  /// documented in docs/ALGORITHMS.md §13.
  void save(std::ostream& os) const;

  /// Parses and validates a wcp-tracebin stream (buffered: the stream is
  /// read into an owned aligned buffer first); throws std::invalid_argument
  /// with the offending section/field on any malformed input.
  static TraceStore load(std::istream& is, const TraceLoadOptions& opts = {});

  /// Zero-copy load: parses and validates the bytes of `src` in place and
  /// keeps `src` alive as the backing of the column views. This is the mmap
  /// fast path — on a little-endian host no column is copied.
  static TraceStore from_source(std::shared_ptr<const ByteSource> src,
                                const TraceLoadOptions& opts = {});

  /// Rebuilds the full Computation (events, predicates, messages) by causal
  /// replay of the columns. The result carries no clock store; callers that
  /// want to reuse this store's clocks attach it via
  /// Computation::adopt_trace_store.
  [[nodiscard]] Computation to_computation() const;

 private:
  friend class Computation;

  template <class T>
  static const T& span_at(std::span<const T> s, std::size_t i) {
    WCP_CHECK_MSG(i < s.size(), "trace store index " << i << " out of range "
                                                     << s.size());
    return s[i];
  }

  /// Points every column span at its owned vector (in-memory builds and the
  /// big-endian decode fallback).
  void bind_owned();

  [[nodiscard]] std::int64_t resident_bytes() const;

  // Column views: each aliases either its *_own_ vector below or `backing_`.
  // All indices into them are derived from state_counts_, so the layout has
  // no per-process pointer structures.
  std::span<const std::uint64_t> state_counts_;   // per process
  std::span<const std::uint32_t> pred_procs_;     // predicate slots, in order
  std::span<const std::uint32_t> events_;         // kReceiveBit | message id
  std::span<const std::uint64_t> pred_bits_;      // per process, 64 states/word
  std::span<const std::uint32_t> messages_;       // {from, send_state, to, recv_state}

  // Interval index: change points of component j on process p live at
  // clock_entries_[clock_offsets_[p*N+j] .. clock_offsets_[p*N+j+1]), each
  // packed (k << 32) | value with k strictly increasing.
  std::span<const std::uint64_t> clock_offsets_;  // N*N + 1
  std::span<const std::uint64_t> clock_entries_;

  // Derived indexes, always owned (O(N) small).
  std::vector<std::uint64_t> event_offsets_;      // N+1, into events_
  std::vector<std::uint64_t> pred_word_offsets_;  // N+1, into pred_bits_

  // Owned storage backing the views for in-memory builds (and for loads
  // that must decode element-wise); empty when the views alias `backing_`.
  std::vector<std::uint64_t> state_counts_own_;
  std::vector<std::uint32_t> pred_procs_own_;
  std::vector<std::uint32_t> events_own_;
  std::vector<std::uint64_t> pred_bits_own_;
  std::vector<std::uint32_t> messages_own_;
  std::vector<std::uint64_t> clock_offsets_own_;
  std::vector<std::uint64_t> clock_entries_own_;

  // Keeps the mapping (or owned file buffer) alive while views alias it.
  std::shared_ptr<const ByteSource> backing_;

  TraceStoreStats stats_;
};

// ---- file-level helpers ----------------------------------------------------

inline constexpr std::string_view kTracebinMagic = "wcptrbin";

/// Writes `c` in the wcp-tracebin 1 binary format (builds or reuses the
/// computation's TraceStore).
void save_tracebin(std::ostream& os, const Computation& c);
void save_tracebin_file(const std::string& path, const Computation& c);

/// Reads a wcp-tracebin stream back into a Computation whose events,
/// predicates, messages, and ground-truth clocks are all served by the
/// loaded store (no eager per-process materialization).
Computation load_tracebin(std::istream& is, const TraceLoadOptions& opts = {});
Computation load_tracebin_file(const std::string& path,
                               const TraceLoadOptions& opts = {});

/// Loads either trace format: the file is opened (mmap-ed when possible)
/// exactly once, the magic bytes are sniffed in place, and "wcptrbin" goes
/// straight to the mapped binary path while anything else is parsed as text
/// from the same bytes.
Computation load_any_trace_file(const std::string& path,
                                const TraceLoadOptions& opts = {});

}  // namespace wcp
