// Columnar trace storage: the at-rest counterpart of common/cut_storage.h.
//
// A Computation's ground-truth causality used to be an eager clock matrix —
// one heap-backed N-wide VectorClock per local state, O(N * total_states)
// bytes — which caps lattice/slice runs long before the exploration itself
// does. TraceStore replaces that matrix with flat, fixed-width columns:
//
//   - per-process event columns: one packed 32-bit word per event (high bit
//     = receive, low 31 bits = message id), concatenated back to back;
//   - per-process predicate columns: one bit per local state;
//   - a packed message table: four 32-bit words per message;
//   - delta-encoded vector clocks: the Singhal-Kshemkalyani differential
//     idea applied at rest. The own component of state (p, k) is k by
//     construction (Fig. 2 ticks once per event), so it is never stored.
//     Every other component (p, j) is a non-decreasing step function of k
//     that only moves on receives, so the store keeps just its change
//     points — a sorted (k, value) list per (process, component) pair,
//     addressed through a flat interval index of N*N+1 offsets. Reading a
//     component is one binary search; reconstructing a full clock is N of
//     them, on demand, instead of N words held resident per state.
//
// The same columns define the versioned on-disk format "wcp-tracebin 1":
// every section is fixed-width little-endian, the header carries the column
// offsets, and all sections are 8-byte aligned, so a loader may equally
// mmap the file and point the columns straight into it. save/load
// round-trips computations exactly — including undelivered in-flight
// messages — and the loader validates every section (magic, version,
// offsets, ids, monotonicity) before building anything, failing with a
// descriptive parse error rather than corrupting state.
//
// Everything is measured: TraceStoreStats reports the store's resident
// high-water mark (build scratch included), the number of clocks it
// represents, and the delta-compression ratio against the full-matrix
// representation it replaced — the counters behind bench E18.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clock/vector_clock.h"
#include "common/types.h"
#include "trace/computation.h"
#include "trace/trace_store_stats.h"

namespace wcp {

/// Flat, immutable, columnar snapshot of one Computation.
class TraceStore {
 public:
  TraceStore() = default;

  /// Builds the columns by one causal replay of `c` (receives are processed
  /// after their sends, exactly the order ComputationBuilder guarantees).
  static TraceStore build(const Computation& c);

  // ---- shape ---------------------------------------------------------------

  [[nodiscard]] std::size_t num_processes() const {
    return state_counts_.size();
  }
  [[nodiscard]] StateIndex num_states(ProcessId p) const {
    return static_cast<StateIndex>(state_counts_.at(p.idx()));
  }
  [[nodiscard]] std::size_t num_events(ProcessId p) const {
    return state_counts_.at(p.idx()) - 1;
  }
  [[nodiscard]] std::size_t num_messages() const {
    return messages_.size() / 4;
  }
  [[nodiscard]] std::span<const std::uint32_t> predicate_processes() const {
    return pred_procs_;
  }
  [[nodiscard]] std::int64_t total_states() const;

  // ---- columns -------------------------------------------------------------

  /// Event t (0-based) on process p's timeline.
  [[nodiscard]] Event event(ProcessId p, std::size_t t) const;
  /// Truth of p's local predicate in state k (1-based).
  [[nodiscard]] bool local_pred(ProcessId p, StateIndex k) const;
  [[nodiscard]] MessageRecord message(MessageId id) const;

  // ---- ground-truth clocks -------------------------------------------------

  /// Component j of the clock of state (p, k): O(1) for the own component,
  /// one interval-index binary search otherwise.
  [[nodiscard]] StateIndex clock_component(ProcessId p, StateIndex k,
                                           ProcessId j) const;
  /// Full N-wide clock of state (p, k), reconstructed on demand.
  [[nodiscard]] VectorClock clock(ProcessId p, StateIndex k) const;

  [[nodiscard]] const TraceStoreStats& stats() const { return stats_; }

  // ---- binary format (wcp-tracebin 1) --------------------------------------

  /// Serializes every column in the fixed-width little-endian layout
  /// documented in docs/ALGORITHMS.md §13.
  void save(std::ostream& os) const;
  /// Parses and validates a wcp-tracebin stream; throws
  /// std::invalid_argument with the offending section/field on any
  /// malformed input.
  static TraceStore load(std::istream& is);

  /// Rebuilds the full Computation (events, predicates, messages) by causal
  /// replay of the columns. The result carries no clock store; callers that
  /// want to reuse this store's clocks attach it via
  /// Computation::adopt_trace_store (load_tracebin does).
  [[nodiscard]] Computation to_computation() const;

 private:
  friend class Computation;
  friend Computation load_tracebin(std::istream& is);

  /// Shared loader: structural + semantic validation; when `comp_out` is
  /// non-null it also receives the replayed Computation with the verified
  /// store attached (saving load_tracebin a second replay).
  static TraceStore load_impl(std::istream& is, Computation* comp_out);

  [[nodiscard]] std::int64_t resident_bytes() const;

  // Shape + flat columns (all indices into them are derived from
  // state_counts_, so the layout has no per-process pointer structures).
  std::vector<std::uint64_t> state_counts_;     // per process
  std::vector<std::uint32_t> pred_procs_;       // predicate slots, in order
  std::vector<std::uint64_t> event_offsets_;    // N+1, into events_
  std::vector<std::uint32_t> events_;           // kReceiveBit | message id
  std::vector<std::uint64_t> pred_word_offsets_;  // N+1, into pred_bits_
  std::vector<std::uint64_t> pred_bits_;        // per process, 64 states/word
  std::vector<std::uint32_t> messages_;         // {from, send_state, to, recv_state}

  // Interval index: change points of component j on process p live at
  // clock_entries_[clock_offsets_[p*N+j] .. clock_offsets_[p*N+j+1]), each
  // packed (k << 32) | value with k strictly increasing.
  std::vector<std::uint64_t> clock_offsets_;    // N*N + 1
  std::vector<std::uint64_t> clock_entries_;

  TraceStoreStats stats_;
};

// ---- file-level helpers ----------------------------------------------------

inline constexpr std::string_view kTracebinMagic = "wcptrbin";

/// Writes `c` in the wcp-tracebin 1 binary format (builds or reuses the
/// computation's TraceStore).
void save_tracebin(std::ostream& os, const Computation& c);
void save_tracebin_file(const std::string& path, const Computation& c);

/// Reads a wcp-tracebin stream back into a Computation whose ground-truth
/// clocks are served by the loaded store (no recomputation).
Computation load_tracebin(std::istream& is);
Computation load_tracebin_file(const std::string& path);

/// Loads either trace format, sniffing the magic bytes: "wcptrbin" selects
/// the binary reader, anything else falls through to the text reader.
Computation load_any_trace_file(const std::string& path);

}  // namespace wcp
