#include "trace/computation.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "trace/trace_store.h"

namespace wcp {

Computation Computation::from_store(std::shared_ptr<const TraceStore> store) {
  WCP_REQUIRE(store != nullptr, "cannot build a computation from a null store");
  Computation c;
  const std::size_t N = store->num_processes();
  c.store_backed_ = true;
  c.store_states_.resize(N);
  for (std::size_t p = 0; p < N; ++p)
    c.store_states_[p] = store->num_states(ProcessId(static_cast<int>(p)));
  c.pred_slot_.assign(N, -1);
  for (std::uint32_t v : store->predicate_processes()) {
    const ProcessId p(static_cast<std::int32_t>(v));
    c.pred_slot_.at(p.idx()) = static_cast<int>(c.predicate_processes_.size());
    c.predicate_processes_.push_back(p);
  }
  c.store_ = std::move(store);
  return c;
}

bool Computation::local_pred(ProcessId p, StateIndex k) const {
  if (store_backed_) return store_->local_pred(p, k);
  const auto& pp = per_process_.at(p.idx());
  WCP_REQUIRE(k >= 1 && k <= static_cast<StateIndex>(pp.pred.size()),
              "state (" << p << "," << k << ") out of range");
  return pp.pred[static_cast<std::size_t>(k - 1)];
}

EventView Computation::events(ProcessId p) const {
  if (store_backed_) {
    const auto col = store_->packed_events(p);
    return EventView(col.data(), col.size());
  }
  const auto& pp = per_process_.at(p.idx());
  return EventView(pp.events.data(), pp.events.size());
}

MessageView Computation::messages() const {
  if (store_backed_) {
    const auto tbl = store_->packed_messages();
    return MessageView(tbl.data(), tbl.size() / 4);
  }
  return MessageView(messages_.data(), messages_.size());
}

MessageRecord Computation::message(MessageId id) const {
  if (store_backed_) return store_->message(id);
  return messages_.at(static_cast<std::size_t>(id));
}

std::int64_t Computation::max_messages_per_process() const {
  // events on p == states on p minus one, on both representations.
  std::int64_t mx = 0;
  for (std::size_t p = 0; p < num_processes(); ++p)
    mx = std::max(mx, static_cast<std::int64_t>(
                          num_states(ProcessId(static_cast<int>(p))) - 1));
  return mx;
}

std::int64_t Computation::total_states() const {
  std::int64_t sum = 0;
  for (std::size_t p = 0; p < num_processes(); ++p)
    sum += static_cast<std::int64_t>(num_states(ProcessId(static_cast<int>(p))));
  return sum;
}

void Computation::ensure_ground_truth() const {
  if (store_) return;
  store_ = std::make_shared<const TraceStore>(TraceStore::build(*this));
}

VectorClock Computation::ground_truth_clock(ProcessId p, StateIndex k) const {
  ensure_ground_truth();
  return store_->clock(p, k);
}

StateIndex Computation::clock_component(ProcessId p, StateIndex k,
                                        ProcessId j) const {
  ensure_ground_truth();
  return store_->clock_component(p, k, j);
}

const TraceStore& Computation::trace_store() const {
  ensure_ground_truth();
  return *store_;
}

TraceStoreStats Computation::trace_store_stats() const {
  return store_ ? store_->stats() : TraceStoreStats{};
}

void Computation::adopt_trace_store(std::shared_ptr<const TraceStore> store) {
  WCP_REQUIRE(store != nullptr, "cannot adopt a null trace store");
  WCP_REQUIRE(store->num_processes() == num_processes(),
              "trace store is for " << store->num_processes()
                                    << " processes, computation has "
                                    << num_processes());
  for (std::size_t p = 0; p < num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    WCP_REQUIRE(store->num_states(pid) == num_states(pid),
                "trace store has " << store->num_states(pid)
                                   << " states on " << pid
                                   << ", computation has " << num_states(pid));
  }
  store_ = std::move(store);
}

bool Computation::happened_before(ProcessId i, StateIndex a, ProcessId j,
                                  StateIndex b) const {
  if (i == j) return a < b;
  // (i,a) -> (j,b) iff the clock of (j,b) has seen state a of P_i, i.e. a
  // message chain leaving P_i at or after state a reached (j,b). One
  // component lookup; the full clock is never reconstructed.
  return clock_component(j, b, i) >= a;
}

bool Computation::is_consistent_cut(std::span<const ProcessId> procs,
                                    std::span<const StateIndex> cut) const {
  WCP_REQUIRE(procs.size() == cut.size(), "cut width mismatch");
  for (std::size_t s = 0; s < procs.size(); ++s)
    for (std::size_t t = 0; t < procs.size(); ++t)
      if (s != t && happened_before(procs[s], cut[s], procs[t], cut[t]))
        return false;
  return true;
}

namespace {

// Shared advance-candidate oracle. `candidates[s]` lists the admissible
// state indices for slot s in increasing order.
std::optional<std::vector<StateIndex>> first_cut_oracle(
    const Computation& c, std::span<const ProcessId> procs,
    const std::vector<std::vector<StateIndex>>& candidates) {
  const std::size_t w = procs.size();
  std::vector<std::size_t> pos(w, 0);
  for (std::size_t s = 0; s < w; ++s)
    if (candidates[s].empty()) return std::nullopt;

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < w && !changed; ++s) {
      for (std::size_t t = 0; t < w; ++t) {
        if (s == t) continue;
        if (c.happened_before(procs[s], candidates[s][pos[s]], procs[t],
                              candidates[t][pos[t]])) {
          if (++pos[s] >= candidates[s].size()) return std::nullopt;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<StateIndex> cut(w);
  for (std::size_t s = 0; s < w; ++s) cut[s] = candidates[s][pos[s]];
  return cut;
}

}  // namespace

std::optional<std::vector<StateIndex>> Computation::first_wcp_cut() const {
  const auto procs = predicate_processes();
  std::vector<std::vector<StateIndex>> candidates(procs.size());
  for (std::size_t s = 0; s < procs.size(); ++s) {
    for (StateIndex k = 1; k <= num_states(procs[s]); ++k)
      if (local_pred(procs[s], k)) candidates[s].push_back(k);
  }
  return first_cut_oracle(*this, procs, candidates);
}

std::optional<std::vector<StateIndex>>
Computation::first_wcp_cut_all_processes() const {
  std::vector<ProcessId> procs;
  procs.reserve(num_processes());
  for (std::size_t p = 0; p < num_processes(); ++p)
    procs.emplace_back(static_cast<int>(p));

  std::vector<std::vector<StateIndex>> candidates(procs.size());
  for (std::size_t s = 0; s < procs.size(); ++s) {
    const bool constrained = predicate_slot(procs[s]) >= 0;
    for (StateIndex k = 1; k <= num_states(procs[s]); ++k)
      if (!constrained || local_pred(procs[s], k)) candidates[s].push_back(k);
  }
  return first_cut_oracle(*this, procs, candidates);
}

std::optional<Dependence> Computation::receive_dependence(ProcessId p,
                                                          StateIndex k) const {
  if (k < 2) return std::nullopt;
  const EventView evs = events(p);
  const auto t = static_cast<std::size_t>(k - 2);
  WCP_REQUIRE(t < evs.size(), "state (" << p << "," << k << ") out of range");
  const Event ev = evs[t];
  if (ev.kind != EventKind::kReceive) return std::nullopt;
  const MessageRecord mr = message(ev.msg);
  return Dependence{mr.from, mr.send_state};
}

std::ostream& operator<<(std::ostream& os, const Computation& c) {
  os << "Computation{N=" << c.num_processes() << ", n="
     << c.predicate_processes().size() << ", messages=" << c.messages().size()
     << ", states=" << c.total_states() << "}";
  return os;
}

// ---------------------------------------------------------------------------
// ComputationBuilder

ComputationBuilder::ComputationBuilder(std::size_t num_processes)
    : default_pred_(num_processes, false),
      in_flight_(num_processes),
      in_flight_head_(num_processes, 0) {
  WCP_REQUIRE(num_processes >= 1, "need at least one process");
  c_.per_process_.resize(num_processes);
  for (auto& pp : c_.per_process_) pp.pred.push_back(false);
  c_.pred_slot_.assign(num_processes, -1);
}

void ComputationBuilder::check_pid(ProcessId p) const {
  WCP_REQUIRE(p.valid() && p.idx() < c_.per_process_.size(),
              "bad process id " << p);
}

void ComputationBuilder::set_predicate_processes(std::vector<ProcessId> procs) {
  WCP_REQUIRE(!procs.empty(), "predicate must cover at least one process");
  for (ProcessId p : procs) check_pid(p);
  c_.predicate_processes_ = std::move(procs);
}

void ComputationBuilder::set_default_pred(ProcessId p, bool value) {
  check_pid(p);
  default_pred_[p.idx()] = value;
  auto& pp = c_.per_process_[p.idx()];
  // Apply to the current (still-open) state as well.
  pp.pred.back() = value;
}

void ComputationBuilder::mark_pred(ProcessId p, bool value) {
  check_pid(p);
  c_.per_process_[p.idx()].pred.back() = value;
}

MessageId ComputationBuilder::send(ProcessId from, ProcessId to) {
  check_pid(from);
  check_pid(to);
  WCP_REQUIRE(from != to, "self-messages are not modeled");
  const auto id = static_cast<MessageId>(c_.messages_.size());
  auto& pp = c_.per_process_[from.idx()];
  c_.messages_.push_back(MessageRecord{
      from, static_cast<StateIndex>(pp.pred.size()), to, /*recv_state=*/0});
  pp.events.push_back(Event{EventKind::kSend, id});
  pp.pred.push_back(default_pred_[from.idx()]);
  in_flight_[to.idx()].push_back(id);
  return id;
}

void ComputationBuilder::receive(MessageId msg) {
  WCP_REQUIRE(msg >= 0 && msg < static_cast<MessageId>(c_.messages_.size()),
              "unknown message " << msg);
  MessageRecord& mr = c_.messages_[static_cast<std::size_t>(msg)];
  WCP_REQUIRE(!mr.delivered(), "message " << msg << " received twice");
  auto& pp = c_.per_process_[mr.to.idx()];
  pp.events.push_back(Event{EventKind::kReceive, msg});
  pp.pred.push_back(default_pred_[mr.to.idx()]);
  mr.recv_state = static_cast<StateIndex>(pp.pred.size());
  // Lazily maintained FIFO view: drop the id from the in-flight queue when
  // it reaches the head (next_in_flight_to skips delivered ids).
}

MessageId ComputationBuilder::transfer(ProcessId from, ProcessId to) {
  const MessageId id = send(from, to);
  receive(id);
  return id;
}

ProcessId ComputationBuilder::message_destination(MessageId msg) const {
  WCP_REQUIRE(msg >= 0 && msg < static_cast<MessageId>(c_.messages_.size()),
              "unknown message " << msg);
  return c_.messages_[static_cast<std::size_t>(msg)].to;
}

std::size_t ComputationBuilder::in_flight_to(ProcessId to) const {
  check_pid(to);
  std::size_t count = 0;
  const auto& q = in_flight_[to.idx()];
  for (std::size_t i = in_flight_head_[to.idx()]; i < q.size(); ++i)
    if (!c_.messages_[static_cast<std::size_t>(q[i])].delivered()) ++count;
  return count;
}

std::optional<MessageId> ComputationBuilder::next_in_flight_to(
    ProcessId to) const {
  check_pid(to);
  const auto& q = in_flight_[to.idx()];
  auto& head = in_flight_head_[to.idx()];
  while (head < q.size() &&
         c_.messages_[static_cast<std::size_t>(q[head])].delivered())
    ++head;
  if (head >= q.size()) return std::nullopt;
  return q[head];
}

StateIndex ComputationBuilder::current_state(ProcessId p) const {
  check_pid(p);
  return static_cast<StateIndex>(c_.per_process_[p.idx()].pred.size());
}

Computation ComputationBuilder::build() {
  if (c_.predicate_processes_.empty()) {
    for (std::size_t p = 0; p < c_.per_process_.size(); ++p)
      c_.predicate_processes_.emplace_back(static_cast<int>(p));
  }
  c_.pred_slot_.assign(c_.per_process_.size(), -1);
  for (std::size_t s = 0; s < c_.predicate_processes_.size(); ++s) {
    ProcessId p = c_.predicate_processes_[s];
    WCP_REQUIRE(c_.pred_slot_[p.idx()] == -1,
                "process " << p << " listed twice in predicate");
    c_.pred_slot_[p.idx()] = static_cast<int>(s);
  }
  return std::move(c_);
}

}  // namespace wcp
