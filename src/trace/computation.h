// The computation (poset) model of §2.
//
// A Computation records one finite run of a distributed program of N
// processes: per-process sequences of local states separated by send/receive
// events, the message pairing between them, and the truth value of each
// process's local predicate in each state.
//
// States are numbered the way the paper's vector clocks number them
// (Fig. 2): state k on P_i is the k-th communication-free interval; the
// event between states k and k+1 is either a send or a receive. A message
// sent between states k and k+1 is said to be "sent from state k" — it
// carries the clock of state k — and a message received between states l
// and l+1 is "received into state l+1".
//
// Computation is immutable once built (via ComputationBuilder) and provides
// the ground-truth happened-before oracle used by tests, offline reference
// detectors, and the EXPERIMENTS harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "common/types.h"
#include "trace/trace_store_stats.h"

namespace wcp {

class TraceStore;

/// Identifier of a message within one computation.
using MessageId = std::int64_t;

/// Kind of communication event on a process timeline.
enum class EventKind : std::uint8_t { kSend, kReceive };

/// One communication event on a process. The event at position t (0-based)
/// on process p transitions local state t+1 to state t+2.
struct Event {
  EventKind kind;
  MessageId msg = -1;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Message pairing: sent by `from` from state `send_state`, received by `to`
/// into state `recv_state` (i.e. the receive created state recv_state).
/// recv_state == 0 means the message was still in flight when the observed
/// run ended (allowed; it induces no dependence).
struct MessageRecord {
  ProcessId from;
  StateIndex send_state = 0;
  ProcessId to;
  StateIndex recv_state = 0;

  [[nodiscard]] bool delivered() const { return recv_state != 0; }

  friend bool operator==(const MessageRecord&, const MessageRecord&) = default;
};

class ComputationBuilder;

class Computation {
 public:
  /// Number of processes N.
  [[nodiscard]] std::size_t num_processes() const { return per_process_.size(); }

  /// The n processes over which the WCP is defined, in cut order.
  [[nodiscard]] std::span<const ProcessId> predicate_processes() const {
    return predicate_processes_;
  }

  /// Position of p within predicate_processes(), or -1.
  [[nodiscard]] int predicate_slot(ProcessId p) const {
    return pred_slot_.at(p.idx());
  }

  /// Number of local states on process p (>= 1).
  [[nodiscard]] StateIndex num_states(ProcessId p) const {
    return static_cast<StateIndex>(per_process_.at(p.idx()).pred.size());
  }

  /// Truth of p's local predicate in state k (1-based).
  [[nodiscard]] bool local_pred(ProcessId p, StateIndex k) const;

  /// Events on process p's timeline, in order.
  [[nodiscard]] std::span<const Event> events(ProcessId p) const {
    return per_process_.at(p.idx()).events;
  }

  [[nodiscard]] std::span<const MessageRecord> messages() const {
    return messages_;
  }

  [[nodiscard]] const MessageRecord& message(MessageId id) const {
    return messages_.at(static_cast<std::size_t>(id));
  }

  /// m in the paper: max over processes of (sends + receives).
  [[nodiscard]] std::int64_t max_messages_per_process() const;

  /// Total number of local states, summed over processes.
  [[nodiscard]] std::int64_t total_states() const;

  // ---- Ground-truth causality (full-width vector clocks) ----------------

  /// Full-width (N-component) vector clock of state (p, k), reconstructed on
  /// demand from the columnar TraceStore (built once, lazily, on first use;
  /// delta-encoded rather than the old O(N * total_states) eager matrix).
  [[nodiscard]] VectorClock ground_truth_clock(ProcessId p,
                                               StateIndex k) const;

  /// Single component j of the clock of state (p, k): one interval-index
  /// binary search, no full-clock materialization. The hot path for
  /// happened_before and the slice causal-floor computation.
  [[nodiscard]] StateIndex clock_component(ProcessId p, StateIndex k,
                                           ProcessId j) const;

  /// Ground-truth happened-before between states (§2). k == 0 (pre-initial)
  /// happens before everything on other processes' positive states? No:
  /// the pre-initial placeholder never participates; requires k >= 1.
  [[nodiscard]] bool happened_before(ProcessId i, StateIndex a, ProcessId j,
                                     StateIndex b) const;

  [[nodiscard]] bool concurrent(ProcessId i, StateIndex a, ProcessId j,
                                StateIndex b) const {
    return !happened_before(i, a, j, b) && !happened_before(j, b, i, a) &&
           !(i == j && a == b);
  }

  /// True iff the cut (one state per process in `procs` order) is pairwise
  /// concurrent.
  [[nodiscard]] bool is_consistent_cut(std::span<const ProcessId> procs,
                                       std::span<const StateIndex> cut) const;

  // ---- Offline reference oracles -----------------------------------------

  /// First (pointwise-minimal) cut over predicate_processes() whose states
  /// all satisfy their local predicates and are pairwise concurrent.
  /// std::nullopt if the WCP never holds in this run.
  [[nodiscard]] std::optional<std::vector<StateIndex>> first_wcp_cut() const;

  /// First consistent cut over all N processes in which every predicate
  /// process satisfies its local predicate and every non-predicate process
  /// is unconstrained. Used to validate the direct-dependence algorithm.
  [[nodiscard]] std::optional<std::vector<StateIndex>>
  first_wcp_cut_all_processes() const;

  // ---- Derived per-state instrumentation data ----------------------------

  /// Scalar logical clock of state (p,k) under the §4.1 rules: clock == k
  /// (the counter is incremented on every send/receive, starting at 1).
  [[nodiscard]] static LamportTime lamport_clock(StateIndex k) { return k; }

  /// Direct dependences recorded during state (p,k): one (sender, clock)
  /// pair for the receive that created state k, if any (§4.1).
  [[nodiscard]] std::optional<Dependence> receive_dependence(
      ProcessId p, StateIndex k) const;

  // ---- Columnar trace store ----------------------------------------------

  /// The columnar store serving ground-truth clocks, materialized on first
  /// use (this call forces materialization).
  [[nodiscard]] const TraceStore& trace_store() const;

  /// Storage counters of the materialized store; all-zero if no caller has
  /// needed ground-truth causality yet.
  [[nodiscard]] TraceStoreStats trace_store_stats() const;

  /// Attach an externally built store (e.g. one loaded from a wcp-tracebin
  /// file) instead of rebuilding it; the store's shape must match.
  void adopt_trace_store(std::shared_ptr<const TraceStore> store);

 private:
  friend class ComputationBuilder;

  struct PerProcess {
    std::vector<Event> events;
    std::vector<bool> pred;  // pred[k-1] = local predicate in state k
  };

  void ensure_ground_truth() const;

  std::vector<PerProcess> per_process_;
  std::vector<MessageRecord> messages_;
  std::vector<ProcessId> predicate_processes_;
  std::vector<int> pred_slot_;  // process idx -> slot in predicate list, -1

  // Lazy ground truth: delta-encoded clock columns, one store per
  // computation (shared so adopters of a loaded file reuse the same data).
  mutable std::shared_ptr<const TraceStore> store_;
};

std::ostream& operator<<(std::ostream& os, const Computation& c);

/// Incremental builder. Events must be appended in an order that is causally
/// valid (a receive may only be appended after its send); build() verifies
/// this and computes nothing else eagerly.
class ComputationBuilder {
 public:
  explicit ComputationBuilder(std::size_t num_processes);

  /// Restrict the WCP to these processes (default: all N). Must be called
  /// before build(); order defines cut component order.
  void set_predicate_processes(std::vector<ProcessId> procs);

  /// Default truth value of newly created states on p (initial state
  /// included). Typically false for predicate processes, true for others.
  void set_default_pred(ProcessId p, bool value);

  /// Set the local predicate value of p's *current* (latest) state.
  void mark_pred(ProcessId p, bool value = true);

  /// Append a send event on `from`; returns the message id.
  MessageId send(ProcessId from, ProcessId to);

  /// Append the receive of `msg` on its destination process.
  void receive(MessageId msg);

  /// send() immediately followed by receive().
  MessageId transfer(ProcessId from, ProcessId to);

  /// Destination process of a previously sent message.
  [[nodiscard]] ProcessId message_destination(MessageId msg) const;

  /// Number of messages currently sent but not yet received to `to`.
  [[nodiscard]] std::size_t in_flight_to(ProcessId to) const;

  /// Pops the id of some in-flight message addressed to `to` (FIFO order).
  [[nodiscard]] std::optional<MessageId> next_in_flight_to(ProcessId to) const;

  [[nodiscard]] StateIndex current_state(ProcessId p) const;

  [[nodiscard]] std::size_t num_processes() const { return default_pred_.size(); }

  /// Finalize. The builder is left in a moved-from state.
  Computation build();

 private:
  void check_pid(ProcessId p) const;

  Computation c_;
  std::vector<bool> default_pred_;
  std::vector<std::vector<MessageId>> in_flight_;  // per destination, FIFO
  mutable std::vector<std::size_t> in_flight_head_;
};

}  // namespace wcp
