// The computation (poset) model of §2.
//
// A Computation records one finite run of a distributed program of N
// processes: per-process sequences of local states separated by send/receive
// events, the message pairing between them, and the truth value of each
// process's local predicate in each state.
//
// States are numbered the way the paper's vector clocks number them
// (Fig. 2): state k on P_i is the k-th communication-free interval; the
// event between states k and k+1 is either a send or a receive. A message
// sent between states k and k+1 is said to be "sent from state k" — it
// carries the clock of state k — and a message received between states l
// and l+1 is "received into state l+1".
//
// Computation is immutable once built (via ComputationBuilder) and provides
// the ground-truth happened-before oracle used by tests, offline reference
// detectors, and the EXPERIMENTS harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "common/types.h"
#include "trace/trace_store_stats.h"

namespace wcp {

class TraceStore;

/// Identifier of a message within one computation.
using MessageId = std::int64_t;

/// Kind of communication event on a process timeline.
enum class EventKind : std::uint8_t { kSend, kReceive };

/// One communication event on a process. The event at position t (0-based)
/// on process p transitions local state t+1 to state t+2.
struct Event {
  EventKind kind;
  MessageId msg = -1;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Message pairing: sent by `from` from state `send_state`, received by `to`
/// into state `recv_state` (i.e. the receive created state recv_state).
/// recv_state == 0 means the message was still in flight when the observed
/// run ended (allowed; it induces no dependence).
struct MessageRecord {
  ProcessId from;
  StateIndex send_state = 0;
  ProcessId to;
  StateIndex recv_state = 0;

  [[nodiscard]] bool delivered() const { return recv_state != 0; }

  friend bool operator==(const MessageRecord&, const MessageRecord&) = default;
};

/// High bit of a packed trace-store event word: set for receives; the low
/// 31 bits are the message id. This is the wcp-tracebin 1 event-column
/// encoding (trace_store.h), shared here so views can decode it in place.
inline constexpr std::uint32_t kPackedEventReceiveBit = 0x8000'0000u;

/// Random-access, value-returning view of one process's event timeline.
/// Backed either by the eager std::vector<Event> of a built Computation or
/// by the packed 32-bit event column of a (possibly mmap-ed) TraceStore, so
/// the same loop walks both without materializing Event records.
class EventView {
 public:
  EventView() = default;
  EventView(const Event* eager, std::size_t size)
      : eager_(eager), size_(size) {}
  EventView(const std::uint32_t* packed, std::size_t size)
      : packed_(packed), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] Event operator[](std::size_t i) const {
    if (eager_ != nullptr) return eager_[i];
    const std::uint32_t w = packed_[i];
    return Event{(w & kPackedEventReceiveBit) != 0 ? EventKind::kReceive
                                                   : EventKind::kSend,
                 static_cast<MessageId>(w & ~kPackedEventReceiveBit)};
  }

  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Event;

    iterator() = default;
    iterator(const EventView* v, std::size_t i) : v_(v), i_(i) {}
    Event operator*() const { return (*v_)[i_]; }
    Event operator[](difference_type d) const {
      return (*v_)[i_ + static_cast<std::size_t>(d)];
    }
    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type d) { i_ += static_cast<std::size_t>(d); return *this; }
    iterator& operator-=(difference_type d) { i_ -= static_cast<std::size_t>(d); return *this; }
    friend iterator operator+(iterator it, difference_type d) { return it += d; }
    friend iterator operator+(difference_type d, iterator it) { return it += d; }
    friend iterator operator-(iterator it, difference_type d) { return it -= d; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const EventView* v_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, size_}; }

 private:
  const Event* eager_ = nullptr;
  const std::uint32_t* packed_ = nullptr;
  std::size_t size_ = 0;
};

/// Value-returning view of the message table; eager MessageRecord array or
/// packed {from, send_state, to, recv_state} 32-bit quads, like EventView.
class MessageView {
 public:
  MessageView() = default;
  MessageView(const MessageRecord* eager, std::size_t size)
      : eager_(eager), size_(size) {}
  MessageView(const std::uint32_t* packed, std::size_t size)
      : packed_(packed), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] MessageRecord operator[](std::size_t i) const {
    if (eager_ != nullptr) return eager_[i];
    const std::uint32_t* q = packed_ + i * 4;
    return MessageRecord{ProcessId(static_cast<std::int32_t>(q[0])),
                         static_cast<StateIndex>(q[1]),
                         ProcessId(static_cast<std::int32_t>(q[2])),
                         static_cast<StateIndex>(q[3])};
  }

  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = MessageRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = MessageRecord;

    iterator() = default;
    iterator(const MessageView* v, std::size_t i) : v_(v), i_(i) {}
    MessageRecord operator*() const { return (*v_)[i_]; }
    MessageRecord operator[](difference_type d) const {
      return (*v_)[i_ + static_cast<std::size_t>(d)];
    }
    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type d) { i_ += static_cast<std::size_t>(d); return *this; }
    iterator& operator-=(difference_type d) { i_ -= static_cast<std::size_t>(d); return *this; }
    friend iterator operator+(iterator it, difference_type d) { return it += d; }
    friend iterator operator+(difference_type d, iterator it) { return it += d; }
    friend iterator operator-(iterator it, difference_type d) { return it -= d; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const MessageView* v_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, size_}; }

 private:
  const MessageRecord* eager_ = nullptr;
  const std::uint32_t* packed_ = nullptr;
  std::size_t size_ = 0;
};

class ComputationBuilder;

class Computation {
 public:
  /// Builds a computation that serves events, predicates, messages, and
  /// ground-truth clocks directly out of `store` — no eager per-process
  /// representation is materialized, so a mapped store stays on disk and
  /// pages in on demand. Only O(N) shape metadata is copied.
  static Computation from_store(std::shared_ptr<const TraceStore> store);

  /// True when this computation is a thin view over its TraceStore (the
  /// zero-copy load path) rather than an eager builder product.
  [[nodiscard]] bool store_backed() const { return store_backed_; }

  /// Number of processes N.
  [[nodiscard]] std::size_t num_processes() const { return pred_slot_.size(); }

  /// The n processes over which the WCP is defined, in cut order.
  [[nodiscard]] std::span<const ProcessId> predicate_processes() const {
    return predicate_processes_;
  }

  /// Position of p within predicate_processes(), or -1.
  [[nodiscard]] int predicate_slot(ProcessId p) const {
    return pred_slot_.at(p.idx());
  }

  /// Number of local states on process p (>= 1). Inline on both paths:
  /// store-backed computations cache the O(N) state counts at adoption so
  /// the hot exploration loops never call into the store for shape.
  [[nodiscard]] StateIndex num_states(ProcessId p) const {
    if (store_backed_) return store_states_.at(p.idx());
    return static_cast<StateIndex>(per_process_.at(p.idx()).pred.size());
  }

  /// Truth of p's local predicate in state k (1-based).
  [[nodiscard]] bool local_pred(ProcessId p, StateIndex k) const;

  /// Events on process p's timeline, in order (a value-returning view over
  /// either the eager vector or the store's packed column).
  [[nodiscard]] EventView events(ProcessId p) const;

  [[nodiscard]] MessageView messages() const;

  [[nodiscard]] MessageRecord message(MessageId id) const;

  /// m in the paper: max over processes of (sends + receives).
  [[nodiscard]] std::int64_t max_messages_per_process() const;

  /// Total number of local states, summed over processes.
  [[nodiscard]] std::int64_t total_states() const;

  // ---- Ground-truth causality (full-width vector clocks) ----------------

  /// Full-width (N-component) vector clock of state (p, k), reconstructed on
  /// demand from the columnar TraceStore (built once, lazily, on first use;
  /// delta-encoded rather than the old O(N * total_states) eager matrix).
  [[nodiscard]] VectorClock ground_truth_clock(ProcessId p,
                                               StateIndex k) const;

  /// Single component j of the clock of state (p, k): one interval-index
  /// binary search, no full-clock materialization. The hot path for
  /// happened_before and the slice causal-floor computation.
  [[nodiscard]] StateIndex clock_component(ProcessId p, StateIndex k,
                                           ProcessId j) const;

  /// Ground-truth happened-before between states (§2). k == 0 (pre-initial)
  /// happens before everything on other processes' positive states? No:
  /// the pre-initial placeholder never participates; requires k >= 1.
  [[nodiscard]] bool happened_before(ProcessId i, StateIndex a, ProcessId j,
                                     StateIndex b) const;

  [[nodiscard]] bool concurrent(ProcessId i, StateIndex a, ProcessId j,
                                StateIndex b) const {
    return !happened_before(i, a, j, b) && !happened_before(j, b, i, a) &&
           !(i == j && a == b);
  }

  /// True iff the cut (one state per process in `procs` order) is pairwise
  /// concurrent.
  [[nodiscard]] bool is_consistent_cut(std::span<const ProcessId> procs,
                                       std::span<const StateIndex> cut) const;

  // ---- Offline reference oracles -----------------------------------------

  /// First (pointwise-minimal) cut over predicate_processes() whose states
  /// all satisfy their local predicates and are pairwise concurrent.
  /// std::nullopt if the WCP never holds in this run.
  [[nodiscard]] std::optional<std::vector<StateIndex>> first_wcp_cut() const;

  /// First consistent cut over all N processes in which every predicate
  /// process satisfies its local predicate and every non-predicate process
  /// is unconstrained. Used to validate the direct-dependence algorithm.
  [[nodiscard]] std::optional<std::vector<StateIndex>>
  first_wcp_cut_all_processes() const;

  // ---- Derived per-state instrumentation data ----------------------------

  /// Scalar logical clock of state (p,k) under the §4.1 rules: clock == k
  /// (the counter is incremented on every send/receive, starting at 1).
  [[nodiscard]] static LamportTime lamport_clock(StateIndex k) { return k; }

  /// Direct dependences recorded during state (p,k): one (sender, clock)
  /// pair for the receive that created state k, if any (§4.1).
  [[nodiscard]] std::optional<Dependence> receive_dependence(
      ProcessId p, StateIndex k) const;

  // ---- Columnar trace store ----------------------------------------------

  /// The columnar store serving ground-truth clocks, materialized on first
  /// use (this call forces materialization).
  [[nodiscard]] const TraceStore& trace_store() const;

  /// Storage counters of the materialized store; all-zero if no caller has
  /// needed ground-truth causality yet.
  [[nodiscard]] TraceStoreStats trace_store_stats() const;

  /// Attach an externally built store (e.g. one loaded from a wcp-tracebin
  /// file) instead of rebuilding it; the store's shape must match.
  void adopt_trace_store(std::shared_ptr<const TraceStore> store);

 private:
  friend class ComputationBuilder;

  struct PerProcess {
    std::vector<Event> events;
    std::vector<bool> pred;  // pred[k-1] = local predicate in state k
  };

  void ensure_ground_truth() const;

  std::vector<PerProcess> per_process_;
  std::vector<MessageRecord> messages_;
  std::vector<ProcessId> predicate_processes_;
  std::vector<int> pred_slot_;  // process idx -> slot in predicate list, -1

  // Store-backed mode (from_store): per_process_/messages_ stay empty and
  // every accessor reads the store's columns; store_states_ caches the
  // per-process state counts so shape queries stay inline.
  bool store_backed_ = false;
  std::vector<StateIndex> store_states_;

  // Lazy ground truth: delta-encoded clock columns, one store per
  // computation (shared so adopters of a loaded file reuse the same data).
  mutable std::shared_ptr<const TraceStore> store_;
};

std::ostream& operator<<(std::ostream& os, const Computation& c);

/// Incremental builder. Events must be appended in an order that is causally
/// valid (a receive may only be appended after its send); build() verifies
/// this and computes nothing else eagerly.
class ComputationBuilder {
 public:
  explicit ComputationBuilder(std::size_t num_processes);

  /// Restrict the WCP to these processes (default: all N). Must be called
  /// before build(); order defines cut component order.
  void set_predicate_processes(std::vector<ProcessId> procs);

  /// Default truth value of newly created states on p (initial state
  /// included). Typically false for predicate processes, true for others.
  void set_default_pred(ProcessId p, bool value);

  /// Set the local predicate value of p's *current* (latest) state.
  void mark_pred(ProcessId p, bool value = true);

  /// Append a send event on `from`; returns the message id.
  MessageId send(ProcessId from, ProcessId to);

  /// Append the receive of `msg` on its destination process.
  void receive(MessageId msg);

  /// send() immediately followed by receive().
  MessageId transfer(ProcessId from, ProcessId to);

  /// Destination process of a previously sent message.
  [[nodiscard]] ProcessId message_destination(MessageId msg) const;

  /// Number of messages currently sent but not yet received to `to`.
  [[nodiscard]] std::size_t in_flight_to(ProcessId to) const;

  /// Pops the id of some in-flight message addressed to `to` (FIFO order).
  [[nodiscard]] std::optional<MessageId> next_in_flight_to(ProcessId to) const;

  [[nodiscard]] StateIndex current_state(ProcessId p) const;

  [[nodiscard]] std::size_t num_processes() const { return default_pred_.size(); }

  /// Finalize. The builder is left in a moved-from state.
  Computation build();

 private:
  void check_pid(ProcessId p) const;

  Computation c_;
  std::vector<bool> default_pred_;
  std::vector<std::vector<MessageId>> in_flight_;  // per destination, FIFO
  mutable std::vector<std::size_t> in_flight_head_;
};

}  // namespace wcp
