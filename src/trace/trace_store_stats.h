// Storage accounting for the columnar trace store, split out so result and
// report headers can carry the counters without pulling in the store itself.
#pragma once

#include <cstdint>

namespace wcp {

/// Storage accounting for one materialized TraceStore. All fields are
/// deterministic functions of the computation (never of thread count or
/// allocator behavior), so they are safe to emit in reproducible reports.
struct TraceStoreStats {
  /// High-water mark of store bytes: the resident columns plus the replay
  /// scratch the build phase held alongside them.
  std::int64_t peak_bytes = 0;
  /// Number of full vector clocks the store represents (== total states).
  std::int64_t clocks_interned = 0;
  /// Explicit (state, component) change points stored; every component not
  /// listed is implied (own component == k, others carry forward).
  std::int64_t delta_entries = 0;
  /// Full-matrix components (N * total_states) per stored change point;
  /// higher is better.
  double delta_ratio = 0.0;

  [[nodiscard]] bool materialized() const { return clocks_interned > 0; }
};

}  // namespace wcp
