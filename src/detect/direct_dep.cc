#include "detect/direct_dep.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

DdMonitor::DdMonitor(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "monitor needs shared detection state");
  next_red_ = cfg_.initial_next_red;
}

void DdMonitor::on_start() {
  if (cfg_.starts_with_token) {
    has_token_ = true;
    net().bump_token_hops();
  }
  drive();
}

void DdMonitor::on_packet(sim::Packet&& p) {
  switch (p.kind) {
    case MsgKind::kSnapshot: {
      auto snap = std::any_cast<app::DdSnapshot>(std::move(p.payload));
      net().monitor_buffer_change(pid(), snap.bytes(), +1);
      inbox_.push_back(std::move(snap));
      if (waiting_candidate_) {
        waiting_candidate_ = false;
        drive();
      }
      break;
    }
    case MsgKind::kToken: {
      WCP_CHECK(!has_token_);
      // The chain invariant: the token only ever travels to the chain head,
      // which is red (Lemma 4.2.3).
      WCP_CHECK(color_ == Color::kRed);
      has_token_ = true;
      net().bump_token_hops();
      drive();
      break;
    }
    case MsgKind::kPoll: {
      const auto poll = std::any_cast<DdPoll>(p.payload);
      handle_poll(p.from.pid, poll);
      break;
    }
    case MsgKind::kPollReply: {
      WCP_CHECK(poll_outstanding_);
      poll_outstanding_ = false;
      const auto reply = std::any_cast<DdPollReply>(p.payload);
      net().add_monitor_work(pid(), 1);
      if (reply.became_red) next_red_ = p.from.pid.value();
      ++poll_cursor_;
      drive();
      break;
    }
    case MsgKind::kControl:
      eos_ = true;
      break;
    default:
      WCP_CHECK_MSG(false, "DD monitor got " << to_string(p.kind));
  }
}

// The single state-machine pump. Safe to call at any time; it inspects the
// monitor's state and performs the next enabled action:
//   1. wait for an outstanding poll reply,
//   2. poll the next queued dependence,
//   3. commit a surviving tentative candidate (token holder only) and hand
//      the token down the chain,
//   4. consume candidates from the application stream (token holder, or any
//      red monitor in the §4.5 parallel mode).
void DdMonitor::drive() {
  while (true) {
    if (poll_outstanding_) return;

    if (poll_cursor_ < poll_queue_.size()) {
      send_next_poll();
      return;
    }

    if (tentative_ > G_) {
      // All dependences of every candidate up to the tentative one have
      // been polled; the candidate survived every poll raise of G.
      if (has_token_) commit_and_handoff();
      // Parallel non-holders hold the tentative candidate until the token
      // arrives (only the token visit may remove us from the chain).
      return;
    }
    tentative_ = 0;

    const bool may_consume =
        has_token_ || (cfg_.parallel && color_ == Color::kRed);
    if (!may_consume) return;

    // Fig. 4 repeat-loop: receive candidates, accumulating their
    // dependence lists, until one exceeds the elimination threshold G.
    if (inbox_.empty()) {
      waiting_candidate_ = true;
      return;
    }
    waiting_candidate_ = false;
    app::DdSnapshot snap = std::move(inbox_.front());
    inbox_.pop_front();
    net().monitor_buffer_change(pid(), -snap.bytes(), -1);
    net().add_monitor_work(
        pid(), 1 + static_cast<std::int64_t>(snap.deps.size()));
    for (const Dependence& d : snap.deps.items()) poll_queue_.push_back(d);
    if (snap.clock > G_) tentative_ = snap.clock;
    // Loop: poll newly queued dependences (or consume further candidates).
  }
}

void DdMonitor::send_next_poll() {
  const Dependence& dep = poll_queue_[poll_cursor_];
  WCP_CHECK_MSG(dep.source != pid(), "self-dependence is impossible");
  poll_outstanding_ = true;
  net().add_monitor_work(pid(), 1);
  send(sim::NodeAddr::monitor(dep.source), MsgKind::kPoll,
       DdPoll{dep.clock, next_red_}, /*bits=*/2 * 64);
}

void DdMonitor::commit_and_handoff() {
  WCP_CHECK(has_token_ && tentative_ > G_);
  G_ = tentative_;
  color_ = Color::kGreen;
  tentative_ = 0;
  poll_queue_.clear();
  poll_cursor_ = 0;
  has_token_ = false;

  const int next = next_red_;
  if (cfg_.on_handoff) cfg_.on_handoff(pid(), next);

  if (next < 0) {
    // Empty red chain: every monitor is green; the distributed G variables
    // form the first WCP cut (Theorem 4.3). The harness collects them.
    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.detect_time = net().simulator().now();
    if (cfg_.halt_apps) {
      for (std::size_t p = 0; p < cfg_.num_processes; ++p)
        send(sim::NodeAddr::app(ProcessId(static_cast<int>(p))),
             MsgKind::kControl, app::Halt{}, /*bits=*/1);
    } else {
      net().simulator().stop();
    }
    return;
  }
  send(sim::NodeAddr::monitor(ProcessId(next)), MsgKind::kToken, DdToken{},
       /*bits=*/1);
}

void DdMonitor::handle_poll(ProcessId from, const DdPoll& poll) {
  net().add_monitor_work(pid(), 1);
  const Color old = color_;
  if (poll.clock >= G_) {
    color_ = Color::kRed;
    G_ = poll.clock;
    if (tentative_ != 0 && tentative_ <= G_) tentative_ = 0;  // voided
  }
  const bool became_red = color_ == Color::kRed && old == Color::kGreen;
  if (became_red) next_red_ = poll.next_red;
  send(sim::NodeAddr::monitor(from), MsgKind::kPollReply,
       DdPollReply{became_red}, /*bits=*/1);
  if (cfg_.parallel && color_ == Color::kRed) drive();
}

DdInstallation install_dd_monitors(sim::Network& net, std::size_t N,
                                   const DdRunOptions& dd, bool halt_apps,
                                   const DdHandoffObserver& observer) {
  WCP_REQUIRE(N >= 1, "need at least one process");
  DdInstallation inst;
  inst.shared = std::make_shared<SharedDetection>();
  inst.monitors.resize(N, nullptr);
  for (std::size_t p = 0; p < N; ++p) {
    DdMonitor::Config mc;
    mc.num_processes = N;
    mc.parallel = dd.parallel;
    mc.halt_apps = halt_apps;
    mc.starts_with_token = (p == 0);
    mc.initial_next_red = p + 1 < N ? static_cast<int>(p + 1) : -1;
    mc.shared = inst.shared;
    mc.on_handoff = observer;
    auto mon = std::make_unique<DdMonitor>(std::move(mc));
    inst.monitors[p] = mon.get();
    net.add_node(sim::NodeAddr::monitor(ProcessId(static_cast<int>(p))),
                 std::move(mon));
  }
  return inst;
}

DetectionResult run_direct_dep(const Computation& comp, const RunOptions& opts,
                               const DdRunOptions& dd,
                               const DdInspector& inspector) {
  const std::size_t N = comp.num_processes();

  sim::Network net(network_config(opts, N));

  auto monitors = std::make_shared<std::vector<DdMonitor*>>();
  DdHandoffObserver observer;
  if (inspector)
    observer = [monitors, inspector](ProcessId from, int next) {
      inspector(*monitors, from, next);
    };

  auto inst = install_dd_monitors(net, N, dd, opts.halt_on_detect, observer);
  *monitors = inst.monitors;
  auto shared = inst.shared;

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kDirectDependence;
  drv.relay_snapshots = true;
  drv.step_delay = opts.step_delay;
  const auto drivers = app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  DetectionResult r;
  if (opts.halt_on_detect && shared->detected) {
    r.frozen_cut.reserve(drivers.size());
    for (const auto* d : drivers) r.frozen_cut.push_back(d->current_state());
  }
  finish_result(r, net, *shared);
  if (r.detected) {
    r.full_cut.resize(N);
    for (std::size_t p = 0; p < N; ++p) r.full_cut[p] = (*monitors)[p]->G();
    const auto preds = comp.predicate_processes();
    r.cut.resize(preds.size());
    for (std::size_t s = 0; s < preds.size(); ++s)
      r.cut[s] = r.full_cut[preds[s].idx()];
  }
  return r;
}

}  // namespace wcp::detect
