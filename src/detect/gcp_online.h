// Online centralized GCP checker — the detection architecture of
// reference [6] (Garg, Chase, Mitchell & Kilgore): every predicate process
// streams vector-clock snapshots extended with per-peer message counters to
// one checker, which advances the candidate cut by eliminating queue heads
// that violate either consistency (as in the WCP checker) or a linear
// channel predicate (empty / at-most-k eliminate the receiver's head,
// at-least-k the sender's).
//
// Channel endpoints must be predicate processes of the computation (their
// local predicate may be identically true); this keeps the piggybacked
// vector clocks wide enough to order every cut component.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "detect/gcp.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

class GcpChecker final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::vector<ChannelPredicate> channels;
    std::shared_ptr<SharedDetection> shared;
  };

  explicit GcpChecker(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] std::int64_t eliminations() const { return eliminations_; }
  [[nodiscard]] std::int64_t channel_evals() const { return channel_evals_; }

 private:
  void process();
  void pop_head(std::size_t s);
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::deque<app::VcSnapshot>> queues_;
  std::deque<std::size_t> dirty_;
  std::vector<bool> in_dirty_;
  std::vector<int> slot_of_pid_;  // process idx -> slot (or -1)
  std::int64_t eliminations_ = 0;
  std::int64_t channel_evals_ = 0;
};

/// Runs the online centralized GCP checker over a replay of `comp`.
/// Requires every channel endpoint to be a predicate process.
DetectionResult run_gcp_centralized(const Computation& comp,
                                    std::span<const ChannelPredicate> channels,
                                    const RunOptions& opts);

}  // namespace wcp::detect
